//! Cluster chaos soak: the 8-node shard router under 3× overload,
//! across many seeds, with 1–3 nodes chaos-killed mid-run. The
//! invariants under test:
//!
//! * **Clean termination** — no run hangs, no request is left open, no
//!   copy is stranded on a node queue.
//! * **Conservation** — the `cluster.*` counter family balances
//!   (requests in = served + replayed + shed, dispatches = completions
//!   plus losses and queue residue, losses = replays + unreplayed) and
//!   the telemetry invariant checker stays silent, kills or no kills.
//! * **Bounded degradation** — killing 1 of 8 nodes keeps goodput at
//!   ≥ 85 % of the same-seed no-kill run and per-tenant p99 inside the
//!   SLO; deeper kills degrade gracefully, not catastrophically.
//! * **Determinism** — replaying a seed reproduces the run bit for bit.
//!
//! The base seed honours `DLB_CLUSTER_SEED`, so CI can sweep a second
//! seed set without a code change.

use dlbooster::cluster::splitmix64;
use dlbooster::simcore::SimTime;
use dlbooster::workflows::cluster::{ClusterOutcome, ClusterParams, ClusterSim};

const NODES: u32 = 8;
const OVERLOAD: f64 = 3.0;

fn seeds() -> Vec<u64> {
    let base = std::env::var("DLB_CLUSTER_SEED")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0xC100_57E5);
    (0..8).map(|i| splitmix64(base + i)).collect()
}

/// The replay-stable portion of a run's outcome. Floats are compared
/// by bit pattern: "deterministic" means bitwise, not approximately.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    offered: u64,
    completed: u64,
    shed: u64,
    good: u64,
    goodput_bits: u64,
    p50: SimTime,
    p99: SimTime,
    tenant_p99: Vec<(u32, SimTime)>,
    killed: u32,
    sim_time: SimTime,
}

impl Outcome {
    fn of(out: &ClusterOutcome) -> Self {
        Self {
            offered: out.offered,
            completed: out.completed,
            shed: out.shed,
            good: out.good,
            goodput_bits: out.goodput.to_bits(),
            p50: out.p50_latency,
            p99: out.p99_latency,
            tenant_p99: out.tenant_p99.clone(),
            killed: out.killed,
            sim_time: out.sim_time,
        }
    }
}

/// Every structural invariant a finished run must satisfy, kills or not.
fn assert_clean(out: &ClusterOutcome, seed: u64, kills: u32) {
    let tag = format!("seed {seed} kills {kills}");
    assert_eq!(out.open_requests, 0, "{tag}: requests left open");
    assert_eq!(
        out.completed + out.shed,
        out.offered,
        "{tag}: request-level conservation"
    );
    let c = &out.snapshot.cluster;
    assert_eq!(c.inflight, 0, "{tag}: inflight gauge nonzero at end");
    assert_eq!(c.node_queued, 0, "{tag}: copies stranded on node queues");
    assert_eq!(
        c.requests + c.hedge_dups,
        c.served + c.replayed + c.shed,
        "{tag}: door conservation"
    );
    assert_eq!(
        c.dispatches,
        c.admitted + c.hedges + c.replays,
        "{tag}: dispatch provenance"
    );
    assert_eq!(
        c.dispatches,
        c.completions + c.lost,
        "{tag}: copy conservation"
    );
    assert_eq!(
        c.lost,
        c.replays + c.lost_unreplayed,
        "{tag}: loss disposition"
    );
    assert_eq!(c.kills, u64::from(kills), "{tag}: kill count");
    assert!(
        out.snapshot.invariant_violations().is_empty(),
        "{tag}: {:?}",
        out.snapshot.invariant_violations()
    );
}

#[test]
fn cluster_survives_chaos_kills_across_seeds() {
    let mut total_replays = 0u64;
    let mut total_lost = 0u64;
    for seed in seeds() {
        let base = ClusterSim::run(ClusterParams::baseline(NODES, OVERLOAD, seed));
        assert_clean(&base, seed, 0);
        for kills in 1..=3u32 {
            let params = ClusterParams::baseline(NODES, OVERLOAD, seed).with_spread_kills(kills);
            let slo = params.slo;
            let out = ClusterSim::run(params);
            assert_clean(&out, seed, kills);
            total_replays += out.snapshot.cluster.replays;
            total_lost += out.snapshot.cluster.lost;
            let retention = out.goodput / base.goodput;
            // The acceptance bar: one node down costs at most 15% of
            // goodput. Deeper kills shrink live capacity by 1/8 each, so
            // the floor steps down accordingly (with jitter margin).
            let floor = match kills {
                1 => 0.85,
                2 => 0.70,
                _ => 0.58,
            };
            assert!(
                retention >= floor,
                "seed {seed} kills {kills}: goodput retention {retention:.3} < {floor}"
            );
            if kills == 1 {
                for &(tenant, p99) in &out.tenant_p99 {
                    assert!(
                        p99 <= slo,
                        "seed {seed}: tenant {tenant} p99 {p99:?} outside the SLO with one node down"
                    );
                }
            }
        }
    }
    assert!(
        total_lost > 0,
        "24 kill runs under 3x overload must catch copies in flight"
    );
    assert!(
        total_replays > 0,
        "some of the lost copies must have been replayable"
    );
}

#[test]
fn seed_replay_is_bitwise_identical_under_kills() {
    for seed in seeds().into_iter().take(2) {
        let params = || ClusterParams::baseline(NODES, OVERLOAD, seed).with_spread_kills(2);
        let a = Outcome::of(&ClusterSim::run(params()));
        let b = Outcome::of(&ClusterSim::run(params()));
        assert_eq!(a, b, "replay diverged for seed {seed}");
    }
}

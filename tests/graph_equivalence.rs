//! Differential suite for the pipeline-graph refactor: the canned-graph
//! constructors (`DlBooster::start`, `CpuBackend::start`, which compile a
//! [`dlbooster::graph`] chain) must be *bitwise identical* to the
//! preserved pre-refactor wiring (`start_hardwired*`), batch for batch,
//! across every mode the substrate runs in — training, served/streaming,
//! chaos-driven failover, and hybrid-cache-enabled — and their
//! [`PipelineSnapshot`] conservation outcomes must agree. Seed-swept so
//! the equality is not an artifact of one dataset.

use dlbooster::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Dataset-content and shuffle seeds swept by every dataset-mode test.
const SWEEP: [(u64, u64); 3] = [(7, 0), (123, 1), (20_260_808, 2)];

/// Which construction path a run uses.
#[derive(Clone, Copy, PartialEq)]
enum Path {
    /// `start*`: compiles the canned pipeline graph.
    Graph,
    /// `start_hardwired*`: the preserved pre-graph wiring constants.
    Hardwired,
}

fn drain_payloads(backend: &dyn PreprocessBackend) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Ok(batch) = backend.next_batch(0) {
        out.push(batch.unit.payload().to_vec());
        backend.recycle(batch.unit);
    }
    out
}

fn drain_labeled(backend: &dyn PreprocessBackend) -> HashMap<u64, Vec<u8>> {
    let mut out = HashMap::new();
    while let Ok(batch) = backend.next_batch(0) {
        for (i, item) in batch.unit.items().iter().enumerate() {
            out.insert(item.label, batch.unit.item_bytes(i).to_vec());
        }
        backend.recycle(batch.unit);
    }
    out
}

/// Conservation outcome of a finished run: the snapshot's invariant
/// verdicts, which must be identical between construction paths.
fn conservation(snap: &PipelineSnapshot) -> (bool, bool, u64) {
    (
        snap.invariant_violations().is_empty(),
        snap.batches_in() == snap.batches_out() + snap.batch_errors(),
        snap.decoder.items_err,
    )
}

fn fpga_booster(
    records: &[dlbooster::storage::dataset::Record],
    disk: &Arc<NvmeDisk>,
    shuffle: u64,
    config: DlBoosterConfig,
    telemetry: Arc<Telemetry>,
    path: Path,
) -> DlBooster {
    let collector = Arc::new(DataCollector::load_from_disk(records, shuffle));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(disk))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    match path {
        Path::Graph => DlBooster::start_with_telemetry(collector, channel, config, telemetry),
        Path::Hardwired => {
            DlBooster::start_hardwired_with_telemetry(collector, channel, config, telemetry)
        }
    }
    .unwrap()
}

#[test]
fn training_mode_graph_equals_hardwired_bitwise() {
    for &(data_seed, shuffle) in &SWEEP {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, data_seed), &disk).unwrap();
        let run = |path: Path| {
            let telemetry = Telemetry::with_defaults();
            let mut config = DlBoosterConfig::training(1, 4, (40, 40), 8, Some(4));
            config.cache_bytes = 0; // live decode; cache mode is covered below
            let booster = fpga_booster(
                &dataset.records,
                &disk,
                shuffle,
                config,
                Arc::clone(&telemetry),
                path,
            );
            let payloads = drain_payloads(&booster);
            drop(booster); // join reader + router → quiescent counters
            (payloads, telemetry.pipeline_snapshot())
        };
        let (graph, graph_snap) = run(Path::Graph);
        let (hard, hard_snap) = run(Path::Hardwired);
        assert_eq!(graph.len(), 4, "seed {data_seed}: wrong batch count");
        assert_eq!(
            graph, hard,
            "seed {data_seed}/shuffle {shuffle}: training batches diverge"
        );
        assert_eq!(conservation(&graph_snap), (true, true, 0));
        assert_eq!(
            conservation(&graph_snap),
            conservation(&hard_snap),
            "seed {data_seed}: conservation outcomes diverge"
        );
    }
}

#[test]
fn served_mode_graph_equals_hardwired_bitwise() {
    for &(req_seed, _) in &SWEEP {
        let n_requests = 16;
        let batch = 4usize;
        let run = |path: Path| {
            let pool = ClientPool::small(1_000.0, req_seed);
            let requests = pool.generate_requests(n_requests);
            let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000));
            let collector = Arc::new(DataCollector::load_from_net());
            for r in &requests {
                let desc = nic.deliver(&r.wire_bytes, 0).unwrap();
                collector.push_from_net(&desc);
            }
            collector.close_stream();
            let telemetry = Telemetry::with_defaults();
            let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
            device
                .load_mirror(DecoderMirror::jpeg_paper_config())
                .unwrap();
            let engine = DecoderEngine::start_with_telemetry(
                device,
                Arc::new(CombinedResolver::nic_only(Arc::clone(&nic))),
                &telemetry,
            )
            .unwrap();
            let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
            let mut config = DlBoosterConfig::inference(1, batch, (56, 56));
            config.max_batches = Some((n_requests / batch) as u64);
            let booster = match path {
                Path::Graph => {
                    DlBooster::start_with_telemetry(collector, channel, config, telemetry.clone())
                }
                Path::Hardwired => DlBooster::start_hardwired_with_telemetry(
                    collector,
                    channel,
                    config,
                    telemetry.clone(),
                ),
            }
            .unwrap();
            let mut payloads = Vec::new();
            let mut labels = Vec::new();
            while let Ok(b) = booster.next_batch(0) {
                payloads.push(b.unit.payload().to_vec());
                labels.extend(b.unit.items().iter().map(|i| i.label));
                booster.recycle(b.unit);
            }
            drop(booster);
            (payloads, labels, telemetry.pipeline_snapshot())
        };
        let (graph, graph_labels, graph_snap) = run(Path::Graph);
        let (hard, hard_labels, hard_snap) = run(Path::Hardwired);
        assert_eq!(graph.len(), n_requests / batch);
        assert_eq!(
            graph, hard,
            "request seed {req_seed}: served batches diverge"
        );
        assert_eq!(
            graph_labels, hard_labels,
            "request seed {req_seed}: request identity diverges"
        );
        assert_eq!(conservation(&graph_snap), (true, true, 0));
        assert_eq!(conservation(&graph_snap), conservation(&hard_snap));
    }
}

#[test]
fn cache_enabled_mode_graph_equals_hardwired_bitwise() {
    // The hybrid epoch cache stays on (training default): epoch 1 decodes,
    // epochs 2-3 replay from memory. Replay and live batches alike must be
    // construction-path invariant.
    for &(data_seed, shuffle) in &SWEEP {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, data_seed), &disk).unwrap();
        let run = |path: Path| {
            let telemetry = Telemetry::with_defaults();
            let config = DlBoosterConfig::training(1, 4, (32, 32), 8, Some(6));
            let booster = fpga_booster(
                &dataset.records,
                &disk,
                shuffle,
                config,
                Arc::clone(&telemetry),
                path,
            );
            let payloads = drain_payloads(&booster);
            let hits = booster.cache().stats().0;
            drop(booster);
            (payloads, hits, telemetry.pipeline_snapshot())
        };
        let (graph, graph_hits, graph_snap) = run(Path::Graph);
        let (hard, hard_hits, hard_snap) = run(Path::Hardwired);
        assert_eq!(graph.len(), 6);
        assert_eq!(
            graph, hard,
            "seed {data_seed}: cache-enabled batches diverge"
        );
        // Both paths replayed later epochs from the cache — same outcome.
        assert!(graph_hits >= 4, "graph path must replay from cache");
        assert_eq!(graph_hits, hard_hits, "cache hit accounting diverges");
        assert_eq!(graph[0], graph[2], "epoch replay must be bitwise");
        assert!(conservation(&graph_snap).0);
        assert_eq!(conservation(&graph_snap), conservation(&hard_snap));
    }
}

#[test]
fn failover_mode_graph_equals_hardwired_per_label() {
    // Chaos wedges the FPGA mid-run; the failover pair finishes on the CPU
    // fallback. Which batches each side serves is timing-dependent, so the
    // cross-path contract is per-label pixel identity plus identical
    // failover accounting.
    use dlbooster::chaos::Stage;
    use std::time::Duration;

    let total: u64 = 8;
    let batch = 4usize;
    let (data_seed, shuffle) = SWEEP[1];
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(
        DatasetSpec::ilsvrc_small(total as usize * batch, data_seed),
        &disk,
    )
    .unwrap();

    let run = |path: Path| {
        let telemetry = Telemetry::with_defaults();
        let records = dataset.records.clone();
        let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, shuffle));
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device
            .load_mirror(DecoderMirror::jpeg_paper_config())
            .unwrap();
        let engine = DecoderEngine::start_with_telemetry(
            device,
            Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
            &telemetry,
        )
        .unwrap();
        let mut plan = FaultPlan::disabled();
        plan.seed = 23;
        plan.fpga = StageSpec::rate(0.5).with_delay(Duration::from_secs(60));
        let cancel = plan.cancel_token();
        engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());
        let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
        let mut config =
            DlBoosterConfig::training(1, batch, (32, 32), total as usize * batch, Some(total));
        config.cache_bytes = 0;
        let primary = Arc::new(
            match path {
                Path::Graph => DlBooster::start_with_telemetry(
                    collector,
                    channel,
                    config,
                    Arc::clone(&telemetry),
                ),
                Path::Hardwired => DlBooster::start_hardwired_with_telemetry(
                    collector,
                    channel,
                    config,
                    Arc::clone(&telemetry),
                ),
            }
            .unwrap(),
        );
        let t2 = Arc::clone(&telemetry);
        let fallback_disk = Arc::clone(&disk);
        let backend = FailoverBackend::new(
            Arc::clone(&primary),
            Box::new(move |remaining| {
                let collector = Arc::new(DataCollector::load_from_disk(&records, shuffle));
                let config = CpuBackendConfig {
                    n_engines: 1,
                    batch_size: batch,
                    target_w: 32,
                    target_h: 32,
                    workers: 2,
                    max_batches: Some(remaining),
                    sample_cache: None,
                };
                let resolver = Arc::new(CombinedResolver::disk_only(Arc::clone(&fallback_disk)));
                match path {
                    Path::Graph => CpuBackend::start_with_telemetry(
                        collector,
                        resolver,
                        config,
                        Arc::clone(&t2),
                    ),
                    Path::Hardwired => CpuBackend::start_hardwired_with_telemetry(
                        collector,
                        resolver,
                        config,
                        Arc::clone(&t2),
                    ),
                }
                .map(|b| Box::new(b) as Box<dyn PreprocessBackend>)
            }),
            dlbooster::backends::FailoverConfig {
                total_batches: total,
                deadline: Duration::from_millis(200),
                chaos_cancel: Some(cancel),
            },
            &telemetry,
        );
        let mut labeled = HashMap::new();
        let mut delivered = 0u64;
        loop {
            match backend.next_batch(0) {
                Ok(b) => {
                    assert_eq!(b.len(), batch, "every batch arrives full");
                    for (i, item) in b.unit.items().iter().enumerate() {
                        labeled.insert(item.label, b.unit.item_bytes(i).to_vec());
                    }
                    delivered += 1;
                    backend.recycle(b.unit);
                }
                Err(dlbooster::core::BackendError::Exhausted) => break,
                Err(e) => panic!("run must complete cleanly, got {e}"),
            }
        }
        let failed_over = backend.failed_over();
        backend.shutdown();
        drop(backend);
        drop(primary);
        let snap = telemetry.pipeline_snapshot();
        (labeled, delivered, failed_over, snap)
    };

    let (graph, graph_n, graph_failed, graph_snap) = run(Path::Graph);
    let (hard, hard_n, hard_failed, hard_snap) = run(Path::Hardwired);
    assert!(graph_failed && hard_failed, "both paths must fail over");
    assert_eq!(graph_n, total);
    assert_eq!(hard_n, total);
    assert_eq!(
        graph.len(),
        total as usize * batch,
        "one epoch must cover every record"
    );
    let mut labels: Vec<_> = graph.keys().copied().collect();
    labels.sort_unstable();
    for label in labels {
        assert_eq!(
            graph.get(&label),
            hard.get(&label),
            "failover pixels diverge on label {label}"
        );
    }
    assert_eq!(graph_snap.chaos.failovers, 1);
    assert_eq!(hard_snap.chaos.failovers, 1);
    assert!(graph_snap.invariant_violations().is_empty());
    assert!(hard_snap.invariant_violations().is_empty());
}

#[test]
fn cpu_backend_graph_equals_hardwired() {
    for &(data_seed, shuffle) in &SWEEP {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, data_seed), &disk).unwrap();
        let run = |path: Path, workers: usize| {
            let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, shuffle));
            let config = CpuBackendConfig {
                n_engines: 1,
                batch_size: 4,
                target_w: 40,
                target_h: 40,
                workers,
                max_batches: Some(2),
                sample_cache: None,
            };
            let resolver = Arc::new(CombinedResolver::disk_only(Arc::clone(&disk)));
            let backend = match path {
                Path::Graph => CpuBackend::start(collector, resolver, config),
                Path::Hardwired => CpuBackend::start_hardwired(collector, resolver, config),
            }
            .unwrap();
            drain_labeled(&backend)
        };
        // Single worker: delivery order itself is deterministic, so the
        // per-label maps compare the full epoch; multi-worker runs are
        // compared the same way (batch composition is scheduling-
        // dependent, pixels are not).
        for workers in [1usize, 2] {
            let graph = run(Path::Graph, workers);
            let hard = run(Path::Hardwired, workers);
            assert_eq!(graph.len(), 8);
            assert_eq!(
                graph, hard,
                "seed {data_seed}/workers {workers}: CPU pixels diverge"
            );
        }
    }
}

#[test]
fn from_graph_with_canned_chain_equals_start() {
    // `from_graph` fed the canned chains must behave exactly like the
    // constructors that compile them internally — the graph API adds no
    // hidden wiring.
    let (data_seed, shuffle) = SWEEP[0];
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, data_seed), &disk).unwrap();

    // FPGA path.
    let fpga_run = |use_from_graph: bool| {
        let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, shuffle));
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device
            .load_mirror(DecoderMirror::jpeg_paper_config())
            .unwrap();
        let engine = DecoderEngine::start(
            device,
            Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        )
        .unwrap();
        let channel = FpgaChannel::init(engine, 0);
        let mut config = DlBoosterConfig::training(1, 4, (40, 40), 8, Some(2));
        config.cache_bytes = 0;
        let booster = if use_from_graph {
            let graph = dlbooster::graph::fpga_training(40, 40);
            DlBooster::from_graph(collector, channel, config, &graph, 0)
        } else {
            DlBooster::start(collector, channel, config)
        }
        .unwrap();
        drain_payloads(&booster)
    };
    assert_eq!(fpga_run(true), fpga_run(false), "FPGA from_graph diverges");

    // CPU path.
    let cpu_run = |use_from_graph: bool| {
        let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, shuffle));
        let config = CpuBackendConfig {
            n_engines: 1,
            batch_size: 4,
            target_w: 40,
            target_h: 40,
            workers: 2,
            max_batches: Some(2),
            sample_cache: None,
        };
        let resolver = Arc::new(CombinedResolver::disk_only(Arc::clone(&disk)));
        let backend = if use_from_graph {
            let graph = dlbooster::graph::cpu_training(40, 40, 2);
            CpuBackend::from_graph(collector, resolver, config, &graph, 0)
        } else {
            CpuBackend::start(collector, resolver, config)
        }
        .unwrap();
        drain_labeled(&backend)
    };
    assert_eq!(cpu_run(true), cpu_run(false), "CPU from_graph diverges");
}

#[test]
fn from_graph_rejects_wrong_device() {
    // A CPU-decode chain cannot start the FPGA executor and vice versa;
    // the mismatch is a structured start-time error, not a panic.
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(4, 3), &disk).unwrap();

    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    let config = DlBoosterConfig::training(1, 4, (32, 32), 4, Some(1));
    let cpu_chain = dlbooster::graph::cpu_training(32, 32, 2);
    assert!(
        DlBooster::from_graph(
            collector,
            FpgaChannel::init(engine, 0),
            config,
            &cpu_chain,
            0
        )
        .is_err(),
        "FPGA executor must reject a CPU-decode graph"
    );

    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let fpga_chain = dlbooster::graph::fpga_training(32, 32);
    let config = CpuBackendConfig {
        n_engines: 1,
        batch_size: 4,
        target_w: 32,
        target_h: 32,
        workers: 1,
        max_batches: Some(1),
        sample_cache: None,
    };
    assert!(
        CpuBackend::from_graph(
            collector,
            Arc::new(CombinedResolver::disk_only(disk)),
            config,
            &fpga_chain,
            0
        )
        .is_err(),
        "CPU executor must reject an FPGA-decode graph"
    );
}

//! Functional online-inference pipeline: client frames → NIC → stream-mode
//! DataCollector → FPGA decode → inference session, with request identity
//! and latency accounting verified end to end.

use dlbooster::prelude::*;
use std::sync::Arc;

#[test]
fn requests_flow_from_nic_to_decoded_batches_with_identity() {
    let pool = ClientPool::small(1_000.0, 4242);
    let n_requests = 16;
    let batch_size = 4;
    let requests = pool.generate_requests(n_requests);

    let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000));
    let collector = Arc::new(DataCollector::load_from_net());
    for r in &requests {
        let desc = nic
            .deliver(&r.wire_bytes, r.send_time.as_nanos() + 50_000)
            .expect("valid frame");
        collector.push_from_net(&desc);
    }
    collector.close_stream();

    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::nic_only(Arc::clone(&nic))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::inference(1, batch_size, (56, 56));
    config.max_batches = Some((n_requests / batch_size) as u64);
    let booster = DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap();

    let mut served_ids = Vec::new();
    while let Ok(batch) = booster.next_batch(0) {
        assert_eq!(batch.len(), batch_size);
        assert_eq!(batch.arrivals.len(), batch_size);
        for (i, item) in batch.unit.items().iter().enumerate() {
            // Request id travels as the label; arrival timestamp travels in
            // `arrivals`, matching what the NIC stamped.
            served_ids.push(item.label);
            assert_eq!(
                batch.arrivals[i],
                requests[item.label as usize].send_time.as_nanos() + 50_000
            );
            // Decoded geometry is the configured 56×56 RGB.
            assert_eq!(item.len, 56 * 56 * 3);
        }
        booster.recycle(batch.unit);
    }
    served_ids.sort_unstable();
    assert_eq!(served_ids, (0..n_requests as u64).collect::<Vec<_>>());
}

#[test]
fn inference_pipeline_snapshot_covers_nic_path() {
    // Stream-mode pipeline with one shared registry: NIC requests decode
    // through the FPGA and serve an inference session; the aggregated
    // snapshot must balance and carry per-stage histograms.
    let telemetry = Telemetry::with_defaults();
    let pool = ClientPool::small(1_000.0, 99);
    let n_requests = 16;
    let batch_size = 4;
    let requests = pool.generate_requests(n_requests);
    let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000));
    let collector = Arc::new(DataCollector::load_from_net());
    for r in &requests {
        let desc = nic.deliver(&r.wire_bytes, 0).unwrap();
        collector.push_from_net(&desc);
    }
    collector.close_stream();

    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::nic_only(Arc::clone(&nic))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::inference(1, batch_size, (64, 64));
    let n_batches = (n_requests / batch_size) as u64;
    config.max_batches = Some(n_batches);
    let booster: Arc<dyn PreprocessBackend> = Arc::new(
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap(),
    );

    let gpus = vec![GpuDevice::new(GpuSpec::tesla_v100(), 0)];
    let report = InferenceSession::run_with_telemetry(
        Arc::clone(&booster),
        &gpus,
        &InferenceConfig {
            model: ModelZoo::GoogLeNet,
            batch_size: batch_size as u32,
            precision: Precision::Fp16,
            batches: n_batches,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        },
        &telemetry,
    );
    assert_eq!(report.batches, n_batches);
    drop(booster); // quiesce before snapshotting

    let snap = telemetry.pipeline_snapshot();
    assert_eq!(snap.batches_in(), snap.batches_out() + snap.batch_errors());
    assert_eq!(snap.decoder.items_ok, n_requests as u64);
    assert_eq!(snap.decoder.items_err, 0);
    assert!(snap.decoder.lane_service.as_ref().unwrap().count > 0);
    assert_eq!(snap.engines.batches, n_batches);
    assert_eq!(snap.engines.batch_wait.as_ref().unwrap().count, n_batches);
    assert_eq!(snap.engines.compute.as_ref().unwrap().count, n_batches);
    assert!(snap.dispatcher.bytes_copied > 0);
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
    assert!(snap.stalls.is_empty());
}

#[test]
fn inference_session_over_stream_backend() {
    let pool = ClientPool::small(1_000.0, 7);
    let n_requests = 24;
    let batch_size = 4;
    let requests = pool.generate_requests(n_requests);
    let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000));
    let collector = Arc::new(DataCollector::load_from_net());
    for r in &requests {
        let desc = nic.deliver(&r.wire_bytes, 0).unwrap();
        collector.push_from_net(&desc);
    }
    collector.close_stream();

    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::nic_only(Arc::clone(&nic))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::inference(1, batch_size, (224, 224));
    config.max_batches = Some((n_requests / batch_size) as u64);
    let booster: Arc<dyn PreprocessBackend> =
        Arc::new(DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap());

    let gpus = vec![GpuDevice::new(GpuSpec::tesla_v100(), 0)];
    let report = InferenceSession::run(
        booster,
        &gpus,
        &InferenceConfig {
            model: ModelZoo::GoogLeNet,
            batch_size: batch_size as u32,
            precision: Precision::Fp16,
            batches: (n_requests / batch_size) as u64,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        },
    );
    assert_eq!(report.images, n_requests as u64);
    assert_eq!(report.batches, (n_requests / batch_size) as u64);
    assert!(report.modelled_throughput > 0.0);
    assert_eq!(report.latency.len(), n_requests / batch_size);
}

//! Determinism contract of the seeded augmentation stages: every random
//! crop/flip draw is a pure function of `(run seed, epoch, sample
//! identity)`, so augmented pixels must be invariant to worker count,
//! decode substrate, chaos-driven failover re-decodes, and replay — while
//! different epochs and different seeds must actually draw differently.
//!
//! Every test takes the file-global lock: one test exercises the
//! `DLB_AUG_SEED` environment override, which is process-wide state read
//! at pipeline start.

use dlbooster::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

const N_IMAGES: usize = 8;
const BATCH: usize = 4;
const BATCHES_PER_EPOCH: u64 = (N_IMAGES / BATCH) as u64;
const RESIZE: (u32, u32) = (48, 48);
const CROP: (u32, u32) = (32, 32);
const FLIP: f32 = 0.5;

/// Serialises the whole file: `DLB_AUG_SEED` is process-global and every
/// pipeline start resolves it.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct Fixture {
    disk: Arc<NvmeDisk>,
    dataset: Dataset,
}

fn fixture(data_seed: u64) -> Fixture {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(N_IMAGES, data_seed), &disk).unwrap();
    Fixture { disk, dataset }
}

fn augmented_graph(device: DecodeDevice, workers: usize) -> PipelineGraph {
    dlbooster::graph::augmented_training(device, RESIZE, CROP, FLIP, None, workers).unwrap()
}

/// Runs the augmented CPU pipeline for `epochs` epochs and returns each
/// epoch's `label → pixels` map, in delivery order within the run.
fn cpu_epoch_maps(
    f: &Fixture,
    workers: usize,
    seed: u64,
    epochs: u64,
) -> Vec<HashMap<u64, Vec<u8>>> {
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let config = CpuBackendConfig {
        n_engines: 1,
        batch_size: BATCH,
        target_w: RESIZE.0,
        target_h: RESIZE.1,
        workers,
        max_batches: Some(epochs * BATCHES_PER_EPOCH),
        sample_cache: None,
    };
    let backend = CpuBackend::from_graph(
        collector,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
        config,
        &augmented_graph(DecodeDevice::Cpu, workers),
        seed,
    )
    .unwrap();
    let mut maps: Vec<HashMap<u64, Vec<u8>>> = vec![HashMap::new(); epochs as usize];
    let mut seen_per_epoch = vec![0usize; epochs as usize];
    while let Ok(batch) = backend.next_batch(0) {
        for (i, item) in batch.unit.items().iter().enumerate() {
            // Epoch attribution by sighting count: the unshuffled
            // collector delivers each label exactly once per epoch.
            let epoch = maps
                .iter()
                .position(|m| !m.contains_key(&item.label))
                .expect("no label appears more than `epochs` times");
            maps[epoch].insert(item.label, batch.unit.item_bytes(i).to_vec());
            seen_per_epoch[epoch] += 1;
        }
        backend.recycle(batch.unit);
    }
    for (e, seen) in seen_per_epoch.iter().enumerate() {
        assert_eq!(*seen, N_IMAGES, "epoch {e} must cover every record");
    }
    maps
}

#[test]
fn augmented_output_has_crop_geometry_and_differs_from_plain_resize() {
    let _g = lock();
    let f = fixture(11);
    let augmented = &cpu_epoch_maps(&f, 1, 42, 1)[0];
    for pixels in augmented.values() {
        assert_eq!(
            pixels.len(),
            (CROP.0 * CROP.1 * 3) as usize,
            "items must carry the cropped geometry"
        );
    }
    // Against a crop-free run: augmentation actually changed the bytes.
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let plain = CpuBackend::start(
        collector,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
        CpuBackendConfig {
            n_engines: 1,
            batch_size: BATCH,
            target_w: RESIZE.0,
            target_h: RESIZE.1,
            workers: 1,
            max_batches: Some(BATCHES_PER_EPOCH),
            sample_cache: None,
        },
    )
    .unwrap();
    let mut plain_map = HashMap::new();
    while let Ok(b) = plain.next_batch(0) {
        for (i, item) in b.unit.items().iter().enumerate() {
            plain_map.insert(item.label, b.unit.item_bytes(i).to_vec());
        }
        plain.recycle(b.unit);
    }
    for (label, pixels) in augmented {
        assert_ne!(
            Some(pixels),
            plain_map.get(label),
            "label {label}: augmented output equals the un-augmented resize"
        );
    }
}

#[test]
fn same_seed_is_bitwise_identical_across_worker_counts() {
    let _g = lock();
    let f = fixture(123);
    let reference = cpu_epoch_maps(&f, 1, 42, 1);
    for workers in [2usize, 4, 8] {
        let got = cpu_epoch_maps(&f, workers, 42, 1);
        assert_eq!(
            reference, got,
            "worker count {workers} changed augmentation draws"
        );
    }
}

#[test]
fn epochs_draw_differently_and_replay_bitwise() {
    let _g = lock();
    let f = fixture(7);
    let run1 = cpu_epoch_maps(&f, 1, 42, 2);
    let run2 = cpu_epoch_maps(&f, 1, 42, 2);
    // Bitwise replay of the whole 2-epoch run, including epoch 2 alone.
    assert_eq!(run1, run2, "same seed must replay the run bitwise");
    assert_eq!(run1[1], run2[1], "epoch 2 re-run must match epoch 2");
    // Different epochs fold a different ordinal into every draw stream.
    assert_ne!(
        run1[0], run1[1],
        "epoch 1 and epoch 2 must draw different augmentations"
    );
    // Different run seeds draw differently.
    let other = cpu_epoch_maps(&f, 1, 43, 2);
    assert_ne!(run1[0], other[0], "run seed must affect the draws");
}

#[test]
fn fpga_and_cpu_paths_agree_under_augmentation() {
    // The FPGA reader augments host-side on its completion path; the CPU
    // backend augments in its workers. Identity keys on the *source*, not
    // the executor, so both substrates must produce identical pixels.
    let _g = lock();
    let f = fixture(123);
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::training(
        1,
        BATCH,
        (RESIZE.0 as u16, RESIZE.1 as u16),
        N_IMAGES,
        Some(BATCHES_PER_EPOCH),
    );
    config.cache_bytes = 0;
    let booster = DlBooster::from_graph(
        collector,
        FpgaChannel::init(engine, 0),
        config,
        &augmented_graph(DecodeDevice::Fpga, 1),
        42,
    )
    .unwrap();
    let mut fpga_map = HashMap::new();
    while let Ok(b) = booster.next_batch(0) {
        for (i, item) in b.unit.items().iter().enumerate() {
            fpga_map.insert(item.label, b.unit.item_bytes(i).to_vec());
        }
        booster.recycle(b.unit);
    }
    drop(booster);
    let cpu_map = cpu_epoch_maps(&f, 2, 42, 1).remove(0);
    assert_eq!(fpga_map.len(), N_IMAGES);
    assert_eq!(
        fpga_map, cpu_map,
        "augmented pixels must not depend on the decode substrate"
    );
}

#[test]
fn chaos_failover_redecodes_replay_the_same_augmentations() {
    // Chaos wedges the augmented FPGA primary; the augmented CPU fallback
    // re-decodes the remainder. Because draws key on (seed, epoch, source
    // identity), a re-decoded sample draws exactly what the primary would
    // have drawn — the run's label→pixels map must equal a clean,
    // chaos-free run with the same seed.
    use dlbooster::chaos::Stage;
    use std::time::Duration;

    let _g = lock();
    let f = fixture(51);
    let clean = cpu_epoch_maps(&f, 2, 42, 1).remove(0);

    let telemetry = Telemetry::with_defaults();
    let records = f.dataset.records.clone();
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
        &telemetry,
    )
    .unwrap();
    let mut plan = FaultPlan::disabled();
    plan.seed = 23;
    plan.fpga = StageSpec::rate(0.5).with_delay(Duration::from_secs(60));
    let cancel = plan.cancel_token();
    engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(
        1,
        BATCH,
        (RESIZE.0 as u16, RESIZE.1 as u16),
        N_IMAGES,
        Some(BATCHES_PER_EPOCH),
    );
    config.cache_bytes = 0;
    let primary = Arc::new(
        DlBooster::from_graph_with_telemetry(
            collector,
            channel,
            config,
            &augmented_graph(DecodeDevice::Fpga, 1),
            42,
            Arc::clone(&telemetry),
        )
        .unwrap(),
    );
    let t2 = Arc::clone(&telemetry);
    let disk = Arc::clone(&f.disk);
    let backend = FailoverBackend::new(
        Arc::clone(&primary),
        Box::new(move |remaining| {
            let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
            CpuBackend::from_graph_with_telemetry(
                collector,
                Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
                CpuBackendConfig {
                    n_engines: 1,
                    batch_size: BATCH,
                    target_w: RESIZE.0,
                    target_h: RESIZE.1,
                    workers: 2,
                    max_batches: Some(remaining),
                    sample_cache: None,
                },
                &augmented_graph(DecodeDevice::Cpu, 2),
                42,
                Arc::clone(&t2),
            )
            .map(|b| Box::new(b) as Box<dyn PreprocessBackend>)
        }),
        dlbooster::backends::FailoverConfig {
            total_batches: BATCHES_PER_EPOCH,
            deadline: Duration::from_millis(200),
            chaos_cancel: Some(cancel),
        },
        &telemetry,
    );
    let mut wedged = HashMap::new();
    loop {
        match backend.next_batch(0) {
            Ok(b) => {
                for (i, item) in b.unit.items().iter().enumerate() {
                    wedged.insert(item.label, b.unit.item_bytes(i).to_vec());
                }
                backend.recycle(b.unit);
            }
            Err(dlbooster::core::BackendError::Exhausted) => break,
            Err(e) => panic!("run must complete cleanly, got {e}"),
        }
    }
    assert!(backend.failed_over(), "the wedged FPGA must fail over");
    backend.shutdown();
    drop(backend);
    drop(primary);
    assert_eq!(
        wedged, clean,
        "failover re-decode must replay identical augmentation draws"
    );
}

#[test]
fn normalize_stage_delivers_replayable_le_f32_tensors() {
    let _g = lock();
    let f = fixture(9);
    let run = || {
        let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
        let graph = dlbooster::graph::augmented_training(
            DecodeDevice::Cpu,
            RESIZE,
            CROP,
            FLIP,
            Some(([127.5; 3], [127.5; 3])),
            1,
        )
        .unwrap();
        let backend = CpuBackend::from_graph(
            collector,
            Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
            CpuBackendConfig {
                n_engines: 1,
                batch_size: BATCH,
                target_w: RESIZE.0,
                target_h: RESIZE.1,
                workers: 1,
                max_batches: Some(BATCHES_PER_EPOCH),
                sample_cache: None,
            },
            &graph,
            42,
        )
        .unwrap();
        let mut out = HashMap::new();
        while let Ok(b) = backend.next_batch(0) {
            for (i, item) in b.unit.items().iter().enumerate() {
                out.insert(item.label, b.unit.item_bytes(i).to_vec());
            }
            backend.recycle(b.unit);
        }
        out
    };
    let a = run();
    assert_eq!(a.len(), N_IMAGES);
    for bytes in a.values() {
        assert_eq!(
            bytes.len(),
            (CROP.0 * CROP.1 * 3 * 4) as usize,
            "tensor items are f32 per channel value"
        );
        for chunk in bytes.chunks_exact(4) {
            let v = f32::from_le_bytes(chunk.try_into().unwrap());
            assert!(
                (-1.01..=1.01).contains(&v),
                "normalised value {v} outside (px - 127.5) / 127.5 range"
            );
        }
    }
    assert_eq!(a, run(), "tensor output must replay bitwise");
}

#[test]
fn dlb_aug_seed_env_override_is_honoured_at_start() {
    let _g = lock();
    let f = fixture(77);
    // Explicit-seed baselines, no env var in play.
    std::env::remove_var("DLB_AUG_SEED");
    let with_999 = cpu_epoch_maps(&f, 1, 999, 1);
    let with_1 = cpu_epoch_maps(&f, 1, 1, 1);
    assert_ne!(with_999, with_1, "distinct seeds must draw differently");
    // The override replaces the configured seed at pipeline start.
    std::env::set_var("DLB_AUG_SEED", "999");
    let overridden = cpu_epoch_maps(&f, 1, 1, 1);
    std::env::remove_var("DLB_AUG_SEED");
    assert_eq!(
        overridden, with_999,
        "DLB_AUG_SEED must replace the configured run seed"
    );
    // Garbage values fall back to the configured seed.
    std::env::set_var("DLB_AUG_SEED", "not-a-number");
    let garbage = cpu_epoch_maps(&f, 1, 1, 1);
    std::env::remove_var("DLB_AUG_SEED");
    assert_eq!(garbage, with_1, "unparsable override must be ignored");
}

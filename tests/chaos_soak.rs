//! Chaos soak battery: every fault plane armed at once, across many
//! seeds, over both workflow shapes (dataset training and served
//! inference). The invariants under test:
//!
//! * **Clean termination** — no run hangs, no batch is left in flight.
//! * **Conservation** — batches in = batches out + batch errors, item
//!   accounting balances, and the telemetry invariant checker stays
//!   silent, faults or not.
//! * **Determinism** — replaying a seed reproduces the same injected
//!   faults and the same decode outcome (stages keyed by stable
//!   identities: disk offset, cmd id, frame ordinal). The pool plane is
//!   keyed by lease order and injects only latency, so it is armed but
//!   excluded from the replay comparison.
//!
//! The base seed honours `DLB_CHAOS_SEED`, so CI can sweep a second
//! seed set without a code change.

use dlbooster::chaos::Stage;
use dlbooster::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const FAULT_RATE: f64 = 0.05;
const BATCH: usize = 4;
const TRAIN_BATCHES: u64 = 8;
const INFER_REQUESTS: usize = 24;

/// The replay-stable portion of a run's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    delivered: u64,
    items_ok: u64,
    items_err: u64,
    injected_storage: u64,
    injected_fpga: u64,
    injected_net: u64,
}

/// Dataset-mode training pipeline with storage, FPGA and pool chaos.
fn training_run(seed: u64) -> Outcome {
    let telemetry = Telemetry::with_defaults();
    let mut plan = dlbooster::chaos::FaultPlan::uniform(seed, FAULT_RATE);
    // Keep latency faults short: the soak exercises breadth, the
    // dedicated failover tests exercise long stalls.
    plan.storage = plan.storage.with_delay(Duration::from_millis(1));
    plan.fpga = plan.fpga.with_delay(Duration::from_millis(1));
    plan.pool = plan.pool.with_delay(Duration::from_millis(1));

    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(
        DatasetSpec::ilsvrc_small(TRAIN_BATCHES as usize * BATCH, 13),
        &disk,
    )
    .unwrap();
    disk.attach_chaos(plan.injector(Stage::Storage, &telemetry).unwrap());
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        &telemetry,
    )
    .unwrap();
    engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(
        1,
        BATCH,
        (32, 32),
        TRAIN_BATCHES as usize * BATCH,
        Some(TRAIN_BATCHES),
    );
    config.cache_bytes = 0;
    let booster =
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap();
    booster
        .pool()
        .attach_chaos(plan.injector(Stage::Pool, &telemetry).unwrap());

    let mut delivered = 0u64;
    while let Ok(batch) = booster.next_batch(0) {
        assert_eq!(batch.len(), BATCH, "failed items still occupy slots");
        delivered += 1;
        booster.recycle(batch.unit);
    }
    drop(booster); // join daemons so counters are final

    let snap = telemetry.pipeline_snapshot();
    assert_eq!(delivered, TRAIN_BATCHES, "seed {seed}: lost batches");
    assert_eq!(snap.reader.inflight, 0, "seed {seed}: stuck batches");
    assert_eq!(
        snap.batches_in(),
        snap.batches_out() + snap.batch_errors(),
        "seed {seed}: batch conservation"
    );
    assert_eq!(
        snap.decoder.items_in,
        snap.decoder.items_ok + snap.decoder.items_err,
        "seed {seed}: item conservation"
    );
    assert!(
        snap.invariant_violations().is_empty(),
        "seed {seed}: {:?}",
        snap.invariant_violations()
    );
    let raw = telemetry.registry.snapshot();
    Outcome {
        delivered,
        items_ok: snap.decoder.items_ok,
        items_err: snap.decoder.items_err,
        injected_storage: raw.counter(Stage::Storage.counter_name()),
        injected_fpga: raw.counter(Stage::Fpga.counter_name()),
        injected_net: 0,
    }
}

/// Stream-mode served inference with NIC and FPGA chaos.
fn inference_run(seed: u64) -> Outcome {
    let telemetry = Telemetry::with_defaults();
    let mut plan = dlbooster::chaos::FaultPlan::uniform(seed, FAULT_RATE);
    plan.net = plan.net.with_delay(Duration::from_millis(1));
    plan.fpga = plan.fpga.with_delay(Duration::from_millis(1));

    let clients = ClientPool::small(1_000.0, seed);
    let requests = clients.generate_requests(INFER_REQUESTS);
    let nic = Arc::new(
        NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000)
            .with_chaos(plan.injector(Stage::Net, &telemetry).unwrap()),
    );
    let collector = Arc::new(DataCollector::load_from_net());
    let mut accepted = 0usize;
    for r in &requests {
        // Chaos may drop (ring overflow) or corrupt the frame; corrupt
        // frames can fail framing here or fail decode later. All paths
        // must keep the pipeline flowing.
        if let Ok(desc) = nic.deliver(&r.wire_bytes, 0) {
            collector.push_from_net(&desc);
            accepted += 1;
        }
    }
    collector.close_stream();

    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::nic_only(Arc::clone(&nic))),
        &telemetry,
    )
    .unwrap();
    engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::inference(1, BATCH, (56, 56));
    config.max_batches = Some((accepted / BATCH) as u64);
    let booster =
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap();

    let mut delivered = 0u64;
    while let Ok(batch) = booster.next_batch(0) {
        delivered += 1;
        booster.recycle(batch.unit);
    }
    drop(booster);

    let snap = telemetry.pipeline_snapshot();
    assert_eq!(
        delivered,
        (accepted / BATCH) as u64,
        "seed {seed}: lost batches"
    );
    assert_eq!(snap.reader.inflight, 0, "seed {seed}: stuck batches");
    assert_eq!(
        snap.batches_in(),
        snap.batches_out() + snap.batch_errors(),
        "seed {seed}: batch conservation"
    );
    assert!(
        snap.invariant_violations().is_empty(),
        "seed {seed}: {:?}",
        snap.invariant_violations()
    );
    let raw = telemetry.registry.snapshot();
    Outcome {
        delivered,
        items_ok: snap.decoder.items_ok,
        items_err: snap.decoder.items_err,
        injected_storage: 0,
        injected_fpga: raw.counter(Stage::Fpga.counter_name()),
        injected_net: raw.counter(Stage::Net.counter_name()),
    }
}

fn seeds() -> Vec<u64> {
    let base = dlbooster::chaos::FaultPlan::seed_from_env(0x5EED_CAFE);
    (0..8)
        .map(|i| dlbooster::chaos::splitmix64(base + i))
        .collect()
}

#[test]
fn training_survives_all_fault_planes_across_seeds() {
    let mut total_faults = 0;
    for seed in seeds() {
        let out = training_run(seed);
        total_faults += out.injected_storage + out.injected_fpga;
    }
    assert!(
        total_faults > 0,
        "8 seeds at 5% across two keyed stages must inject something"
    );
}

#[test]
fn served_inference_survives_all_fault_planes_across_seeds() {
    let mut total_faults = 0;
    for seed in seeds() {
        let out = inference_run(seed);
        total_faults += out.injected_net + out.injected_fpga;
    }
    assert!(total_faults > 0, "faults must actually fire across 8 seeds");
}

/// Sample-cache × chaos interaction: a decode the FPGA plane poisons
/// quarantines its source key, and a quarantined source is never resident
/// in the cache — so however many epochs replay, corrupt pixels can never
/// be served from memory. Runs the full fault battery over three epochs
/// with the decoded-sample cache armed, across the same 8-seed matrix.
#[test]
fn corrupted_samples_are_quarantined_and_never_admitted() {
    let mut total_quarantined = 0;
    for seed in seeds() {
        let telemetry = Telemetry::with_defaults();
        let mut plan = dlbooster::chaos::FaultPlan::uniform(seed, FAULT_RATE);
        plan.storage = plan.storage.with_delay(Duration::from_millis(1));
        plan.fpga = plan.fpga.with_delay(Duration::from_millis(1));
        plan.pool = plan.pool.with_delay(Duration::from_millis(1));

        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let dataset = Dataset::build(
            DatasetSpec::ilsvrc_small(TRAIN_BATCHES as usize * BATCH, 13),
            &disk,
        )
        .unwrap();
        disk.attach_chaos(plan.injector(Stage::Storage, &telemetry).unwrap());
        let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device
            .load_mirror(DecoderMirror::jpeg_paper_config())
            .unwrap();
        let engine = DecoderEngine::start_with_telemetry(
            device,
            Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
            &telemetry,
        )
        .unwrap();
        engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());
        let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
        let mut config = DlBoosterConfig::training(
            1,
            BATCH,
            (32, 32),
            TRAIN_BATCHES as usize * BATCH,
            Some(3 * TRAIN_BATCHES), // three epochs: quarantine must hold on replay
        );
        config.cache_bytes = 0;
        config.sample_cache_bytes = 256 << 20;
        let booster =
            DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
                .unwrap();
        booster
            .pool()
            .attach_chaos(plan.injector(Stage::Pool, &telemetry).unwrap());

        while let Ok(batch) = booster.next_batch(0) {
            assert_eq!(batch.len(), BATCH, "failed items still occupy slots");
            booster.recycle(batch.unit);
        }
        let cache = booster.sample_cache().expect("sample cache armed");
        drop(booster); // join daemons so counters are final

        // A source observed to fail decode must never be admitted — not in
        // the epoch that failed it, not in any later one.
        for r in &dataset.records {
            let key = SampleKey::Disk {
                offset: r.disk_offset,
                len: r.len,
            };
            assert!(
                !(cache.contains(&key) && cache.is_quarantined(&key)),
                "seed {seed}: quarantined source {key:?} is resident in the cache"
            );
        }
        let snap = telemetry.pipeline_snapshot();
        let (_, _, _, quarantined) = cache.churn_stats();
        assert_eq!(
            quarantined, snap.reader.item_errors,
            "seed {seed}: every failed decode must quarantine its key exactly once"
        );
        assert!(
            snap.invariant_violations().is_empty(),
            "seed {seed}: {:?}",
            snap.invariant_violations()
        );
        total_quarantined += quarantined;
    }
    assert!(
        total_quarantined > 0,
        "the fpga plane's poison flavour must corrupt at least one decode across 8 seeds"
    );
}

#[test]
fn seed_replay_is_deterministic() {
    for seed in seeds().into_iter().take(3) {
        assert_eq!(
            training_run(seed),
            training_run(seed),
            "training replay diverged for seed {seed}"
        );
        assert_eq!(
            inference_run(seed),
            inference_run(seed),
            "inference replay diverged for seed {seed}"
        );
    }
}

//! Overload-sweep integration test: the serving layer's
//! graceful-degradation contract (ISSUE 2 acceptance criteria).
//!
//! At 3× saturated capacity the shedding policy must keep admitted-request
//! p99 latency inside the SLO while goodput plateaus at ≥ 90% of the
//! saturated throughput — deterministically across seeds. With shedding
//! disabled the same sweep shows unbounded admission-queue growth and tail
//! latency far beyond the deadline. `PipelineSnapshot` conservation
//! invariants (`offered = admitted + rejected`,
//! `admitted = completed + shed + inflight`) are asserted on every run.

use dlbooster::gpu::ModelZoo;
use dlbooster::serving::{ServingConfig, ShedPolicy};
use dlbooster::simcore::SimTime;
use dlbooster::workflows::calibration::{BackendKind, Calibration};
use dlbooster::workflows::inference::{InferenceSim, ServingOutcome};

const BATCH: u32 = 32;
const SLO: SimTime = SimTime::from_millis(50);

fn sweep_cfg(policy: ShedPolicy) -> ServingConfig {
    ServingConfig::five_clients(BATCH, SLO, policy)
}

fn run_at(cal: &Calibration, cfg: ServingConfig, rate: f64, seed: u64) -> (f64, ServingOutcome) {
    let out = InferenceSim::served(
        cal,
        ModelZoo::GoogLeNet,
        BackendKind::DlBooster,
        BATCH,
        cfg,
        rate,
        seed,
    );
    let p99 = out.p99_latency.as_secs_f64();
    let serving = out.serving.expect("Served runs carry a serving outcome");
    (p99, serving)
}

fn assert_conserved(s: &ServingOutcome) {
    let v = s.snapshot.invariant_violations();
    assert!(v.is_empty(), "conservation violated: {v:?}");
    assert_eq!(
        s.offered,
        s.admitted + s.rejected,
        "admission door conservation"
    );
    assert_eq!(
        s.snapshot.serving.inflight, 0,
        "drained run leaves nothing in flight"
    );
    assert_eq!(
        s.admitted,
        s.completed + s.shed,
        "admitted = completed + shed once drained"
    );
}

#[test]
fn shedding_keeps_p99_in_slo_while_goodput_plateaus() {
    let cal = Calibration::paper();
    let cap = InferenceSim::saturated_throughput(
        &cal,
        ModelZoo::GoogLeNet,
        BackendKind::DlBooster,
        BATCH,
    );
    for policy in [ShedPolicy::DeadlineAware, ShedPolicy::DropOldest] {
        for seed in [7u64, 11] {
            let (p99, s) = run_at(&cal, sweep_cfg(policy), cap * 3.0, seed);
            assert_conserved(&s);
            assert!(
                s.rejected + s.shed > 0,
                "3x offered load must actually shed ({policy:?}, seed {seed})"
            );
            assert!(
                p99 <= SLO.as_secs_f64(),
                "admitted-request p99 {:.2} ms exceeds the {} SLO ({policy:?}, seed {seed})",
                p99 * 1e3,
                SLO
            );
            assert!(
                s.goodput >= 0.9 * cap,
                "goodput {:.0}/s below 90% of capacity {cap:.0}/s ({policy:?}, seed {seed})",
                s.goodput
            );
            // Equal-weight tenants under uniform overload must get equal
            // service: shedding is not allowed to starve a tenant (the WFQ
            // charges virtual time only for real service, never evictions).
            let per_tenant: Vec<u64> = s
                .snapshot
                .serving
                .tenants
                .iter()
                .map(|t| t.completed)
                .collect();
            assert_eq!(per_tenant.len(), 5, "five tenant classes reported");
            let min = *per_tenant.iter().min().unwrap();
            let max = *per_tenant.iter().max().unwrap();
            assert!(
                min as f64 >= 0.8 * max as f64,
                "tenant completions skewed under shedding: {per_tenant:?} ({policy:?}, seed {seed})"
            );
        }
    }
}

#[test]
fn overload_sweep_is_deterministic_per_seed() {
    let cal = Calibration::paper();
    let cap = InferenceSim::saturated_throughput(
        &cal,
        ModelZoo::GoogLeNet,
        BackendKind::DlBooster,
        BATCH,
    );
    let runs: Vec<(f64, ServingOutcome)> = (0..2)
        .map(|_| run_at(&cal, sweep_cfg(ShedPolicy::DeadlineAware), cap * 3.0, 7))
        .collect();
    let (p99_a, a) = &runs[0];
    let (p99_b, b) = &runs[1];
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.rejected, b.rejected);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.good, b.good);
    assert_eq!(p99_a, p99_b, "identical seed must replay identically");
}

#[test]
fn disabled_shedding_shows_unbounded_queue_growth() {
    let cal = Calibration::paper();
    let cap = InferenceSim::saturated_throughput(
        &cal,
        ModelZoo::GoogLeNet,
        BackendKind::DlBooster,
        BATCH,
    );
    let bounded_capacity = sweep_cfg(ShedPolicy::DeadlineAware).queue_capacity as i64;
    let (p99, s) = run_at(
        &cal,
        sweep_cfg(ShedPolicy::DeadlineAware).without_shedding(),
        cap * 3.0,
        7,
    );
    assert_conserved(&s);
    assert_eq!(s.rejected, 0, "no admission control: nothing rejected");
    assert_eq!(s.shed, 0, "no shedding: nothing evicted");
    assert_eq!(s.offered, s.completed, "everything eventually completes");
    // The backlog blows far past the bound the shedding config enforces —
    // at 3x offered load roughly 2/3 of all arrivals are queued at once by
    // the end of the arrival window.
    assert!(
        s.snapshot.serving.queue_depth_high_water > 4 * bounded_capacity,
        "high-water {} should dwarf the bounded capacity {bounded_capacity}",
        s.snapshot.serving.queue_depth_high_water
    );
    assert!(
        p99 > 2.0 * SLO.as_secs_f64(),
        "unshed tail latency {:.1} ms should blow through the {} SLO",
        p99 * 1e3,
        SLO
    );
}

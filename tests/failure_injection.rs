//! Failure injection across the pipeline: corrupt payloads, missing
//! sources, undersized destinations and mid-run shutdowns must degrade
//! gracefully — errors surface in FINISH signals and counters, never as
//! hangs or panics.

use dlbooster::fpga::{MapResolver, Submission};
use dlbooster::prelude::*;
use std::sync::Arc;

fn engine_with(resolver: Arc<MapResolver>) -> DecoderEngine {
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    DecoderEngine::start(device, resolver).unwrap()
}

fn good_jpeg(seed: u64) -> Vec<u8> {
    let img =
        dlbooster::codec::synth::generate(40, 30, dlbooster::codec::synth::SynthStyle::Photo, seed);
    JpegEncoder::new(85).unwrap().encode(&img).unwrap()
}

#[test]
fn corrupt_payloads_fail_item_not_batch() {
    let resolver = Arc::new(MapResolver::new());
    let engine = engine_with(Arc::clone(&resolver));
    let pool = MemManager::new(PoolConfig {
        unit_size: 1 << 20,
        unit_count: 2,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();

    // Mix: valid, truncated, bit-flipped, empty-garbage.
    let mut clean = good_jpeg(1);
    let valid = resolver.put_disk(0, clean.clone());
    clean.truncate(clean.len() / 3);
    let truncated = resolver.put_disk(1 << 20, clean);
    let mut flipped = good_jpeg(2);
    for b in flipped.iter_mut().skip(100).step_by(7) {
        *b ^= 0xA5;
    }
    let corrupted = resolver.put_disk(2 << 20, flipped);
    let garbage = resolver.put_disk(3 << 20, vec![0x55; 4096]);

    let mut unit = pool.get_item().unwrap();
    let mut cmds = Vec::new();
    for (i, src) in [valid, truncated, corrupted, garbage]
        .into_iter()
        .enumerate()
    {
        let off = unit.reserve(24 * 24 * 3, i as u64, 24, 24, 3).unwrap();
        cmds.push(
            DecodeCmd {
                cmd_id: i as u64,
                src,
                dst_phys: unit.phys_addr() + off as u64,
                dst_capacity: 24 * 24 * 3,
                target_w: 24,
                target_h: 24,
                format: OutputFormat::Rgb8,
            }
            .pack(),
        );
    }
    engine.submit(Submission { unit, cmds }).unwrap();
    let done = engine.completions().pop().unwrap();
    assert_eq!(done.finishes.len(), 4);
    assert!(done.finishes[0].status.is_ok(), "valid image must decode");
    assert!(
        !done.finishes[1].status.is_ok(),
        "truncated stream must fail"
    );
    // The bit-flipped stream may decode to garbage pixels or fail — both
    // are acceptable; the batch as a whole must complete.
    assert!(!done.finishes[3].status.is_ok(), "pure garbage must fail");
    assert!(done.ok_count() >= 1 && done.ok_count() <= 2);
    pool.recycle_item(done.unit).unwrap();
}

#[test]
fn corrupt_restart_segment_fails_cleanly_and_counts() {
    // An image encoded with restart intervals whose first restart marker is
    // rewritten out of order: exactly the corruption the segment-parallel
    // decode path splits on. The item must fail cleanly — no panic, no
    // worker left blocked in the pool — on both decode paths, and count in
    // the corrupt-payload telemetry when run through the engine.
    let img =
        dlbooster::codec::synth::generate(48, 48, dlbooster::codec::synth::SynthStyle::Photo, 21);
    let mut bytes = JpegEncoder::new(85)
        .unwrap()
        .with_restart_interval(1)
        .encode(&img)
        .unwrap();
    let rst = bytes
        .windows(2)
        .position(|w| w[0] == 0xFF && (0xD0..=0xD7).contains(&w[1]))
        .expect("interval-1 stream must contain restart markers");
    bytes[rst + 1] = 0xD5; // RST5 where RST0 is expected

    let dec = JpegDecoder::new();
    assert!(dec.decode(&bytes).is_err(), "sequential path must reject");
    assert!(
        dec.decode_parallel(&bytes).is_err(),
        "parallel path must reject"
    );

    // Through the decoder engine with a shared registry: the bad segment
    // fails its item, the good neighbour still decodes, and the failure
    // lands in the corrupt-payload counters.
    let telemetry = Telemetry::with_defaults();
    let resolver = Arc::new(MapResolver::new());
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine =
        DecoderEngine::start_with_telemetry(device, Arc::clone(&resolver) as _, &telemetry)
            .unwrap();
    let pool = MemManager::new(PoolConfig {
        unit_size: 1 << 20,
        unit_count: 2,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();
    let corrupt = resolver.put_disk(0, bytes);
    let valid = resolver.put_disk(1 << 20, good_jpeg(3));
    let mut unit = pool.get_item().unwrap();
    let mut cmds = Vec::new();
    for (i, src) in [corrupt, valid].into_iter().enumerate() {
        let off = unit.reserve(24 * 24 * 3, i as u64, 24, 24, 3).unwrap();
        cmds.push(
            DecodeCmd {
                cmd_id: i as u64,
                src,
                dst_phys: unit.phys_addr() + off as u64,
                dst_capacity: 24 * 24 * 3,
                target_w: 24,
                target_h: 24,
                format: OutputFormat::Rgb8,
            }
            .pack(),
        );
    }
    engine.submit(Submission { unit, cmds }).unwrap();
    let done = engine.completions().pop().unwrap();
    assert_eq!(done.finishes.len(), 2);
    assert!(
        !done.finishes[0].status.is_ok(),
        "corrupt restart segment must fail its item"
    );
    assert!(
        done.finishes[1].status.is_ok(),
        "neighbouring item must be unaffected"
    );
    pool.recycle_item(done.unit).unwrap();
    drop(engine); // quiesce so counters are final

    let snap = telemetry.pipeline_snapshot();
    assert_eq!(snap.decoder.items_err, 1);
    assert_eq!(snap.decoder.items_ok, 1);
    assert_eq!(
        snap.decoder.items_in,
        snap.decoder.items_ok + snap.decoder.items_err
    );
}

#[test]
fn reader_counts_item_errors_and_keeps_flowing() {
    // A dataset where half the disk objects are corrupted after manifest
    // creation: the reader keeps producing batches; errors land in stats.
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, 9), &disk).unwrap();
    // Re-register even records as garbage under *new* offsets, then patch
    // the manifest to point there.
    let mut records = dataset.records.clone();
    for r in records.iter_mut().step_by(2) {
        let (off, len) = disk.append(vec![0xEE; r.len as usize]).unwrap();
        r.disk_offset = off;
        r.len = len;
    }
    let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::training(1, 4, (32, 32), 8, Some(2));
    config.cache_bytes = 0;
    let booster = DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap();
    let mut delivered = 0;
    while let Ok(batch) = booster.next_batch(0) {
        assert_eq!(batch.len(), 4, "failed items still occupy their slots");
        delivered += 1;
        booster.recycle(batch.unit);
    }
    assert_eq!(delivered, 2, "errors must not stall delivery");
}

#[test]
fn corrupt_payloads_surface_in_telemetry_counters() {
    // Same corruption scheme as above, but through the full booster with a
    // shared registry: failed items must land in the decoder and reader
    // error counters without breaking conservation.
    let telemetry = Telemetry::with_defaults();
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, 9), &disk).unwrap();
    let mut records = dataset.records.clone();
    for r in records.iter_mut().step_by(2) {
        let (off, len) = disk.append(vec![0xEE; r.len as usize]).unwrap();
        r.disk_offset = off;
        r.len = len;
    }
    let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(1, 4, (32, 32), 8, Some(2));
    config.cache_bytes = 0;
    let booster =
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap();
    let mut delivered = 0;
    while let Ok(batch) = booster.next_batch(0) {
        delivered += 1;
        booster.recycle(batch.unit);
    }
    assert_eq!(delivered, 2);
    drop(booster); // quiesce

    let snap = telemetry.pipeline_snapshot();
    assert!(
        snap.decoder.items_err >= 4,
        "half the items are garbage: items_err = {}",
        snap.decoder.items_err
    );
    assert_eq!(snap.reader.item_errors, snap.decoder.items_err);
    assert_eq!(
        snap.decoder.items_in,
        snap.decoder.items_ok + snap.decoder.items_err
    );
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
}

#[test]
fn stalled_queue_trips_the_watchdog() {
    // A queue that receives work but is never consumed must be flagged
    // once its heartbeat goes quiet past the (tiny) threshold.
    let telemetry = Telemetry::new(std::time::Duration::from_millis(5));
    let q: BlockingQueue<u32> = BlockingQueue::bounded(4);
    q.instrument(&telemetry, "stuck_stage");
    q.push(7).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(40));
    let snap = telemetry.pipeline_snapshot();
    assert!(
        snap.stalls.iter().any(|s| s.stage == "stuck_stage"),
        "expected a stall report, got {:?}",
        snap.stalls
    );
    assert!(snap.to_text().contains("STALL"));
    // Draining the queue and beating again clears the verdict.
    assert_eq!(q.pop().unwrap(), 7);
    assert!(
        telemetry
            .watchdog
            .stalled()
            .iter()
            .all(|s| s.stage != "stuck_stage"),
        "drained queue must not be reported stalled"
    );
}

#[test]
fn mid_run_shutdown_terminates_cleanly() {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(16, 31), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 1));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    // Unbounded run, killed from outside after two batches.
    let telemetry = Telemetry::with_defaults();
    let mut config = DlBoosterConfig::training(1, 4, (32, 32), 16, None);
    config.cache_bytes = 0;
    let booster = Arc::new(
        DlBooster::start_with_telemetry(
            collector,
            FpgaChannel::init(engine, 0),
            config,
            Arc::clone(&telemetry),
        )
        .unwrap(),
    );
    for _ in 0..2 {
        let batch = booster.next_batch(0).unwrap();
        booster.recycle(batch.unit);
    }
    booster.shutdown();
    // Further consumption drains whatever was queued, then errors — no hang.
    loop {
        match booster.next_batch(0) {
            Ok(batch) => booster.recycle(batch.unit),
            Err(e) => {
                assert_eq!(e, dlbooster::core::BackendError::Exhausted);
                break;
            }
        }
    }
    drop(booster); // join reader/router so exit-time accounting lands
                   // Batches in flight at kill time are charged to batch_errors, so
                   // conservation still balances after a forced shutdown.
    let snap = telemetry.pipeline_snapshot();
    assert!(snap.batches_in() >= 2);
    assert_eq!(snap.batches_in(), snap.batches_out() + snap.batch_errors());
    assert_eq!(snap.reader.inflight, 0);
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
}

#[test]
fn nic_rejects_malformed_frames_without_poisoning_stream() {
    let nic = NicRx::new(NicSpec::forty_gbps(), 0x9_0000_0000);
    // Garbage, then a real frame: the real one must still flow.
    assert!(nic.deliver(&[0xFF; 64], 0).is_err());
    let frame = dlbooster::net::Frame {
        request_id: 5,
        client_id: 2,
        send_ts_nanos: 0,
        payload: good_jpeg(11),
    };
    let desc = nic.deliver(&frame.encode(), 10).unwrap();
    assert_eq!(desc.request_id, 5);
    let (ok, bad, _) = nic.counters();
    assert_eq!((ok, bad), (1, 1));
}

#[test]
fn killed_fpga_fails_over_to_cpu_and_completes_the_run() {
    // Kill the FPGA mid-run: chaos wedges every other lane job for 60 s,
    // far past the failover deadline. The run must still deliver exactly
    // the configured number of batches — the first few from the FPGA
    // primary, the rest from the CPU fallback — with per-batch accounting
    // intact and exactly one failover recorded.
    use dlbooster::chaos::Stage;
    use std::time::Duration;

    let total: u64 = 10;
    let batch = 4usize;
    let telemetry = Telemetry::with_defaults();
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset =
        Dataset::build(DatasetSpec::ilsvrc_small(total as usize * batch, 51), &disk).unwrap();
    let records = dataset.records.clone();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        &telemetry,
    )
    .unwrap();

    let mut plan = FaultPlan::disabled();
    plan.seed = 23;
    plan.fpga = StageSpec::rate(0.5).with_delay(Duration::from_secs(60));
    let cancel = plan.cancel_token();
    engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());

    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config =
        DlBoosterConfig::training(1, batch, (32, 32), total as usize * batch, Some(total));
    config.cache_bytes = 0;
    let primary = Arc::new(
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap(),
    );

    let t2 = Arc::clone(&telemetry);
    let backend = FailoverBackend::new(
        Arc::clone(&primary),
        Box::new(move |remaining| {
            let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
            CpuBackend::start_with_telemetry(
                collector,
                Arc::new(CombinedResolver::disk_only(disk)),
                CpuBackendConfig {
                    n_engines: 1,
                    batch_size: batch,
                    target_w: 32,
                    target_h: 32,
                    workers: 2,
                    max_batches: Some(remaining),
                    sample_cache: None,
                },
                t2,
            )
            .map(|b| Box::new(b) as Box<dyn PreprocessBackend>)
        }),
        dlbooster::backends::FailoverConfig {
            total_batches: total,
            deadline: Duration::from_millis(200),
            chaos_cancel: Some(cancel),
        },
        &telemetry,
    );

    let mut from_primary = 0u64;
    let mut from_fallback = 0u64;
    let mut primary_seqs = std::collections::HashSet::new();
    loop {
        match backend.next_batch(0) {
            Ok(b) => {
                assert_eq!(b.len(), batch, "every batch arrives full");
                if primary.pool().owns(&b.unit) {
                    from_primary += 1;
                    assert!(
                        primary_seqs.insert(b.sequence),
                        "duplicated primary batch {}",
                        b.sequence
                    );
                } else {
                    from_fallback += 1;
                }
                backend.recycle(b.unit);
            }
            Err(dlbooster::core::BackendError::Exhausted) => break,
            Err(e) => panic!("run must complete cleanly, got {e}"),
        }
    }
    assert!(
        backend.failed_over(),
        "the wedged FPGA must trigger failover"
    );
    assert_eq!(
        from_primary + from_fallback,
        total,
        "no lost or duplicated batches (primary {from_primary} + fallback {from_fallback})"
    );
    assert_eq!(from_primary, primary.delivered());
    assert!(from_fallback > 0, "CPU fallback must carry the remainder");
    backend.shutdown();
    drop(backend);
    drop(primary); // join the pipeline threads so counters are final

    let snap = telemetry.pipeline_snapshot();
    assert_eq!(snap.chaos.failovers, 1, "exactly one failover recorded");
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
}

#[test]
fn failover_shares_the_sample_cache_with_the_cpu_fallback() {
    // Same kill-the-FPGA scenario, but with one decoded-sample cache
    // shared across the failover pair: whatever the FPGA primary decoded
    // before dying stays warm, so the CPU fallback re-serves those
    // samples from memory instead of re-decoding them — and whole
    // cache-hit batches bypass decode entirely on later epochs. The
    // delivery accounting must stay exact with bypass batches in the mix.
    use dlbooster::chaos::Stage;
    use std::time::Duration;

    let total: u64 = 12;
    let batch = 4usize;
    let per_epoch = 4usize; // 16 images / batch 4 → three epochs in 12 batches
    let telemetry = Telemetry::with_defaults();
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(per_epoch * batch, 51), &disk).unwrap();
    let records = dataset.records.clone();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        &telemetry,
    )
    .unwrap();

    let mut plan = FaultPlan::disabled();
    plan.seed = 23;
    plan.fpga = StageSpec::rate(0.5).with_delay(Duration::from_secs(60));
    let cancel = plan.cancel_token();
    engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());

    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(1, batch, (32, 32), per_epoch * batch, Some(total));
    config.cache_bytes = 0;
    let primary = Arc::new(
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap(),
    );
    let cache = SampleCache::with_telemetry(64 << 20, &telemetry);
    primary.attach_sample_cache(Arc::clone(&cache));

    let t2 = Arc::clone(&telemetry);
    let shared = Arc::clone(&cache);
    let backend = FailoverBackend::new(
        Arc::clone(&primary),
        Box::new(move |remaining| {
            let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
            CpuBackend::start_with_telemetry(
                collector,
                Arc::new(CombinedResolver::disk_only(disk)),
                CpuBackendConfig {
                    n_engines: 1,
                    batch_size: batch,
                    target_w: 32,
                    target_h: 32,
                    workers: 2,
                    max_batches: Some(remaining),
                    sample_cache: Some(Arc::clone(&shared)),
                },
                t2,
            )
            .map(|b| Box::new(b) as Box<dyn PreprocessBackend>)
        }),
        dlbooster::backends::FailoverConfig {
            total_batches: total,
            deadline: Duration::from_millis(200),
            chaos_cancel: Some(cancel),
        },
        &telemetry,
    );

    let mut from_primary = 0u64;
    let mut from_fallback = 0u64;
    loop {
        match backend.next_batch(0) {
            Ok(b) => {
                assert_eq!(b.len(), batch, "every batch arrives full");
                if primary.pool().owns(&b.unit) {
                    from_primary += 1;
                } else {
                    from_fallback += 1;
                }
                backend.recycle(b.unit);
            }
            Err(dlbooster::core::BackendError::Exhausted) => break,
            Err(e) => panic!("run must complete cleanly, got {e}"),
        }
    }
    assert!(
        backend.failed_over(),
        "the wedged FPGA must trigger failover"
    );
    assert_eq!(from_primary + from_fallback, total, "no lost batches");
    assert!(from_fallback > 0, "CPU fallback must carry the remainder");
    backend.shutdown();
    drop(backend);
    drop(primary); // join both pipelines so counters are final

    // The shared cache did real work across the failover boundary: 12
    // delivered batches cover three passes over 16 records, so whichever
    // side served a record's second sighting must have hit.
    let (_, hits, _) = cache.lookup_stats();
    assert!(hits > 0, "repeat sightings must hit the shared cache");
    assert!(
        cache.bypass_batches() >= 1,
        "a fully-resident batch must bypass decode"
    );
    // Batches wedged in flight at kill time surface as failed finishes,
    // and the reader conservatively quarantines their keys. Quarantine
    // must still exclude residency for every source.
    for r in &dataset.records {
        let key = SampleKey::Disk {
            offset: r.disk_offset,
            len: r.len,
        };
        assert!(
            !(cache.contains(&key) && cache.is_quarantined(&key)),
            "quarantined source {key:?} is resident in the shared cache"
        );
    }

    let snap = telemetry.pipeline_snapshot();
    assert_eq!(snap.chaos.failovers, 1, "exactly one failover recorded");
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
}

#[test]
fn pool_exhaustion_applies_backpressure_not_failure() {
    // One unit, slow consumer: the reader must block (not error, not drop)
    // and resume when the unit is recycled.
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, 3), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::training(1, 4, (32, 32), 8, Some(4));
    config.cache_bytes = 0;
    config.pool_units = 2; // tight pool → real backpressure
    let booster = DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap();
    let mut seen = 0;
    while let Ok(batch) = booster.next_batch(0) {
        std::thread::sleep(std::time::Duration::from_millis(5)); // slow consumer
        seen += 1;
        booster.recycle(batch.unit);
    }
    assert_eq!(seen, 4, "backpressure must not lose batches");
}

//! Smoke tests of the figure-regenerating DES experiments: the qualitative
//! claims of the evaluation section must hold on the paper calibration.
//! (Full sweeps run in the bench harness; these are the fast subset.)

use dlbooster::gpu::ModelZoo;
use dlbooster::workflows::calibration::{BackendKind, Calibration};
use dlbooster::workflows::figures;
use dlbooster::workflows::inference::InferenceSim;
use dlbooster::workflows::training::{TrainBackend, TrainingParams, TrainingSim};

fn cal() -> Calibration {
    Calibration::paper()
}

#[test]
fn headline_claim_throughput_gain_1_35x_to_2_4x() {
    // Abstract: "1.35×∼2.4× image processing throughput in several DL
    // workloads" vs the baselines. Check the inference pairs at the paper's
    // largest batch sizes.
    let c = cal();
    let mut gains = Vec::new();
    for model in [ModelZoo::GoogLeNet, ModelZoo::ResNet50] {
        let bs = model.paper_batch_size();
        let dlb = InferenceSim::saturated_throughput(&c, model, BackendKind::DlBooster, bs);
        for baseline in [BackendKind::CpuBased, BackendKind::NvJpeg] {
            let base = InferenceSim::saturated_throughput(&c, model, baseline, bs);
            gains.push(dlb / base);
        }
    }
    let max_gain = gains.iter().cloned().fold(0.0, f64::max);
    let min_gain = gains.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        min_gain > 1.05,
        "DLBooster must beat every baseline; min gain {min_gain:.2}"
    );
    assert!(
        max_gain > 1.5 && max_gain < 4.0,
        "headline band ~2.4x; max gain {max_gain:.2}"
    );
}

#[test]
fn headline_claim_one_tenth_cpu_cores() {
    // Abstract: "consumes only 1/10 CPU cores" (vs the CPU-based backend).
    let c = cal();
    let cpu = TrainingSim::run(
        c.clone(),
        TrainingParams::paper(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::CpuBased),
            2,
        ),
    );
    let dlb = TrainingSim::run(
        c,
        TrainingParams::paper(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::DlBooster),
            2,
        ),
    );
    // Total cores include framework overhead common to both backends; the
    // "1/10" headline is about the preprocessing burn itself.
    let total_ratio = dlb.cpu_cores / cpu.cpu_cores;
    assert!(
        total_ratio < 0.35,
        "DLBooster {:.1} vs CPU-based {:.1} total cores (ratio {total_ratio:.2})",
        dlb.cpu_cores,
        cpu.cpu_cores
    );
    let (cpu_pre, ..) = cpu.cpu_breakdown;
    let (dlb_pre, ..) = dlb.cpu_breakdown;
    let pre_ratio = dlb_pre / cpu_pre;
    assert!(
        pre_ratio < 0.15,
        "preprocessing cores: DLBooster {dlb_pre:.2} vs CPU-based {cpu_pre:.2} (ratio {pre_ratio:.2})"
    );
}

#[test]
fn headline_claim_latency_cut_by_one_third() {
    let c = cal();
    let dlb = InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, 1, 0.6);
    let cpu = InferenceSim::loaded_latency(&c, ModelZoo::GoogLeNet, BackendKind::CpuBased, 1, 0.6);
    let cut = 1.0 - dlb.p50_latency.as_secs_f64() / cpu.p50_latency.as_secs_f64();
    assert!(cut > 0.28, "latency reduction {cut:.2} (paper: ~1/3)");
}

#[test]
fn fig5_dlbooster_wins_on_ilsvrc_models() {
    let c = cal();
    for model in [ModelZoo::AlexNet, ModelZoo::ResNet18] {
        let dlb = TrainingSim::run(
            c.clone(),
            TrainingParams::paper(model, TrainBackend::Kind(BackendKind::DlBooster), 2),
        )
        .throughput;
        for kind in [BackendKind::CpuBased, BackendKind::Lmdb] {
            let base = TrainingSim::run(
                c.clone(),
                TrainingParams::paper(model, TrainBackend::Kind(kind), 2),
            )
            .throughput;
            assert!(
                dlb >= base * 0.99,
                "{}: DLBooster {dlb:.0} must match or beat {} {base:.0}",
                model.name(),
                kind.label()
            );
        }
    }
}

#[test]
fn fig7_nvjpeg_degradation_grows_with_batch() {
    // §5.3: nvJPEG suffers "~40% performance degradation as the batch size
    // increases" relative to what the GPU could do.
    let c = cal();
    let rel = |bs| {
        let nv =
            InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::NvJpeg, bs);
        let dlb =
            InferenceSim::saturated_throughput(&c, ModelZoo::GoogLeNet, BackendKind::DlBooster, bs);
        nv / dlb
    };
    let small = rel(2);
    let large = rel(32);
    assert!(
        large < small,
        "nvJPEG relative performance must fall with batch size: {small:.2} → {large:.2}"
    );
    assert!(large < 0.75, "large-batch degradation {large:.2}");
}

#[test]
fn all_figures_render_without_panicking() {
    // A full sweep of every figure (the same call the `figures` binary and
    // EXPERIMENTS.md use) must complete and produce non-empty tables.
    let reports = figures::all_figures(&cal());
    assert_eq!(
        reports.len(),
        9,
        "7 paper figures + the overload sweep + the cluster degradation sweep"
    );
    for rep in &reports {
        assert!(!rep.rows.is_empty(), "{} has no rows", rep.id);
        let rendered = rep.render();
        assert!(rendered.contains(&rep.id));
    }
}

//! Functional failover on the real machinery: three live [`DlBooster`]
//! nodes behind a [`BoosterCluster`], one chaos-killed mid-consumption.
//! Where `ClusterSim` proves the story at scale in virtual time, this
//! test proves the quiesce/residue/replacement contract holds batch for
//! batch on actual pipelines:
//!
//! * the killed node's `delivered()` is final after quiesce, and the
//!   residue its slot queues still hold drains cleanly;
//! * a replacement built over the *undelivered tail* of the dead shard
//!   re-produces exactly the shortfall — no batch lost, none duplicated;
//! * the ring drops the dead node and only the dead node's keys (plus
//!   those the newcomer claims) change owner.

use dlbooster::cluster::BoosterCluster;
use dlbooster::prelude::*;
use dlbooster::storage::Record;
use std::sync::Arc;

const BATCH: usize = 4;
const BUDGET: u64 = 10; // batches per node

/// One live node over its own disk shard: `records` feeds the
/// collector, `max_batches` caps the router at the node's budget.
fn start_node(disk: &Arc<NvmeDisk>, records: &[Record], max_batches: u64) -> DlBooster {
    let collector = Arc::new(DataCollector::load_from_disk(records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(disk))),
    )
    .unwrap();
    let channel = FpgaChannel::init(engine, 0);
    let mut config =
        DlBoosterConfig::training(1, BATCH, (32, 32), records.len(), Some(max_batches));
    config.cache_bytes = 0;
    DlBooster::start(collector, channel, config).unwrap()
}

fn build_shard(seed: u64) -> (Arc<NvmeDisk>, Dataset) {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(
        DatasetSpec::ilsvrc_small(BUDGET as usize * BATCH, seed),
        &disk,
    )
    .unwrap();
    (disk, dataset)
}

#[test]
fn killed_node_fails_over_with_exact_batch_accounting() {
    let shards: Vec<_> = (0..3u64).map(|i| build_shard(21 + i)).collect();
    let nodes = shards
        .iter()
        .map(|(disk, dataset)| (start_node(disk, &dataset.records, BUDGET), BUDGET))
        .collect();
    let mut cluster = BoosterCluster::new(0xFA11_0FE4, 32, nodes);
    assert_eq!(cluster.alive(), 3);

    // Snapshot routing before the kill so we can verify placement only
    // moves where membership change forces it to.
    let keys: Vec<SampleKey> = shards[0]
        .1
        .records
        .iter()
        .map(|r| SampleKey::Disk {
            offset: r.disk_offset,
            len: r.len,
        })
        .collect();
    let before: Vec<Option<u32>> = keys.iter().map(|k| cluster.route_sample(k)).collect();

    // Consume a couple of batches from the victim, then chaos-kill it.
    // The router has at most pool_units batches of headroom beyond what
    // we popped, so delivered < BUDGET and the shortfall is real.
    assert!(cluster.consume_one(1).unwrap());
    assert!(cluster.consume_one(1).unwrap());
    let (victim_disk, victim_dataset) = (&shards[1].0, &shards[1].1);
    let outcome = cluster
        .kill(1, |delivered| {
            let tail = &victim_dataset.records[delivered as usize * BATCH..];
            let shortfall = BUDGET - delivered;
            assert_eq!(tail.len(), shortfall as usize * BATCH);
            Some((start_node(victim_disk, tail, shortfall), shortfall))
        })
        .unwrap();

    assert!(
        outcome.delivered >= 2 && outcome.delivered < BUDGET,
        "delivered {} escaped [2, {BUDGET})",
        outcome.delivered
    );
    assert_eq!(outcome.shortfall, BUDGET - outcome.delivered);
    assert_eq!(
        outcome.residue,
        outcome.delivered - 2,
        "everything delivered but not popped must drain as residue"
    );
    assert_eq!(outcome.replacement, Some(3));
    assert_eq!(cluster.alive(), 3, "replacement keeps membership at 3");
    assert_eq!(
        cluster.consumed(1),
        outcome.delivered,
        "killed node's consumption ends at its delivered count"
    );

    // Placement: node 1 owns nothing; untouched keys keep their owner or
    // move only to the newcomer.
    for (k, &owner_before) in keys.iter().zip(&before) {
        let owner_after = cluster.route_sample(k);
        assert_ne!(owner_after, Some(1), "dead node still owns {k:?}");
        if owner_before != Some(1) {
            assert!(
                owner_after == owner_before || owner_after == Some(3),
                "{k:?} moved {owner_before:?} -> {owner_after:?}, not forced by membership"
            );
        }
    }

    // Drain the survivors and the replacement: every budgeted batch is
    // consumed exactly once across the whole episode.
    cluster.drain_live().unwrap();
    assert_eq!(cluster.consumed(0), BUDGET);
    assert_eq!(cluster.consumed(2), BUDGET);
    assert_eq!(cluster.consumed(3), outcome.shortfall);
    assert_eq!(cluster.total_consumed(), 3 * BUDGET, "no loss, no dup");
    cluster.shutdown();
}

#[test]
fn kill_with_no_shortfall_needs_no_replacement() {
    let (disk, dataset) = build_shard(7);
    let budget = 2u64;
    let nodes = vec![
        (
            start_node(&disk, &dataset.records[..2 * BATCH], budget),
            budget,
        ),
        (
            start_node(&disk, &dataset.records[2 * BATCH..4 * BATCH], budget),
            budget,
        ),
    ];
    let mut cluster = BoosterCluster::new(0xFA11_0FE4, 32, nodes);

    // Consume the victim's full budget, then kill: nothing to re-produce.
    assert!(cluster.consume_one(0).unwrap());
    assert!(cluster.consume_one(0).unwrap());
    assert!(!cluster.consume_one(0).unwrap(), "budget exhausted");
    let outcome = cluster
        .kill(0, |delivered| {
            assert_eq!(delivered, budget);
            None
        })
        .unwrap();
    assert_eq!(outcome.delivered, budget);
    assert_eq!(outcome.shortfall, 0);
    assert_eq!(outcome.residue, 0);
    assert_eq!(outcome.replacement, None);
    assert_eq!(cluster.alive(), 1);
    assert!(
        cluster.kill(0, |_| None).is_err(),
        "double-kill must be rejected"
    );

    cluster.drain_live().unwrap();
    assert_eq!(cluster.total_consumed(), 2 * budget);
    cluster.shutdown();
}

//! End-to-end functional training: dataset → FPGA decode → pool →
//! dispatcher → NVCaffe-like solvers, with pixel-integrity checks against a
//! host-side reference decode.

use dlbooster::prelude::*;
use std::sync::Arc;

fn build_pipeline(
    n_images: usize,
    n_engines: usize,
    batch: usize,
    max_batches: u64,
) -> (Arc<NvmeDisk>, Dataset, DlBooster) {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(n_images, 77), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    let mut config =
        DlBoosterConfig::training(n_engines, batch, (48, 48), n_images, Some(max_batches));
    config.cache_bytes = 0; // force live decode for integrity checks
    let booster = DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap();
    (disk, dataset, booster)
}

#[test]
fn decoded_batches_match_reference_pixels() {
    let (disk, dataset, booster) = build_pipeline(8, 1, 4, 2);
    let decoder = JpegDecoder::new();
    let mut seen = 0;
    while let Ok(batch) = booster.next_batch(0) {
        for (i, item) in batch.unit.items().iter().enumerate() {
            // The collector is unshuffled, so items arrive in record order.
            let record = &dataset.records[(batch.sequence as usize * 4 + i) % 8];
            assert_eq!(item.label, record.label);
            let bytes = disk.read(record.disk_offset, record.len).unwrap();
            let reference = dlbooster::codec::resize::resize(
                &decoder.decode(&bytes).unwrap(),
                48,
                48,
                dlbooster::codec::resize::ResizeFilter::Bilinear,
            )
            .unwrap()
            .to_rgb();
            assert_eq!(
                batch.unit.item_bytes(i),
                reference.data(),
                "batch {} item {i} pixel mismatch",
                batch.sequence
            );
        }
        seen += 1;
        booster.recycle(batch.unit);
    }
    assert_eq!(seen, 2);
}

#[test]
fn graph_compiled_pipeline_matches_reference_pixels() {
    // The same reference-decode integrity check, but with the booster
    // assembled from a pipeline graph instead of the legacy constructor:
    // the graph plane must not perturb a single pixel on the wire.
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, 77), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::training(1, 4, (48, 48), 8, Some(2));
    config.cache_bytes = 0;
    let booster = DlBooster::from_graph(
        collector,
        FpgaChannel::init(engine, 0),
        config,
        &dlbooster::graph::fpga_training(48, 48),
        0,
    )
    .unwrap();
    let decoder = JpegDecoder::new();
    let mut seen = 0;
    while let Ok(batch) = booster.next_batch(0) {
        for (i, item) in batch.unit.items().iter().enumerate() {
            let record = &dataset.records[(batch.sequence as usize * 4 + i) % 8];
            assert_eq!(item.label, record.label);
            let bytes = disk.read(record.disk_offset, record.len).unwrap();
            let reference = dlbooster::codec::resize::resize(
                &decoder.decode(&bytes).unwrap(),
                48,
                48,
                dlbooster::codec::resize::ResizeFilter::Bilinear,
            )
            .unwrap()
            .to_rgb();
            assert_eq!(
                batch.unit.item_bytes(i),
                reference.data(),
                "batch {} item {i} pixel mismatch",
                batch.sequence
            );
        }
        seen += 1;
        booster.recycle(batch.unit);
    }
    assert_eq!(seen, 2);
}

#[test]
fn full_training_session_with_dlbooster_backend() {
    let (_disk, _dataset, booster) = build_pipeline(16, 2, 4, 8);
    let booster: Arc<dyn PreprocessBackend> = Arc::new(booster);
    let gpus: Vec<GpuDevice> = (0..2)
        .map(|i| GpuDevice::new(GpuSpec::tesla_p100(), i))
        .collect();
    let report = TrainingSession::run(
        booster,
        &gpus,
        &TrainingConfig {
            model: ModelZoo::ResNet18,
            batch_size: 4,
            precision: Precision::Fp32,
            iterations: 4,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        },
    );
    assert_eq!(report.n_gpus, 2);
    assert_eq!(report.iterations, 8);
    assert_eq!(report.images, 32);
    assert!(report.modelled_throughput > 0.0);
    assert!(report.modelled_time.as_nanos() > 0);
}

#[test]
fn pipeline_snapshot_accounts_for_every_stage() {
    // One shared telemetry registry across decoder, channel, booster,
    // dispatcher and solvers; after all threads join, the aggregate
    // snapshot must balance and report every stage.
    let telemetry = Telemetry::with_defaults();
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(16, 21), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(2, 4, (32, 32), 16, Some(8));
    config.cache_bytes = 0;
    let booster =
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap();
    let booster: Arc<dyn PreprocessBackend> = Arc::new(booster);
    let gpus: Vec<GpuDevice> = (0..2)
        .map(|i| GpuDevice::new(GpuSpec::tesla_p100(), i))
        .collect();
    let report = TrainingSession::run_with_telemetry(
        Arc::clone(&booster),
        &gpus,
        &TrainingConfig {
            model: ModelZoo::LeNet5,
            batch_size: 4,
            precision: Precision::Fp32,
            iterations: 4,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        },
        &telemetry,
    );
    assert_eq!(report.iterations, 8);
    drop(booster); // join router + reader + decoder → quiescent counters

    let snap = telemetry.pipeline_snapshot();
    // Batch conservation at the reader boundary.
    assert!(snap.batches_in() > 0);
    assert_eq!(snap.batches_in(), snap.batches_out() + snap.batch_errors());
    // Every stage reported in.
    assert!(snap.channel.cmds_submitted > 0);
    assert!(snap.decoder.items_ok > 0);
    let lane = snap.decoder.lane_service.as_ref().expect("lane histogram");
    assert!(lane.count > 0, "decode latency histogram must be populated");
    assert!(snap.pool.leases > 0 && snap.pool.recycles > 0);
    assert_eq!(snap.engines.batches, report.iterations);
    assert!(snap.dispatcher.batches >= snap.engines.batches);
    assert!(snap.router_delivered >= report.iterations);
    // Submit latency recorded once per completed reader batch.
    let submit = snap
        .reader
        .submit_latency
        .as_ref()
        .expect("submit histogram");
    assert_eq!(submit.count, snap.batches_out());
    // Healthy, quiescent run: no conservation violation, no stall.
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
    assert!(
        snap.stalls.is_empty(),
        "healthy run must not trip the watchdog"
    );
    assert!(snap.to_text().contains("watchdog   quiet"));
}

#[test]
fn graph_compiled_pipeline_snapshot_accounts_for_every_stage() {
    // The telemetry conservation laws of the legacy snapshot test, run
    // through a graph-compiled booster: every stage still reports in and
    // every invariant still balances when the pipeline is assembled from
    // a `PipelineGraph` instead of the hardwired constructor.
    let telemetry = Telemetry::with_defaults();
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(16, 21), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(2, 4, (32, 32), 16, Some(8));
    config.cache_bytes = 0;
    let booster = DlBooster::from_graph_with_telemetry(
        collector,
        channel,
        config,
        &dlbooster::graph::fpga_training(32, 32),
        0,
        Arc::clone(&telemetry),
    )
    .unwrap();
    let booster: Arc<dyn PreprocessBackend> = Arc::new(booster);
    let gpus: Vec<GpuDevice> = (0..2)
        .map(|i| GpuDevice::new(GpuSpec::tesla_p100(), i))
        .collect();
    let report = TrainingSession::run_with_telemetry(
        Arc::clone(&booster),
        &gpus,
        &TrainingConfig {
            model: ModelZoo::LeNet5,
            batch_size: 4,
            precision: Precision::Fp32,
            iterations: 4,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        },
        &telemetry,
    );
    assert_eq!(report.iterations, 8);
    drop(booster);

    let snap = telemetry.pipeline_snapshot();
    assert!(snap.batches_in() > 0);
    assert_eq!(snap.batches_in(), snap.batches_out() + snap.batch_errors());
    assert!(snap.channel.cmds_submitted > 0);
    assert!(snap.decoder.items_ok > 0);
    assert!(snap.pool.leases > 0 && snap.pool.recycles > 0);
    assert_eq!(snap.engines.batches, report.iterations);
    assert!(snap.dispatcher.batches >= snap.engines.batches);
    assert!(snap.router_delivered >= report.iterations);
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
    assert!(
        snap.stalls.is_empty(),
        "healthy run must not trip the watchdog"
    );
}

#[test]
fn sample_cache_eliminates_epoch2_decode_with_identical_batches() {
    // Two identical 2-epoch runs (8 images, batch 4, unshuffled), one with
    // the decoded-sample cache and one without. The cached run must decode
    // each image exactly once — epoch 2 is served wholly from cache — and
    // still deliver bitwise-identical batches. `pool_units: 1` serialises
    // the reader behind the consumer so every epoch-1 insert lands before
    // any epoch-2 lookup.
    let run = |sample_cache_bytes: u64| {
        let telemetry = Telemetry::with_defaults();
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, 77), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device
            .load_mirror(DecoderMirror::jpeg_paper_config())
            .unwrap();
        let engine = DecoderEngine::start_with_telemetry(
            device,
            Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
            &telemetry,
        )
        .unwrap();
        let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
        let mut config = DlBoosterConfig::training(1, 4, (32, 32), 8, Some(4));
        config.cache_bytes = 0; // isolate from the batch-indexed hybrid cache
        config.sample_cache_bytes = sample_cache_bytes;
        config.pool_units = 1;
        let booster =
            DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
                .unwrap();
        let mut payloads = Vec::new();
        while let Ok(batch) = booster.next_batch(0) {
            payloads.push(batch.unit.payload().to_vec());
            booster.recycle(batch.unit);
        }
        let cache = booster.sample_cache();
        drop(booster); // join reader + router → quiescent counters
        (payloads, telemetry.pipeline_snapshot(), cache)
    };

    let (cached_payloads, snap, cache) = run(64 << 20);
    let (live_payloads, _, no_cache) = run(0);
    assert!(no_cache.is_none());
    assert_eq!(cached_payloads.len(), 4);
    // Bitwise-identical batches, cache on or off.
    assert_eq!(cached_payloads, live_payloads);
    let cache = cache.expect("sample_cache_bytes > 0 builds a cache");
    // Epoch 2 never touched the FPGA: only epoch 1's two batches were
    // submitted and only its 8 images decoded. The reader is a
    // free-running producer (the router enforces the delivery bound), so
    // it may fill one extra cache batch before the stop flag lands —
    // hence lower bounds on the bypass/hit counters, exact decode counts.
    assert!(
        cache.bypass_batches() >= 2,
        "epoch 2 must bypass the device"
    );
    let (_, hits, misses) = cache.lookup_stats();
    assert!(hits >= 8, "epoch-2 lookups must all hit, hits = {hits}");
    assert!(misses <= 2, "only epoch 1 may miss, misses = {misses}");
    assert_eq!(snap.batches_in(), 2, "only epoch 1 submitted to the FPGA");
    assert_eq!(snap.decoder.items_ok, 8, "each image decoded exactly once");
    assert!(snap.cache.hits >= 8);
    assert!(snap.cache.bypass_batches >= 2);
    assert!(snap.cache.capacity_bytes > 0);
    // Every cache.* conservation law holds in the final snapshot.
    assert!(
        snap.invariant_violations().is_empty(),
        "violations: {:?}",
        snap.invariant_violations()
    );
}

#[test]
fn hybrid_cache_serves_later_epochs_in_full_pipeline() {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let n_images = 8;
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(n_images, 5), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
    )
    .unwrap();
    // Cache enabled and sized to hold the dataset; run 3 epochs worth.
    let booster = DlBooster::start(
        collector,
        FpgaChannel::init(engine, 0),
        DlBoosterConfig::training(1, 4, (32, 32), n_images, Some(6)),
    )
    .unwrap();
    let mut payloads = Vec::new();
    while let Ok(batch) = booster.next_batch(0) {
        payloads.push(batch.unit.payload().to_vec());
        booster.recycle(batch.unit);
    }
    assert_eq!(payloads.len(), 6);
    // Epochs replay identically from the cache (unshuffled collector).
    assert_eq!(payloads[0], payloads[2]);
    assert_eq!(payloads[0], payloads[4]);
    assert_eq!(payloads[1], payloads[3]);
    let (hits, _, _) = booster.cache().stats();
    assert!(hits >= 4, "expected cache replay, hits = {hits}");
}

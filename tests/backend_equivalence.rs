//! Backend equivalence: for the same inputs and target geometry, the
//! online backends (DLBooster, CPU-based, nvJPEG) must produce *identical*
//! decoded pixels — only their resource profile differs. This is the
//! compatibility guarantee of §3.1/§4.2 ("DLBooster can be plugged into
//! different DL libraries … and co-exist with other preprocessing
//! backends").

use dlbooster::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const N_IMAGES: usize = 8;
const BATCH: usize = 4;
const TARGET: u32 = 40;

struct Fixture {
    disk: Arc<NvmeDisk>,
    dataset: Dataset,
}

fn fixture() -> Fixture {
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(N_IMAGES, 123), &disk).unwrap();
    Fixture { disk, dataset }
}

/// Collects `label → pixels` for every delivered item of a backend.
fn collect(backend: &dyn PreprocessBackend, batches: usize) -> HashMap<u64, Vec<u8>> {
    let mut out = HashMap::new();
    for _ in 0..batches {
        let batch = backend.next_batch(0).expect("batch");
        for (i, item) in batch.unit.items().iter().enumerate() {
            out.insert(item.label, batch.unit.item_bytes(i).to_vec());
        }
        backend.recycle(batch.unit);
    }
    out
}

fn dlbooster_pixels(f: &Fixture) -> HashMap<u64, Vec<u8>> {
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::training(
        1,
        BATCH,
        (TARGET as u16, TARGET as u16),
        N_IMAGES,
        Some((N_IMAGES / BATCH) as u64),
    );
    config.cache_bytes = 0;
    let booster = DlBooster::start(collector, FpgaChannel::init(engine, 0), config).unwrap();
    collect(&booster, N_IMAGES / BATCH)
}

fn cpu_pixels(f: &Fixture) -> HashMap<u64, Vec<u8>> {
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let backend = CpuBackend::start(
        collector,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
        CpuBackendConfig {
            n_engines: 1,
            batch_size: BATCH,
            target_w: TARGET,
            target_h: TARGET,
            workers: 2,
            max_batches: Some((N_IMAGES / BATCH) as u64),
            sample_cache: None,
        },
    )
    .unwrap();
    collect(&backend, N_IMAGES / BATCH)
}

fn nvjpeg_pixels(f: &Fixture) -> HashMap<u64, Vec<u8>> {
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let mut config = NvJpegBackendConfig::paper_defaults(1, BATCH, (TARGET, TARGET));
    config.max_batches = Some((N_IMAGES / BATCH) as u64);
    let backend = NvJpegBackend::start(
        collector,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
        config,
    )
    .unwrap();
    collect(&backend, N_IMAGES / BATCH)
}

#[test]
fn online_backends_produce_identical_pixels() {
    let f = fixture();
    // Labels in this synthetic dataset are not necessarily unique per image;
    // re-key by label only works when they are. Verify uniqueness first.
    let labels: std::collections::HashSet<u64> =
        f.dataset.records.iter().map(|r| r.label).collect();
    assert_eq!(labels.len(), N_IMAGES, "fixture labels must be unique");

    let dlb = dlbooster_pixels(&f);
    let cpu = cpu_pixels(&f);
    let nv = nvjpeg_pixels(&f);
    assert_eq!(dlb.len(), N_IMAGES);
    assert_eq!(cpu.len(), N_IMAGES);
    assert_eq!(nv.len(), N_IMAGES);
    for (label, pixels) in &dlb {
        assert_eq!(
            Some(pixels),
            cpu.get(label),
            "CPU backend diverges on label {label}"
        );
        assert_eq!(
            Some(pixels),
            nv.get(label),
            "nvJPEG backend diverges on label {label}"
        );
    }
}

fn dlbooster_pixels_via_graph(f: &Fixture, graph: &PipelineGraph) -> HashMap<u64, Vec<u8>> {
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
    )
    .unwrap();
    let mut config = DlBoosterConfig::training(
        1,
        BATCH,
        (TARGET as u16, TARGET as u16),
        N_IMAGES,
        Some((N_IMAGES / BATCH) as u64),
    );
    config.cache_bytes = 0;
    let booster =
        DlBooster::from_graph(collector, FpgaChannel::init(engine, 0), config, graph, 0).unwrap();
    collect(&booster, N_IMAGES / BATCH)
}

fn cpu_pixels_via_graph(f: &Fixture, graph: &PipelineGraph) -> HashMap<u64, Vec<u8>> {
    let collector = Arc::new(DataCollector::load_from_disk(&f.dataset.records, 0));
    let backend = CpuBackend::from_graph(
        collector,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&f.disk))),
        CpuBackendConfig {
            n_engines: 1,
            batch_size: BATCH,
            target_w: TARGET,
            target_h: TARGET,
            workers: 2,
            max_batches: Some((N_IMAGES / BATCH) as u64),
            sample_cache: None,
        },
        graph,
        0,
    )
    .unwrap();
    collect(&backend, N_IMAGES / BATCH)
}

#[test]
fn graph_compiled_backends_match_the_legacy_constructors() {
    // The graph plane must not change a single pixel: compiling the canned
    // chains through `from_graph` yields exactly what the legacy `start`
    // constructors (and therefore every other equivalent backend) produce.
    let f = fixture();
    let legacy_dlb = dlbooster_pixels(&f);
    let legacy_cpu = cpu_pixels(&f);
    let graph_dlb =
        dlbooster_pixels_via_graph(&f, &dlbooster::graph::fpga_training(TARGET, TARGET));
    let graph_cpu = cpu_pixels_via_graph(&f, &dlbooster::graph::cpu_training(TARGET, TARGET, 2));
    assert_eq!(graph_dlb.len(), N_IMAGES);
    assert_eq!(
        graph_dlb, legacy_dlb,
        "graph-compiled DLBooster diverges from the legacy constructor"
    );
    assert_eq!(
        graph_cpu, legacy_cpu,
        "graph-compiled CPU backend diverges from the legacy constructor"
    );
    assert_eq!(
        graph_dlb, graph_cpu,
        "graph-compiled backends diverge from each other"
    );
}

#[test]
fn hand_built_graph_matches_the_canned_chain() {
    // Same pipeline, assembled with explicit `GraphBuilder` node handles
    // instead of the `Chain` sugar or a canned constructor: the builder
    // path must be pixel-identical.
    let f = fixture();
    let mut b = GraphBuilder::new();
    let src = b.add(
        "manifest",
        GraphStageSpec::Source {
            kind: SourceKind::Disk,
        },
    );
    let dec = b.add(
        "fpga-decode",
        GraphStageSpec::Decode {
            device: DecodeDevice::Fpga,
        },
    );
    let rsz = b.add(
        "resize",
        GraphStageSpec::Resize {
            width: TARGET,
            height: TARGET,
        },
    );
    let sink = b.add("dispatch", GraphStageSpec::Sink);
    b.connect(src, dec);
    b.connect(dec, rsz);
    b.connect(rsz, sink);
    let graph = b.build().expect("hand-built chain is well-typed");
    let hand = dlbooster_pixels_via_graph(&f, &graph);
    let canned = dlbooster_pixels_via_graph(&f, &dlbooster::graph::fpga_training(TARGET, TARGET));
    assert_eq!(hand, canned, "builder-assembled graph diverges from canned");
}

#[test]
fn lmdb_backend_preserves_labels_and_geometry() {
    // LMDB converts offline with an area filter (as Caffe's convert tool
    // does), so pixels legitimately differ from the online backends; what
    // must match is the label set and the record geometry.
    let f = fixture();
    let backend = LmdbBackend::start(
        &f.dataset,
        &f.disk,
        LmdbBackendConfig {
            n_engines: 1,
            batch_size: BATCH,
            target_w: TARGET,
            target_h: TARGET,
            readers: 1,
            max_batches: Some((N_IMAGES / BATCH) as u64),
        },
    )
    .unwrap();
    let got = collect(&backend, N_IMAGES / BATCH);
    let expected: std::collections::HashSet<u64> =
        f.dataset.records.iter().map(|r| r.label).collect();
    let got_labels: std::collections::HashSet<u64> = got.keys().copied().collect();
    assert_eq!(got_labels, expected);
    for pixels in got.values() {
        assert_eq!(pixels.len(), (TARGET * TARGET * 3) as usize);
    }
}

//! The dlb-trace acceptance plane.
//!
//! * Tracing must be a pure observer: a traced run delivers bitwise
//!   identical batches and identical conservation outcomes to an untraced
//!   run — on a healthy training pipeline, under chaos-driven FPGA→CPU
//!   failover, and across cluster hedging.
//! * Per-batch latency attribution must sum to the end-to-end window
//!   (exactly — well inside the 1% acceptance tolerance) on both training
//!   and served runs.
//! * The bottleneck report must agree with the pipeline's independent
//!   stage timers about which stage binds.

use dlbooster::backends::FallbackFactory;
use dlbooster::prelude::*;
use dlbooster::trace::{stages, SpanKind};
use dlbooster::workflows::{ClusterParams, ClusterSim};
use std::sync::Arc;
use std::time::Duration;

/// One deterministic 2-epoch FPGA training run; returns every delivered
/// payload, the final snapshot, and the trace snapshot when traced.
fn fpga_training_run(
    traced: bool,
) -> (
    Vec<Vec<u8>>,
    dlbooster::telemetry::PipelineSnapshot,
    Option<dlbooster::trace::TraceSnapshot>,
) {
    let telemetry = Telemetry::with_defaults();
    let tracer = traced.then(|| Arc::new(Tracer::new()));
    if let Some(t) = &tracer {
        assert!(telemetry.install_tracer(Arc::clone(t)), "first install");
    }
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(DatasetSpec::ilsvrc_small(8, 77), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&dataset.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(&disk))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(1, 4, (32, 32), 8, Some(4));
    config.cache_bytes = 0;
    config.sample_cache_bytes = 0;
    let booster =
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap();
    let mut payloads = Vec::new();
    while let Ok(batch) = booster.next_batch(0) {
        payloads.push(batch.unit.payload().to_vec());
        booster.recycle(batch.unit);
    }
    drop(booster); // join reader + router → quiescent counters
    (
        payloads,
        telemetry.pipeline_snapshot(),
        tracer.map(|t| t.snapshot()),
    )
}

#[test]
fn training_run_is_bitwise_identical_with_tracing_on_and_off() {
    let (traced_payloads, traced_snap, trace) = fpga_training_run(true);
    let (plain_payloads, plain_snap, none) = fpga_training_run(false);
    assert!(none.is_none());
    assert_eq!(traced_payloads.len(), 4);
    assert_eq!(
        traced_payloads, plain_payloads,
        "tracing must not perturb a single delivered byte"
    );
    // Identical conservation outcomes.
    for snap in [&traced_snap, &plain_snap] {
        assert_eq!(snap.batches_in(), snap.batches_out() + snap.batch_errors());
        assert!(
            snap.invariant_violations().is_empty(),
            "violations: {:?}",
            snap.invariant_violations()
        );
    }
    assert_eq!(traced_snap.batches_in(), plain_snap.batches_in());
    assert_eq!(traced_snap.decoder.items_ok, plain_snap.decoder.items_ok);
    // And the traced run actually produced spans.
    let trace = trace.unwrap();
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.stage == stages::FPGA_DECODE && e.kind == SpanKind::Service),
        "traced run must record fpga.decode service spans"
    );
    assert_eq!(trace.dropped, 0);
}

#[test]
fn training_attribution_sums_to_end_to_end_and_exports() {
    let (_, _, trace) = fpga_training_run(true);
    let trace = trace.unwrap();
    let attributions = trace.attribution();
    assert!(attributions.len() >= 4, "one attribution per traced batch");
    for a in &attributions {
        // Exact by construction — trivially within the 1% acceptance bound.
        assert_eq!(
            a.attributed_ns() + a.unattributed_ns,
            a.total_ns(),
            "batch {} attribution must sum to its window",
            a.batch
        );
        assert!(
            a.part_ns(stages::FPGA_DECODE, SpanKind::Service) > 0,
            "batch {} must charge time to fpga.decode",
            a.batch
        );
    }
    // Export plane: well-formed Perfetto JSON naming the stages.
    let json = trace.to_perfetto();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains(stages::FPGA_DECODE));
    assert!(json.contains(stages::QUEUE_DELIVER));
}

#[test]
fn served_run_attribution_sums_and_names_dispatch() {
    // The served path: NIC → stream collector → FPGA decode → dispatcher →
    // inference session, traced end to end.
    let telemetry = Telemetry::with_defaults();
    let tracer = Arc::new(Tracer::new());
    assert!(telemetry.install_tracer(Arc::clone(&tracer)));
    let pool = ClientPool::small(1_000.0, 99);
    let n_requests = 16;
    let batch_size = 4;
    let requests = pool.generate_requests(n_requests);
    let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x8_0000_0000));
    let collector = Arc::new(DataCollector::load_from_net());
    for r in &requests {
        let desc = nic.deliver(&r.wire_bytes, 0).unwrap();
        collector.push_from_net(&desc);
    }
    collector.close_stream();
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::nic_only(Arc::clone(&nic))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::inference(1, batch_size, (64, 64));
    let n_batches = (n_requests / batch_size) as u64;
    config.max_batches = Some(n_batches);
    let booster: Arc<dyn PreprocessBackend> = Arc::new(
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap(),
    );
    let gpus = vec![GpuDevice::new(GpuSpec::tesla_v100(), 0)];
    let report = InferenceSession::run_with_telemetry(
        Arc::clone(&booster),
        &gpus,
        &InferenceConfig {
            model: ModelZoo::GoogLeNet,
            batch_size: batch_size as u32,
            precision: Precision::Fp16,
            batches: n_batches,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        },
        &telemetry,
    );
    assert_eq!(report.batches, n_batches);
    drop(booster);

    let snap = telemetry.pipeline_snapshot();
    assert!(snap.invariant_violations().is_empty());
    let trace = tracer.snapshot();
    let attributions = trace.attribution();
    assert!(!attributions.is_empty());
    for a in &attributions {
        assert_eq!(a.attributed_ns() + a.unattributed_ns, a.total_ns());
    }
    // The dispatcher's H2D copies show up as service spans on the served path.
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.stage == stages::DISPATCH_H2D && e.kind == SpanKind::Service),
        "served run must record dispatch.h2d spans"
    );
}

#[test]
fn cpu_bottleneck_report_agrees_with_codec_stage_timers() {
    // The CPU baseline burns its time in decode; both the independent
    // codec stage timers and the trace critical path must say so.
    let telemetry = Telemetry::with_defaults();
    let tracer = Arc::new(Tracer::new());
    assert!(telemetry.install_tracer(Arc::clone(&tracer)));
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let ds = Dataset::build(DatasetSpec::ilsvrc_small(16, 5), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
    let backend = CpuBackend::start_with_telemetry(
        collector,
        Arc::new(CombinedResolver::disk_only(disk)),
        CpuBackendConfig {
            n_engines: 1,
            batch_size: 4,
            target_w: 32,
            target_h: 32,
            workers: 1,
            max_batches: Some(4),
            sample_cache: None,
        },
        Arc::clone(&telemetry),
    )
    .unwrap();
    while let Ok(batch) = backend.next_batch(0) {
        backend.recycle(batch.unit);
    }
    backend.shutdown();

    let report = tracer.snapshot().critical_path();
    let top = report.bottleneck().expect("service spans recorded");
    assert_eq!(
        top.stage,
        stages::CPU_DECODE,
        "stages by busy time: {:?}",
        report
            .stages
            .iter()
            .map(|s| (s.stage, s.busy_ns))
            .collect::<Vec<_>>()
    );
    // Independent stage timers agree: decode nanos dominate resize nanos.
    let snap = telemetry.registry.snapshot();
    use dlbooster::telemetry::names;
    let decode_ns = snap.counter(names::CODEC_HUFFMAN_NANOS)
        + snap.counter(names::CODEC_IDCT_NANOS)
        + snap.counter(names::CODEC_COLOR_NANOS);
    let resize_ns = snap.counter(names::CODEC_RESIZE_NANOS);
    assert!(
        decode_ns > resize_ns,
        "codec timers must also rank decode first: decode {decode_ns} vs resize {resize_ns}"
    );
    // And the trace's decode busy time is in the same regime as the codec
    // timers (the span wraps the same work, plus batch plumbing).
    let trace_decode = top.busy_ns;
    assert!(
        trace_decode >= decode_ns / 2,
        "trace decode busy {trace_decode} vs codec timers {decode_ns}"
    );
    // The figure plane names the binding stage.
    let fig = dlbooster::workflows::critical_path_figure(&report);
    assert!(fig
        .notes
        .iter()
        .any(|n| n.contains("cpu.decode is the binding stage at")));
}

/// One chaos-wedged FPGA run that fails over to the CPU backend; returns
/// (total batches, failover count, violation list, trace snapshot).
fn chaos_failover_run(
    traced: bool,
) -> (
    u64,
    u64,
    Vec<String>,
    Option<dlbooster::trace::TraceSnapshot>,
) {
    const TOTAL: u64 = 8;
    const BATCH: usize = 4;
    let telemetry = Telemetry::with_defaults();
    let tracer = traced.then(|| Arc::new(Tracer::new()));
    if let Some(t) = &tracer {
        assert!(telemetry.install_tracer(Arc::clone(t)));
    }
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let ds = Dataset::build(
        DatasetSpec::ilsvrc_small((TOTAL as usize) * BATCH, 77),
        &disk,
    )
    .unwrap();
    let records = ds.records.clone();
    let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let resolver = Arc::new(CombinedResolver::disk_only(Arc::clone(&disk)));
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::clone(&resolver) as Arc<dyn dlbooster::fpga::DataSourceResolver>,
        &telemetry,
    )
    .unwrap();
    // Every other decode stalls its lane for 30 s: the primary starves.
    let mut plan = FaultPlan::disabled();
    plan.seed = 11;
    plan.fpga = StageSpec::rate(0.5).with_delay(Duration::from_secs(30));
    let cancel = plan.cancel_token();
    engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config =
        DlBoosterConfig::training(1, BATCH, (32, 32), (TOTAL as usize) * BATCH, Some(TOTAL));
    config.cache_bytes = 0;
    let primary = Arc::new(
        DlBooster::start_with_telemetry(collector, channel, config, Arc::clone(&telemetry))
            .unwrap(),
    );
    let t2 = Arc::clone(&telemetry);
    let factory: FallbackFactory = Box::new(move |remaining| {
        let collector = Arc::new(DataCollector::load_from_disk(&records, 0));
        let resolver = Arc::new(CombinedResolver::disk_only(disk));
        CpuBackend::start_with_telemetry(
            collector,
            resolver,
            CpuBackendConfig {
                n_engines: 1,
                batch_size: BATCH,
                target_w: 32,
                target_h: 32,
                workers: 2,
                max_batches: Some(remaining),
                sample_cache: None,
            },
            t2,
        )
        .map(|b| Box::new(b) as Box<dyn PreprocessBackend>)
    });
    let backend = FailoverBackend::new(
        primary,
        factory,
        FailoverConfig {
            total_batches: TOTAL,
            deadline: Duration::from_millis(150),
            chaos_cancel: Some(cancel),
        },
        &telemetry,
    );
    let mut total = 0u64;
    loop {
        match backend.next_batch(0) {
            Ok(batch) => {
                total += 1;
                backend.recycle(batch.unit);
            }
            Err(dlbooster::core::BackendError::Exhausted) => break,
            Err(e) => panic!("unexpected backend error: {e}"),
        }
    }
    assert!(backend.failed_over(), "wedge must trigger failover");
    backend.shutdown();
    let snap = telemetry.pipeline_snapshot();
    (
        total,
        snap.chaos.failovers,
        snap.invariant_violations(),
        tracer.map(|t| t.snapshot()),
    )
}

#[test]
fn chaos_failover_outcome_is_identical_with_tracing_on_and_off() {
    let (traced_total, traced_failovers, traced_violations, trace) = chaos_failover_run(true);
    let (plain_total, plain_failovers, plain_violations, _) = chaos_failover_run(false);
    assert_eq!(traced_total, 8, "traced run must deliver the full budget");
    assert_eq!(plain_total, 8, "untraced run must deliver the full budget");
    assert_eq!(traced_failovers, plain_failovers);
    assert_eq!(traced_failovers, 1);
    assert!(traced_violations.is_empty(), "{traced_violations:?}");
    assert!(plain_violations.is_empty(), "{plain_violations:?}");
    // The traced run marks the failover and records spans on both sides
    // of the swap: FPGA decodes before the wedge, CPU decodes after.
    let trace = trace.unwrap();
    assert!(
        trace
            .events
            .iter()
            .any(|e| e.kind == SpanKind::Mark && e.stage == stages::FAILOVER),
        "failover must leave a trace mark"
    );
    assert!(trace
        .events
        .iter()
        .any(|e| e.stage == stages::CPU_DECODE && e.kind == SpanKind::Service));
}

#[test]
fn cluster_hedging_outcome_is_identical_with_tracing_on_and_off() {
    let params = || {
        let mut p = ClusterParams::baseline(4, 2.0, 9);
        p.requests = 2_000;
        p.warmup = 200;
        p
    };
    let tracer = Arc::new(Tracer::new());
    let traced = ClusterSim::run_traced(params(), Arc::clone(&tracer));
    let plain = ClusterSim::run(params());
    // The DES is seeded: with tracing attached, the outcome must be
    // bitwise identical, counters included.
    assert_eq!(traced.offered, plain.offered);
    assert_eq!(traced.completed, plain.completed);
    assert_eq!(traced.shed, plain.shed);
    assert_eq!(traced.good, plain.good);
    assert_eq!(traced.p99_latency, plain.p99_latency);
    assert_eq!(traced.sim_time, plain.sim_time);
    let (tc, pc) = (&traced.snapshot.cluster, &plain.snapshot.cluster);
    assert_eq!(tc.hedges, pc.hedges);
    assert_eq!(tc.hedge_wins, pc.hedge_wins);
    assert_eq!(tc.hedge_dups, pc.hedge_dups);
    assert_eq!(tc.replays, pc.replays);
    assert!(traced.snapshot.invariant_violations().is_empty());
    assert!(plain.snapshot.invariant_violations().is_empty());
    // Every duplicate completion left a hedge-dup mark, and dups whose
    // request had a winner are linked onto the winning copy's ordinal.
    let trace = tracer.snapshot();
    let marks = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Mark && e.stage == stages::HEDGE_DUP)
        .count() as u64;
    assert_eq!(marks, tc.hedge_dups, "one mark per duplicate completion");
    assert!(tc.hedge_dups > 0, "pick params that actually hedge");
    let links: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == SpanKind::Link)
        .collect();
    assert!(!links.is_empty(), "won requests must link their duplicates");
    for l in links {
        assert_ne!(l.link, 0, "link target must be a real ordinal");
        assert_ne!(l.batch, l.link, "a duplicate never links to itself");
    }
}

//! Table 1 API-surface conformance: every verb the paper lists exists with
//! the documented owner and semantics.
//!
//! | API | Owner | Arguments |
//! |---|---|---|
//! | submit_cmd | FPGAChannel | packeted cmds |
//! | drain_out | FPGAChannel | none |
//! | get_item | MemManager | buffer_size (pool-fixed here) |
//! | recycle_item | MemManager | none |
//! | phy2virt | MemManager | physical address |
//! | virt2phy | MemManager | virtual address |
//! | load_from_disk | DataCollector | none |
//! | load_from_net | DataCollector | none |

use dlbooster::net::RxDescriptor;
use dlbooster::prelude::*;
use dlbooster::storage::Record;
use std::sync::Arc;

#[test]
fn memmanager_verbs() {
    let pool = MemManager::new(PoolConfig {
        unit_size: 4096,
        unit_count: 2,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();
    // get_item / recycle_item.
    let unit = pool.get_item().expect("get_item");
    let phys = unit.phys_addr();
    pool.recycle_item(unit).expect("recycle_item");
    // phy2virt / virt2phy are inverse bijections over the pool range.
    let virt = pool.phy2virt(phys + 128).expect("phy2virt");
    assert_eq!(pool.virt2phy(virt).expect("virt2phy"), phys + 128);
}

#[test]
fn fpga_channel_verbs() {
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let resolver = Arc::new(dlbooster::fpga::MapResolver::new());
    let img =
        dlbooster::codec::synth::generate(32, 32, dlbooster::codec::synth::SynthStyle::Photo, 1);
    let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
    let src = resolver.put_disk(0, bytes);
    let engine = DecoderEngine::start(device, resolver).unwrap();
    let channel = FpgaChannel::init(engine, 3);
    assert_eq!(channel.queue_id(), 3);

    let pool = MemManager::new(PoolConfig {
        unit_size: 64 << 10,
        unit_count: 2,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();
    let mut unit = pool.get_item().unwrap();
    let off = unit.reserve(16 * 16 * 3, 0, 16, 16, 3).unwrap();
    let cmd = DecodeCmd {
        cmd_id: 9,
        src,
        dst_phys: unit.phys_addr() + off as u64,
        dst_capacity: 16 * 16 * 3,
        target_w: 16,
        target_h: 16,
        format: OutputFormat::Rgb8,
    };
    // submit_cmd takes *packeted* cmds (the wire format) and returns any
    // already-finished batches; drain_out polls with best effort.
    let mut done = channel
        .submit_cmd(dlbooster::fpga::Submission {
            unit,
            cmds: vec![cmd.pack()],
        })
        .expect("submit_cmd");
    while done.is_empty() {
        done = channel.drain_out();
        std::thread::yield_now();
    }
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].ok_count(), 1);
    pool.recycle_item(done.pop().unwrap().unit).unwrap();
    // recycle (Algorithm 1 line 19) returns the device.
    let device = channel.recycle();
    assert!(device.mirror().is_some());
}

#[test]
fn data_collector_verbs() {
    // load_from_disk: block metadata from a manifest.
    let records = vec![Record {
        id: 0,
        label: 42,
        disk_offset: 8192,
        len: 1000,
        width: 100,
        height: 75,
        channels: 3,
    }];
    let disk_side = DataCollector::load_from_disk(&records, 0);
    let metas = disk_side.next_metas(1).unwrap();
    assert_eq!(metas.len(), 1);
    assert_eq!(metas[0].label, 42);

    // load_from_net: physical-address metadata from NIC descriptors.
    let net_side = DataCollector::load_from_net();
    net_side.push_from_net(&RxDescriptor {
        request_id: 7,
        client_id: 1,
        phys_addr: 0x9000_0000,
        len: 555,
        arrival_nanos: 3,
    });
    let metas = net_side.next_metas(1).unwrap();
    assert_eq!(metas.len(), 1);
    assert_eq!(metas[0].label, 7);
    assert_eq!(metas[0].arrival_nanos, Some(3));
}

#[test]
fn conservation_counters_round_trip_through_the_typed_snapshot() {
    // Every counter named in a `PipelineSnapshot` conservation law must be
    // registered under its canonical `names::*` string: bump each one to a
    // unique value through the string name, then read it back through the
    // typed snapshot field the laws consult. A typo on either side (the
    // names list or the snapshot wiring) silently reads a fresh zero
    // counter and the law goes blind — this test makes that loud.
    use dlbooster::telemetry::names as n;
    let telemetry = Telemetry::with_defaults();
    for (i, name) in n::CONSERVATION_COUNTERS.iter().enumerate() {
        telemetry.registry.counter(name).add(1_000 + i as u64);
    }
    let snap = telemetry.pipeline_snapshot();
    let typed = |name: &str| -> u64 {
        match name {
            x if x == n::READER_BATCHES_SUBMITTED => snap.reader.batches_submitted,
            x if x == n::READER_BATCHES_COMPLETED => snap.reader.batches_completed,
            x if x == n::READER_BATCH_ERRORS => snap.reader.batch_errors,
            x if x == n::DECODER_ITEMS_IN => snap.decoder.items_in,
            x if x == n::DECODER_ITEMS_OK => snap.decoder.items_ok,
            x if x == n::DECODER_ITEMS_ERR => snap.decoder.items_err,
            x if x == n::CHANNEL_CMDS_SUBMITTED => snap.channel.cmds_submitted,
            x if x == n::CHANNEL_CMDS_DRAINED => snap.channel.cmds_drained,
            x if x == n::SERVING_OFFERED => snap.serving.offered,
            x if x == n::SERVING_ADMITTED => snap.serving.admitted,
            x if x == n::SERVING_REJECTED => snap.serving.rejected,
            x if x == n::SERVING_COMPLETED => snap.serving.completed,
            x if x == n::SERVING_SHED => snap.serving.shed,
            x if x == n::SERVING_GOOD => snap.serving.good,
            x if x == n::CACHE_LOOKUPS => snap.cache.lookups,
            x if x == n::CACHE_HITS => snap.cache.hits,
            x if x == n::CACHE_MISSES => snap.cache.misses,
            x if x == n::CACHE_INSERTIONS => snap.cache.insertions,
            x if x == n::CACHE_INSERTED_BYTES => snap.cache.inserted_bytes,
            x if x == n::CACHE_EVICTIONS => snap.cache.evictions,
            x if x == n::CACHE_EVICTED_BYTES => snap.cache.evicted_bytes,
            x if x == n::CLUSTER_REQUESTS => snap.cluster.requests,
            x if x == n::CLUSTER_ADMITTED => snap.cluster.admitted,
            x if x == n::CLUSTER_SHED => snap.cluster.shed,
            x if x == n::CLUSTER_QUOTA_SHED => snap.cluster.quota_shed,
            x if x == n::CLUSTER_DISPATCHES => snap.cluster.dispatches,
            x if x == n::CLUSTER_HEDGES => snap.cluster.hedges,
            x if x == n::CLUSTER_HEDGE_WINS => snap.cluster.hedge_wins,
            x if x == n::CLUSTER_HEDGE_DUPS => snap.cluster.hedge_dups,
            x if x == n::CLUSTER_REPLAYS => snap.cluster.replays,
            x if x == n::CLUSTER_COMPLETIONS => snap.cluster.completions,
            x if x == n::CLUSTER_SERVED => snap.cluster.served,
            x if x == n::CLUSTER_REPLAYED => snap.cluster.replayed,
            x if x == n::CLUSTER_LOST => snap.cluster.lost,
            x if x == n::CLUSTER_LOST_UNREPLAYED => snap.cluster.lost_unreplayed,
            x if x == n::RETRY_ATTEMPTS => snap.chaos.retry_attempts,
            x if x == n::RETRY_RETRIES => snap.chaos.retry_retries,
            x if x == n::RETRY_GIVEUPS => snap.chaos.retry_giveups,
            other => panic!("conservation counter {other:?} has no typed snapshot mapping"),
        }
    };
    for (i, name) in n::CONSERVATION_COUNTERS.iter().enumerate() {
        assert_eq!(
            typed(name),
            1_000 + i as u64,
            "{name} is not wired into the typed PipelineSnapshot under its canonical name"
        );
    }
    // The raw registry export sees exactly the same values under the same
    // names (the Prometheus plane reads this path).
    let raw = telemetry.registry.snapshot();
    for (i, name) in n::CONSERVATION_COUNTERS.iter().enumerate() {
        assert_eq!(raw.counter(name), 1_000 + i as u64);
    }
}

#[test]
fn backend_trait_is_object_safe_and_uniform() {
    // §3.1: engines program against one interface regardless of backend.
    fn assert_backend(b: &dyn PreprocessBackend) -> &'static str {
        b.name()
    }
    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let ds = Dataset::build(DatasetSpec::mnist_like(4, 1), &disk).unwrap();
    let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
    let cpu = CpuBackend::start(
        collector,
        Arc::new(CombinedResolver::disk_only(disk)),
        CpuBackendConfig {
            n_engines: 1,
            batch_size: 2,
            target_w: 16,
            target_h: 16,
            workers: 1,
            max_batches: Some(1),
            sample_cache: None,
        },
    )
    .unwrap();
    assert_eq!(assert_backend(&cpu), "CPU-based");
    cpu.shutdown();
}

//! `DataCollector` — the data abstraction of Table 1.
//!
//! "a DataCollector is set up as a data abstraction, which translates the
//! metadata (i.e., block information) that describes the storage information
//! of the data on the disk or generates the metadata (i.e., physical address
//! of memory) that describes where the data are placed by NICs. The
//! DataCollector is globally shared by its callers in generating cmds for
//! FPGA decoders." (§3.4.1)

use dlb_fpga::DataRef;
use dlb_net::RxDescriptor;
use dlb_storage::Record;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Metadata for one file/request, ready for cmd generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMeta {
    /// Where the compressed bytes live.
    pub src: DataRef,
    /// Label (training) or request id (inference).
    pub label: u64,
    /// Source width.
    pub width: u32,
    /// Source height.
    pub height: u32,
    /// Source channels.
    pub channels: u8,
    /// For network items: arrival timestamp in nanos (latency accounting).
    pub arrival_nanos: Option<u64>,
    /// For served items: absolute SLO deadline in nanos (set by the
    /// serving layer's admission controller; `None` outside serving mode).
    pub deadline_nanos: Option<u64>,
    /// Epoch this item was dispensed in (dataset mode; 0 for streams).
    /// Stamped by [`DataCollector::next_metas`] at dispense time — it keys
    /// per-(epoch, sample) augmentation seeds, so a mid-batch epoch wrap
    /// stamps the two halves of the batch differently.
    pub epoch: u64,
}

impl FileMeta {
    /// Builds metadata from a dataset manifest record (`load_from_disk`).
    pub fn from_record(r: &Record) -> Self {
        FileMeta {
            src: DataRef::Disk {
                offset: r.disk_offset,
                len: r.len,
            },
            label: r.label,
            width: r.width,
            height: r.height,
            channels: r.channels,
            arrival_nanos: None,
            deadline_nanos: None,
            epoch: 0,
        }
    }

    /// Builds metadata from a NIC RX descriptor (`load_from_net`). Source
    /// geometry is unknown until decode; the FPGA parser extracts it.
    pub fn from_rx(d: &RxDescriptor) -> Self {
        FileMeta {
            src: DataRef::HostMem {
                phys_addr: d.phys_addr,
                len: d.len,
            },
            label: d.request_id,
            width: 0,
            height: 0,
            channels: 3,
            arrival_nanos: Some(d.arrival_nanos),
            deadline_nanos: None,
            epoch: 0,
        }
    }
}

/// The globally shared metadata source feeding the `FPGAReader`.
///
/// Two modes, matching the two DL workflows:
/// * **dataset mode** (offline training): a manifest iterated epoch after
///   epoch, with a deterministic per-epoch shuffle;
/// * **stream mode** (online inference): a FIFO fed by the NIC poll loop.
#[derive(Debug)]
pub struct DataCollector {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Dataset manifest (empty in pure stream mode).
    manifest: Vec<FileMeta>,
    /// Iteration order for the current epoch (indices into `manifest`).
    order: Vec<u32>,
    /// Cursor into `order`.
    cursor: usize,
    /// Epoch counter.
    epoch: u64,
    /// Shuffle seed (0 = no shuffling).
    shuffle_seed: u64,
    /// Streamed items (network mode).
    stream: VecDeque<FileMeta>,
    /// Total items handed out.
    dispensed: u64,
    /// Stream closed (no more pushes).
    stream_closed: bool,
}

impl DataCollector {
    /// Dataset mode: iterate `records` forever, reshuffling each epoch when
    /// `shuffle_seed != 0`.
    pub fn load_from_disk(records: &[Record], shuffle_seed: u64) -> Self {
        let manifest: Vec<FileMeta> = records.iter().map(FileMeta::from_record).collect();
        let mut inner = Inner {
            order: (0..manifest.len() as u32).collect(),
            manifest,
            cursor: 0,
            epoch: 0,
            shuffle_seed,
            stream: VecDeque::new(),
            dispensed: 0,
            stream_closed: true, // no stream in dataset mode
        };
        inner.reshuffle();
        Self {
            inner: Mutex::new(inner),
        }
    }

    /// Stream mode: metadata arrives via [`DataCollector::push_from_net`].
    pub fn load_from_net() -> Self {
        Self {
            inner: Mutex::new(Inner {
                manifest: Vec::new(),
                order: Vec::new(),
                cursor: 0,
                epoch: 0,
                shuffle_seed: 0,
                stream: VecDeque::new(),
                dispensed: 0,
                stream_closed: false,
            }),
        }
    }

    /// Feeds one NIC descriptor into the stream.
    pub fn push_from_net(&self, d: &RxDescriptor) {
        let mut inner = self.inner.lock();
        assert!(!inner.stream_closed, "stream closed");
        inner.stream.push_back(FileMeta::from_rx(d));
    }

    /// Feeds one pre-built metadata item into the stream — the serving
    /// layer's entry point, where items arrive already batched and carry
    /// an SLO deadline.
    pub fn push_meta(&self, meta: FileMeta) {
        let mut inner = self.inner.lock();
        assert!(!inner.stream_closed, "stream closed");
        inner.stream.push_back(meta);
    }

    /// Marks the network stream finished (pipeline drain).
    pub fn close_stream(&self) {
        self.inner.lock().stream_closed = true;
    }

    /// Next up to `n` items. Dataset mode always returns `n` (wrapping into
    /// the next epoch); stream mode returns what is queued (possibly empty),
    /// or `None` once closed and drained.
    pub fn next_metas(&self, n: usize) -> Option<Vec<FileMeta>> {
        let mut inner = self.inner.lock();
        if !inner.manifest.is_empty() {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                if inner.cursor >= inner.order.len() {
                    inner.epoch += 1;
                    inner.cursor = 0;
                    inner.reshuffle();
                }
                let idx = inner.order[inner.cursor] as usize;
                inner.cursor += 1;
                let mut meta = inner.manifest[idx].clone();
                meta.epoch = inner.epoch;
                out.push(meta);
            }
            inner.dispensed += out.len() as u64;
            return Some(out);
        }
        // Stream mode.
        if inner.stream.is_empty() {
            if inner.stream_closed {
                return None;
            }
            return Some(Vec::new());
        }
        let take = n.min(inner.stream.len());
        let out: Vec<FileMeta> = inner.stream.drain(..take).collect();
        inner.dispensed += out.len() as u64;
        Some(out)
    }

    /// Current epoch (dataset mode).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Items handed out so far.
    pub fn dispensed(&self) -> u64 {
        self.inner.lock().dispensed
    }

    /// Queued stream items.
    pub fn stream_pending(&self) -> usize {
        self.inner.lock().stream.len()
    }
}

impl Inner {
    /// Fisher–Yates with a splitmix-derived sequence — deterministic in
    /// (seed, epoch).
    fn reshuffle(&mut self) {
        if self.shuffle_seed == 0 || self.order.len() < 2 {
            return;
        }
        let mut state = self
            .shuffle_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.epoch);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..self.order.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            self.order.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: u64) -> Vec<Record> {
        (0..n)
            .map(|id| Record {
                id,
                label: id % 10,
                disk_offset: id * 4096,
                len: 1000 + id as u32,
                width: 100,
                height: 75,
                channels: 3,
            })
            .collect()
    }

    #[test]
    fn dataset_mode_wraps_epochs() {
        let c = DataCollector::load_from_disk(&records(10), 0);
        let batch = c.next_metas(7).unwrap();
        assert_eq!(batch.len(), 7);
        assert_eq!(c.epoch(), 0);
        let batch = c.next_metas(7).unwrap();
        assert_eq!(batch.len(), 7);
        // Wrapped into epoch 1 mid-batch.
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.dispensed(), 14);
    }

    #[test]
    fn epoch_stamped_per_item_across_mid_batch_wrap() {
        let c = DataCollector::load_from_disk(&records(10), 0);
        let first = c.next_metas(7).unwrap();
        assert!(first.iter().all(|m| m.epoch == 0));
        let second = c.next_metas(7).unwrap();
        // Items 0..3 finish epoch 0, items 3..7 open epoch 1.
        assert_eq!(
            second.iter().map(|m| m.epoch).collect::<Vec<_>>(),
            vec![0, 0, 0, 1, 1, 1, 1]
        );
    }

    #[test]
    fn unshuffled_order_is_sequential() {
        let c = DataCollector::load_from_disk(&records(5), 0);
        let metas = c.next_metas(5).unwrap();
        let offs: Vec<u64> = metas
            .iter()
            .map(|m| match m.src {
                DataRef::Disk { offset, .. } => offset,
                _ => panic!(),
            })
            .collect();
        assert_eq!(offs, vec![0, 4096, 8192, 12288, 16384]);
    }

    #[test]
    fn shuffle_is_deterministic_and_epoch_varying() {
        let order_of = |seed: u64, skip_epochs: usize| {
            let c = DataCollector::load_from_disk(&records(32), seed);
            for _ in 0..skip_epochs {
                c.next_metas(32).unwrap();
            }
            c.next_metas(32)
                .unwrap()
                .iter()
                .map(|m| m.label)
                .collect::<Vec<_>>()
        };
        assert_eq!(order_of(5, 0), order_of(5, 0));
        assert_ne!(order_of(5, 0), order_of(6, 0), "seed must matter");
        assert_ne!(order_of(5, 0), order_of(5, 1), "epoch must reshuffle");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let c = DataCollector::load_from_disk(&records(100), 9);
        let metas = c.next_metas(100).unwrap();
        let mut offs: Vec<u64> = metas
            .iter()
            .map(|m| match m.src {
                DataRef::Disk { offset, .. } => offset,
                _ => panic!(),
            })
            .collect();
        offs.sort_unstable();
        assert_eq!(offs, (0..100).map(|i| i * 4096).collect::<Vec<_>>());
    }

    #[test]
    fn stream_mode_fifo_and_close() {
        let c = DataCollector::load_from_net();
        assert_eq!(c.next_metas(4).unwrap(), vec![]);
        for i in 0..3 {
            c.push_from_net(&RxDescriptor {
                request_id: i,
                client_id: 0,
                phys_addr: 0x100 * i,
                len: 50,
                arrival_nanos: i * 10,
            });
        }
        assert_eq!(c.stream_pending(), 3);
        let metas = c.next_metas(2).unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(metas[0].label, 0);
        assert_eq!(metas[0].arrival_nanos, Some(0));
        c.close_stream();
        assert_eq!(c.next_metas(5).unwrap().len(), 1);
        assert!(c.next_metas(1).is_none(), "closed and drained");
    }

    #[test]
    fn file_meta_conversions() {
        let r = &records(1)[0];
        let m = FileMeta::from_record(r);
        assert_eq!(
            m.src,
            DataRef::Disk {
                offset: 0,
                len: 1000
            }
        );
        assert_eq!(m.channels, 3);
        assert!(m.arrival_nanos.is_none());

        let d = RxDescriptor {
            request_id: 77,
            client_id: 1,
            phys_addr: 0xABC,
            len: 9,
            arrival_nanos: 5,
        };
        let m = FileMeta::from_rx(&d);
        assert_eq!(m.label, 77);
        assert_eq!(
            m.src,
            DataRef::HostMem {
                phys_addr: 0xABC,
                len: 9
            }
        );
    }
}

//! `FPGAChannel` — the cmd/completion abstraction of Table 1.
//!
//! "FPGAChannel is set up to serve as an abstraction interacting with the
//! FPGA decoder. Each FPGAChannel is bound to one FPGA decoder and works
//! independently." (§3.4.1) The channel exposes exactly the Table-1 verbs:
//! `submit_cmd` (push a batch of packed cmds and launch decoding) and
//! `drain_out` (poll completed batches with best effort, never blocking the
//! reader loop).

use dlb_fpga::{CompletedBatch, DecoderEngine, FpgaError, Submission};
use dlb_telemetry::{names, Counter, Gauge, Telemetry};
use std::sync::Arc;

/// A host-side handle to one FPGA decoder engine.
pub struct FpgaChannel {
    engine: DecoderEngine,
    queue_id: u32,
    submitted: Arc<Counter>,
    drained: Arc<Counter>,
    inflight: Arc<Gauge>,
}

impl FpgaChannel {
    /// Binds a channel to a running decoder engine (`FPGAInit(Queue_ID)` of
    /// Algorithm 1) with a private telemetry registry.
    pub fn init(engine: DecoderEngine, queue_id: u32) -> Self {
        Self::init_with_telemetry(engine, queue_id, &Telemetry::with_defaults())
    }

    /// Like [`FpgaChannel::init`], but recording `channel.*` metrics into
    /// the shared pipeline `telemetry`.
    pub fn init_with_telemetry(
        engine: DecoderEngine,
        queue_id: u32,
        telemetry: &Telemetry,
    ) -> Self {
        Self {
            engine,
            queue_id,
            submitted: telemetry.registry.counter(names::CHANNEL_CMDS_SUBMITTED),
            drained: telemetry.registry.counter(names::CHANNEL_CMDS_DRAINED),
            inflight: telemetry.registry.gauge(names::CHANNEL_INFLIGHT),
        }
    }

    /// Queue identifier.
    pub fn queue_id(&self) -> u32 {
        self.queue_id
    }

    /// Table 1 `submit_cmd`: pushes a batch submission into the decoder's
    /// FIFO and opportunistically returns any batches that already finished
    /// (Algorithm 1 line 12 returns `mem_carriers`).
    pub fn submit_cmd(&self, submission: Submission) -> Result<Vec<CompletedBatch>, FpgaError> {
        self.engine.submit(submission)?;
        self.submitted.inc();
        self.inflight.inc();
        Ok(self.drain_out())
    }

    /// Table 1 `drain_out`: non-blocking poll of every finished batch.
    pub fn drain_out(&self) -> Vec<CompletedBatch> {
        let out = self.engine.completions().drain();
        self.drained.add(out.len() as u64);
        self.inflight.add(-(out.len() as i64));
        out
    }

    /// Blocking wait for one completed batch (used at pipeline drain time).
    pub fn wait_one(&self) -> Option<CompletedBatch> {
        match self.engine.completions().pop() {
            Ok(b) => {
                self.drained.inc();
                self.inflight.dec();
                Some(b)
            }
            Err(_) => None,
        }
    }

    /// Like [`FpgaChannel::wait_one`], but gives up after `timeout`.
    /// `Ok(None)` means the wait timed out with the engine still alive —
    /// the reader's cue to consider a cmd wedged and resubmit it.
    pub fn wait_one_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Option<CompletedBatch>, dlb_membridge::QueueClosed> {
        match self.engine.completions().pop_timeout(timeout)? {
            Some(b) => {
                self.drained.inc();
                self.inflight.dec();
                Ok(Some(b))
            }
            None => Ok(None),
        }
    }

    /// Batches submitted but not yet drained.
    pub fn in_flight(&self) -> u64 {
        self.inflight.get().max(0) as u64
    }

    /// Table 1 `recycle` (Algorithm 1 line 19): shuts the channel down and
    /// returns the device.
    pub fn recycle(self) -> dlb_fpga::FpgaDevice {
        self.engine.shutdown()
    }
}

impl std::fmt::Debug for FpgaChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpgaChannel")
            .field("queue_id", &self.queue_id)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_codec::synth::{generate, SynthStyle};
    use dlb_codec::JpegEncoder;
    use dlb_fpga::{DecodeCmd, DecoderMirror, DeviceSpec, FpgaDevice, MapResolver, OutputFormat};
    use dlb_membridge::{MemManager, PoolConfig};
    use std::sync::Arc;

    fn setup() -> (FpgaChannel, Arc<MapResolver>, MemManager) {
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let resolver = Arc::new(MapResolver::new());
        let engine = DecoderEngine::start(dev, resolver.clone()).unwrap();
        let pool = MemManager::new(PoolConfig {
            unit_size: 1 << 20,
            unit_count: 4,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        (FpgaChannel::init(engine, 0), resolver, pool)
    }

    fn submission(resolver: &MapResolver, pool: &MemManager, key: u64) -> Submission {
        let img = generate(40, 30, SynthStyle::Photo, key);
        let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
        let src = resolver.put_disk(key * 1_000_000, bytes);
        let mut unit = pool.get_item().unwrap();
        let off = unit.reserve(16 * 16 * 3, key, 16, 16, 3).unwrap();
        let cmd = DecodeCmd {
            cmd_id: key,
            src,
            dst_phys: unit.phys_addr() + off as u64,
            dst_capacity: 16 * 16 * 3,
            target_w: 16,
            target_h: 16,
            format: OutputFormat::Rgb8,
        };
        Submission {
            unit,
            cmds: vec![cmd.pack()],
        }
    }

    #[test]
    fn submit_and_drain_roundtrip() {
        let (chan, resolver, pool) = setup();
        assert_eq!(chan.queue_id(), 0);
        let mut got = chan.submit_cmd(submission(&resolver, &pool, 1)).unwrap();
        // The batch may or may not have completed by the time submit
        // returned; drain until it shows up.
        while got.is_empty() {
            got = chan.drain_out();
            std::thread::yield_now();
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].ok_count(), 1);
        assert_eq!(chan.in_flight(), 0);
        pool.recycle_item(got.pop().unwrap().unit).unwrap();
        let device = chan.recycle();
        assert!(device.mirror().is_some());
    }

    #[test]
    fn wait_one_blocks_until_completion() {
        let (chan, resolver, pool) = setup();
        // submit_cmd opportunistically drains: completions may come back
        // from either call and must be counted, or a fast engine makes
        // wait_one block forever.
        let mut seen = chan
            .submit_cmd(submission(&resolver, &pool, 2))
            .unwrap()
            .len();
        seen += chan
            .submit_cmd(submission(&resolver, &pool, 3))
            .unwrap()
            .len();
        while seen < 2 {
            match chan.wait_one() {
                Some(_) => seen += 1,
                None => panic!("completion queue closed with {seen}/2 seen"),
            }
        }
        assert_eq!(chan.in_flight(), 0);
    }
}

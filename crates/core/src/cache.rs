//! The hybrid first-epoch memory cache.
//!
//! §3.1: "DLBooster preprocesses all data in the first epoch and caches them
//! in memory as it can. After that, DLBooster loads the processed data from
//! the memory cache in the following epochs." This is what makes the
//! LeNet-5/MNIST training rows of Figs. 5(a)/6(a) cheap for every backend:
//! the decoded dataset fits in RAM, so after epoch 0 nobody decodes at all.
//! ILSVRC-scale datasets exceed the budget and the cache stays partial.

use dlb_membridge::ItemDesc;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One cached decoded batch: payload plus item layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedBatch {
    /// Decoded payload bytes.
    pub payload: Vec<u8>,
    /// Item descriptors (offsets into `payload`).
    pub items: Vec<ItemDesc>,
}

impl CachedBatch {
    /// Payload size.
    pub fn byte_len(&self) -> usize {
        self.payload.len()
    }
}

/// A bounded decoded-batch cache keyed by batch index within the epoch.
#[derive(Debug)]
pub struct EpochCache {
    capacity_bytes: u64,
    used_bytes: AtomicU64,
    map: Mutex<HashMap<u64, CachedBatch>>,
    hits: AtomicU64,
    misses: AtomicU64,
    rejected: AtomicU64,
}

impl EpochCache {
    /// A cache bounded at `capacity_bytes` of payload.
    pub fn new(capacity_bytes: u64) -> Self {
        Self {
            capacity_bytes,
            used_bytes: AtomicU64::new(0),
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Tries to insert batch `index`; returns false (and records a
    /// rejection) if the budget is exhausted — "as it can".
    pub fn try_put(&self, index: u64, batch: CachedBatch) -> bool {
        let len = batch.byte_len() as u64;
        let mut map = self.map.lock();
        if map.contains_key(&index) {
            return true; // already cached
        }
        let used = self.used_bytes.load(Ordering::Relaxed);
        if used + len > self.capacity_bytes {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        self.used_bytes.fetch_add(len, Ordering::Relaxed);
        map.insert(index, batch);
        true
    }

    /// Looks a batch up, counting hit/miss.
    pub fn get(&self, index: u64) -> Option<CachedBatch> {
        let map = self.map.lock();
        match map.get(&index) {
            Some(b) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(b.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// True if every batch of a `total`-batch epoch is cached (the
    /// all-epochs-from-RAM fast path).
    pub fn covers_epoch(&self, total_batches: u64) -> bool {
        let map = self.map.lock();
        (0..total_batches).all(|i| map.contains_key(&i))
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Configured budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// (hits, misses, rejected-inserts).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.rejected.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(bytes: usize) -> CachedBatch {
        CachedBatch {
            payload: vec![7u8; bytes],
            items: vec![ItemDesc {
                offset: 0,
                len: bytes,
                label: 1,
                width: 1,
                height: 1,
                channels: 1,
            }],
        }
    }

    #[test]
    fn put_get_hit_miss() {
        let c = EpochCache::new(1000);
        assert!(c.try_put(0, batch(400)));
        assert!(c.get(0).is_some());
        assert!(c.get(1).is_none());
        let (h, m, r) = c.stats();
        assert_eq!((h, m, r), (1, 1, 0));
        assert_eq!(c.used_bytes(), 400);
    }

    #[test]
    fn budget_enforced() {
        let c = EpochCache::new(1000);
        assert!(c.try_put(0, batch(600)));
        assert!(!c.try_put(1, batch(600)), "must reject over budget");
        assert!(c.try_put(2, batch(400)));
        let (_, _, rejected) = c.stats();
        assert_eq!(rejected, 1);
        assert_eq!(c.used_bytes(), 1000);
    }

    #[test]
    fn duplicate_put_is_idempotent() {
        let c = EpochCache::new(1000);
        assert!(c.try_put(0, batch(300)));
        assert!(c.try_put(0, batch(300)));
        assert_eq!(c.used_bytes(), 300);
    }

    #[test]
    fn epoch_coverage() {
        let c = EpochCache::new(10_000);
        for i in 0..4 {
            c.try_put(i, batch(10));
        }
        assert!(c.covers_epoch(4));
        assert!(!c.covers_epoch(5));
        // MNIST-vs-ILSVRC shape: a small dataset fits, a big one doesn't.
        let small_total = 4 * 10u64;
        let big_total = 4 * 10_000u64;
        assert!(small_total <= c.capacity_bytes());
        assert!(big_total > c.capacity_bytes());
    }
}

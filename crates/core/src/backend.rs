//! The backend interface compute engines program against.
//!
//! §3.1: "DLBooster decouples the complex data preprocessing workloads from
//! compute engines to flexibly adapt to different DL frameworks … users can
//! easily integrate it with different DL libraries." The decoupling point is
//! this trait: NVCaffe-like trainers and TensorRT-like inference engines
//! (`dlb-engines`) call `next_batch`/`recycle` and never learn whether the
//! pixels came from an FPGA, a CPU pool, an LMDB scan, or nvJPEG.

use dlb_membridge::BatchUnit;
use std::time::Instant;

/// A decoded batch ready for H2D transfer.
#[derive(Debug)]
pub struct HostBatch {
    /// The buffer holding decoded pixels (items described by
    /// [`BatchUnit::items`]).
    pub unit: BatchUnit,
    /// Monotone batch sequence number (per backend).
    pub sequence: u64,
    /// When the batch became ready (wall clock; inference latency metric).
    pub ready_at: Instant,
    /// Request arrival timestamps (nanos) for latency accounting, parallel
    /// to `unit.items()` — empty in training mode.
    pub arrivals: Vec<u64>,
    /// Trace ordinal (`dlb-trace` batch identity) assigned by the producing
    /// stage; `0` when tracing is disabled. Rides with the batch through
    /// every hand-off so downstream spans key to the same identity.
    pub trace: u64,
}

impl HostBatch {
    /// Images in the batch.
    pub fn len(&self) -> usize {
        self.unit.item_count()
    }

    /// True when the batch carries no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Backend failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// No more data will ever arrive (stream closed and drained).
    Exhausted,
    /// The backend was shut down.
    Stopped,
    /// An internal component failed.
    Failed {
        /// Description.
        detail: String,
    },
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Exhausted => write!(f, "backend exhausted"),
            BackendError::Stopped => write!(f, "backend stopped"),
            BackendError::Failed { detail } => write!(f, "backend failed: {detail}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A data-preprocessing backend serving one or more compute engines.
pub trait PreprocessBackend: Send + Sync {
    /// Backend name as the paper labels it ("DLBooster", "CPU-based", …).
    fn name(&self) -> &'static str;

    /// Blocks until the next batch for engine `slot` is ready.
    fn next_batch(&self, slot: usize) -> Result<HostBatch, BackendError>;

    /// Returns a consumed batch's buffer for reuse.
    fn recycle(&self, unit: BatchUnit);

    /// Capacity in bytes of the largest batch this backend delivers —
    /// engines size their device-side transfer buffers from this.
    fn max_batch_bytes(&self) -> usize;

    /// Total CPU busy time this backend has accumulated, in nanoseconds —
    /// the "CPU cost (# cores)" numerator of Figs. 2(b)/6/9.
    fn cpu_busy_nanos(&self) -> u64;

    /// Stops all daemons; subsequent `next_batch` calls fail.
    fn shutdown(&self);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_membridge::{MemManager, PoolConfig};

    #[test]
    fn host_batch_len_tracks_items() {
        let pool = MemManager::new(PoolConfig {
            unit_size: 1024,
            unit_count: 1,
            phys_base: 0,
        })
        .unwrap();
        let mut unit = pool.get_item().unwrap();
        unit.append(&[1, 2], 0, 1, 1, 2).unwrap();
        unit.append(&[3, 4], 1, 1, 1, 2).unwrap();
        let batch = HostBatch {
            unit,
            sequence: 7,
            ready_at: Instant::now(),
            arrivals: vec![],
            trace: 0,
        };
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        pool.recycle_item(batch.unit).unwrap();
    }

    #[test]
    fn error_display() {
        assert!(BackendError::Exhausted.to_string().contains("exhausted"));
        assert!(BackendError::Failed { detail: "x".into() }
            .to_string()
            .contains("x"));
    }
}

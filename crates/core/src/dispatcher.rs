//! `Dispatcher` — Algorithm 3: round-robin delivery of host batches to
//! per-engine Trans Queues with asynchronous H2D copies.
//!
//! "the Dispatcher tries to obtain a batch of processed data … and
//! dispatches it to different GPU devices with round-robin scheduling …
//! asynchronously dispatches data on a specified stream. After submitting
//! all copying operations to GPU streams, the Dispatcher will be blocked to
//! synchronize these operations … and the occupied memory units will be
//! released and recycled." (§3.4.3)
//!
//! The dispatcher is backend-agnostic: it pulls from any
//! [`PreprocessBackend`], so NVCaffe-like and TensorRT-like engines get an
//! identical GPU-side path regardless of who decoded the pixels.

use crate::backend::{BackendError, HostBatch, PreprocessBackend};
use dlb_gpu::stream::{CompletedOp, GpuOp};
use dlb_gpu::{DeviceBuffer, StreamSet};
use dlb_membridge::{BlockingQueue, ItemDesc};
use dlb_telemetry::{names, Counter, Histogram, Telemetry};
use dlb_trace::{stages, SpanKind, Tracer};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A batch landed in device memory, ready for kernels.
#[derive(Debug)]
pub struct DeviceBatch {
    /// Device buffer holding the batch payload.
    pub dev: DeviceBuffer,
    /// Item layout within the buffer.
    pub items: Vec<ItemDesc>,
    /// Batch sequence number.
    pub sequence: u64,
    /// When the host batch became ready (latency accounting).
    pub ready_at: Instant,
    /// Per-item arrival nanos (inference latency accounting).
    pub arrivals: Vec<u64>,
}

/// The per-engine queue pair of §3.4.3: "each GPU engine communicates with
/// the global Dispatcher using a pair of Trans Queues".
#[derive(Debug)]
pub struct TransQueues {
    /// Engine → dispatcher: empty device buffers.
    pub free: BlockingQueue<DeviceBuffer>,
    /// Dispatcher → engine: filled device batches.
    pub full: BlockingQueue<DeviceBatch>,
}

impl TransQueues {
    fn new(depth: usize) -> Self {
        Self {
            free: BlockingQueue::bounded(depth),
            full: BlockingQueue::bounded(depth),
        }
    }
}

/// Dispatcher counters, registered in the pipeline telemetry registry.
#[derive(Debug)]
pub struct DispatcherStats {
    /// Batches dispatched.
    pub batches: Arc<Counter>,
    /// Bytes copied H2D.
    pub bytes_copied: Arc<Counter>,
    /// Copy errors (device buffer too small).
    pub copy_errors: Arc<Counter>,
    /// Host CPU busy nanos in the dispatch loop.
    pub cpu_busy_nanos: Arc<Counter>,
    /// Submit-to-synchronized latency of each H2D copy.
    pub copy_latency: Arc<Histogram>,
}

impl DispatcherStats {
    fn register(telemetry: &Telemetry) -> Self {
        Self {
            batches: telemetry.registry.counter(names::DISPATCHER_BATCHES),
            bytes_copied: telemetry.registry.counter(names::DISPATCHER_BYTES_COPIED),
            copy_errors: telemetry.registry.counter(names::DISPATCHER_COPY_ERRORS),
            cpu_busy_nanos: telemetry.registry.counter(names::DISPATCHER_CPU_BUSY_NANOS),
            copy_latency: telemetry.registry.histogram(names::DISPATCHER_COPY_LATENCY),
        }
    }
}

/// The running dispatcher daemon.
pub struct Dispatcher {
    handle: Option<JoinHandle<()>>,
    trans: Vec<Arc<TransQueues>>,
    stats: Arc<DispatcherStats>,
}

impl Dispatcher {
    /// Starts dispatching from `backend` to `n_engines` Trans Queue pairs,
    /// copying over `streams` (one per engine). `pcie_bytes_per_sec` prices
    /// the async copies; `time_scale` compresses modelled time exactly like
    /// the streams do.
    pub fn start(
        backend: Arc<dyn PreprocessBackend>,
        streams: Arc<StreamSet>,
        n_engines: usize,
        queue_depth: usize,
        pcie_bytes_per_sec: f64,
    ) -> Self {
        Self::start_with_telemetry(
            backend,
            streams,
            n_engines,
            queue_depth,
            pcie_bytes_per_sec,
            &Telemetry::with_defaults(),
        )
    }

    /// Like [`Dispatcher::start`], but recording `dispatcher.*` metrics into
    /// the shared pipeline `telemetry`.
    pub fn start_with_telemetry(
        backend: Arc<dyn PreprocessBackend>,
        streams: Arc<StreamSet>,
        n_engines: usize,
        queue_depth: usize,
        pcie_bytes_per_sec: f64,
        telemetry: &Telemetry,
    ) -> Self {
        assert!(n_engines >= 1 && streams.len() >= n_engines);
        assert!(pcie_bytes_per_sec > 0.0);
        let trans: Vec<Arc<TransQueues>> = (0..n_engines)
            .map(|slot| {
                let tq = Arc::new(TransQueues::new(queue_depth.max(1)));
                tq.full.instrument(telemetry, &format!("trans{slot}.full"));
                tq
            })
            .collect();
        let stats = Arc::new(DispatcherStats::register(telemetry));
        let t = trans.clone();
        let st = Arc::clone(&stats);
        let tc = telemetry.tracer_cell();
        let handle = std::thread::Builder::new()
            .name("dispatcher".into())
            .spawn(move || run_dispatcher(backend, streams, t, st, pcie_bytes_per_sec, tc))
            .expect("spawn dispatcher");
        Self {
            handle: Some(handle),
            trans,
            stats,
        }
    }

    /// The Trans Queues of engine `slot` (engines keep a clone).
    pub fn trans_queues(&self, slot: usize) -> Arc<TransQueues> {
        Arc::clone(&self.trans[slot])
    }

    /// Counters.
    pub fn stats(&self) -> &DispatcherStats {
        &self.stats
    }

    /// Waits for the dispatcher to finish (it exits when the backend is
    /// exhausted or stopped; the full queues are closed on exit).
    pub fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct PendingMeta {
    sequence: u64,
    items: Vec<ItemDesc>,
    ready_at: Instant,
    arrivals: Vec<u64>,
    submitted_at: Instant,
    trace: u64,
}

fn run_dispatcher(
    backend: Arc<dyn PreprocessBackend>,
    streams: Arc<StreamSet>,
    trans: Vec<Arc<TransQueues>>,
    stats: Arc<DispatcherStats>,
    pcie_bytes_per_sec: f64,
    tracer_cell: Arc<OnceLock<Arc<Tracer>>>,
) {
    let n = trans.len();
    let mut pending: Vec<Option<PendingMeta>> = (0..n).map(|_| None).collect();
    'outer: loop {
        // Round-robin submission phase (Alg. 3 lines 1–11).
        let mut submitted_any = false;
        for slot in 0..n {
            let batch: HostBatch = match backend.next_batch(slot) {
                Ok(b) => b,
                Err(BackendError::Exhausted) | Err(BackendError::Stopped) => break 'outer,
                Err(BackendError::Failed { .. }) => break 'outer,
            };
            let t0 = Instant::now();
            let dev = match trans[slot].free.pop() {
                Ok(d) => d,
                Err(_) => {
                    backend.recycle(batch.unit);
                    break 'outer;
                }
            };
            let bytes = batch.unit.used();
            let duration = Duration::from_secs_f64(bytes as f64 / pcie_bytes_per_sec);
            pending[slot] = Some(PendingMeta {
                sequence: batch.sequence,
                items: batch.unit.items().to_vec(),
                ready_at: batch.ready_at,
                arrivals: batch.arrivals.clone(),
                submitted_at: t0,
                trace: batch.trace,
            });
            streams.stream(slot).enqueue(GpuOp::MemcpyH2D {
                host: batch.unit,
                dev,
                duration,
            });
            stats.bytes_copied.add(bytes as u64);
            stats.cpu_busy_nanos.add(t0.elapsed().as_nanos() as u64);
            submitted_any = true;
        }

        // Synchronisation + recycle phase (Alg. 3 lines 12–18).
        for slot in 0..n {
            let Some(meta) = pending[slot].take() else {
                continue;
            };
            let completed = streams.stream(slot).synchronize();
            stats
                .copy_latency
                .record_duration(meta.submitted_at.elapsed());
            if let Some(t) = tracer_cell.get() {
                if meta.trace != 0 {
                    t.span(
                        meta.trace,
                        stages::DISPATCH_H2D,
                        SpanKind::Service,
                        meta.submitted_at,
                        Instant::now(),
                    );
                }
            }
            let t0 = Instant::now();
            for op in completed {
                if let CompletedOp::MemcpyH2D { host, dev, error } = op {
                    backend.recycle(host);
                    if error.is_some() {
                        stats.copy_errors.inc();
                        // Buffer goes back to the engine's free queue unused.
                        let _ = trans[slot].free.push(dev);
                        continue;
                    }
                    let dispatched = DeviceBatch {
                        dev,
                        items: meta.items.clone(),
                        sequence: meta.sequence,
                        ready_at: meta.ready_at,
                        arrivals: meta.arrivals.clone(),
                    };
                    stats.batches.inc();
                    if trans[slot].full.push(dispatched).is_err() {
                        break 'outer;
                    }
                }
            }
            stats.cpu_busy_nanos.add(t0.elapsed().as_nanos() as u64);
        }
        if !submitted_any {
            break;
        }
    }
    // Final drain: a round may have been interrupted mid-submission (odd
    // batch totals); synchronize every stream and recycle what remains so
    // no unit or buffer is stranded.
    for slot in 0..n {
        let meta = pending[slot].take();
        for op in streams.stream(slot).synchronize() {
            if let CompletedOp::MemcpyH2D { host, dev, error } = op {
                backend.recycle(host);
                match (&meta, error) {
                    (Some(m), None) => {
                        let _ = trans[slot].full.push(DeviceBatch {
                            dev,
                            items: m.items.clone(),
                            sequence: m.sequence,
                            ready_at: m.ready_at,
                            arrivals: m.arrivals.clone(),
                        });
                        stats.batches.inc();
                    }
                    _ => {
                        let _ = trans[slot].free.push(dev);
                    }
                }
            }
        }
    }
    for t in &trans {
        t.full.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendError;
    use dlb_gpu::{GpuDevice, GpuSpec};
    use dlb_membridge::{BatchUnit, MemManager, PoolConfig};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A deterministic in-memory backend producing `total` batches of
    /// `items_per_batch` tagged items.
    struct ScriptedBackend {
        pool: MemManager,
        produced: AtomicU64,
        total: u64,
        items_per_batch: usize,
        recycled: AtomicU64,
        lock: Mutex<()>,
    }

    impl ScriptedBackend {
        fn new(total: u64, items_per_batch: usize) -> Self {
            Self {
                pool: MemManager::new(PoolConfig {
                    unit_size: 4096,
                    unit_count: 8,
                    phys_base: 0,
                })
                .unwrap(),
                produced: AtomicU64::new(0),
                total,
                items_per_batch,
                recycled: AtomicU64::new(0),
                lock: Mutex::new(()),
            }
        }
    }

    impl PreprocessBackend for ScriptedBackend {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn next_batch(&self, _slot: usize) -> Result<HostBatch, BackendError> {
            let _g = self.lock.lock();
            let seq = self.produced.load(Ordering::SeqCst);
            if seq >= self.total {
                return Err(BackendError::Exhausted);
            }
            self.produced.fetch_add(1, Ordering::SeqCst);
            let mut unit = self.pool.get_item().map_err(|e| BackendError::Failed {
                detail: e.to_string(),
            })?;
            for i in 0..self.items_per_batch {
                let tag = (seq as u8).wrapping_add(i as u8);
                unit.append(&[tag; 16], seq * 100 + i as u64, 4, 4, 1)
                    .unwrap();
            }
            unit.seal(seq);
            Ok(HostBatch {
                unit,
                sequence: seq,
                ready_at: Instant::now(),
                arrivals: vec![seq * 10; self.items_per_batch],
                trace: 0,
            })
        }
        fn recycle(&self, unit: BatchUnit) {
            self.recycled.fetch_add(1, Ordering::SeqCst);
            self.pool.recycle_item(unit).unwrap();
        }
        fn max_batch_bytes(&self) -> usize {
            self.pool.unit_size()
        }
        fn cpu_busy_nanos(&self) -> u64 {
            0
        }
        fn shutdown(&self) {}
    }

    #[test]
    fn dispatches_round_robin_and_recycles() {
        let backend = Arc::new(ScriptedBackend::new(6, 2));
        let streams = Arc::new(StreamSet::new("disp", 2, 0.0));
        let gpus: Vec<GpuDevice> = (0..2)
            .map(|i| GpuDevice::new(GpuSpec::tesla_p100(), i))
            .collect();
        let dispatcher = Dispatcher::start(backend.clone(), streams, 2, 4, 12.0e9);
        let tq0 = dispatcher.trans_queues(0);
        let tq1 = dispatcher.trans_queues(1);
        // Engines supply device buffers.
        for (i, tq) in [&tq0, &tq1].iter().enumerate() {
            for _ in 0..3 {
                tq.free.push(gpus[i].alloc(4096).unwrap()).unwrap();
            }
        }
        // Collect per-slot sequences.
        let mut slot0 = Vec::new();
        while let Ok(db) = tq0.full.pop() {
            assert_eq!(db.items.len(), 2);
            // Payload actually copied to "device memory".
            assert_eq!(db.dev.bytes()[0], db.sequence as u8);
            slot0.push(db.sequence);
            tq0.free.push(db.dev).unwrap();
        }
        let mut slot1 = Vec::new();
        while let Ok(db) = tq1.full.pop() {
            slot1.push(db.sequence);
            tq1.free.push(db.dev).unwrap();
        }
        dispatcher.join();
        // Round-robin: even sequences to slot 0, odd to slot 1.
        assert_eq!(slot0, vec![0, 2, 4]);
        assert_eq!(slot1, vec![1, 3, 5]);
        assert_eq!(backend.recycled.load(Ordering::SeqCst), 6);
        assert_eq!(backend.pool.free_count(), 8);
    }

    #[test]
    fn arrivals_travel_with_batches() {
        let backend = Arc::new(ScriptedBackend::new(2, 3));
        let streams = Arc::new(StreamSet::new("arr", 1, 0.0));
        let gpu = GpuDevice::new(GpuSpec::tesla_p100(), 0);
        let dispatcher = Dispatcher::start(backend, streams, 1, 2, 12.0e9);
        let tq = dispatcher.trans_queues(0);
        tq.free.push(gpu.alloc(4096).unwrap()).unwrap();
        tq.free.push(gpu.alloc(4096).unwrap()).unwrap();
        let a = tq.full.pop().unwrap();
        assert_eq!(a.arrivals, vec![0, 0, 0]);
        tq.free.push(a.dev).unwrap();
        let b = tq.full.pop().unwrap();
        assert_eq!(b.arrivals, vec![10, 10, 10]);
        tq.free.push(b.dev).unwrap();
        assert!(tq.full.pop().is_err(), "closed after exhaustion");
        dispatcher.join();
    }

    #[test]
    fn copy_error_recycles_and_counts() {
        let backend = Arc::new(ScriptedBackend::new(1, 1));
        let streams = Arc::new(StreamSet::new("err", 1, 0.0));
        let gpu = GpuDevice::new(GpuSpec::tesla_p100(), 0);
        let dispatcher = Dispatcher::start(backend.clone(), streams, 1, 2, 12.0e9);
        let tq = dispatcher.trans_queues(0);
        // Deliberately undersized device buffer (payload is 16 bytes).
        tq.free.push(gpu.alloc(4).unwrap()).unwrap();
        // The batch errors; queue closes with nothing delivered.
        assert!(tq.full.pop().is_err());
        dispatcher.join();
        assert_eq!(backend.recycled.load(Ordering::SeqCst), 1);
    }
}

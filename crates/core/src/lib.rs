//! # dlbooster-core
//!
//! The paper's primary contribution: the host bridger that couples the FPGA
//! decoder to GPU compute engines (paper §3.4, Algorithms 1–3, Table 1).
//!
//! * [`collector`] — `DataCollector`: translates file metadata from disk
//!   manifests (`load_from_disk`) or NIC RX descriptors (`load_from_net`)
//!   into decode-cmd material.
//! * [`resolver`] — binds the FPGA DataReader's fetch ports to the NVMe
//!   disk and the NIC RX buffers.
//! * [`channel`] — `FPGAChannel`: the cmd-FIFO / FINISH-signal abstraction
//!   over a decoder engine (`submit_cmd` / `drain_out`, Table 1).
//! * [`reader`] — `FPGAReader` (Algorithm 1): the asynchronous daemon that
//!   leases batch buffers, packs cmds, and keeps the decoder fed.
//! * [`dispatcher`] — `Dispatcher` (Algorithm 3): round-robin delivery of
//!   full batches to per-engine Trans Queues with async H2D copies.
//! * [`cache`] — the hybrid first-epoch memory cache (§3.1: "DLBooster
//!   preprocesses all data in the first epoch and caches them in memory as
//!   it can").
//! * [`backend`] — the `PreprocessBackend` trait every backend (DLBooster
//!   and the three baselines in `dlb-backends`) implements, so compute
//!   engines stay backend-agnostic (§3.1 programming flexibility).
//! * [`booster`] — the assembled `DlBooster` backend.

pub mod backend;
pub mod booster;
pub mod cache;
pub mod channel;
pub mod collector;
pub mod dispatcher;
pub mod reader;
pub mod resolver;

pub use backend::{BackendError, HostBatch, PreprocessBackend};
pub use booster::{DlBooster, DlBoosterConfig};
pub use cache::EpochCache;
pub use channel::FpgaChannel;
pub use collector::{DataCollector, FileMeta};
pub use dispatcher::{Dispatcher, TransQueues};
pub use reader::{augment_identity, sample_key, FpgaReader, ReaderConfig};
pub use resolver::CombinedResolver;

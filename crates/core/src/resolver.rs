//! Binds the FPGA DataReader's two fetch ports ("DMA from Disk", "DMA from
//! DRAM", Fig. 4) to the storage and network substrates.

use dlb_fpga::{DataRef, DataSourceResolver};
use dlb_net::NicRx;
use dlb_storage::NvmeDisk;
use std::sync::Arc;

/// Resolver over an optional NVMe disk and an optional NIC RX engine.
pub struct CombinedResolver {
    disk: Option<Arc<NvmeDisk>>,
    nic: Option<Arc<NicRx>>,
}

impl CombinedResolver {
    /// Disk-only resolver (offline training).
    pub fn disk_only(disk: Arc<NvmeDisk>) -> Self {
        Self {
            disk: Some(disk),
            nic: None,
        }
    }

    /// NIC-only resolver (online inference).
    pub fn nic_only(nic: Arc<NicRx>) -> Self {
        Self {
            disk: None,
            nic: Some(nic),
        }
    }

    /// Both sources attached.
    pub fn new(disk: Arc<NvmeDisk>, nic: Arc<NicRx>) -> Self {
        Self {
            disk: Some(disk),
            nic: Some(nic),
        }
    }
}

impl DataSourceResolver for CombinedResolver {
    fn fetch(&self, src: &DataRef) -> Result<Vec<u8>, String> {
        match *src {
            DataRef::Disk { offset, len } => {
                let disk = self
                    .disk
                    .as_ref()
                    .ok_or_else(|| "no disk attached to this resolver".to_string())?;
                disk.read(offset, len).map(|arc| arc.as_ref().clone())
            }
            DataRef::HostMem { phys_addr, len } => {
                let nic = self
                    .nic
                    .as_ref()
                    .ok_or_else(|| "no NIC attached to this resolver".to_string())?;
                nic.fetch(phys_addr, len)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_net::{Frame, NicSpec};
    use dlb_storage::NvmeSpec;

    #[test]
    fn resolves_disk_refs() {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let (off, len) = disk.append(vec![5, 6, 7]).unwrap();
        let r = CombinedResolver::disk_only(Arc::clone(&disk));
        assert_eq!(
            r.fetch(&DataRef::Disk { offset: off, len }).unwrap(),
            vec![5, 6, 7]
        );
        assert!(r
            .fetch(&DataRef::HostMem {
                phys_addr: 0,
                len: 1
            })
            .is_err());
    }

    #[test]
    fn resolves_nic_refs() {
        let nic = Arc::new(NicRx::new(NicSpec::forty_gbps(), 0x9000_0000));
        let wire = Frame {
            request_id: 1,
            client_id: 0,
            send_ts_nanos: 0,
            payload: vec![9; 20],
        }
        .encode();
        let d = nic.deliver(&wire, 0).unwrap();
        let r = CombinedResolver::nic_only(Arc::clone(&nic));
        assert_eq!(
            r.fetch(&DataRef::HostMem {
                phys_addr: d.phys_addr,
                len: d.len
            })
            .unwrap(),
            vec![9; 20]
        );
        assert!(r.fetch(&DataRef::Disk { offset: 0, len: 1 }).is_err());
    }
}

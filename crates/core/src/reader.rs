//! `FPGAReader` — the asynchronous feeding daemon of Algorithm 1.
//!
//! The loop structure is the paper's, line for line:
//!
//! * lease a memory holder from the free pool (`free_batch_queue.peak/pop`,
//!   lines 5–10) — and while none is available, *drain completed batches out
//!   of the decoder instead of spinning* (lines 6–9), which simultaneously
//!   applies back-pressure and keeps the full queue fed;
//! * generate cmds carrying `mem_holder.phyaddr() + offset` (line 12);
//! * submit asynchronously and push whatever came back (lines 13–15);
//! * on shutdown, drain everything and recycle (lines 16–19).

use crate::backend::HostBatch;
use crate::channel::FpgaChannel;
use crate::collector::DataCollector;
use dlb_cache::{CachedSample, SampleCache, SampleKey};
use dlb_fpga::{CompletedBatch, DataRef, DecodeCmd, FpgaError, OutputFormat, Submission};
use dlb_graph::{source_identity, SampleAugmentor};
use dlb_membridge::{BatchUnit, BlockingQueue, MemManager};
use dlb_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use dlb_trace::{stages, SpanKind, Tracer};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// The cache identity of a decode source. NIC ring descriptors have none:
/// RX rings reuse physical addresses, so a `(phys, len)` pair aliases
/// different payloads over time and must never be used as a cache key.
pub fn sample_key(src: &DataRef) -> Option<SampleKey> {
    match src {
        DataRef::Disk { offset, len } => Some(SampleKey::Disk {
            offset: *offset,
            len: *len,
        }),
        DataRef::HostMem { .. } => None,
    }
}

/// Compressed payload size — the FPGA path's relative redecode-cost signal.
fn src_len(src: &DataRef) -> u64 {
    match src {
        DataRef::Disk { len, .. } | DataRef::HostMem { len, .. } => *len as u64,
    }
}

/// Stable augmentation identity of a decode source (see
/// `dlb_graph::seed`): a hash of the source location, invariant to worker
/// count, batch composition, delivery order, and retries.
pub fn augment_identity(src: &DataRef) -> u64 {
    match src {
        DataRef::Disk { offset, len } => source_identity(0, *offset, *len as u64),
        DataRef::HostMem { phys_addr, len } => source_identity(1, *phys_addr, *len as u64),
    }
}

/// Reader configuration.
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Images per batch.
    pub batch_size: usize,
    /// Resizer output width.
    pub target_w: u16,
    /// Resizer output height.
    pub target_h: u16,
    /// Output pixel format.
    pub format: OutputFormat,
    /// Stop after this many batches (None = run until the collector ends).
    pub max_batches: Option<u64>,
    /// Per-submission completion deadline. When a batch stays in flight
    /// longer than this, the reader abandons it and resubmits its cmds
    /// (fresh ids, fresh buffer); the late original is dropped on arrival,
    /// so no batch is ever lost *or* duplicated. None disables the watchdog.
    pub cmd_timeout: Option<Duration>,
    /// Depth of the full-batch queue between the reader and its consumer —
    /// the prefetch window a compiled graph sets from the source stage's
    /// `queue_depth` knob (the pre-graph pipeline hardwired 64).
    pub full_queue_depth: usize,
    /// Host-side per-sample augmentation applied after FINISH (and to
    /// cache-bypassed samples), keyed by `(epoch, source identity)` so
    /// every draw replays bitwise from the run seed. `None` delivers raw
    /// decoded pixels — the paper's pipeline.
    pub augmentor: Option<SampleAugmentor>,
}

impl ReaderConfig {
    /// Bytes one decoded item occupies.
    pub fn item_bytes(&self) -> usize {
        self.target_w as usize * self.target_h as usize * self.format.bytes_per_pixel() as usize
    }
}

/// Counters exposed by the reader — `reader.*` telemetry handles.
#[derive(Debug)]
pub struct ReaderStats {
    /// Batches submitted to the decoder.
    pub batches_submitted: Arc<Counter>,
    /// Batches pushed to the full queue.
    pub batches_completed: Arc<Counter>,
    /// Batches submitted but never completed (pipeline torn down with
    /// work in flight).
    pub batch_errors: Arc<Counter>,
    /// Items whose decode failed.
    pub item_errors: Arc<Counter>,
    /// Nanoseconds of host CPU busy time in the reader loop (cmd
    /// generation + queue work — the tiny "preprocessing" CPU cost of
    /// Fig. 6(d)).
    pub cpu_busy_nanos: Arc<Counter>,
    /// Submit→completion latency per batch (ns).
    pub submit_latency: Arc<Histogram>,
    /// Batches currently in flight on the device.
    pub inflight: Arc<Gauge>,
    /// Submissions that exceeded the cmd timeout (`retry.cmd_timeouts`).
    pub cmd_timeouts: Arc<Counter>,
    /// Submissions re-issued after a timeout (`retry.cmd_resubmits`).
    pub cmd_resubmits: Arc<Counter>,
    /// Abandoned originals that completed late and were dropped
    /// (`retry.late_completions`).
    pub late_completions: Arc<Counter>,
}

impl ReaderStats {
    fn register(telemetry: &Telemetry) -> Self {
        Self {
            batches_submitted: telemetry.registry.counter(names::READER_BATCHES_SUBMITTED),
            batches_completed: telemetry.registry.counter(names::READER_BATCHES_COMPLETED),
            batch_errors: telemetry.registry.counter(names::READER_BATCH_ERRORS),
            item_errors: telemetry.registry.counter(names::READER_ITEM_ERRORS),
            cpu_busy_nanos: telemetry.registry.counter(names::READER_CPU_BUSY_NANOS),
            submit_latency: telemetry.registry.histogram(names::READER_SUBMIT_LATENCY),
            inflight: telemetry.registry.gauge(names::READER_INFLIGHT),
            cmd_timeouts: telemetry.registry.counter(names::RETRY_CMD_TIMEOUTS),
            cmd_resubmits: telemetry.registry.counter(names::RETRY_CMD_RESUBMITS),
            late_completions: telemetry.registry.counter(names::RETRY_LATE_COMPLETIONS),
        }
    }
}

/// The running reader daemon.
pub struct FpgaReader {
    handle: Option<JoinHandle<FpgaChannel>>,
    full_queue: BlockingQueue<HostBatch>,
    stats: Arc<ReaderStats>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    cache_cell: Arc<OnceLock<Arc<SampleCache>>>,
}

impl FpgaReader {
    /// Spawns the daemon. Completed batches appear on the returned
    /// [`FpgaReader::full_queue`]. Metrics land in a private registry; use
    /// [`FpgaReader::start_with_telemetry`] to share the pipeline's.
    pub fn start(
        collector: Arc<DataCollector>,
        pool: MemManager,
        channel: FpgaChannel,
        config: ReaderConfig,
    ) -> Self {
        Self::start_with_telemetry(
            collector,
            pool,
            channel,
            config,
            &Telemetry::with_defaults(),
        )
    }

    /// Like [`FpgaReader::start`], but recording `reader.*` metrics and the
    /// full-queue occupancy into the shared pipeline `telemetry`.
    pub fn start_with_telemetry(
        collector: Arc<DataCollector>,
        pool: MemManager,
        channel: FpgaChannel,
        config: ReaderConfig,
        telemetry: &Telemetry,
    ) -> Self {
        assert!(config.batch_size >= 1, "batch size must be >= 1");
        assert!(
            config.item_bytes() * config.batch_size <= pool.unit_size(),
            "pool units ({} B) cannot hold a {}-image batch of {} B items",
            pool.unit_size(),
            config.batch_size,
            config.item_bytes()
        );
        if let Some(aug) = &config.augmentor {
            let out = aug.output_bytes(config.target_w as u32, config.target_h as u32);
            assert!(
                out * config.batch_size <= pool.unit_size(),
                "pool units ({} B) cannot hold a {}-image batch of {} B augmented items",
                pool.unit_size(),
                config.batch_size,
                out
            );
        }
        let full_queue: BlockingQueue<HostBatch> =
            BlockingQueue::bounded(config.full_queue_depth.max(1));
        full_queue.instrument(telemetry, "reader_full");
        let stats = Arc::new(ReaderStats::register(telemetry));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let cache_cell: Arc<OnceLock<Arc<SampleCache>>> = Arc::new(OnceLock::new());
        let fq = full_queue.clone();
        let st = Arc::clone(&stats);
        let sp = Arc::clone(&stop);
        let cc = Arc::clone(&cache_cell);
        let tc = telemetry.tracer_cell();
        let handle = std::thread::Builder::new()
            .name("fpga-reader".into())
            .spawn(move || run_reader(collector, pool, channel, config, fq, st, sp, cc, tc))
            .expect("spawn reader");
        Self {
            handle: Some(handle),
            full_queue,
            stats,
            stop,
            cache_cell,
        }
    }

    /// Attaches a decoded-sample cache: batches whose every item is
    /// resident are filled from memory and never submitted to the device,
    /// successful decodes are admitted with their compressed size as the
    /// redecode-cost signal, and failed decodes poison their key. First
    /// attach wins (mirrors the chaos `attach_chaos` hooks); the daemon
    /// probes the cell per batch, so attaching mid-run is safe.
    pub fn attach_sample_cache(&self, cache: Arc<SampleCache>) {
        let _ = self.cache_cell.set(cache);
    }

    /// The shared attach cell (the booster keeps a clone so it can attach
    /// after the reader has moved into the router thread).
    pub fn sample_cache_cell(&self) -> Arc<OnceLock<Arc<SampleCache>>> {
        Arc::clone(&self.cache_cell)
    }

    /// The `Full_Batch_Queue` this reader fills.
    pub fn full_queue(&self) -> &BlockingQueue<HostBatch> {
        &self.full_queue
    }

    /// Reader counters.
    pub fn stats(&self) -> &ReaderStats {
        &self.stats
    }

    /// Stops the daemon, returning its channel for reuse.
    pub fn stop(mut self) -> FpgaChannel {
        self.stop.store(true, Ordering::SeqCst);

        self.handle
            .take()
            .expect("stop called once")
            .join()
            .expect("reader panicked")
    }
}

impl Drop for FpgaReader {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for FpgaReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpgaReader")
            .field("full_queue_len", &self.full_queue.len())
            .finish()
    }
}

/// One in-flight submission, keyed by its first cmd id. Carries enough to
/// re-issue the batch after a timeout: sources, labels and dispense epochs
/// (geometry comes from the config). The epoch rides along so a resubmitted
/// sample re-derives the *same* augmentation seed — retries replay bitwise.
struct Pending {
    arrivals: Vec<u64>,
    submitted_at: Instant,
    items: Vec<(DataRef, u64, u64)>,
    /// Trace ordinal the batch keeps across resubmissions (0 = untraced).
    trace: u64,
}

/// Mutable reader-loop state shared by the submit / complete / resubmit
/// paths.
struct ReaderCore<'a> {
    pool: &'a MemManager,
    channel: &'a FpgaChannel,
    config: &'a ReaderConfig,
    full_queue: &'a BlockingQueue<HostBatch>,
    stats: &'a ReaderStats,
    cache: &'a OnceLock<Arc<SampleCache>>,
    tracer: &'a OnceLock<Arc<Tracer>>,
    next_cmd_id: u64,
    next_sequence: u64,
    /// In-flight submissions by first cmd id.
    pending: HashMap<u64, Pending>,
    /// First cmd ids of submissions abandoned after a timeout; their late
    /// completions are dropped (the resubmission is the live one).
    abandoned: HashSet<u64>,
}

impl ReaderCore<'_> {
    /// Reserves `items` into `unit`, packs cmds with fresh ids, registers
    /// the submission, and submits. Returns opportunistically-drained
    /// completions (Alg. 1 lines 13–15).
    fn submit(
        &mut self,
        mut unit: BatchUnit,
        items: Vec<(DataRef, u64, u64)>,
        arrivals: Vec<u64>,
        trace: u64,
    ) -> Result<Vec<CompletedBatch>, FpgaError> {
        let t0 = Instant::now();
        let first_id = self.next_cmd_id;
        let out_len = self.config.item_bytes();
        let out_ch = self.config.format.bytes_per_pixel() as u8;
        let mut cmds = Vec::with_capacity(items.len());
        for (src, label, _epoch) in &items {
            let offset = unit
                .reserve(
                    out_len,
                    *label,
                    self.config.target_w as u32,
                    self.config.target_h as u32,
                    out_ch,
                )
                .expect("batch sized to fit unit");
            cmds.push(
                DecodeCmd {
                    cmd_id: self.next_cmd_id,
                    src: *src,
                    dst_phys: unit.phys_addr() + offset as u64,
                    dst_capacity: out_len as u32,
                    target_w: self.config.target_w,
                    target_h: self.config.target_h,
                    format: self.config.format,
                }
                .pack(),
            );
            self.next_cmd_id += 1;
        }
        self.stats
            .cpu_busy_nanos
            .add(t0.elapsed().as_nanos() as u64);
        self.pending.insert(
            first_id,
            Pending {
                arrivals,
                submitted_at: Instant::now(),
                items,
                trace,
            },
        );
        self.channel.submit_cmd(Submission { unit, cmds })
    }

    /// Routes one completion: abandoned originals are dropped (unit
    /// recycled), live batches are sealed and pushed. Returns false when
    /// the full queue is closed (time to stop).
    fn on_completion(&mut self, done: CompletedBatch) -> bool {
        let key = done.finishes.first().map(|f| f.cmd_id).unwrap_or(u64::MAX);
        if self.abandoned.remove(&key) {
            // The resubmission already carries (or will carry) this data.
            self.stats.late_completions.inc();
            let _ = self.pool.recycle_item(done.unit);
            return true;
        }
        let pending = self.pending.remove(&key);
        let arrivals = pending
            .as_ref()
            .map(|p| p.arrivals.clone())
            .unwrap_or_default();
        let trace = pending.as_ref().map_or(0, |p| p.trace);
        if let Some(p) = &pending {
            self.stats
                .submit_latency
                .record_duration(p.submitted_at.elapsed());
            if let Some(t) = self.tracer.get() {
                t.span(
                    trace,
                    stages::FPGA_DECODE,
                    SpanKind::Service,
                    p.submitted_at,
                    Instant::now(),
                );
            }
        }
        self.stats.inflight.dec();
        let errors = done.finishes.iter().filter(|f| !f.status.is_ok()).count() as u64;
        self.stats.item_errors.add(errors);
        let mut unit = done.unit;
        // Admission boundary: successful decodes enter the sample cache
        // (compressed size as the redecode-cost signal — FINISH signals
        // carry no per-item timing, and entropy bits scale with payload
        // size); failed decodes poison their key so a corrupt source is
        // never admitted, now or on a later epoch.
        if let (Some(cache), Some(p)) = (self.cache.get(), &pending) {
            for (i, (finish, (src, label, _epoch))) in
                done.finishes.iter().zip(&p.items).enumerate()
            {
                let Some(key) = sample_key(src) else { continue };
                if finish.status.is_ok() {
                    let item = unit.items()[i].clone();
                    cache.insert(
                        key,
                        CachedSample {
                            data: Arc::new(unit.item_bytes(i).to_vec()),
                            label: *label,
                            width: item.width,
                            height: item.height,
                            channels: item.channels,
                        },
                        src_len(src),
                    );
                } else {
                    cache.poison(key);
                }
            }
        }
        // Augmentation runs host-side after FINISH (the paper keeps crops
        // and flips off the FPGA, §3.1) and *after* cache admission, so
        // cached samples stay pre-augmentation and every epoch redraws.
        // Draws key on (dispense epoch, source identity) — a resubmitted
        // or replayed sample augments identically.
        if let (Some(aug), Some(p)) = (&self.config.augmentor, &pending) {
            let t0 = Instant::now();
            let rebuilt: Vec<(Vec<u8>, u64, u32, u32, u8)> = p
                .items
                .iter()
                .enumerate()
                .map(|(i, (src, label, epoch))| {
                    let item = unit.items()[i].clone();
                    let out = aug.apply(
                        *epoch,
                        augment_identity(src),
                        unit.item_bytes(i),
                        item.width,
                        item.height,
                        item.channels,
                    );
                    (out.data, *label, out.width, out.height, out.channels)
                })
                .collect();
            unit.reset();
            for (data, label, w, h, c) in &rebuilt {
                unit.append(data, *label, *w, *h, *c);
            }
            self.stats
                .cpu_busy_nanos
                .add(t0.elapsed().as_nanos() as u64);
            if let Some(t) = self.tracer.get() {
                t.span(
                    trace,
                    stages::AUGMENT,
                    SpanKind::Service,
                    t0,
                    Instant::now(),
                );
            }
        }
        unit.seal(self.next_sequence);
        let batch = HostBatch {
            unit,
            sequence: self.next_sequence,
            ready_at: Instant::now(),
            arrivals,
            trace,
        };
        self.next_sequence += 1;
        self.stats.batches_completed.inc();
        self.full_queue.push(batch).is_ok()
    }

    /// Timeout watchdog: if the oldest in-flight submission is past the
    /// deadline and a fresh unit is free, abandon it and re-issue its cmds
    /// under fresh ids. Returns false when the full queue closed while
    /// routing the resubmission's opportunistic completions.
    fn check_timeouts(&mut self, timeout: Duration) -> bool {
        let Some(key) = self
            .pending
            .iter()
            .filter(|(_, p)| p.submitted_at.elapsed() >= timeout)
            .min_by_key(|(_, p)| p.submitted_at)
            .map(|(k, _)| *k)
        else {
            return true;
        };
        // A resubmission needs somewhere to decode into; without a free
        // unit we keep waiting (the wedged unit is captive on the device).
        let Some(unit) = self.pool.try_get_item() else {
            return true;
        };
        let p = self.pending.remove(&key).expect("key from pending");
        self.abandoned.insert(key);
        self.stats.cmd_timeouts.inc();
        self.stats.cmd_resubmits.inc();
        if let Some(t) = self.tracer.get() {
            // The batch keeps its ordinal across the retry; the mark makes
            // the abandoned window visible in the dump.
            t.mark(p.trace, stages::RETRY_RESUBMIT);
        }
        match self.submit(unit, p.items, p.arrivals, p.trace) {
            Ok(done_batches) => {
                for done in done_batches {
                    if !self.on_completion(done) {
                        return false;
                    }
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Blocking wait for one completion, honouring the cmd timeout: each
    /// expiry runs the watchdog before waiting again.
    fn wait_completion(&mut self) -> WaitOutcome {
        match self.config.cmd_timeout {
            None => match self.channel.wait_one() {
                Some(done) => WaitOutcome::Got(done),
                None => WaitOutcome::EngineGone,
            },
            Some(timeout) => loop {
                match self.channel.wait_one_timeout(timeout) {
                    Ok(Some(done)) => return WaitOutcome::Got(done),
                    Ok(None) => {
                        if !self.check_timeouts(timeout) {
                            return WaitOutcome::QueueDown;
                        }
                        if self.channel.in_flight() == 0 {
                            return WaitOutcome::Idle;
                        }
                    }
                    Err(_) => return WaitOutcome::EngineGone,
                }
            },
        }
    }
}

enum WaitOutcome {
    Got(CompletedBatch),
    /// Nothing in flight anymore (everything timed out and was resubmitted
    /// or drained while waiting).
    Idle,
    EngineGone,
    QueueDown,
}

#[allow(clippy::too_many_arguments)]
fn run_reader(
    collector: Arc<DataCollector>,
    pool: MemManager,
    channel: FpgaChannel,
    config: ReaderConfig,
    full_queue: BlockingQueue<HostBatch>,
    stats: Arc<ReaderStats>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    cache_cell: Arc<OnceLock<Arc<SampleCache>>>,
    tracer_cell: Arc<OnceLock<Arc<Tracer>>>,
) -> FpgaChannel {
    let mut core = ReaderCore {
        pool: &pool,
        channel: &channel,
        config: &config,
        full_queue: &full_queue,
        stats: &stats,
        cache: &cache_cell,
        tracer: &tracer_cell,
        next_cmd_id: 0,
        next_sequence: 0,
        pending: HashMap::new(),
        abandoned: HashSet::new(),
    };
    // Batches delivered straight from cache. They never touch
    // `batches_submitted`/`batches_completed` (those count decode-path
    // conservation: submitted == completed + errors), but they do count
    // toward `max_batches` so a bounded reader still stops on time.
    let mut bypassed: u64 = 0;

    'main: while !stop.load(Ordering::SeqCst) {
        if let Some(max) = config.max_batches {
            if stats.batches_submitted.get() + bypassed >= max {
                break;
            }
        }
        // Fetch the next batch worth of metadata.
        let metas = match collector.next_metas(config.batch_size) {
            Some(m) => m,
            None => break, // stream closed and drained
        };
        if metas.is_empty() {
            // Stream idle: surface any completions, then wait briefly.
            for done in channel.drain_out() {
                if !core.on_completion(done) {
                    break 'main;
                }
            }
            if let Some(timeout) = config.cmd_timeout {
                if !core.check_timeouts(timeout) {
                    break 'main;
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
            continue;
        }

        // Lease a holder; while none is free, drain completions (Alg. 1
        // lines 5–9) — this is both back-pressure and forward progress.
        let lease_t0 = tracer_cell.get().map(|_| Instant::now());
        let unit = loop {
            match pool.try_get_item() {
                Some(u) => break u,
                // With work in flight, a completion will free pipeline
                // capacity soon: wait for it and forward it. With nothing
                // in flight the only way a unit comes back is a consumer
                // recycle, so block on the pool itself.
                None if channel.in_flight() > 0 => match core.wait_completion() {
                    WaitOutcome::Got(done) => {
                        if !core.on_completion(done) {
                            break 'main;
                        }
                    }
                    WaitOutcome::Idle => {}
                    WaitOutcome::EngineGone | WaitOutcome::QueueDown => break 'main,
                },
                None => match pool.get_item() {
                    Ok(u) => break u,
                    Err(_) => break 'main, // pool closed (shutdown)
                },
            }
        };

        let arrivals: Vec<u64> = metas.iter().map(|m| m.arrival_nanos.unwrap_or(0)).collect();

        // Trace identity is born here: one ordinal per batch attempt,
        // carried through decode (or bypass), retries, and delivery.
        let trace_id = match tracer_cell.get() {
            Some(t) => {
                let id = t.next_batch_id();
                if let Some(t0) = lease_t0 {
                    t.span(id, stages::POOL_LEASE, SpanKind::Queue, t0, Instant::now());
                }
                id
            }
            None => 0,
        };

        // Batch-granular cache bypass: when *every* item in the batch is
        // resident (all-or-nothing keeps item order and unit layout
        // identical to a decoded batch), skip the device entirely. A
        // partially-resident batch decodes live as a whole — the FPGA
        // decodes a full batch in one submission anyway, so partial hits
        // save nothing there. Looked up *after* the lease: completions
        // drained while waiting may have just inserted this batch.
        let cached: Option<Vec<CachedSample>> = cache_cell.get().and_then(|cache| {
            metas
                .iter()
                .map(|m| sample_key(&m.src).and_then(|k| cache.lookup(&k)))
                .collect()
        });

        // Every item resident: fill the unit from memory and push — the
        // batch recycles through the same `Free_Batch_Queue` as a decoded
        // one, only the decode work disappears.
        if let Some(samples) = cached {
            let mut unit = unit;
            let t0 = Instant::now();
            // Cached samples are pre-augmentation pixels: with an augmentor
            // attached, each bypassed item re-augments under *this* dispense
            // epoch — a cache hit in epoch 3 draws epoch 3's crop, exactly
            // as a live decode would.
            for (sample, meta) in samples.iter().zip(&metas) {
                match &config.augmentor {
                    Some(aug) => {
                        let out = aug.apply(
                            meta.epoch,
                            augment_identity(&meta.src),
                            &sample.data,
                            sample.width,
                            sample.height,
                            sample.channels,
                        );
                        unit.append(&out.data, sample.label, out.width, out.height, out.channels);
                    }
                    None => {
                        unit.append(
                            &sample.data,
                            sample.label,
                            sample.width,
                            sample.height,
                            sample.channels,
                        );
                    }
                }
            }
            unit.seal(core.next_sequence);
            let batch = HostBatch {
                unit,
                sequence: core.next_sequence,
                ready_at: Instant::now(),
                arrivals,
                trace: trace_id,
            };
            core.next_sequence += 1;
            bypassed += 1;
            cache_cell
                .get()
                .expect("cached implies cache")
                .note_bypass_batch();
            stats.cpu_busy_nanos.add(t0.elapsed().as_nanos() as u64);
            if let Some(t) = tracer_cell.get() {
                t.span(
                    trace_id,
                    stages::CACHE_BYPASS,
                    SpanKind::Service,
                    t0,
                    Instant::now(),
                );
            }
            if full_queue.push(batch).is_err() {
                break 'main;
            }
            continue;
        }

        // Cmd generation (Alg. 1 lines 11–12) and async submit.
        let items: Vec<(DataRef, u64, u64)> =
            metas.iter().map(|m| (m.src, m.label, m.epoch)).collect();
        stats.batches_submitted.inc();
        stats.inflight.inc();
        match core.submit(unit, items, arrivals, trace_id) {
            Ok(done_batches) => {
                for done in done_batches {
                    if !core.on_completion(done) {
                        break 'main;
                    }
                }
            }
            Err(_) => break,
        }
    }

    // Drain everything still in flight, then close (Alg. 1 lines 16–19).
    while channel.in_flight() > 0 {
        match core.wait_completion() {
            WaitOutcome::Got(done) => {
                if !core.on_completion(done) {
                    break;
                }
            }
            WaitOutcome::Idle => {}
            WaitOutcome::EngineGone | WaitOutcome::QueueDown => break,
        }
    }
    // Whatever was submitted but never made it back is a batch error — this
    // keeps the submitted == completed + errors conservation law exact.
    let lost = stats
        .batches_submitted
        .get()
        .saturating_sub(stats.batches_completed.get());
    stats.batch_errors.add(lost);
    stats.inflight.set(0);
    full_queue.close();
    channel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::CombinedResolver;
    use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
    use dlb_membridge::PoolConfig;
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};

    fn pipeline(
        n_images: usize,
        batch: usize,
        max_batches: Option<u64>,
    ) -> (FpgaReader, MemManager) {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(n_images, 21), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 3));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let engine =
            DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
        let channel = FpgaChannel::init(engine, 0);
        let pool = MemManager::new(PoolConfig {
            unit_size: 2 << 20,
            unit_count: 4,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        let reader = FpgaReader::start(
            collector,
            pool.clone(),
            channel,
            ReaderConfig {
                batch_size: batch,
                target_w: 64,
                target_h: 64,
                format: OutputFormat::Rgb8,
                max_batches,
                cmd_timeout: None,
                full_queue_depth: 64,
                augmentor: None,
            },
        );
        (reader, pool)
    }

    #[test]
    fn produces_decoded_batches_with_backpressure() {
        let (reader, pool) = pipeline(16, 4, Some(6));
        let mut seen = 0u64;
        let mut sequences = Vec::new();
        while let Ok(batch) = reader.full_queue().pop() {
            assert_eq!(batch.len(), 4);
            sequences.push(batch.sequence);
            // Every item is a 64×64 RGB region.
            for item in batch.unit.items() {
                assert_eq!(item.len, 64 * 64 * 3);
            }
            seen += 1;
            pool.recycle_item(batch.unit).unwrap();
        }
        assert_eq!(seen, 6);
        assert_eq!(sequences, vec![0, 1, 2, 3, 4, 5]);
        let channel = reader.stop();
        assert_eq!(channel.in_flight(), 0);
        assert_eq!(pool.free_count(), 4, "all units recycled");
    }

    #[test]
    fn epoch_wrapping_keeps_feeding() {
        // 8 images, batch 4, 5 batches ⇒ wraps into the second epoch.
        let (reader, pool) = pipeline(8, 4, Some(5));
        let mut seen = 0;
        while let Ok(batch) = reader.full_queue().pop() {
            seen += 1;
            pool.recycle_item(batch.unit).unwrap();
        }
        assert_eq!(seen, 5);
        drop(reader);
    }

    #[test]
    fn sample_cache_bypass_replays_later_epochs_without_decode() {
        // 8 images, batch 4 ⇒ 2 batches/epoch; 6 batches = 3 epochs. A
        // single pool unit serialises the reader behind the consumer, so
        // every epoch-1 completion lands in the cache before any epoch-2
        // lookup fires.
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(8, 21), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 3));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let engine =
            DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
        let channel = FpgaChannel::init(engine, 0);
        let pool = MemManager::new(PoolConfig {
            unit_size: 2 << 20,
            unit_count: 1,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        let reader = FpgaReader::start(
            collector,
            pool.clone(),
            channel,
            ReaderConfig {
                batch_size: 4,
                target_w: 64,
                target_h: 64,
                format: OutputFormat::Rgb8,
                max_batches: Some(6),
                cmd_timeout: None,
                full_queue_depth: 64,
                augmentor: None,
            },
        );
        let cache = SampleCache::new(64 << 20);
        reader.attach_sample_cache(Arc::clone(&cache));
        // Pixel bytes per label, recorded on first sight: a cache hit must
        // reproduce the decode bit-for-bit even though the collector
        // reshuffles every epoch (sample keys are order-independent —
        // unlike the batch-indexed hybrid cache).
        let mut by_label: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        let mut delivered = 0;
        while let Ok(batch) = reader.full_queue().pop() {
            assert_eq!(batch.len(), 4);
            for (i, item) in batch.unit.items().iter().enumerate() {
                let pixels = batch.unit.item_bytes(i).to_vec();
                match by_label.entry(item.label) {
                    std::collections::hash_map::Entry::Occupied(prev) => {
                        assert_eq!(prev.get(), &pixels, "label {} diverged", item.label);
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(pixels);
                    }
                }
            }
            delivered += 1;
            pool.recycle_item(batch.unit).unwrap();
        }
        assert_eq!(delivered, 6);
        // Decode-path + bypass-path batches account for every delivery.
        let submitted = reader.stats().batches_submitted.get();
        assert_eq!(submitted + cache.bypass_batches(), 6);
        assert!(
            cache.bypass_batches() >= 2,
            "epochs 2-3 must come from cache, bypassed = {}",
            cache.bypass_batches()
        );
        let channel = reader.stop();
        assert_eq!(channel.in_flight(), 0);
        assert_eq!(pool.free_count(), 1);
    }

    #[test]
    fn cmd_timeout_resubmits_wedged_batches_without_loss_or_duplication() {
        use dlb_chaos::{FaultPlan, Stage, StageSpec};
        let telemetry = Telemetry::with_defaults();
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(16, 5), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let engine = DecoderEngine::start_with_telemetry(
            dev,
            Arc::new(CombinedResolver::disk_only(disk)),
            &telemetry,
        )
        .unwrap();
        // Delay-flavoured FPGA faults wedge individual lanes well past the
        // reader's deadline; resubmissions draw fresh cmd ids and recover.
        let mut plan = FaultPlan::disabled();
        plan.seed = 1;
        plan.fpga = StageSpec::rate(0.35).with_delay(Duration::from_millis(300));
        engine.attach_chaos(plan.injector(Stage::Fpga, &telemetry).unwrap());
        let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
        let pool = MemManager::new(PoolConfig {
            unit_size: 2 << 20,
            unit_count: 4,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        let reader = FpgaReader::start_with_telemetry(
            collector,
            pool.clone(),
            channel,
            ReaderConfig {
                batch_size: 2,
                target_w: 32,
                target_h: 32,
                format: OutputFormat::Rgb8,
                max_batches: Some(8),
                cmd_timeout: Some(Duration::from_millis(40)),
                full_queue_depth: 64,
                augmentor: None,
            },
            &telemetry,
        );
        let mut sequences = Vec::new();
        while let Ok(batch) = reader.full_queue().pop() {
            assert_eq!(batch.len(), 2);
            sequences.push(batch.sequence);
            pool.recycle_item(batch.unit).unwrap();
        }
        // Every submitted batch arrived exactly once, in sequence order.
        assert_eq!(sequences, (0..8).collect::<Vec<u64>>());
        let resubmits = reader.stats().cmd_resubmits.get();
        let timeouts = reader.stats().cmd_timeouts.get();
        assert!(
            timeouts > 0,
            "300ms stalls vs a 40ms deadline must time out"
        );
        assert_eq!(resubmits, timeouts);
        let channel = reader.stop();
        assert_eq!(channel.in_flight(), 0);
        assert_eq!(
            pool.free_count(),
            4,
            "late completions recycled, not leaked"
        );
        // Conservation: submitted == completed (no errors, no duplicates).
        let snap = telemetry.pipeline_snapshot();
        assert_eq!(snap.invariant_violations(), Vec::<String>::new());
    }

    #[test]
    fn config_validation_panics_on_oversized_batch() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
            let ds = Dataset::build(DatasetSpec::mnist_like(4, 1), &disk).unwrap();
            let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
            let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
            dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
            let engine =
                DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
            let pool = MemManager::new(PoolConfig {
                unit_size: 1024, // far too small for 256 × 224×224×3
                unit_count: 1,
                phys_base: 0,
            })
            .unwrap();
            FpgaReader::start(
                collector,
                pool,
                FpgaChannel::init(engine, 0),
                ReaderConfig {
                    batch_size: 256,
                    target_w: 224,
                    target_h: 224,
                    format: OutputFormat::Rgb8,
                    max_batches: Some(1),
                    cmd_timeout: None,
                    full_queue_depth: 64,
                    augmentor: None,
                },
            )
        }));
        assert!(result.is_err());
    }
}

//! `FPGAReader` — the asynchronous feeding daemon of Algorithm 1.
//!
//! The loop structure is the paper's, line for line:
//!
//! * lease a memory holder from the free pool (`free_batch_queue.peak/pop`,
//!   lines 5–10) — and while none is available, *drain completed batches out
//!   of the decoder instead of spinning* (lines 6–9), which simultaneously
//!   applies back-pressure and keeps the full queue fed;
//! * generate cmds carrying `mem_holder.phyaddr() + offset` (line 12);
//! * submit asynchronously and push whatever came back (lines 13–15);
//! * on shutdown, drain everything and recycle (lines 16–19).

use crate::backend::HostBatch;
use crate::channel::FpgaChannel;
use crate::collector::DataCollector;
use dlb_fpga::{CompletedBatch, DecodeCmd, OutputFormat, Submission};
use dlb_membridge::{BlockingQueue, MemManager};
use dlb_telemetry::{names, Counter, Gauge, Histogram, Telemetry};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Reader configuration.
#[derive(Debug, Clone)]
pub struct ReaderConfig {
    /// Images per batch.
    pub batch_size: usize,
    /// Resizer output width.
    pub target_w: u16,
    /// Resizer output height.
    pub target_h: u16,
    /// Output pixel format.
    pub format: OutputFormat,
    /// Stop after this many batches (None = run until the collector ends).
    pub max_batches: Option<u64>,
}

impl ReaderConfig {
    /// Bytes one decoded item occupies.
    pub fn item_bytes(&self) -> usize {
        self.target_w as usize * self.target_h as usize * self.format.bytes_per_pixel() as usize
    }
}

/// Counters exposed by the reader — `reader.*` telemetry handles.
#[derive(Debug)]
pub struct ReaderStats {
    /// Batches submitted to the decoder.
    pub batches_submitted: Arc<Counter>,
    /// Batches pushed to the full queue.
    pub batches_completed: Arc<Counter>,
    /// Batches submitted but never completed (pipeline torn down with
    /// work in flight).
    pub batch_errors: Arc<Counter>,
    /// Items whose decode failed.
    pub item_errors: Arc<Counter>,
    /// Nanoseconds of host CPU busy time in the reader loop (cmd
    /// generation + queue work — the tiny "preprocessing" CPU cost of
    /// Fig. 6(d)).
    pub cpu_busy_nanos: Arc<Counter>,
    /// Submit→completion latency per batch (ns).
    pub submit_latency: Arc<Histogram>,
    /// Batches currently in flight on the device.
    pub inflight: Arc<Gauge>,
}

impl ReaderStats {
    fn register(telemetry: &Telemetry) -> Self {
        Self {
            batches_submitted: telemetry.registry.counter(names::READER_BATCHES_SUBMITTED),
            batches_completed: telemetry.registry.counter(names::READER_BATCHES_COMPLETED),
            batch_errors: telemetry.registry.counter(names::READER_BATCH_ERRORS),
            item_errors: telemetry.registry.counter(names::READER_ITEM_ERRORS),
            cpu_busy_nanos: telemetry.registry.counter(names::READER_CPU_BUSY_NANOS),
            submit_latency: telemetry.registry.histogram(names::READER_SUBMIT_LATENCY),
            inflight: telemetry.registry.gauge(names::READER_INFLIGHT),
        }
    }
}

/// The running reader daemon.
pub struct FpgaReader {
    handle: Option<JoinHandle<FpgaChannel>>,
    full_queue: BlockingQueue<HostBatch>,
    stats: Arc<ReaderStats>,
    stop: Arc<std::sync::atomic::AtomicBool>,
}

impl FpgaReader {
    /// Spawns the daemon. Completed batches appear on the returned
    /// [`FpgaReader::full_queue`]. Metrics land in a private registry; use
    /// [`FpgaReader::start_with_telemetry`] to share the pipeline's.
    pub fn start(
        collector: Arc<DataCollector>,
        pool: MemManager,
        channel: FpgaChannel,
        config: ReaderConfig,
    ) -> Self {
        Self::start_with_telemetry(
            collector,
            pool,
            channel,
            config,
            &Telemetry::with_defaults(),
        )
    }

    /// Like [`FpgaReader::start`], but recording `reader.*` metrics and the
    /// full-queue occupancy into the shared pipeline `telemetry`.
    pub fn start_with_telemetry(
        collector: Arc<DataCollector>,
        pool: MemManager,
        channel: FpgaChannel,
        config: ReaderConfig,
        telemetry: &Telemetry,
    ) -> Self {
        assert!(config.batch_size >= 1, "batch size must be >= 1");
        assert!(
            config.item_bytes() * config.batch_size <= pool.unit_size(),
            "pool units ({} B) cannot hold a {}-image batch of {} B items",
            pool.unit_size(),
            config.batch_size,
            config.item_bytes()
        );
        let full_queue: BlockingQueue<HostBatch> = BlockingQueue::bounded(64);
        full_queue.instrument(telemetry, "reader_full");
        let stats = Arc::new(ReaderStats::register(telemetry));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let fq = full_queue.clone();
        let st = Arc::clone(&stats);
        let sp = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("fpga-reader".into())
            .spawn(move || run_reader(collector, pool, channel, config, fq, st, sp))
            .expect("spawn reader");
        Self {
            handle: Some(handle),
            full_queue,
            stats,
            stop,
        }
    }

    /// The `Full_Batch_Queue` this reader fills.
    pub fn full_queue(&self) -> &BlockingQueue<HostBatch> {
        &self.full_queue
    }

    /// Reader counters.
    pub fn stats(&self) -> &ReaderStats {
        &self.stats
    }

    /// Stops the daemon, returning its channel for reuse.
    pub fn stop(mut self) -> FpgaChannel {
        self.stop.store(true, Ordering::SeqCst);

        self.handle
            .take()
            .expect("stop called once")
            .join()
            .expect("reader panicked")
    }
}

impl Drop for FpgaReader {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for FpgaReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpgaReader")
            .field("full_queue_len", &self.full_queue.len())
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
fn run_reader(
    collector: Arc<DataCollector>,
    pool: MemManager,
    channel: FpgaChannel,
    config: ReaderConfig,
    full_queue: BlockingQueue<HostBatch>,
    stats: Arc<ReaderStats>,
    stop: Arc<std::sync::atomic::AtomicBool>,
) -> FpgaChannel {
    let mut next_cmd_id: u64 = 0;
    let mut next_sequence: u64 = 0;
    // Arrival timestamps of in-flight submissions, FIFO with completions.
    let mut pending_arrivals: VecDeque<Vec<u64>> = VecDeque::new();
    // Submission instants, FIFO with completions (the single orchestrator
    // thread retires batches in order, so front always matches).
    let mut pending_submits: VecDeque<Instant> = VecDeque::new();

    let push_completed = |done: CompletedBatch,
                          pending_arrivals: &mut VecDeque<Vec<u64>>,
                          pending_submits: &mut VecDeque<Instant>,
                          next_sequence: &mut u64|
     -> bool {
        let arrivals = pending_arrivals.pop_front().unwrap_or_default();
        if let Some(submitted_at) = pending_submits.pop_front() {
            stats.submit_latency.record_duration(submitted_at.elapsed());
        }
        stats.inflight.dec();
        let errors = done.finishes.iter().filter(|f| !f.status.is_ok()).count() as u64;
        stats.item_errors.add(errors);
        let mut unit = done.unit;
        unit.seal(*next_sequence);
        let batch = HostBatch {
            unit,
            sequence: *next_sequence,
            ready_at: Instant::now(),
            arrivals,
        };
        *next_sequence += 1;
        stats.batches_completed.inc();
        full_queue.push(batch).is_ok()
    };

    'main: while !stop.load(Ordering::SeqCst) {
        if let Some(max) = config.max_batches {
            if stats.batches_submitted.get() >= max {
                break;
            }
        }
        // Fetch the next batch worth of metadata.
        let metas = match collector.next_metas(config.batch_size) {
            Some(m) => m,
            None => break, // stream closed and drained
        };
        if metas.is_empty() {
            // Stream idle: surface any completions, then wait briefly.
            for done in channel.drain_out() {
                if !push_completed(
                    done,
                    &mut pending_arrivals,
                    &mut pending_submits,
                    &mut next_sequence,
                ) {
                    break 'main;
                }
            }
            std::thread::sleep(std::time::Duration::from_micros(200));
            continue;
        }

        // Lease a holder; while none is free, drain completions (Alg. 1
        // lines 5–9) — this is both back-pressure and forward progress.
        let mut unit = loop {
            match pool.try_get_item() {
                Some(u) => break u,
                // With work in flight, a completion will free pipeline
                // capacity soon: wait for it and forward it. With nothing
                // in flight the only way a unit comes back is a consumer
                // recycle, so block on the pool itself.
                None if channel.in_flight() > 0 => match channel.wait_one() {
                    Some(done) => {
                        if !push_completed(
                            done,
                            &mut pending_arrivals,
                            &mut pending_submits,
                            &mut next_sequence,
                        ) {
                            break 'main;
                        }
                    }
                    None => break 'main, // engine gone
                },
                None => match pool.get_item() {
                    Ok(u) => break u,
                    Err(_) => break 'main, // pool closed (shutdown)
                },
            }
        };

        // Cmd generation (Alg. 1 lines 11–12).
        let t0 = Instant::now();
        let mut cmds = Vec::with_capacity(metas.len());
        let mut arrivals = Vec::with_capacity(metas.len());
        for meta in &metas {
            let out_ch = config.format.bytes_per_pixel() as u8;
            let out_len = config.item_bytes();
            let offset = unit
                .reserve(
                    out_len,
                    meta.label,
                    config.target_w as u32,
                    config.target_h as u32,
                    out_ch,
                )
                .expect("batch sized to fit unit");
            let cmd = DecodeCmd {
                cmd_id: next_cmd_id,
                src: meta.src,
                dst_phys: unit.phys_addr() + offset as u64,
                dst_capacity: out_len as u32,
                target_w: config.target_w,
                target_h: config.target_h,
                format: config.format,
            };
            next_cmd_id += 1;
            cmds.push(cmd.pack());
            arrivals.push(meta.arrival_nanos.unwrap_or(0));
        }
        stats.cpu_busy_nanos.add(t0.elapsed().as_nanos() as u64);

        pending_arrivals.push_back(arrivals);
        pending_submits.push_back(Instant::now());
        stats.batches_submitted.inc();
        stats.inflight.inc();
        // Async submit; push anything already finished (Alg. 1 lines 13–15).
        match channel.submit_cmd(Submission { unit, cmds }) {
            Ok(done_batches) => {
                for done in done_batches {
                    if !push_completed(
                        done,
                        &mut pending_arrivals,
                        &mut pending_submits,
                        &mut next_sequence,
                    ) {
                        break 'main;
                    }
                }
            }
            Err(_) => break,
        }
    }

    // Drain everything still in flight, then close (Alg. 1 lines 16–19).
    while channel.in_flight() > 0 {
        match channel.wait_one() {
            Some(done) => {
                if !push_completed(
                    done,
                    &mut pending_arrivals,
                    &mut pending_submits,
                    &mut next_sequence,
                ) {
                    break;
                }
            }
            None => break,
        }
    }
    // Whatever was submitted but never made it back is a batch error — this
    // keeps the submitted == completed + errors conservation law exact.
    let lost = stats
        .batches_submitted
        .get()
        .saturating_sub(stats.batches_completed.get());
    stats.batch_errors.add(lost);
    stats.inflight.set(0);
    full_queue.close();
    channel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::CombinedResolver;
    use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
    use dlb_membridge::PoolConfig;
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};

    fn pipeline(
        n_images: usize,
        batch: usize,
        max_batches: Option<u64>,
    ) -> (FpgaReader, MemManager) {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(n_images, 21), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 3));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let engine =
            DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
        let channel = FpgaChannel::init(engine, 0);
        let pool = MemManager::new(PoolConfig {
            unit_size: 2 << 20,
            unit_count: 4,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        let reader = FpgaReader::start(
            collector,
            pool.clone(),
            channel,
            ReaderConfig {
                batch_size: batch,
                target_w: 64,
                target_h: 64,
                format: OutputFormat::Rgb8,
                max_batches,
            },
        );
        (reader, pool)
    }

    #[test]
    fn produces_decoded_batches_with_backpressure() {
        let (reader, pool) = pipeline(16, 4, Some(6));
        let mut seen = 0u64;
        let mut sequences = Vec::new();
        while let Ok(batch) = reader.full_queue().pop() {
            assert_eq!(batch.len(), 4);
            sequences.push(batch.sequence);
            // Every item is a 64×64 RGB region.
            for item in batch.unit.items() {
                assert_eq!(item.len, 64 * 64 * 3);
            }
            seen += 1;
            pool.recycle_item(batch.unit).unwrap();
        }
        assert_eq!(seen, 6);
        assert_eq!(sequences, vec![0, 1, 2, 3, 4, 5]);
        let channel = reader.stop();
        assert_eq!(channel.in_flight(), 0);
        assert_eq!(pool.free_count(), 4, "all units recycled");
    }

    #[test]
    fn epoch_wrapping_keeps_feeding() {
        // 8 images, batch 4, 5 batches ⇒ wraps into the second epoch.
        let (reader, pool) = pipeline(8, 4, Some(5));
        let mut seen = 0;
        while let Ok(batch) = reader.full_queue().pop() {
            seen += 1;
            pool.recycle_item(batch.unit).unwrap();
        }
        assert_eq!(seen, 5);
        drop(reader);
    }

    #[test]
    fn config_validation_panics_on_oversized_batch() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
            let ds = Dataset::build(DatasetSpec::mnist_like(4, 1), &disk).unwrap();
            let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
            let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
            dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
            let engine =
                DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
            let pool = MemManager::new(PoolConfig {
                unit_size: 1024, // far too small for 256 × 224×224×3
                unit_count: 1,
                phys_base: 0,
            })
            .unwrap();
            FpgaReader::start(
                collector,
                pool,
                FpgaChannel::init(engine, 0),
                ReaderConfig {
                    batch_size: 256,
                    target_w: 224,
                    target_h: 224,
                    format: OutputFormat::Rgb8,
                    max_batches: Some(1),
                },
            )
        }));
        assert!(result.is_err());
    }
}

//! The assembled DLBooster backend.
//!
//! Wires together the substrates exactly as Fig. 3 draws them:
//!
//! ```text
//!   DataCollector ─► FPGAReader ─► FpgaChannel ─► decoder engine (FPGA)
//!        ▲                │   Full_Batch_Queue ◄────────┘
//!   disk manifest /       ▼
//!   NIC descriptors     router (round-robin, hybrid cache) ─► per-engine
//!                                                             slot queues
//! ```
//!
//! The router implements the *hybrid* service of §3.1: during the first
//! epoch every decoded batch is offered to the [`EpochCache`]; if the whole
//! epoch fits ("as it can"), the FPGA path is shut down and later epochs
//! replay from memory — the reason MNIST-scale training shows near-zero
//! preprocessing cost for every backend in Fig. 6(a).

use crate::backend::{BackendError, HostBatch, PreprocessBackend};
use crate::cache::{CachedBatch, EpochCache};
use crate::channel::FpgaChannel;
use crate::collector::DataCollector;
use crate::reader::{FpgaReader, ReaderConfig};
use dlb_cache::SampleCache;
use dlb_fpga::OutputFormat;
use dlb_graph::{CompiledPipeline, DecodeDevice, GraphConfig, PipelineGraph, SampleAugmentor};
use dlb_membridge::{BatchUnit, BlockingQueue, MemManager, PoolConfig};
use dlb_telemetry::{names, Counter, PipelineSnapshot, Telemetry};
use dlb_trace::{stages, SpanKind, Tracer};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// DLBooster assembly parameters.
#[derive(Debug, Clone)]
pub struct DlBoosterConfig {
    /// Number of compute engines served (GPUs).
    pub n_engines: usize,
    /// Images per batch.
    pub batch_size: usize,
    /// Decoder output width.
    pub target_w: u16,
    /// Decoder output height.
    pub target_h: u16,
    /// Decoder output format.
    pub format: OutputFormat,
    /// Batch buffers in the HugePage pool.
    pub pool_units: usize,
    /// Memory-cache budget in bytes (0 disables the hybrid cache).
    pub cache_bytes: u64,
    /// Decoded-sample cache budget in bytes (0 disables it). Unlike the
    /// batch-indexed hybrid cache above, this one is keyed per *sample*
    /// (disk offset), evicts cheapest-to-redecode entries first, and
    /// quarantines sources whose decode failed. Hits bypass the FPGA
    /// entirely at the reader. An externally built cache (e.g. a
    /// per-tenant partitioned one) can be attached instead via
    /// [`DlBooster::attach_sample_cache`].
    pub sample_cache_bytes: u64,
    /// Batches per epoch (dataset mode; None for streaming — disables the
    /// cache).
    pub batches_per_epoch: Option<u64>,
    /// Total batches to deliver before closing (None = run until the
    /// collector ends or shutdown).
    pub max_batches: Option<u64>,
    /// Per-submission decode deadline forwarded to the reader's timeout
    /// watchdog (see [`ReaderConfig::cmd_timeout`]). None disables it.
    pub cmd_timeout: Option<std::time::Duration>,
}

impl DlBoosterConfig {
    /// A config sized for the given dataset-mode experiment.
    pub fn training(
        n_engines: usize,
        batch_size: usize,
        target: (u16, u16),
        n_records: usize,
        max_batches: Option<u64>,
    ) -> Self {
        Self {
            n_engines,
            batch_size,
            target_w: target.0,
            target_h: target.1,
            format: OutputFormat::Rgb8,
            pool_units: (n_engines * 3).max(4),
            cache_bytes: 2 << 30,
            sample_cache_bytes: 0,
            batches_per_epoch: Some((n_records as u64).div_ceil(batch_size as u64)),
            max_batches,
            cmd_timeout: None,
        }
    }

    /// A streaming (online inference) config.
    pub fn inference(n_engines: usize, batch_size: usize, target: (u16, u16)) -> Self {
        Self {
            n_engines,
            batch_size,
            target_w: target.0,
            target_h: target.1,
            format: OutputFormat::Rgb8,
            pool_units: (n_engines * 3).max(4),
            cache_bytes: 0,
            sample_cache_bytes: 0,
            batches_per_epoch: None,
            max_batches: None,
            cmd_timeout: None,
        }
    }

    fn unit_size(&self) -> usize {
        self.batch_size
            * self.target_w as usize
            * self.target_h as usize
            * self.format.bytes_per_pixel() as usize
    }

    /// The canned graph [`DlBooster::start`] compiles: the exact chain the
    /// pre-graph constructor wired by hand.
    fn canned_graph(&self) -> PipelineGraph {
        if self.batches_per_epoch.is_some() {
            dlb_graph::fpga_training(self.target_w as u32, self.target_h as u32)
        } else {
            dlb_graph::fpga_streaming(self.target_w as u32, self.target_h as u32)
        }
    }

    fn graph_config(&self) -> GraphConfig {
        GraphConfig {
            batch_size: self.batch_size,
            n_engines: self.n_engines,
            default_decode_parallelism: 1,
            seed: 0,
        }
    }
}

/// The wiring knobs a compiled graph (or the hardwired baseline) hands the
/// assembly: queue depths and the optional augmentation hop.
struct Wiring {
    full_queue_depth: usize,
    slot_depth: usize,
    augmentor: Option<SampleAugmentor>,
}

impl Wiring {
    /// The pre-graph constants: `Full_Batch_Queue` of 64, slot queues of 8,
    /// no augmentation. Preserved verbatim as the differential baseline.
    fn hardwired() -> Self {
        Wiring {
            full_queue_depth: 64,
            slot_depth: 8,
            augmentor: None,
        }
    }

    /// Wiring derived from a compiled graph. Resolves `DLB_AUG_SEED` here —
    /// at pipeline start, never inside `compile`.
    fn from_compiled(compiled: &CompiledPipeline) -> Self {
        Wiring {
            full_queue_depth: compiled.ingest_depth,
            slot_depth: compiled.slot_depth,
            augmentor: compiled.augmentor(),
        }
    }
}

/// The DLBooster preprocessing backend (paper Fig. 3).
pub struct DlBooster {
    pool: MemManager,
    slot_queues: Vec<BlockingQueue<HostBatch>>,
    full_queue: BlockingQueue<HostBatch>,
    router: Mutex<Option<JoinHandle<Option<FpgaReader>>>>,
    /// A reader returned by a quiesced router whose daemon may still be
    /// parked on `pool.get_item()`; joined at drop, after `pool.close()`
    /// guarantees the park is released.
    parked_reader: Mutex<Option<FpgaReader>>,
    stop: Arc<AtomicBool>,
    quiesced: AtomicBool,
    cache: Arc<EpochCache>,
    sample_cache_cell: Arc<OnceLock<Arc<SampleCache>>>,
    router_cpu_nanos: Arc<AtomicU64>,
    reader_cpu_nanos: Arc<AtomicU64>,
    delivered: Arc<Counter>,
    telemetry: Arc<Telemetry>,
}

impl DlBooster {
    /// Builds and starts the backend on an already-initialised channel
    /// (device + mirror + engine) and collector, with a private telemetry
    /// registry. Internally compiles the canned training/streaming graph —
    /// see [`DlBooster::from_graph`] for user-composed pipelines and
    /// [`DlBooster::start_hardwired`] for the pre-graph wiring.
    pub fn start(
        collector: Arc<DataCollector>,
        channel: FpgaChannel,
        config: DlBoosterConfig,
    ) -> Result<Self, String> {
        Self::start_with_telemetry(collector, channel, config, Telemetry::with_defaults())
    }

    /// Like [`DlBooster::start`], but recording every stage's metrics into
    /// the shared pipeline `telemetry`. For a fully-aggregated
    /// [`PipelineSnapshot`], build the channel with
    /// [`FpgaChannel::init_with_telemetry`] on the same registry.
    pub fn start_with_telemetry(
        collector: Arc<DataCollector>,
        channel: FpgaChannel,
        config: DlBoosterConfig,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self, String> {
        let graph = config.canned_graph();
        let compiled = graph
            .compile(&config.graph_config())
            .map_err(|e| e.to_string())?;
        Self::start_wired(
            collector,
            channel,
            config,
            Wiring::from_compiled(&compiled),
            telemetry,
        )
    }

    /// The pre-refactor constructor: wires the pipeline from hardcoded
    /// constants without ever building a graph. Kept as the differential
    /// baseline — `tests/graph_equivalence.rs` holds [`DlBooster::start`]
    /// (canned graph) bitwise-equal to this path.
    pub fn start_hardwired(
        collector: Arc<DataCollector>,
        channel: FpgaChannel,
        config: DlBoosterConfig,
    ) -> Result<Self, String> {
        Self::start_hardwired_with_telemetry(collector, channel, config, Telemetry::with_defaults())
    }

    /// [`DlBooster::start_hardwired`] with a shared telemetry registry.
    pub fn start_hardwired_with_telemetry(
        collector: Arc<DataCollector>,
        channel: FpgaChannel,
        config: DlBoosterConfig,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self, String> {
        Self::start_wired(collector, channel, config, Wiring::hardwired(), telemetry)
    }

    /// Builds the backend from a user-composed [`PipelineGraph`]. The graph
    /// must decode on the FPGA (`DecodeDevice::Fpga`); its resize geometry
    /// overrides `config.target_w/h`, its queue-depth knobs override the
    /// substrate defaults, and any augmentation stages run host-side after
    /// FINISH with per-(epoch, sample) seeded draws. Augmentation disables
    /// the hybrid batch cache (replaying epoch-1 batches would freeze
    /// epoch-1's crops); the per-*sample* cache stays usable because it
    /// stores pre-augmentation pixels.
    pub fn from_graph(
        collector: Arc<DataCollector>,
        channel: FpgaChannel,
        config: DlBoosterConfig,
        graph: &PipelineGraph,
        seed: u64,
    ) -> Result<Self, String> {
        Self::from_graph_with_telemetry(
            collector,
            channel,
            config,
            graph,
            seed,
            Telemetry::with_defaults(),
        )
    }

    /// [`DlBooster::from_graph`] with a shared telemetry registry.
    pub fn from_graph_with_telemetry(
        collector: Arc<DataCollector>,
        channel: FpgaChannel,
        mut config: DlBoosterConfig,
        graph: &PipelineGraph,
        seed: u64,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self, String> {
        let mut gc = config.graph_config();
        gc.seed = seed;
        let compiled = graph.compile(&gc).map_err(|e| e.to_string())?;
        if compiled.decode != DecodeDevice::Fpga {
            return Err(
                "DlBooster executes FPGA-decode graphs; use CpuBackend::from_graph for \
                 DecodeDevice::Cpu"
                    .into(),
            );
        }
        if compiled.resize.0 > u16::MAX as u32 || compiled.resize.1 > u16::MAX as u32 {
            return Err("resize geometry exceeds the FPGA resizer's 16-bit range".into());
        }
        config.target_w = compiled.resize.0 as u16;
        config.target_h = compiled.resize.1 as u16;
        Self::start_wired(
            collector,
            channel,
            config,
            Wiring::from_compiled(&compiled),
            telemetry,
        )
    }

    fn start_wired(
        collector: Arc<DataCollector>,
        channel: FpgaChannel,
        mut config: DlBoosterConfig,
        wiring: Wiring,
        telemetry: Arc<Telemetry>,
    ) -> Result<Self, String> {
        if config.n_engines == 0 || config.batch_size == 0 {
            return Err("n_engines and batch_size must be positive".into());
        }
        // Units hold the batch both at decode (device writeback) and after
        // augmentation (which may grow items 4x via Normalize).
        let unit_size = match &wiring.augmentor {
            Some(aug) => {
                let out = aug.output_bytes(config.target_w as u32, config.target_h as u32);
                config.unit_size().max(config.batch_size * out)
            }
            None => config.unit_size(),
        };
        // An augmented pipeline must not replay whole batches from the
        // hybrid cache: cached payloads carry epoch-1's crops/flips, and
        // serving them again would freeze the augmentation stream.
        if wiring.augmentor.is_some() {
            config.cache_bytes = 0;
        }
        let pool = MemManager::with_telemetry(
            PoolConfig {
                unit_size,
                unit_count: config.pool_units,
                phys_base: 0x4_0000_0000,
            },
            &telemetry,
        )
        .map_err(|e| e.to_string())?;

        let reader = FpgaReader::start_with_telemetry(
            collector,
            pool.clone(),
            channel,
            ReaderConfig {
                batch_size: config.batch_size,
                target_w: config.target_w,
                target_h: config.target_h,
                format: config.format,
                max_batches: None, // the router enforces the delivery bound
                cmd_timeout: config.cmd_timeout,
                full_queue_depth: wiring.full_queue_depth,
                augmentor: wiring.augmentor,
            },
            &telemetry,
        );
        let sample_cache_cell = reader.sample_cache_cell();
        if config.sample_cache_bytes > 0 {
            let _ = sample_cache_cell.set(SampleCache::with_telemetry(
                config.sample_cache_bytes,
                &telemetry,
            ));
        }
        let reader_cpu_nanos = Arc::new(AtomicU64::new(0));
        let slot_queues: Vec<BlockingQueue<HostBatch>> = (0..config.n_engines)
            .map(|i| {
                let q = BlockingQueue::bounded(wiring.slot_depth.max(1));
                q.instrument(&telemetry, &format!("slot{i}"));
                q
            })
            .collect();
        let cache = Arc::new(EpochCache::new(config.cache_bytes));
        let stop = Arc::new(AtomicBool::new(false));
        let router_cpu_nanos = Arc::new(AtomicU64::new(0));
        let delivered = telemetry.registry.counter(names::ROUTER_DELIVERED);

        let ctx = RouterCtx {
            pool: pool.clone(),
            slot_queues: slot_queues.clone(),
            cache: Arc::clone(&cache),
            stop: Arc::clone(&stop),
            cpu_nanos: Arc::clone(&router_cpu_nanos),
            reader_cpu_nanos: Arc::clone(&reader_cpu_nanos),
            delivered: Arc::clone(&delivered),
            config: config.clone(),
            tracer_cell: telemetry.tracer_cell(),
        };
        let full_queue = reader.full_queue().clone();
        let router = std::thread::Builder::new()
            .name("dlbooster-router".into())
            .spawn(move || run_router(reader, ctx))
            .expect("spawn router");

        Ok(Self {
            pool,
            slot_queues,
            full_queue,
            router: Mutex::new(Some(router)),
            parked_reader: Mutex::new(None),
            stop,
            quiesced: AtomicBool::new(false),
            cache,
            sample_cache_cell,
            router_cpu_nanos,
            reader_cpu_nanos,
            delivered,
            telemetry,
        })
    }

    /// The hybrid cache (inspection).
    pub fn cache(&self) -> &EpochCache {
        &self.cache
    }

    /// Attaches a decoded-sample cache to the reader (first attach wins,
    /// mirroring the `attach_chaos` hooks; a no-op when
    /// `sample_cache_bytes` already built one). Use this to share one
    /// cache across backends — e.g. primary and CPU fallback in a
    /// failover pair — or to attach a per-tenant partitioned cache.
    pub fn attach_sample_cache(&self, cache: Arc<SampleCache>) {
        let _ = self.sample_cache_cell.set(cache);
    }

    /// The attached decoded-sample cache, if any.
    pub fn sample_cache(&self) -> Option<Arc<SampleCache>> {
        self.sample_cache_cell.get().cloned()
    }

    /// The pipeline telemetry registry every stage records into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// A point-in-time aggregate of every stage's counters, histograms and
    /// watchdog state.
    pub fn pipeline_snapshot(&self) -> PipelineSnapshot {
        self.telemetry.pipeline_snapshot()
    }

    /// Batches delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.get()
    }

    /// The underlying pool (tests verify conservation).
    pub fn pool(&self) -> &MemManager {
        &self.pool
    }

    /// Like [`PreprocessBackend::next_batch`], but gives up after
    /// `timeout`. `Ok(None)` means the wait timed out with the pipeline
    /// still alive — the failover layer's cue that this backend may be
    /// wedged. `Err(Exhausted)` means the slot queue closed for good.
    pub fn next_batch_timeout(
        &self,
        slot: usize,
        timeout: std::time::Duration,
    ) -> Result<Option<HostBatch>, BackendError> {
        let got = self.slot_queues[slot]
            .pop_timeout(timeout)
            .map_err(|_| BackendError::Exhausted)?;
        if let Some(b) = &got {
            self.trace_delivery(b);
        }
        Ok(got)
    }

    /// Records the decoded→consumed wait (full-queue + slot-queue
    /// residency) for a popped batch. One branch when tracing is off.
    fn trace_delivery(&self, batch: &HostBatch) {
        if let Some(t) = self.telemetry.tracer() {
            if batch.trace != 0 {
                t.span(
                    batch.trace,
                    stages::QUEUE_DELIVER,
                    SpanKind::Queue,
                    batch.ready_at,
                    Instant::now(),
                );
            }
        }
    }

    /// Retires a wedged pipeline for failover: stops the router, drains
    /// the reader's output back into the (still open) pool, and joins the
    /// router thread so [`DlBooster::delivered`] is final when this
    /// returns.
    ///
    /// Unlike [`PreprocessBackend::shutdown`] the pool stays **open**:
    /// batches already routed to the slot queues remain poppable, and the
    /// consumer can still recycle their units normally. The count of
    /// batches that will *ever* leave this backend is therefore exactly
    /// `delivered()` — the failover layer sizes its fallback budget off
    /// that. Idempotent.
    pub fn quiesce(&self) {
        if self.quiesced.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake a reader blocked pushing decoded batches and a router
        // blocked popping them; recycle whatever the reader had finished
        // but the router never routed (those were never counted
        // delivered, so the fallback re-produces them — no loss).
        self.full_queue.close();
        for stranded in self.full_queue.drain() {
            let _ = self.pool.recycle_item(stranded.unit);
        }
        // Wake a router blocked pushing into a full slot queue; residue
        // already queued stays drainable (close only stops new pushes).
        for q in &self.slot_queues {
            q.close();
        }
        let handle = self.router.lock().take();
        if let Some(h) = handle {
            if let Ok(Some(reader)) = h.join() {
                // The reader daemon may still be parked on
                // `pool.get_item()` waiting for a unit that only frees
                // once the consumer recycles residue. Park it; drop joins
                // it after `pool.close()` releases the wait.
                *self.parked_reader.lock() = Some(reader);
            }
        }
    }
}

impl PreprocessBackend for DlBooster {
    fn name(&self) -> &'static str {
        "DLBooster"
    }

    fn next_batch(&self, slot: usize) -> Result<HostBatch, BackendError> {
        let batch = self.slot_queues[slot]
            .pop()
            .map_err(|_| BackendError::Exhausted)?;
        self.trace_delivery(&batch);
        Ok(batch)
    }

    fn recycle(&self, unit: BatchUnit) {
        // Ignore foreign/closed errors at shutdown.
        let _ = self.pool.recycle_item(unit);
    }

    fn max_batch_bytes(&self) -> usize {
        self.pool.unit_size()
    }

    fn cpu_busy_nanos(&self) -> u64 {
        self.router_cpu_nanos.load(Ordering::Relaxed)
            + self.reader_cpu_nanos.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        for q in &self.slot_queues {
            q.close();
        }
        // Unblock a reader parked on `pool.get_item()` (no work in flight,
        // consumers gone).
        self.pool.close();
    }
}

impl Drop for DlBooster {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(h) = self.router.lock().take() {
            // The router returns the reader (if still live) so its drop
            // joins the daemon cleanly.
            let _ = h.join();
        }
        // A reader parked by quiesce(): pool.close() above released any
        // get_item() wait, so joining is now safe.
        drop(self.parked_reader.lock().take());
    }
}

struct RouterCtx {
    pool: MemManager,
    slot_queues: Vec<BlockingQueue<HostBatch>>,
    cache: Arc<EpochCache>,
    stop: Arc<AtomicBool>,
    cpu_nanos: Arc<AtomicU64>,
    reader_cpu_nanos: Arc<AtomicU64>,
    delivered: Arc<Counter>,
    config: DlBoosterConfig,
    tracer_cell: Arc<OnceLock<Arc<Tracer>>>,
}

fn run_router(reader: FpgaReader, ctx: RouterCtx) -> Option<FpgaReader> {
    let n = ctx.slot_queues.len();
    let mut seq_out: u64 = 0;
    let bpe = ctx
        .config
        .batches_per_epoch
        .filter(|_| ctx.config.cache_bytes > 0);

    // Count a batch delivered only once it actually lands in a slot
    // queue: on a closed queue (shutdown or quiesce) the batch comes
    // back and its unit is recycled, so `delivered` stays an exact count
    // of batches the consumer can still pop — the failover layer sizes
    // its fallback budget off it.
    let deliver = |mut batch: HostBatch, seq_out: &mut u64| -> bool {
        let slot = (*seq_out % n as u64) as usize;
        batch.sequence = *seq_out;
        batch.unit.seal(*seq_out);
        match ctx.slot_queues[slot].push_or_return(batch) {
            Ok(()) => {
                *seq_out += 1;
                ctx.delivered.inc();
                true
            }
            Err(returned) => {
                let _ = ctx.pool.recycle_item(returned.unit);
                false
            }
        }
    };

    let reached_max = |seq_out: u64| ctx.config.max_batches.is_some_and(|m| seq_out >= m);

    // Phase 1: live decode through the FPGA.
    let mut cache_complete = false;
    while !ctx.stop.load(Ordering::SeqCst) && !reached_max(seq_out) {
        let batch = match reader.full_queue().pop() {
            Ok(b) => b,
            Err(_) => break, // collector exhausted; reader closed the queue
        };
        let t0 = Instant::now();
        if let Some(bpe) = bpe {
            if batch.sequence < bpe {
                ctx.cache.try_put(
                    batch.sequence,
                    CachedBatch {
                        payload: batch.unit.payload().to_vec(),
                        items: batch.unit.items().to_vec(),
                    },
                );
                if batch.sequence + 1 == bpe && ctx.cache.covers_epoch(bpe) {
                    cache_complete = true;
                }
            }
        }
        ctx.cpu_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if !deliver(batch, &mut seq_out) {
            break;
        }
        if cache_complete {
            break;
        }
    }

    // Publish reader CPU time and shut the FPGA path down if we are going
    // cache-only (the decoder is no longer needed — §3.1's offline phase).
    ctx.reader_cpu_nanos
        .store(reader.stats().cpu_busy_nanos.get(), Ordering::Relaxed);
    if !cache_complete {
        // Live phase ended (exhausted / stopped / max reached).
        for q in &ctx.slot_queues {
            q.close();
        }
        return Some(reader);
    }
    // Going cache-only: the reader has raced ahead into the next epoch.
    // Close its output queue (so further pushes fail and it exits), recycle
    // whatever it already queued, then join it and release the device.
    let fq = reader.full_queue().clone();
    fq.close();
    for stranded in fq.drain() {
        let _ = ctx.pool.recycle_item(stranded.unit);
    }
    drop(reader.stop()); // recycle the channel/device

    // Phase 2: serve from the memory cache.
    let bpe = bpe.expect("cache_complete implies dataset mode");
    let mut key = seq_out % bpe;
    while !ctx.stop.load(Ordering::SeqCst) && !reached_max(seq_out) {
        let Some(cached) = ctx.cache.get(key) else {
            break; // should not happen: coverage was checked
        };
        key = (key + 1) % bpe;
        // Stop-aware acquisition: a plain get_item() could park forever
        // with every unit captive in the slot queues while quiesce()
        // waits to join this thread.
        let unit = loop {
            if ctx.stop.load(Ordering::SeqCst) {
                break None;
            }
            match ctx.pool.try_get_item() {
                Some(u) => break Some(u),
                None => std::thread::sleep(std::time::Duration::from_micros(200)),
            }
        };
        let Some(mut unit) = unit else {
            break;
        };
        let t0 = Instant::now();
        if unit.restore(&cached.payload, &cached.items).is_err() {
            let _ = ctx.pool.recycle_item(unit);
            break;
        }
        ctx.cpu_nanos
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // A replayed batch is a fresh delivery: it gets its own trace
        // ordinal, with the restore cost recorded as its service time.
        let trace = match ctx.tracer_cell.get() {
            Some(t) => {
                let id = t.next_batch_id();
                t.span(
                    id,
                    stages::CACHE_REPLAY,
                    SpanKind::Service,
                    t0,
                    Instant::now(),
                );
                id
            }
            None => 0,
        };
        let batch = HostBatch {
            unit,
            sequence: seq_out,
            ready_at: Instant::now(),
            arrivals: Vec::new(),
            trace,
        };
        if !deliver(batch, &mut seq_out) {
            break;
        }
    }
    for q in &ctx.slot_queues {
        q.close();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::CombinedResolver;
    use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};

    fn booster(
        n_images: usize,
        n_engines: usize,
        batch: usize,
        cache_bytes: u64,
        max_batches: Option<u64>,
    ) -> DlBooster {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(n_images, 33), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let engine =
            DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
        let channel = FpgaChannel::init(engine, 0);
        let mut config =
            DlBoosterConfig::training(n_engines, batch, (32, 32), n_images, max_batches);
        config.cache_bytes = cache_bytes;
        DlBooster::start(collector, channel, config).unwrap()
    }

    #[test]
    fn serves_round_robin_across_engines() {
        let b = booster(16, 2, 4, 0, Some(8));
        let mut seq0 = Vec::new();
        let mut seq1 = Vec::new();
        while let Ok(batch) = b.next_batch(0) {
            seq0.push(batch.sequence);
            b.recycle(batch.unit);
        }
        while let Ok(batch) = b.next_batch(1) {
            seq1.push(batch.sequence);
            b.recycle(batch.unit);
        }
        assert_eq!(seq0, vec![0, 2, 4, 6]);
        assert_eq!(seq1, vec![1, 3, 5, 7]);
        assert_eq!(b.delivered(), 8);
        assert_eq!(b.name(), "DLBooster");
    }

    #[test]
    fn hybrid_cache_takes_over_after_first_epoch() {
        // 8 images, batch 4 ⇒ 2 batches/epoch; run 10 batches with a
        // generous cache: epochs 1+ must come from memory.
        let b = booster(8, 1, 4, 64 << 20, Some(10));
        let mut batches = 0;
        let mut payload_first: Option<Vec<u8>> = None;
        let mut payload_epoch1: Option<Vec<u8>> = None;
        while let Ok(batch) = b.next_batch(0) {
            if batch.sequence == 0 {
                payload_first = Some(batch.unit.payload().to_vec());
            }
            if batch.sequence == 2 {
                payload_epoch1 = Some(batch.unit.payload().to_vec());
            }
            batches += 1;
            b.recycle(batch.unit);
        }
        assert_eq!(batches, 10);
        let (hits, _, _) = b.cache().stats();
        assert!(hits >= 8, "cache replay expected, hits = {hits}");
        // Unshuffled collector ⇒ epoch-1 batch 0 replays epoch-0 batch 0.
        assert_eq!(payload_first.unwrap(), payload_epoch1.unwrap());
    }

    #[test]
    fn zero_cache_never_replays() {
        let b = booster(8, 1, 4, 0, Some(6));
        let mut batches = 0;
        while let Ok(batch) = b.next_batch(0) {
            batches += 1;
            b.recycle(batch.unit);
        }
        assert_eq!(batches, 6);
        let (hits, _, _) = b.cache().stats();
        assert_eq!(hits, 0);
    }

    #[test]
    fn shutdown_releases_consumers() {
        let b = Arc::new(booster(16, 1, 4, 0, None));
        let b2 = Arc::clone(&b);
        let consumer = std::thread::spawn(move || {
            let mut n = 0;
            while let Ok(batch) = b2.next_batch(0) {
                n += 1;
                b2.recycle(batch.unit);
                if n >= 2 {
                    break;
                }
            }
            n
        });
        assert!(consumer.join().unwrap() >= 2);
        b.shutdown();
        // Closing the slot queues still drains batches the router had
        // already prefetched; after the residue, every pop is Exhausted.
        while let Ok(batch) = b.next_batch(0) {
            b.recycle(batch.unit);
        }
        assert!(matches!(b.next_batch(0), Err(BackendError::Exhausted)));
    }

    #[test]
    fn rejects_zero_engines() {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::mnist_like(4, 1), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let engine =
            DecoderEngine::start(dev, Arc::new(CombinedResolver::disk_only(disk))).unwrap();
        let channel = FpgaChannel::init(engine, 0);
        let mut config = DlBoosterConfig::training(1, 4, (16, 16), 4, None);
        config.n_engines = 0;
        assert!(DlBooster::start(collector, channel, config).is_err());
    }
}

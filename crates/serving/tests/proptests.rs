//! Property tests: WFQ fairness, batch-former bounds, and admission
//! conservation under arbitrary arrival patterns.

use dlb_serving::{
    AdmissionController, BatchFormer, ServeRequest, ServingConfig, ShedPolicy, TenantClass,
    WeightedFairQueue,
};
use dlb_simcore::SimTime;
use proptest::prelude::*;

fn req(id: u64, tenant: u32, arrival_us: u64, slo_us: u64) -> ServeRequest {
    let arrival = SimTime::from_micros(arrival_us);
    ServeRequest {
        id,
        tenant,
        arrival,
        deadline: arrival + SimTime::from_micros(slo_us),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under full backlog, each tenant's share of dequeues tracks its
    /// weight within one quantum per tenant.
    #[test]
    fn wfq_service_tracks_weights(
        w0 in 1u32..5,
        w1 in 1u32..5,
        pops in 10usize..60,
    ) {
        let mut q = WeightedFairQueue::new([(0, w0), (1, w1)]);
        for i in 0..200u64 {
            q.push(0, (0u32, i));
            q.push(1, (1u32, i));
        }
        let mut counts = [0f64; 2];
        for _ in 0..pops {
            let (t, _) = q.pop().unwrap();
            counts[t as usize] += 1.0;
        }
        let expect0 = pops as f64 * w0 as f64 / (w0 + w1) as f64;
        prop_assert!(
            (counts[0] - expect0).abs() <= (w0.max(w1) + 1) as f64,
            "tenant0 served {} of {}, expected ~{expect0} (w {w0}:{w1})",
            counts[0], pops
        );
    }

    /// Everything pushed is eventually popped exactly once, in FIFO order
    /// within each tenant.
    #[test]
    fn wfq_conserves_and_orders_within_tenant(
        tenants in prop::collection::vec(0u32..4, 1..120),
    ) {
        let mut q = WeightedFairQueue::new((0..4).map(|t| (t, t + 1)));
        for (i, &t) in tenants.iter().enumerate() {
            q.push(t, (t, i));
        }
        let mut last_seen = [None::<usize>; 4];
        let mut popped = 0usize;
        while let Some((t, i)) = q.pop() {
            popped += 1;
            if let Some(prev) = last_seen[t as usize] {
                prop_assert!(prev < i, "tenant {t} out of order: {prev} after {i}");
            }
            last_seen[t as usize] = Some(i);
        }
        prop_assert_eq!(popped, tenants.len());
    }

    /// The former never emits an empty or oversized batch, and every
    /// pushed request appears in exactly one batch.
    #[test]
    fn batcher_bounds_and_conservation(
        max_batch in 1u32..16,
        gaps_us in prop::collection::vec(0u64..400, 1..200),
        linger_us in 1u64..300,
    ) {
        let mut f = BatchFormer::new(max_batch, SimTime::from_micros(linger_us));
        let mut now_us = 0u64;
        let mut batches = Vec::new();
        for (i, gap) in gaps_us.iter().enumerate() {
            now_us += gap;
            let now = SimTime::from_micros(now_us);
            // Fire any due linger timer before the push, as the DES would.
            let generation = f.generation();
            if let Some(b) = f.close_if_due(now, generation) {
                batches.push(b);
            }
            if let Some(b) = f.push(req(i as u64, 0, now_us, 1000), now) {
                batches.push(b);
            }
        }
        if let Some(b) = f.force_close() {
            batches.push(b);
        }
        let mut ids = Vec::new();
        for b in &batches {
            prop_assert!(!b.is_empty(), "empty batch emitted");
            prop_assert!(b.len() <= max_batch as usize, "oversized batch");
            if !b.closed_by_linger {
                // A full close must carry exactly max_batch items.
                prop_assert_eq!(b.len(), max_batch as usize);
            }
            ids.extend(b.requests.iter().map(|r| r.id));
        }
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..gaps_us.len() as u64).collect::<Vec<_>>());
    }

    /// Admission conservation: offered = admitted + rejected, and the
    /// queue never exceeds its capacity, for every policy.
    #[test]
    fn admission_conserves_under_any_pattern(
        policy_idx in 0usize..3,
        capacity in 1usize..24,
        arrivals in prop::collection::vec((0u32..3, 0u64..2000, 50u64..3000), 1..200),
    ) {
        let policy = [
            ShedPolicy::DropNewest,
            ShedPolicy::DropOldest,
            ShedPolicy::DeadlineAware,
        ][policy_idx];
        let mut cfg = ServingConfig::single_tenant(4, SimTime::from_millis(1), policy)
            .with_tenants(
                (0..3)
                    .map(|id| TenantClass { id, weight: 1, load_share: 1.0 / 3.0 })
                    .collect(),
            );
        cfg.queue_capacity = capacity;
        let mut ac = AdmissionController::new(cfg);
        ac.set_service_estimate(SimTime::from_micros(100), SimTime::from_micros(50));
        let (mut admitted, mut rejected, mut shed) = (0u64, 0u64, 0u64);
        let mut now_us = 0u64;
        for (i, (tenant, gap, slo)) in arrivals.iter().enumerate() {
            now_us += gap;
            let now = SimTime::from_micros(now_us);
            let r = req(i as u64, *tenant, now_us, *slo);
            let outcome = ac.offer(r, now);
            shed += outcome.evicted.len() as u64;
            if outcome.admitted { admitted += 1 } else { rejected += 1 }
            prop_assert!(ac.depth() <= capacity, "queue exceeded capacity");
        }
        prop_assert_eq!(admitted + rejected, arrivals.len() as u64);
        // Everyone admitted is still queued or was shed.
        prop_assert_eq!(ac.depth() as u64 + shed, admitted);
    }

    /// With shedding disabled every request is admitted, whatever the
    /// pattern — the unbounded baseline the overload test relies on.
    #[test]
    fn disabled_shedding_never_rejects(
        arrivals in prop::collection::vec((0u64..100, 1u64..500), 1..300),
    ) {
        let cfg = ServingConfig::single_tenant(8, SimTime::from_micros(10), ShedPolicy::DropNewest)
            .without_shedding();
        let mut ac = AdmissionController::new(cfg);
        ac.set_service_estimate(SimTime::from_millis(10), SimTime::from_millis(10));
        let mut now_us = 0u64;
        for (i, (gap, slo)) in arrivals.iter().enumerate() {
            now_us += gap;
            let now = SimTime::from_micros(now_us);
            let outcome = ac.offer(req(i as u64, 0, now_us, *slo), now);
            prop_assert!(outcome.admitted);
            prop_assert!(outcome.evicted.is_empty());
        }
        prop_assert_eq!(ac.depth(), arrivals.len());
    }
}

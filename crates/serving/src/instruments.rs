//! Telemetry handles for the serving layer: one struct owning every
//! counter/gauge/histogram the admission controller, batch former, and
//! completion path record into, pre-resolved from a [`Registry`].
//!
//! All serving components record through an optional
//! `Arc<ServingInstruments>`; when absent (unit tests, microbenches) the
//! layer runs telemetry-free with zero overhead.

use crate::config::ServeRequest;
use dlb_simcore::SimTime;
use dlb_telemetry::{names, Counter, Gauge, Histogram, Registry};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Per-tenant counter handles (`serving.tenant.<id>.*`).
#[derive(Debug)]
struct TenantHandles {
    admitted: Arc<Counter>,
    completed: Arc<Counter>,
    shed: Arc<Counter>,
    goodput: Arc<Gauge>,
}

/// Pre-resolved serving-layer metric handles.
///
/// The accounting contract enforced by
/// `PipelineSnapshot::invariant_violations`:
///
/// * `offered = admitted + rejected` — every request that reaches the
///   admission door is either let in or turned away;
/// * `admitted = completed + shed + inflight` — admitted requests are
///   conserved until they complete or are evicted;
/// * `good ≤ completed` — goodput counts in-SLO completions only.
#[derive(Debug)]
pub struct ServingInstruments {
    registry: Arc<Registry>,
    offered: Arc<Counter>,
    admitted: Arc<Counter>,
    rejected: Arc<Counter>,
    shed: Arc<Counter>,
    completed: Arc<Counter>,
    good: Arc<Counter>,
    inflight: Arc<Gauge>,
    queue_depth: Arc<Gauge>,
    queue_delay: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    batches: Arc<Counter>,
    batches_full: Arc<Counter>,
    batches_linger: Arc<Counter>,
    tenants: Mutex<BTreeMap<u32, TenantHandles>>,
}

impl ServingInstruments {
    /// Resolves every serving metric in `registry`. `max_batch` sizes the
    /// batch-size histogram buckets (one bucket per batch size).
    pub fn new(registry: &Arc<Registry>, max_batch: u32) -> Arc<Self> {
        let bounds: Vec<u64> = (1..=u64::from(max_batch.max(1))).collect();
        Arc::new(Self {
            offered: registry.counter(names::SERVING_OFFERED),
            admitted: registry.counter(names::SERVING_ADMITTED),
            rejected: registry.counter(names::SERVING_REJECTED),
            shed: registry.counter(names::SERVING_SHED),
            completed: registry.counter(names::SERVING_COMPLETED),
            good: registry.counter(names::SERVING_GOOD),
            inflight: registry.gauge(names::SERVING_INFLIGHT),
            queue_depth: registry.gauge(names::SERVING_QUEUE_DEPTH),
            queue_delay: registry.histogram(names::SERVING_QUEUE_DELAY),
            batch_size: registry.histogram_with(names::SERVING_BATCH_SIZE, bounds),
            batches: registry.counter(names::SERVING_BATCHES),
            batches_full: registry.counter(names::SERVING_BATCH_FULL),
            batches_linger: registry.counter(names::SERVING_BATCH_LINGER),
            tenants: Mutex::new(BTreeMap::new()),
            registry: Arc::clone(registry),
        })
    }

    fn with_tenant(&self, tenant: u32, f: impl FnOnce(&TenantHandles)) {
        let mut map = self.tenants.lock().unwrap_or_else(|p| p.into_inner());
        let handles = map.entry(tenant).or_insert_with(|| {
            let key = |field: &str| format!("{}{tenant}.{field}", names::SERVING_TENANT_PREFIX);
            TenantHandles {
                admitted: self.registry.counter(&key("admitted")),
                completed: self.registry.counter(&key("completed")),
                shed: self.registry.counter(&key("shed")),
                goodput: self.registry.gauge(&key("goodput")),
            }
        });
        f(handles);
    }

    /// A request reached the admission door.
    pub fn on_offered(&self) {
        self.offered.inc();
    }

    /// A request was admitted (now in flight until completed or shed).
    pub fn on_admitted(&self, req: &ServeRequest) {
        self.admitted.inc();
        self.inflight.inc();
        self.with_tenant(req.tenant, |t| t.admitted.inc());
    }

    /// A request was turned away at the door (never admitted).
    pub fn on_rejected(&self, _req: &ServeRequest) {
        self.rejected.inc();
    }

    /// An admitted request was evicted by the shedding policy.
    pub fn on_shed(&self, req: &ServeRequest) {
        self.shed.inc();
        self.inflight.dec();
        self.with_tenant(req.tenant, |t| t.shed.inc());
    }

    /// An admitted request left the admission queue after waiting `delay`.
    pub fn on_dequeued(&self, delay: SimTime) {
        self.queue_delay.record(delay.as_nanos());
    }

    /// An admitted request completed at `now`; records goodput when it met
    /// its deadline and returns whether it did.
    pub fn on_completed(&self, req: &ServeRequest, now: SimTime) -> bool {
        self.completed.inc();
        self.inflight.dec();
        let good = now <= req.deadline;
        self.with_tenant(req.tenant, |t| {
            t.completed.inc();
            if good {
                t.goodput.inc();
            }
        });
        if good {
            self.good.inc();
        }
        good
    }

    /// The dynamic batcher closed a batch of `size` items; `full` is true
    /// when it closed at `max_batch` (false: linger expiry / force close).
    pub fn on_batch_closed(&self, size: u32, full: bool) {
        self.batches.inc();
        self.batch_size.record(u64::from(size));
        if full {
            self.batches_full.inc();
        } else {
            self.batches_linger.inc();
        }
    }

    /// Publishes the admission-queue depth.
    pub fn set_queue_depth(&self, depth: usize) {
        self.queue_depth.set(depth as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_telemetry::PipelineSnapshot;

    fn req(id: u64, tenant: u32) -> ServeRequest {
        ServeRequest {
            id,
            tenant,
            arrival: SimTime::from_micros(id),
            deadline: SimTime::from_micros(id) + SimTime::from_millis(1),
        }
    }

    #[test]
    fn lifecycle_satisfies_conservation() {
        let registry = Arc::new(Registry::new());
        let inst = ServingInstruments::new(&registry, 4);
        for _ in 0..10 {
            inst.on_offered();
        }
        for i in 0..8u64 {
            inst.on_admitted(&req(i, (i % 2) as u32));
        }
        inst.on_rejected(&req(8, 0));
        inst.on_rejected(&req(9, 1));
        inst.on_shed(&req(0, 0));
        for i in 1..8u64 {
            inst.on_completed(&req(i, (i % 2) as u32), SimTime::from_micros(i));
        }
        inst.on_batch_closed(4, true);
        inst.on_batch_closed(3, false);
        let snap = PipelineSnapshot::from_parts(registry.snapshot(), Vec::new());
        assert_eq!(snap.invariant_violations(), Vec::<String>::new());
        assert_eq!(snap.serving.offered, 10);
        assert_eq!(snap.serving.admitted, 8);
        assert_eq!(snap.serving.rejected, 2);
        assert_eq!(snap.serving.shed, 1);
        assert_eq!(snap.serving.completed, 7);
        assert_eq!(snap.serving.good, 7);
        assert_eq!(snap.serving.inflight, 0);
        assert_eq!(snap.serving.batches, 2);
        assert_eq!(snap.serving.batches_closed_full, 1);
        assert_eq!(snap.serving.batches_closed_linger, 1);
        assert_eq!(snap.serving.tenants.len(), 2);
    }

    #[test]
    fn late_completion_is_not_good() {
        let registry = Arc::new(Registry::new());
        let inst = ServingInstruments::new(&registry, 2);
        let r = req(1, 0);
        inst.on_offered();
        inst.on_admitted(&r);
        assert!(!inst.on_completed(&r, r.deadline + SimTime::from_nanos(1)));
        let snap = PipelineSnapshot::from_parts(registry.snapshot(), Vec::new());
        assert_eq!(snap.serving.good, 0);
        assert_eq!(snap.serving.completed, 1);
    }
}

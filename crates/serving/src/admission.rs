//! Admission control with load shedding.
//!
//! Every arriving request carries a deadline (`arrival + slo`). The
//! controller predicts the request's completion time from the current
//! backlog and a calibrated per-item service estimate; requests that
//! cannot meet their deadline — or that arrive to a full queue — trigger
//! the configured [`ShedPolicy`] instead of queueing unboundedly.

use crate::config::{ServeRequest, ServingConfig, ShedPolicy};
use crate::instruments::ServingInstruments;
use crate::wfq::WeightedFairQueue;
use dlb_simcore::SimTime;
use std::sync::Arc;

/// Outcome of offering one request to the admission controller.
#[derive(Debug, Default)]
pub struct Admission {
    /// True when the offered request entered the queue.
    pub admitted: bool,
    /// Previously admitted requests evicted to make room (shed).
    pub evicted: Vec<ServeRequest>,
}

/// Deadline-aware admission controller over a per-tenant weighted fair
/// queue.
#[derive(Debug)]
pub struct AdmissionController {
    cfg: ServingConfig,
    queue: WeightedFairQueue<ServeRequest>,
    /// Estimated downstream service time per item (queue-drain rate).
    est_per_item: SimTime,
    /// Estimated pipeline latency once an item is dequeued (decode + copy
    /// + inference for its batch).
    base_latency: SimTime,
    instruments: Option<Arc<ServingInstruments>>,
}

impl AdmissionController {
    /// Controller over `cfg`'s tenants; service estimates default to zero
    /// (feasibility checks pass, only the capacity bound sheds).
    pub fn new(cfg: ServingConfig) -> Self {
        let queue = WeightedFairQueue::new(cfg.tenants.iter().map(|t| (t.id, t.weight)));
        Self {
            cfg,
            queue,
            est_per_item: SimTime::ZERO,
            base_latency: SimTime::ZERO,
            instruments: None,
        }
    }

    /// Attaches telemetry handles.
    pub fn with_instruments(mut self, instruments: Arc<ServingInstruments>) -> Self {
        self.instruments = Some(instruments);
        self
    }

    /// Calibrates the feasibility predictor: `per_item` is the downstream
    /// drain time per queued item, `base` the pipeline latency after
    /// dequeue.
    pub fn set_service_estimate(&mut self, per_item: SimTime, base: SimTime) {
        self.est_per_item = per_item;
        self.base_latency = base;
    }

    /// The active configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Queued requests right now.
    pub fn depth(&self) -> usize {
        self.queue.len()
    }

    /// Queued requests for one tenant.
    pub fn tenant_depth(&self, tenant: u32) -> usize {
        self.queue.tenant_len(tenant)
    }

    /// Predicted completion time for a request admitted at `now` behind
    /// `backlog` queued items.
    pub fn predicted_completion(&self, now: SimTime, backlog: usize) -> SimTime {
        let queueing = SimTime::from_nanos(
            self.est_per_item
                .as_nanos()
                .saturating_mul(backlog as u64 + 1),
        );
        now + queueing + self.base_latency
    }

    fn feasible(&self, req: &ServeRequest, now: SimTime, backlog: usize) -> bool {
        self.predicted_completion(now, backlog) <= req.deadline
    }

    /// Offers one request at `now`. With shedding disabled the request is
    /// always admitted; otherwise the capacity bound and the deadline
    /// feasibility check gate it, and the [`ShedPolicy`] decides who pays.
    pub fn offer(&mut self, req: ServeRequest, now: SimTime) -> Admission {
        if let Some(inst) = &self.instruments {
            inst.on_offered();
        }
        let Some(policy) = self.cfg.shed_policy else {
            self.admit(req);
            return Admission {
                admitted: true,
                evicted: Vec::new(),
            };
        };

        let mut evicted = Vec::new();
        // A request that cannot meet its deadline even from an empty queue
        // is rejected outright — evicting others cannot save it.
        if !self.feasible(&req, now, 0) {
            self.reject(&req);
            return Admission {
                admitted: false,
                evicted,
            };
        }

        let admitted = loop {
            let backlog = self.queue.len();
            if backlog < self.cfg.queue_capacity && self.feasible(&req, now, backlog) {
                self.admit(req);
                break true;
            }
            // Over capacity or infeasible behind the current backlog:
            // shed per policy until the arrival fits or is rejected.
            let victim = match policy {
                ShedPolicy::DropNewest => None,
                ShedPolicy::DropOldest => self.queue.evict_oldest(),
                ShedPolicy::DeadlineAware => {
                    // Evict the queued request with the latest deadline,
                    // but never one more urgent than the arrival.
                    let latest = self.queue.iter().map(|r| r.deadline).max();
                    match latest {
                        Some(d) if d > req.deadline => self.queue.evict_max_by_key(|r| r.deadline),
                        _ => None,
                    }
                }
            };
            match victim {
                Some(v) => {
                    if let Some(inst) = &self.instruments {
                        inst.on_shed(&v);
                    }
                    evicted.push(v);
                }
                None => {
                    self.reject(&req);
                    break false;
                }
            }
        };
        self.publish_depth();
        Admission { admitted, evicted }
    }

    fn admit(&mut self, req: ServeRequest) {
        if let Some(inst) = &self.instruments {
            inst.on_admitted(&req);
        }
        self.queue.push(req.tenant, req);
        self.publish_depth();
    }

    fn reject(&self, req: &ServeRequest) {
        if let Some(inst) = &self.instruments {
            inst.on_rejected(req);
        }
    }

    /// Dequeues the next request in WFQ order, recording its queue delay.
    pub fn pop(&mut self, now: SimTime) -> Option<ServeRequest> {
        let req = self.queue.pop()?;
        if let Some(inst) = &self.instruments {
            inst.on_dequeued(now.saturating_sub(req.arrival));
            inst.set_queue_depth(self.queue.len());
        }
        Some(req)
    }

    /// Evicts every queued request whose deadline already passed at `now`
    /// (they would complete late anyway). No-op with shedding disabled.
    pub fn shed_expired(&mut self, now: SimTime) -> Vec<ServeRequest> {
        self.shed_unservable(now, SimTime::ZERO)
    }

    /// Evicts every queued request that cannot complete in time even if
    /// dispatched right now: `lead_time` is the caller's estimate of the
    /// dequeue→completion latency (batch forming + pipeline traversal at
    /// the current occupancy), so requests with `deadline < now + lead`
    /// would only waste downstream capacity on a late answer. No-op with
    /// shedding disabled.
    pub fn shed_unservable(&mut self, now: SimTime, lead_time: SimTime) -> Vec<ServeRequest> {
        if self.cfg.shed_policy.is_none() {
            return Vec::new();
        }
        let cutoff = now + lead_time;
        let mut out = Vec::new();
        while self.queue.iter().any(|r| r.deadline < cutoff) {
            // evict_max_by_key with an "unservable first" key pulls one
            // doomed entry per round.
            if let Some(v) = self
                .queue
                .evict_max_by_key(|r| (r.deadline < cutoff, std::cmp::Reverse(r.deadline)))
            {
                if let Some(inst) = &self.instruments {
                    inst.on_shed(&v);
                }
                out.push(v);
            } else {
                break;
            }
        }
        if !out.is_empty() {
            self.publish_depth();
        }
        out
    }

    fn publish_depth(&self) {
        if let Some(inst) = &self.instruments {
            inst.set_queue_depth(self.queue.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TenantClass;

    fn cfg(policy: ShedPolicy, capacity: usize) -> ServingConfig {
        let mut c = ServingConfig::single_tenant(4, SimTime::from_millis(10), policy);
        c.queue_capacity = capacity;
        c
    }

    fn req(id: u64, arrival: SimTime, slo: SimTime) -> ServeRequest {
        ServeRequest {
            id,
            tenant: 0,
            arrival,
            deadline: arrival + slo,
        }
    }

    #[test]
    fn admits_until_capacity_then_drop_newest_rejects() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DropNewest, 3));
        let now = SimTime::ZERO;
        for i in 0..3 {
            let a = ac.offer(req(i, now, SimTime::from_millis(10)), now);
            assert!(a.admitted);
            assert!(a.evicted.is_empty());
        }
        let a = ac.offer(req(3, now, SimTime::from_millis(10)), now);
        assert!(!a.admitted, "queue full, newest dropped");
        assert!(a.evicted.is_empty());
        assert_eq!(ac.depth(), 3);
    }

    #[test]
    fn drop_oldest_evicts_to_make_room() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DropOldest, 2));
        let now = SimTime::ZERO;
        assert!(
            ac.offer(req(0, now, SimTime::from_millis(10)), now)
                .admitted
        );
        assert!(
            ac.offer(req(1, now, SimTime::from_millis(10)), now)
                .admitted
        );
        let a = ac.offer(req(2, now, SimTime::from_millis(10)), now);
        assert!(a.admitted);
        assert_eq!(a.evicted.len(), 1);
        assert_eq!(a.evicted[0].id, 0, "oldest goes first");
        assert_eq!(ac.depth(), 2);
    }

    #[test]
    fn deadline_aware_evicts_laxest_request() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DeadlineAware, 2));
        let now = SimTime::ZERO;
        assert!(
            ac.offer(req(0, now, SimTime::from_millis(50)), now)
                .admitted
        );
        assert!(ac.offer(req(1, now, SimTime::from_millis(5)), now).admitted);
        // Tighter than request 0 → evicts it.
        let a = ac.offer(req(2, now, SimTime::from_millis(10)), now);
        assert!(a.admitted);
        assert_eq!(a.evicted[0].id, 0);
        // Laxer than everything queued → rejected instead.
        let a = ac.offer(req(3, now, SimTime::from_millis(60)), now);
        assert!(!a.admitted);
        assert!(a.evicted.is_empty());
    }

    #[test]
    fn infeasible_deadline_rejected_without_evictions() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DropOldest, 64));
        ac.set_service_estimate(SimTime::from_millis(2), SimTime::from_millis(1));
        let now = SimTime::ZERO;
        assert!(
            ac.offer(req(0, now, SimTime::from_millis(10)), now)
                .admitted
        );
        // 2 ms/item × 1 + 1 ms base = 3 ms > 2 ms SLO even on an empty
        // queue: reject, and crucially do not evict request 0.
        let a = ac.offer(req(1, now, SimTime::from_millis(2)), now);
        assert!(!a.admitted);
        assert!(a.evicted.is_empty());
        assert_eq!(ac.depth(), 1);
    }

    #[test]
    fn backlog_makes_deadline_infeasible() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DropNewest, 100));
        ac.set_service_estimate(SimTime::from_millis(1), SimTime::ZERO);
        let now = SimTime::ZERO;
        // 10 ms SLO, 1 ms per item: the 11th request (10 queued ahead)
        // would complete at 11 ms > deadline; the 10th lands exactly on it.
        let mut admitted = 0;
        for i in 0..12 {
            if ac
                .offer(req(i, now, SimTime::from_millis(10)), now)
                .admitted
            {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10);
    }

    #[test]
    fn disabled_shedding_admits_everything() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DropNewest, 2).without_shedding());
        let now = SimTime::ZERO;
        for i in 0..100 {
            assert!(ac.offer(req(i, now, SimTime::from_millis(1)), now).admitted);
        }
        assert_eq!(ac.depth(), 100);
    }

    #[test]
    fn shed_expired_drops_only_late_requests() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DropOldest, 64));
        let t0 = SimTime::ZERO;
        ac.offer(req(0, t0, SimTime::from_millis(1)), t0);
        ac.offer(req(1, t0, SimTime::from_millis(100)), t0);
        let shed = ac.shed_expired(SimTime::from_millis(2));
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, 0);
        assert_eq!(ac.depth(), 1);
        assert!(ac.shed_expired(SimTime::from_millis(2)).is_empty());
    }

    #[test]
    fn shed_unservable_uses_dispatch_lead() {
        let mut ac = AdmissionController::new(cfg(ShedPolicy::DropOldest, 64));
        let t0 = SimTime::ZERO;
        ac.offer(req(0, t0, SimTime::from_millis(3)), t0);
        ac.offer(req(1, t0, SimTime::from_millis(20)), t0);
        // Neither is expired at t=1 ms, but with a 5 ms dispatch lead the
        // 3 ms-deadline request can no longer make it.
        let shed = ac.shed_unservable(SimTime::from_millis(1), SimTime::from_millis(5));
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, 0);
        assert_eq!(ac.depth(), 1);
        // A deadline exactly at now + lead is still servable.
        let shed = ac.shed_unservable(SimTime::from_millis(15), SimTime::from_millis(5));
        assert!(shed.is_empty());
    }

    #[test]
    fn wfq_interleaves_tenants_on_pop() {
        let mut cfg = cfg(ShedPolicy::DropNewest, 64);
        cfg.tenants = vec![
            TenantClass {
                id: 0,
                weight: 1,
                load_share: 0.5,
            },
            TenantClass {
                id: 1,
                weight: 1,
                load_share: 0.5,
            },
        ];
        let mut ac = AdmissionController::new(cfg);
        let now = SimTime::ZERO;
        // Tenant 0 floods first, then tenant 1 sends two.
        for i in 0..6 {
            ac.offer(req(i, now, SimTime::from_millis(10)), now);
        }
        for i in 6..8 {
            let mut r = req(i, now, SimTime::from_millis(10));
            r.tenant = 1;
            ac.offer(r, now);
        }
        let order: Vec<u32> = (0..4).map(|_| ac.pop(now).unwrap().tenant).collect();
        assert_eq!(order, vec![0, 1, 0, 1], "hot tenant cannot starve tenant 1");
    }
}

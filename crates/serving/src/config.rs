//! Serving-layer configuration: SLO, dynamic-batching knobs, shedding
//! policy, and tenant classes.

use dlb_simcore::SimTime;

/// One request as seen by the serving layer.
///
/// The serving layer is clock-domain agnostic: `arrival`/`deadline` are
/// virtual nanoseconds in the DES and wall-clock nanoseconds (via
/// [`SimTime::from_nanos`]) in the functional pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeRequest {
    /// Globally unique request id.
    pub id: u64,
    /// Tenant class (client id in the functional path).
    pub tenant: u32,
    /// When the request reached the server.
    pub arrival: SimTime,
    /// Absolute completion deadline (`arrival + slo`).
    pub deadline: SimTime,
}

impl ServeRequest {
    /// Remaining slack at `now` (zero once the deadline passed).
    pub fn slack(&self, now: SimTime) -> SimTime {
        self.deadline.saturating_sub(now)
    }

    /// True when the deadline has passed at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now > self.deadline
    }
}

/// What the admission controller does when a request cannot meet its SLO
/// (or the queue is full).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Reject the arriving request; queued work is never disturbed.
    DropNewest,
    /// Evict the oldest queued request(s) to make the arrival feasible.
    DropOldest,
    /// Evict the queued request with the *latest* deadline when it is less
    /// urgent than the arrival (EDF-flavoured shedding).
    DeadlineAware,
}

/// One tenant class: scheduling weight and share of the offered load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantClass {
    /// Tenant id (matches the wire `client_id`).
    pub id: u32,
    /// WFQ weight (≥ 1); a weight-2 tenant gets twice the service of a
    /// weight-1 tenant under backlog.
    pub weight: u32,
    /// Fraction of the offered load this tenant generates (the DES arrival
    /// process samples tenants from these shares; they need not sum to 1 —
    /// they are normalised).
    pub load_share: f64,
}

/// Serving-layer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Close a forming batch at this many items.
    pub max_batch: u32,
    /// Close a non-empty forming batch once its first item has waited this
    /// long (Triton/Clipper-style linger).
    pub max_linger: SimTime,
    /// Per-request latency SLO; `deadline = arrival + slo`.
    pub slo: SimTime,
    /// Admission-queue bound; arrivals beyond it trigger the shedding
    /// policy. Ignored when shedding is disabled.
    pub queue_capacity: usize,
    /// Shedding policy; `None` disables admission control entirely (every
    /// request is admitted and queues unboundedly — the pre-serving-layer
    /// behaviour, kept for A/B sweeps).
    pub shed_policy: Option<ShedPolicy>,
    /// Tenant classes. Must be non-empty.
    pub tenants: Vec<TenantClass>,
}

impl ServingConfig {
    /// A single-tenant configuration with sensible derived knobs:
    /// `max_linger = slo/4` and `queue_capacity = 4 × max_batch`.
    pub fn single_tenant(max_batch: u32, slo: SimTime, policy: ShedPolicy) -> Self {
        assert!(max_batch >= 1, "max_batch must be >= 1");
        Self {
            max_batch,
            max_linger: SimTime::from_nanos(slo.as_nanos() / 4),
            slo,
            queue_capacity: 4 * max_batch as usize,
            shed_policy: Some(policy),
            tenants: vec![TenantClass {
                id: 0,
                weight: 1,
                load_share: 1.0,
            }],
        }
    }

    /// The paper's five inference clients as five equal-weight tenants.
    pub fn five_clients(max_batch: u32, slo: SimTime, policy: ShedPolicy) -> Self {
        let mut cfg = Self::single_tenant(max_batch, slo, policy);
        cfg.tenants = (0..5)
            .map(|id| TenantClass {
                id,
                weight: 1,
                load_share: 0.2,
            })
            .collect();
        cfg
    }

    /// Disables shedding (unbounded admission queue) — the A/B baseline
    /// demonstrating why the serving layer exists.
    pub fn without_shedding(mut self) -> Self {
        self.shed_policy = None;
        self.queue_capacity = usize::MAX;
        self
    }

    /// Replaces the tenant classes.
    pub fn with_tenants(mut self, tenants: Vec<TenantClass>) -> Self {
        assert!(!tenants.is_empty(), "at least one tenant class");
        self.tenants = tenants;
        self
    }

    /// Total of all tenant load shares (for normalisation).
    pub fn total_load_share(&self) -> f64 {
        self.tenants.iter().map(|t| t.load_share.max(0.0)).sum()
    }

    /// `(tenant id, weight)` pairs for carving a per-tenant
    /// decoded-sample cache (`SampleCache::partitioned`): capacity is
    /// allotted proportionally to WFQ weight, so a tenant's cache share
    /// tracks its service share and one tenant's working set can never
    /// evict another's.
    pub fn cache_partitions(&self) -> Vec<(u32, u32)> {
        self.tenants
            .iter()
            .map(|t| (t.id, t.weight.max(1)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_knobs() {
        let cfg = ServingConfig::single_tenant(8, SimTime::from_millis(20), ShedPolicy::DropNewest);
        assert_eq!(cfg.max_linger, SimTime::from_millis(5));
        assert_eq!(cfg.queue_capacity, 32);
        assert_eq!(cfg.tenants.len(), 1);
        assert!(cfg.shed_policy.is_some());
        let off = cfg.clone().without_shedding();
        assert!(off.shed_policy.is_none());
        assert_eq!(off.queue_capacity, usize::MAX);
    }

    #[test]
    fn request_slack() {
        let r = ServeRequest {
            id: 1,
            tenant: 0,
            arrival: SimTime::from_millis(10),
            deadline: SimTime::from_millis(30),
        };
        assert_eq!(r.slack(SimTime::from_millis(20)), SimTime::from_millis(10));
        assert_eq!(r.slack(SimTime::from_millis(40)), SimTime::ZERO);
        assert!(r.expired(SimTime::from_millis(31)));
        assert!(!r.expired(SimTime::from_millis(30)));
    }

    #[test]
    fn five_clients_shares() {
        let cfg = ServingConfig::five_clients(4, SimTime::from_millis(10), ShedPolicy::DropOldest);
        assert_eq!(cfg.tenants.len(), 5);
        assert!((cfg.total_load_share() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_partitions_follow_wfq_weights() {
        let cfg = ServingConfig::single_tenant(4, SimTime::from_millis(10), ShedPolicy::DropNewest)
            .with_tenants(vec![
                TenantClass {
                    id: 7,
                    weight: 3,
                    load_share: 0.5,
                },
                TenantClass {
                    id: 9,
                    weight: 0, // degenerate weight is clamped to 1
                    load_share: 0.5,
                },
            ]);
        assert_eq!(cfg.cache_partitions(), vec![(7, 3), (9, 1)]);
    }
}

//! Deadline-aware dynamic batch former (Triton/Clipper-style).
//!
//! A batch closes when it reaches `max_batch` items **or** when its first
//! item has lingered `max_linger`, whichever comes first — so small
//! batches ship promptly under light load and full batches ship under
//! heavy load. The former is clock-domain agnostic: the DES arms a
//! [`BatchFormer::linger_deadline`] timer event carrying the current
//! [`BatchFormer::generation`], and stale timers (the batch already closed
//! full) are detected by generation mismatch.

use crate::config::ServeRequest;
use crate::instruments::ServingInstruments;
use dlb_simcore::SimTime;
use std::sync::Arc;

/// A closed batch ready for the decode/inference pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormedBatch {
    /// Member requests in admission order.
    pub requests: Vec<ServeRequest>,
    /// True when the batch closed by linger expiry (or force close) rather
    /// than by filling to `max_batch`.
    pub closed_by_linger: bool,
}

impl FormedBatch {
    /// Items in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the batch has no members (never produced by the former).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

/// The dynamic batch former.
#[derive(Debug)]
pub struct BatchFormer {
    max_batch: u32,
    max_linger: SimTime,
    pending: Vec<ServeRequest>,
    /// When the oldest pending item entered the former.
    opened_at: Option<SimTime>,
    /// Bumped on every close; identifies the forming batch so stale linger
    /// timers can be discarded.
    generation: u64,
    instruments: Option<Arc<ServingInstruments>>,
}

impl BatchFormer {
    /// Former closing at `max_batch` items or `max_linger` wait.
    pub fn new(max_batch: u32, max_linger: SimTime) -> Self {
        assert!(max_batch >= 1, "max_batch must be >= 1");
        Self {
            max_batch,
            max_linger,
            pending: Vec::with_capacity(max_batch as usize),
            opened_at: None,
            generation: 0,
            instruments: None,
        }
    }

    /// Attaches telemetry handles.
    pub fn with_instruments(mut self, instruments: Arc<ServingInstruments>) -> Self {
        self.instruments = Some(instruments);
        self
    }

    /// Items currently forming.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Identifier of the forming batch; linger timers armed for an older
    /// generation are stale.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Absolute time at which the forming batch must close, or `None` when
    /// nothing is forming. Arm (or re-arm) a timer for this instant after
    /// every push that returns `None` on a fresh batch.
    pub fn linger_deadline(&self) -> Option<SimTime> {
        self.opened_at.map(|t| t + self.max_linger)
    }

    /// Adds one request at `now`. Returns the closed batch when this push
    /// filled it to `max_batch`.
    pub fn push(&mut self, req: ServeRequest, now: SimTime) -> Option<FormedBatch> {
        if self.pending.is_empty() {
            self.opened_at = Some(now);
        }
        self.pending.push(req);
        if self.pending.len() >= self.max_batch as usize {
            Some(self.close(false))
        } else {
            None
        }
    }

    /// Closes the forming batch if the linger timer armed for
    /// `generation` is still current and has expired at `now`. Stale
    /// timers (batch already closed) and early timers return `None`.
    pub fn close_if_due(&mut self, now: SimTime, generation: u64) -> Option<FormedBatch> {
        if generation != self.generation || self.pending.is_empty() {
            return None;
        }
        match self.linger_deadline() {
            Some(due) if now >= due => Some(self.close(true)),
            _ => None,
        }
    }

    /// Unconditionally closes the forming batch (pipeline drain).
    pub fn force_close(&mut self) -> Option<FormedBatch> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.close(true))
        }
    }

    fn close(&mut self, by_linger: bool) -> FormedBatch {
        let requests = std::mem::take(&mut self.pending);
        self.opened_at = None;
        self.generation += 1;
        if let Some(inst) = &self.instruments {
            inst.on_batch_closed(requests.len() as u32, !by_linger);
        }
        FormedBatch {
            requests,
            closed_by_linger: by_linger,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> ServeRequest {
        ServeRequest {
            id,
            tenant: 0,
            arrival: SimTime::from_micros(id),
            deadline: SimTime::from_micros(id) + SimTime::from_millis(10),
        }
    }

    #[test]
    fn closes_full_at_max_batch() {
        let mut f = BatchFormer::new(3, SimTime::from_millis(1));
        let now = SimTime::ZERO;
        assert!(f.push(req(0), now).is_none());
        assert!(f.push(req(1), now).is_none());
        let b = f.push(req(2), now).unwrap();
        assert_eq!(b.len(), 3);
        assert!(!b.closed_by_linger);
        assert_eq!(f.pending(), 0);
        assert_eq!(f.generation(), 1);
    }

    #[test]
    fn linger_closes_partial_batch() {
        let mut f = BatchFormer::new(8, SimTime::from_micros(100));
        let t0 = SimTime::from_millis(1);
        f.push(req(0), t0);
        f.push(req(1), t0 + SimTime::from_micros(10));
        let gen = f.generation();
        assert_eq!(f.linger_deadline(), Some(t0 + SimTime::from_micros(100)));
        // Timer fires early: nothing.
        assert!(f.close_if_due(t0 + SimTime::from_micros(50), gen).is_none());
        let b = f.close_if_due(t0 + SimTime::from_micros(100), gen).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.closed_by_linger);
    }

    #[test]
    fn stale_generation_timer_is_ignored() {
        let mut f = BatchFormer::new(2, SimTime::from_micros(100));
        let t0 = SimTime::ZERO;
        f.push(req(0), t0);
        let gen = f.generation();
        f.push(req(1), t0).unwrap(); // closed full; gen advanced
        f.push(req(2), t0 + SimTime::from_micros(10));
        // The old timer fires after the close: must not clip the new batch.
        assert!(f
            .close_if_due(t0 + SimTime::from_micros(100), gen)
            .is_none());
        assert_eq!(f.pending(), 1);
    }

    #[test]
    fn linger_clock_restarts_per_batch() {
        let mut f = BatchFormer::new(4, SimTime::from_micros(100));
        f.push(req(0), SimTime::from_micros(0));
        f.force_close().unwrap();
        f.push(req(1), SimTime::from_micros(500));
        assert_eq!(
            f.linger_deadline(),
            Some(SimTime::from_micros(600)),
            "linger measured from the new batch's first push"
        );
    }

    #[test]
    fn force_close_flushes_partial() {
        let mut f = BatchFormer::new(4, SimTime::from_millis(1));
        assert!(f.force_close().is_none());
        f.push(req(0), SimTime::ZERO);
        let b = f.force_close().unwrap();
        assert_eq!(b.len(), 1);
        assert!(f.force_close().is_none());
    }
}

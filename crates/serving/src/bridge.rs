//! Functional-pipeline integration: the [`ServingBridge`] drains the NIC
//! RX ring through admission control and the dynamic batch former, then
//! feeds closed batches to the `DataCollector` (which the `FpgaReader`
//! consumes). Shed requests have their NIC payload buffers released
//! immediately, so rejected traffic cannot exhaust host memory.

use crate::admission::AdmissionController;
use crate::batcher::BatchFormer;
use crate::config::{ServeRequest, ServingConfig};
use crate::instruments::ServingInstruments;
use dlb_net::{NicRx, RxDescriptor};
use dlb_simcore::SimTime;
use dlb_telemetry::Registry;
use dlbooster_core::{DataCollector, FileMeta};
use std::collections::HashMap;
use std::sync::Arc;

/// Counts from one [`ServingBridge::ingest`] sweep.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Descriptors pulled off the NIC ring.
    pub offered: u64,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests rejected at the door.
    pub rejected: u64,
    /// Previously admitted requests evicted (shed).
    pub shed: u64,
    /// Batches dispatched into the pipeline.
    pub batches: u64,
}

impl IngestStats {
    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: IngestStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.shed += other.shed;
        self.batches += other.batches;
    }
}

/// Glue between `NicRx` and the decode pipeline: admission → WFQ →
/// dynamic batching → `DataCollector`.
#[derive(Debug)]
pub struct ServingBridge {
    admission: AdmissionController,
    former: BatchFormer,
    slo: SimTime,
    /// Descriptors for requests admitted but not yet handed downstream.
    descs: HashMap<u64, RxDescriptor>,
    /// Requests handed downstream, awaiting [`ServingBridge::complete`].
    inflight: HashMap<u64, ServeRequest>,
    instruments: Option<Arc<ServingInstruments>>,
}

impl ServingBridge {
    /// Bridge without telemetry.
    pub fn new(cfg: ServingConfig) -> Self {
        let slo = cfg.slo;
        let former = BatchFormer::new(cfg.max_batch, cfg.max_linger);
        Self {
            admission: AdmissionController::new(cfg),
            former,
            slo,
            descs: HashMap::new(),
            inflight: HashMap::new(),
            instruments: None,
        }
    }

    /// Bridge recording into `registry` under the canonical `serving.*`
    /// names.
    pub fn with_telemetry(cfg: ServingConfig, registry: &Arc<Registry>) -> Self {
        let instruments = ServingInstruments::new(registry, cfg.max_batch);
        let slo = cfg.slo;
        let former = BatchFormer::new(cfg.max_batch, cfg.max_linger)
            .with_instruments(Arc::clone(&instruments));
        Self {
            admission: AdmissionController::new(cfg).with_instruments(Arc::clone(&instruments)),
            former,
            slo,
            descs: HashMap::new(),
            inflight: HashMap::new(),
            instruments: Some(instruments),
        }
    }

    /// Calibrates the admission feasibility predictor (see
    /// [`AdmissionController::set_service_estimate`]).
    pub fn set_service_estimate(&mut self, per_item: SimTime, base: SimTime) {
        self.admission.set_service_estimate(per_item, base);
    }

    /// Admission-queue depth.
    pub fn queued(&self) -> usize {
        self.admission.depth()
    }

    /// Requests dispatched downstream and not yet completed.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// One sweep at `now_nanos`: drain the NIC ring through admission
    /// (releasing shed payload buffers), evict queued requests whose
    /// deadline already passed, and pump the admission queue through the
    /// batch former into `collector`.
    pub fn ingest(
        &mut self,
        nic: &NicRx,
        collector: &DataCollector,
        now_nanos: u64,
    ) -> IngestStats {
        let now = SimTime::from_nanos(now_nanos);
        let mut stats = IngestStats::default();
        while let Some(desc) = nic.poll() {
            stats.offered += 1;
            let arrival = SimTime::from_nanos(desc.arrival_nanos);
            let req = ServeRequest {
                id: desc.request_id,
                tenant: desc.client_id,
                arrival,
                deadline: arrival + self.slo,
            };
            self.descs.insert(desc.request_id, desc);
            let outcome = self.admission.offer(req, now);
            for victim in outcome.evicted {
                stats.shed += 1;
                self.release(nic, victim.id);
            }
            if outcome.admitted {
                stats.admitted += 1;
            } else {
                stats.rejected += 1;
                self.release(nic, req.id);
            }
        }
        for victim in self.admission.shed_expired(now) {
            stats.shed += 1;
            self.release(nic, victim.id);
        }
        // Pump admitted requests through the batch former.
        while let Some(req) = self.admission.pop(now) {
            if let Some(batch) = self.former.push(req, now) {
                stats.batches += 1;
                self.dispatch(batch.requests, collector);
            }
        }
        let generation = self.former.generation();
        if let Some(batch) = self.former.close_if_due(now, generation) {
            stats.batches += 1;
            self.dispatch(batch.requests, collector);
        }
        stats
    }

    /// Force-closes the forming batch (drain). Returns the batch size.
    pub fn flush(&mut self, collector: &DataCollector) -> usize {
        match self.former.force_close() {
            Some(batch) => {
                let n = batch.requests.len();
                self.dispatch(batch.requests, collector);
                n
            }
            None => 0,
        }
    }

    /// Marks `request_id` completed at `now_nanos`. Returns whether it met
    /// its SLO (`None` for ids the bridge never dispatched).
    pub fn complete(&mut self, request_id: u64, now_nanos: u64) -> Option<bool> {
        let req = self.inflight.remove(&request_id)?;
        let now = SimTime::from_nanos(now_nanos);
        let good = match &self.instruments {
            Some(inst) => inst.on_completed(&req, now),
            None => now <= req.deadline,
        };
        Some(good)
    }

    fn dispatch(&mut self, requests: Vec<ServeRequest>, collector: &DataCollector) {
        for req in requests {
            if let Some(desc) = self.descs.remove(&req.id) {
                let mut meta = FileMeta::from_rx(&desc);
                meta.deadline_nanos = Some(req.deadline.as_nanos());
                collector.push_meta(meta);
            }
            self.inflight.insert(req.id, req);
        }
    }

    fn release(&mut self, nic: &NicRx, request_id: u64) {
        if let Some(desc) = self.descs.remove(&request_id) {
            nic.release(desc.phys_addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ShedPolicy;
    use dlb_net::{Frame, NicSpec};

    fn wire(id: u64, client: u32) -> Vec<u8> {
        Frame {
            request_id: id,
            client_id: client,
            send_ts_nanos: 0,
            payload: vec![7u8; 64],
        }
        .encode()
    }

    fn setup(cfg: ServingConfig) -> (NicRx, DataCollector, ServingBridge) {
        (
            NicRx::new(NicSpec::forty_gbps(), 0x1000),
            DataCollector::load_from_net(),
            ServingBridge::new(cfg),
        )
    }

    #[test]
    fn admitted_requests_flow_to_collector_with_deadlines() {
        let cfg = ServingConfig::single_tenant(2, SimTime::from_millis(10), ShedPolicy::DropNewest);
        let (nic, collector, mut bridge) = setup(cfg);
        nic.deliver(&wire(1, 0), 100).unwrap();
        nic.deliver(&wire(2, 0), 200).unwrap();
        let stats = bridge.ingest(&nic, &collector, 300);
        assert_eq!(stats.offered, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.batches, 1, "max_batch=2 closed full");
        let metas = collector.next_metas(8).unwrap();
        assert_eq!(metas.len(), 2);
        assert_eq!(
            metas[0].deadline_nanos,
            Some(100 + 10_000_000),
            "deadline = arrival + slo"
        );
        assert_eq!(bridge.inflight(), 2);
        assert_eq!(bridge.complete(1, 500), Some(true));
        assert_eq!(
            bridge.complete(2, 200 + 10_000_001),
            Some(false),
            "past deadline"
        );
        assert_eq!(bridge.complete(99, 0), None);
    }

    #[test]
    fn rejected_requests_release_nic_buffers() {
        let mut cfg =
            ServingConfig::single_tenant(64, SimTime::from_millis(10), ShedPolicy::DropNewest);
        cfg.queue_capacity = 1;
        cfg.max_linger = SimTime::MAX; // keep the former from closing
        let (nic, collector, mut bridge) = setup(cfg);
        for i in 0..4 {
            nic.deliver(&wire(i, 0), 0).unwrap();
        }
        assert_eq!(nic.buffers_held(), 4);
        let stats = bridge.ingest(&nic, &collector, 0);
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.rejected, 3);
        assert_eq!(
            nic.buffers_held(),
            1,
            "rejected payloads are released immediately"
        );
    }

    #[test]
    fn linger_dispatches_partial_batch() {
        let mut cfg =
            ServingConfig::single_tenant(8, SimTime::from_millis(10), ShedPolicy::DropNewest);
        cfg.max_linger = SimTime::from_micros(500);
        let (nic, collector, mut bridge) = setup(cfg);
        nic.deliver(&wire(1, 0), 0).unwrap();
        let stats = bridge.ingest(&nic, &collector, 0);
        assert_eq!(stats.batches, 0, "still lingering");
        // Sweep again past the linger deadline: the partial batch ships.
        let stats = bridge.ingest(&nic, &collector, 600_000);
        assert_eq!(stats.batches, 1);
        assert_eq!(collector.next_metas(8).unwrap().len(), 1);
    }

    #[test]
    fn expired_queued_requests_are_shed_with_buffers_released() {
        let mut cfg =
            ServingConfig::single_tenant(64, SimTime::from_millis(1), ShedPolicy::DropOldest);
        cfg.max_linger = SimTime::MAX;
        // Keep them stuck in the admission queue by batching huge.
        cfg.max_batch = 64;
        let (nic, collector, mut bridge) = setup(cfg);
        nic.deliver(&wire(1, 0), 0).unwrap();
        // First sweep at t=0 admits and pumps it into the former — pop
        // happens immediately, so queue-level expiry needs a backlog.
        // Use a second request arriving late to trigger the sweep.
        let _ = bridge.ingest(&nic, &collector, 0);
        assert_eq!(bridge.queued(), 0, "pumped into the former");
        // The former holds it (max_linger = MAX); flush dispatches.
        assert_eq!(bridge.flush(&collector), 1);
        assert_eq!(bridge.inflight(), 1);
        assert_eq!(bridge.complete(1, 2_000_000), Some(false), "late");
    }
}

//! Start-time fair queuing across tenant classes.
//!
//! Classic SFQ (Goyal et al.): each tenant keeps a FIFO of queued items;
//! only the *head* of a tenant's FIFO carries a virtual finish tag
//! `max(virtual_time, tenant_finish) + 1/weight` — frozen at the moment
//! the item becomes head — and the queue pops the head with the smallest
//! tag. Under backlog a weight-2 tenant therefore dequeues twice as often
//! as a weight-1 tenant; an idle tenant's tag catches up to virtual time,
//! so it is never punished for having been idle.
//!
//! Only popped entries advance a tenant's virtual service. This matters
//! under load shedding: if evicted entries consumed service (as they
//! would if every entry were tagged at push time), a tenant whose queued
//! items went stale and were shed would have its tags inflated by work it
//! never received — falling further behind, going staler, being shed
//! more: a starvation spiral. Here eviction simply removes the item; the
//! tenant's finish tag only ever advances on a real pop.
//!
//! Tags are fixed-point `u64` (units of [`TAG_SCALE`]`/weight` per item)
//! so ordering is exact and deterministic. Ties break on a monotonically
//! increasing sequence number (FIFO within and across tenants).

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Fixed-point scale for virtual-time tags: one unit of service costs
/// `TAG_SCALE / weight` tag units.
pub const TAG_SCALE: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct Entry<T> {
    item: T,
    /// Tie-breaker: global arrival order.
    seq: u64,
}

#[derive(Debug)]
struct TenantQueue<T> {
    weight: u32,
    /// Finish tag of this tenant's last *popped* entry.
    finish: u64,
    /// Virtual finish tag of the current head, frozen when it became
    /// head; `None` when the tenant's FIFO is empty.
    head_tag: Option<u64>,
    items: VecDeque<Entry<T>>,
}

impl<T> TenantQueue<T> {
    /// (Re)freezes the head tag after the head changed. `vtime` is the
    /// queue-wide virtual time at the moment of the change.
    fn retag_head(&mut self, vtime: u64) {
        self.head_tag = if self.items.is_empty() {
            None
        } else {
            Some(vtime.max(self.finish) + TAG_SCALE / self.weight as u64)
        };
    }
}

/// A weighted fair queue over tenant classes.
///
/// `T` is the queued payload. Weights are registered up front via
/// [`WeightedFairQueue::new`]; pushes for unregistered tenants fall back
/// to weight 1.
#[derive(Debug)]
pub struct WeightedFairQueue<T> {
    tenants: BTreeMap<u32, TenantQueue<T>>,
    /// Virtual time = finish tag of the last popped entry.
    vtime: u64,
    seq: u64,
    len: usize,
}

impl<T> WeightedFairQueue<T> {
    /// Creates a queue with the given `(tenant_id, weight)` classes.
    /// Zero weights are clamped to 1.
    pub fn new(weights: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let tenants = weights
            .into_iter()
            .map(|(id, w)| {
                (
                    id,
                    TenantQueue {
                        weight: w.max(1),
                        finish: 0,
                        head_tag: None,
                        items: VecDeque::new(),
                    },
                )
            })
            .collect();
        Self {
            tenants,
            vtime: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of queued entries for one tenant.
    pub fn tenant_len(&self, tenant: u32) -> usize {
        self.tenants.get(&tenant).map_or(0, |t| t.items.len())
    }

    /// The registered weight of `tenant`, or `None` for tenants this
    /// queue has never seen. Tenants that arrived via
    /// [`WeightedFairQueue::push`] without registration report their
    /// fallback weight 1.
    pub fn tenant_weight(&self, tenant: u32) -> Option<u32> {
        self.tenants.get(&tenant).map(|t| t.weight)
    }

    /// Read-only view of every tenant class: `(id, weight, backlog)` in
    /// ascending id order. This is the hook layers above the queue (e.g.
    /// cluster-wide quota buckets) use to derive per-tenant shares
    /// without duplicating tenant state.
    pub fn tenants(&self) -> impl Iterator<Item = (u32, u32, usize)> + '_ {
        self.tenants
            .iter()
            .map(|(&id, tq)| (id, tq.weight, tq.items.len()))
    }

    /// Enqueues `item` for `tenant` (FIFO within the tenant).
    pub fn push(&mut self, tenant: u32, item: T) {
        let seq = self.seq;
        self.seq += 1;
        let vtime = self.vtime;
        let tq = self.tenants.entry(tenant).or_insert_with(|| TenantQueue {
            weight: 1,
            finish: 0,
            head_tag: None,
            items: VecDeque::new(),
        });
        tq.items.push_back(Entry { item, seq });
        if tq.head_tag.is_none() {
            tq.retag_head(vtime);
        }
        self.len += 1;
    }

    /// Tenant id whose head [`WeightedFairQueue::pop`] would serve next.
    fn next_tenant(&self) -> Option<u32> {
        self.tenants
            .iter()
            .filter_map(|(&id, tq)| {
                let tag = tq.head_tag?;
                let head_seq = tq.items.front().map(|e| e.seq).unwrap_or(u64::MAX);
                Some((tag, head_seq, id))
            })
            .min()
            .map(|(_, _, id)| id)
    }

    /// Pops the head with the smallest frozen finish tag (FIFO on ties)
    /// and advances virtual time to that tag.
    pub fn pop(&mut self) -> Option<T> {
        let id = self.next_tenant()?;
        let tq = self.tenants.get_mut(&id).expect("tenant exists");
        let finish = tq.head_tag.expect("selected head is tagged");
        let entry = tq.items.pop_front().expect("tenant non-empty");
        tq.finish = finish;
        self.vtime = self.vtime.max(finish);
        let vtime = self.vtime;
        let tq = self.tenants.get_mut(&id).expect("tenant exists");
        tq.retag_head(vtime);
        self.len -= 1;
        Some(entry.item)
    }

    /// Peeks at the next entry that [`WeightedFairQueue::pop`] would
    /// return, without removing it.
    pub fn peek(&self) -> Option<&T> {
        let id = self.next_tenant()?;
        self.tenants[&id].items.front().map(|e| &e.item)
    }

    /// Removes the item at `idx` of tenant `id`'s FIFO without charging
    /// virtual service; re-freezes the head tag if the head was removed.
    fn evict_at(&mut self, id: u32, idx: usize) -> T {
        let vtime = self.vtime;
        let tq = self.tenants.get_mut(&id).expect("tenant exists");
        let entry = tq.items.remove(idx).expect("index in range");
        if idx == 0 {
            tq.retag_head(vtime);
        }
        self.len -= 1;
        entry.item
    }

    /// Removes and returns the most recently pushed entry (LIFO end) —
    /// used by the drop-newest shedding policy when the arrival itself
    /// has already been queued. The evicted entry consumes no virtual
    /// service.
    pub fn evict_newest(&mut self) -> Option<T> {
        let id = *self
            .tenants
            .iter()
            .filter(|(_, tq)| !tq.items.is_empty())
            .max_by_key(|(_, tq)| tq.items.back().map(|e| e.seq))
            .map(|(id, _)| id)?;
        let idx = self.tenants[&id].items.len() - 1;
        Some(self.evict_at(id, idx))
    }

    /// Removes and returns the oldest entry (smallest sequence number) —
    /// the drop-oldest shedding policy. The evicted entry consumes no
    /// virtual service.
    pub fn evict_oldest(&mut self) -> Option<T> {
        let id = *self
            .tenants
            .iter()
            .filter(|(_, tq)| !tq.items.is_empty())
            .min_by_key(|(_, tq)| tq.items.front().map(|e| e.seq).unwrap_or(u64::MAX))
            .map(|(id, _)| id)?;
        Some(self.evict_at(id, 0))
    }

    /// Removes and returns the entry maximising `key` (ties broken toward
    /// the newest entry) — used by deadline-aware shedding to evict the
    /// queued request with the latest deadline. The evicted entry consumes
    /// no virtual service.
    pub fn evict_max_by_key<K: Ord>(&mut self, mut key: impl FnMut(&T) -> K) -> Option<T> {
        let mut best: Option<(u32, usize, K, u64)> = None;
        for (&id, tq) in &self.tenants {
            for (idx, e) in tq.items.iter().enumerate() {
                let k = key(&e.item);
                let better = match &best {
                    None => true,
                    Some((_, _, bk, bseq)) => match k.cmp(bk) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Equal => e.seq > *bseq,
                        std::cmp::Ordering::Less => false,
                    },
                };
                if better {
                    best = Some((id, idx, k, e.seq));
                }
            }
        }
        let (id, idx, _, _) = best?;
        Some(self.evict_at(id, idx))
    }

    /// Iterates over queued items in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.tenants
            .values()
            .flat_map(|tq| tq.items.iter().map(|e| &e.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_single_tenant() {
        let mut q = WeightedFairQueue::new([(0, 1)]);
        for i in 0..5 {
            q.push(0, i);
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn weighted_share_under_backlog() {
        // Tenant 0 weight 2, tenant 1 weight 1, both fully backlogged:
        // across any window, tenant 0 should be served ~2x as often.
        let mut q = WeightedFairQueue::new([(0, 2), (1, 1)]);
        for i in 0..30 {
            q.push(0, (0u32, i));
            q.push(1, (1u32, i));
        }
        let mut first12 = [0usize; 2];
        for _ in 0..12 {
            let (t, _) = q.pop().unwrap();
            first12[t as usize] += 1;
        }
        assert_eq!(first12[0], 8, "weight-2 tenant gets 2/3 of service");
        assert_eq!(first12[1], 4);
    }

    #[test]
    fn idle_tenant_not_starved_or_boosted() {
        let mut q = WeightedFairQueue::new([(0, 1), (1, 1)]);
        // Tenant 0 burns through service while tenant 1 is idle.
        for i in 0..10 {
            q.push(0, (0u32, i));
        }
        for _ in 0..10 {
            q.pop().unwrap();
        }
        // Tenant 1 wakes up: it must not get an unbounded credit burst,
        // and it must not wait behind tenant 0's new arrivals forever.
        for i in 0..4 {
            q.push(1, (1u32, i));
            q.push(0, (0u32, 100 + i));
        }
        let mut counts = [0usize; 2];
        for _ in 0..8 {
            let (t, _) = q.pop().unwrap();
            counts[t as usize] += 1;
        }
        assert_eq!(counts, [4, 4], "equal weights alternate after idle");
    }

    #[test]
    fn eviction_primitives() {
        let mut q = WeightedFairQueue::new([(0, 1)]);
        for i in 0..4 {
            q.push(0, i);
        }
        assert_eq!(q.evict_newest(), Some(3));
        assert_eq!(q.evict_oldest(), Some(0));
        assert_eq!(q.evict_max_by_key(|v| *v), Some(2));
        assert_eq!(q.pop(), Some(1));
        assert!(q.is_empty());
    }

    #[test]
    fn unknown_tenant_defaults_to_weight_one() {
        let mut q = WeightedFairQueue::new([(0, 1)]);
        q.push(7, "x");
        assert_eq!(q.tenant_len(7), 1);
        assert_eq!(q.pop(), Some("x"));
    }

    #[test]
    fn tenant_accessors_expose_weight_and_backlog() {
        let mut q = WeightedFairQueue::new([(0, 3), (1, 1)]);
        assert_eq!(q.tenant_weight(0), Some(3));
        assert_eq!(q.tenant_weight(9), None);
        q.push(0, "a");
        q.push(0, "b");
        q.push(1, "c");
        q.push(7, "d"); // unregistered → fallback weight 1
        assert_eq!(q.tenant_weight(7), Some(1));
        let view: Vec<(u32, u32, usize)> = q.tenants().collect();
        assert_eq!(view, vec![(0, 3, 2), (1, 1, 1), (7, 1, 1)]);
        // The view is read-only: service order and tags are unchanged.
        assert_eq!(q.len(), 4);
        q.pop().unwrap();
        let backlog: usize = q.tenants().map(|(_, _, b)| b).sum();
        assert_eq!(backlog, 3);
    }

    #[test]
    fn eviction_does_not_charge_virtual_service() {
        // Tenant 0's queued items keep getting evicted (as stale work
        // would be under shedding); tenant 1 is served normally. When
        // tenant 0's surviving item competes, it must win immediately —
        // evictions must not have inflated its virtual-time tags into a
        // starvation spiral.
        let mut q = WeightedFairQueue::new([(0, 1), (1, 1)]);
        for i in 0..8 {
            q.push(0, (0u32, i));
        }
        for _ in 0..7 {
            q.evict_oldest().unwrap();
        }
        for i in 0..8 {
            q.push(1, (1u32, i));
        }
        // One tenant-0 item and eight tenant-1 items remain; tenant 0 has
        // received no service, so its head must be among the first two
        // served, not behind tenant 1's whole backlog.
        let first_two: Vec<u32> = (0..2).map(|_| q.pop().unwrap().0).collect();
        assert!(
            first_two.contains(&0),
            "evictions starved tenant 0: {first_two:?}"
        );
    }
}

//! # dlb-serving
//!
//! SLO-aware serving layer between `dlb-net`'s RX path and the
//! decode/inference pipeline — the subsystem that lets the reproduction
//! degrade gracefully under overload instead of queueing unboundedly
//! (ROADMAP north star: "serve heavy traffic from millions of users").
//!
//! Four cooperating pieces:
//!
//! * [`BatchFormer`] — deadline-aware dynamic batching (Triton/Clipper
//!   style): a batch closes at `max_batch` items or after `max_linger`,
//!   whichever first, so small batches ship under light load and full
//!   batches under heavy load;
//! * [`AdmissionController`] — per-request deadlines with load shedding:
//!   requests whose predicted queue delay makes the SLO infeasible are
//!   rejected at admission ([`ShedPolicy::DropNewest`],
//!   [`ShedPolicy::DropOldest`], or [`ShedPolicy::DeadlineAware`]);
//! * [`WeightedFairQueue`] — start-time fair queuing across tenant
//!   classes, so one hot tenant cannot starve the rest;
//! * [`ServingBridge`] — functional-pipeline glue: NIC ring → admission →
//!   WFQ → batch former → `DataCollector`, releasing shed payload buffers
//!   and scoring completions against their deadlines.
//!
//! Everything records through `dlb-telemetry` under the canonical
//! `serving.*` names; `PipelineSnapshot` enforces the conservation
//! contract `offered = admitted + rejected` and
//! `admitted = completed + shed + inflight`.
//!
//! The DES integration (open-loop overload sweeps) lives in
//! `dlb-workflows`; this crate is clock-domain agnostic and takes
//! [`dlb_simcore::SimTime`] everywhere.

#![warn(missing_docs)]

pub mod admission;
pub mod batcher;
pub mod bridge;
pub mod config;
pub mod instruments;
pub mod wfq;

pub use admission::{Admission, AdmissionController};
pub use batcher::{BatchFormer, FormedBatch};
pub use bridge::{IngestStats, ServingBridge};
pub use config::{ServeRequest, ServingConfig, ShedPolicy, TenantClass};
pub use instruments::ServingInstruments;
pub use wfq::WeightedFairQueue;

//! Property/invariant suite for the decoded-sample cache.
//!
//! Four families, each over arbitrary operation sequences:
//! * **Bounded** — resident bytes never exceed capacity at any point, and
//!   the lookup/entry/byte conservation laws hold at the end.
//! * **Cost-aware ordering** — no sample is evicted while a strictly
//!   cheaper-to-redecode (or equally cheap but less recently used) one
//!   remains resident.
//! * **Partition isolation** — one tenant's churn never evicts another
//!   tenant's entries, and every partition respects its own share.
//! * **Deterministic replay** — the same operation sequence on a fresh
//!   cache reproduces identical stats and an identical resident set
//!   (eviction must not depend on `HashMap` iteration order).
//!
//! Case count is pinned in CI; override with `PROPTEST_CASES`.

use dlb_cache::{test_sample, SampleCache, SampleKey};
use dlb_telemetry::Registry;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

const CAPACITY: u64 = 16 * 1024;

/// One scripted cache operation, decoded from a generated tuple. Inserts
/// dominate so sequences actually fill the cache and evict.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { key: u64, len: usize, cost: u64 },
    Lookup { key: u64 },
    Poison { key: u64 },
}

fn decode((kind, key, len, cost): (u8, u64, usize, u64)) -> Op {
    match kind % 5 {
        0 | 1 | 2 => Op::Insert { key, len, cost },
        3 => Op::Lookup { key },
        _ => Op::Poison { key },
    }
}

fn disk_key(key: u64) -> SampleKey {
    SampleKey::Disk {
        offset: key * 4096,
        len: 1024,
    }
}

/// Raw-op strategy: key space small enough to collide, sizes large enough
/// to force eviction against `CAPACITY`.
fn ops(max_len: usize) -> impl Strategy<Value = Vec<(u8, u64, usize, u64)>> {
    vec((0u8..5, 0u64..24, 64usize..max_len, 0u64..1_000), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resident_bytes_never_exceed_capacity(raw in ops(8192)) {
        let cache = SampleCache::new(CAPACITY);
        for &op in &raw {
            match decode(op) {
                Op::Insert { key, len, cost } => {
                    cache.insert(disk_key(key), test_sample(key as u8, len), cost);
                }
                Op::Lookup { key } => {
                    cache.lookup(&disk_key(key));
                }
                Op::Poison { key } => cache.poison(disk_key(key)),
            }
            prop_assert!(
                cache.resident_bytes() <= cache.capacity_bytes(),
                "resident {} > capacity {}",
                cache.resident_bytes(),
                cache.capacity_bytes()
            );
        }
        let (lookups, hits, misses) = cache.lookup_stats();
        prop_assert_eq!(hits + misses, lookups);
        let (insertions, evictions, _, _) = cache.churn_stats();
        prop_assert_eq!(insertions, cache.len() as u64 + evictions);
    }

    #[test]
    fn no_eviction_while_cheaper_colder_entry_remains(raw in ops(4096)) {
        let cache = SampleCache::new(CAPACITY);
        // Shadow of the resident set: key → (cost, last-use proxy). The
        // proxy is the op index, which orders uses exactly like the
        // cache's internal clock.
        let mut shadow: HashMap<u64, (u64, u64)> = HashMap::new();
        for (tick, &op) in raw.iter().enumerate() {
            let tick = tick as u64;
            match decode(op) {
                Op::Insert { key, len, cost } => {
                    let before: Vec<u64> = shadow.keys().copied().collect();
                    if cache.insert(disk_key(key), test_sample(key as u8, len), cost) {
                        shadow
                            .entry(key)
                            .and_modify(|e| *e = (cost, tick))
                            .or_insert((cost, tick));
                    }
                    let evicted: Vec<u64> = before
                        .iter()
                        .copied()
                        .filter(|&k| k != key && !cache.contains(&disk_key(k)))
                        .collect();
                    for &e in &evicted {
                        let (e_cost, e_use) = shadow[&e];
                        for &s in &before {
                            if s == key || evicted.contains(&s) {
                                continue;
                            }
                            let (s_cost, s_use) = shadow[&s];
                            prop_assert!(
                                !(s_cost < e_cost || (s_cost == e_cost && s_use < e_use)),
                                "evicted key {e} (cost {e_cost}, use {e_use}) while \
                                 cheaper/colder key {s} (cost {s_cost}, use {s_use}) survived"
                            );
                        }
                        shadow.remove(&e);
                    }
                }
                Op::Lookup { key } => {
                    if cache.lookup(&disk_key(key)).is_some() {
                        shadow
                            .entry(key)
                            .and_modify(|e| e.1 = tick);
                    }
                }
                Op::Poison { key } => {
                    cache.poison(disk_key(key));
                    shadow.remove(&key);
                }
            }
        }
    }

    #[test]
    fn tenant_partitions_are_isolated(
        raw in vec((0u8..5, 0u8..2, 0u64..16, 64usize..4096, 0u64..500), 1..60),
    ) {
        let registry = Registry::new();
        // Asymmetric weights: tenant 0 gets 1/4, tenant 1 gets 3/4.
        let cache = SampleCache::partitioned(CAPACITY, &[(0, 1), (1, 3)], &registry);
        let mut resident: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for &(kind, tenant, id, len, cost) in &raw {
            let t = tenant as usize;
            let other = 1 - t;
            let key = SampleKey::Object { tenant: tenant as u32, id };
            match kind % 5 {
                0..=2 => {
                    if cache.insert(key, test_sample(id as u8, len), cost)
                        && !resident[t].contains(&id)
                    {
                        resident[t].push(id);
                    }
                }
                3 => {
                    cache.lookup(&key);
                }
                _ => {
                    cache.poison(key);
                    resident[t].retain(|&k| k != id);
                }
            }
            // This op touched only tenant `t`'s partition: every entry the
            // other tenant had must still be resident.
            for &k in &resident[other] {
                prop_assert!(
                    cache.contains(&SampleKey::Object { tenant: other as u32, id: k }),
                    "op on tenant {t} evicted tenant {other}'s object {k}"
                );
            }
            // Evictions *inside* tenant t's own partition are legitimate —
            // re-sync its shadow set.
            resident[t].retain(|&k| {
                cache.contains(&SampleKey::Object { tenant: tenant as u32, id: k })
            });
            for (_, res, cap) in cache.tenant_residency() {
                prop_assert!(res <= cap, "partition over its share: {res} > {cap}");
            }
        }
    }

    #[test]
    fn replay_is_deterministic(raw in ops(4096)) {
        let run = || {
            let cache = SampleCache::new(CAPACITY);
            for &op in &raw {
                match decode(op) {
                    Op::Insert { key, len, cost } => {
                        cache.insert(disk_key(key), test_sample(key as u8, len), cost);
                    }
                    Op::Lookup { key } => {
                        cache.lookup(&disk_key(key));
                    }
                    Op::Poison { key } => cache.poison(disk_key(key)),
                }
            }
            let members: Vec<bool> = (0..24).map(|k| cache.contains(&disk_key(k))).collect();
            (cache.lookup_stats(), cache.churn_stats(), cache.resident_bytes(), members)
        };
        let first = run();
        let second = run();
        prop_assert_eq!(first, second);
    }
}

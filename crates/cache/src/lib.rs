//! `dlb-cache` — a decoded-sample cache between the codec and the pool.
//!
//! The paper's pipeline redecodes every sample on every pass, yet training
//! rereads the same corpus each epoch and online inference has hot keys.
//! This crate holds decoded pixels keyed by their *source identity* so a
//! later pass can skip decode entirely; delivered hits still flow through
//! the HugePage pool (`Free_Batch_Queue` lease/recycle accounting), the
//! cache only replaces the decode work, never the transfer buffers.
//!
//! Three properties drive the design, each proved by the property suite in
//! `tests/proptests.rs` and enforced as `cache.*` conservation laws in
//! [`dlb_telemetry::PipelineSnapshot`]:
//!
//! * **Bounded** — resident bytes never exceed capacity, at any instant
//!   (the registry's gauge high-water is part of the invariant check).
//! * **Cost-aware eviction** — evict the *cheapest-to-redecode* sample
//!   first, using the live per-image decode timers (`codec.huffman_ns` +
//!   `codec.idct_ns` on the CPU path, compressed payload size on the FPGA
//!   path) as the cost signal; recency only breaks cost ties, and the
//!   sample key breaks recency ties so replay is deterministic even though
//!   `HashMap` iteration order is not.
//! * **Admission-aware** — samples whose decode *failed* (chaos `Poison`
//!   or `Corrupt` faults, truncated payloads) are quarantined: they are
//!   never admitted, and poisoning a resident key evicts it, so a corrupt
//!   source can never be served from cache on a later epoch.
//!
//! In `DriveMode::Served` the cache is split into per-tenant partitions
//! sized by tenant weight, so one tenant's churn cannot evict another's
//! hot set.

use dlb_telemetry::{names, Counter, Gauge, Registry, Telemetry};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Identity of one decoded sample. Deliberately *not* constructible from a
/// NIC ring descriptor: RX rings reuse physical addresses, so a
/// `(phys_addr, len)` pair aliases different payloads over time. Disk
/// sources are stable (offset is the identity); stream/served sources use
/// an explicit `(tenant, id)` object key assigned by the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SampleKey {
    /// A record on the dataset disk.
    Disk {
        /// Byte offset of the compressed payload.
        offset: u64,
        /// Compressed payload length.
        len: u32,
    },
    /// A logical object a serving tenant rereads (hot-key inference).
    Object {
        /// Owning tenant id.
        tenant: u32,
        /// Object id within the tenant's namespace.
        id: u64,
    },
}

impl SampleKey {
    /// The tenant this key belongs to, when it carries one.
    pub fn tenant(&self) -> Option<u32> {
        match self {
            SampleKey::Disk { .. } => None,
            SampleKey::Object { tenant, .. } => Some(*tenant),
        }
    }
}

/// One decoded sample as stored/served by the cache. Pixels are shared
/// (`Arc`) so a hit hands back a reference without copying under the lock;
/// the caller copies into its pool unit.
#[derive(Debug, Clone)]
pub struct CachedSample {
    /// Decoded, resized pixel bytes.
    pub data: Arc<Vec<u8>>,
    /// Training label / request tag.
    pub label: u64,
    /// Output width.
    pub width: u32,
    /// Output height.
    pub height: u32,
    /// Output channels.
    pub channels: u8,
}

impl CachedSample {
    /// Bytes this sample occupies.
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64
    }
}

struct Entry {
    sample: CachedSample,
    /// Relative redecode cost. CPU path: `huffman_ns + idct_ns` for this
    /// image. FPGA path: compressed payload bytes (FINISH signals carry no
    /// per-item timing; entropy bits dominate lane service, and they scale
    /// with payload size). Only the ordering matters.
    cost: u64,
    /// Logical clock of the last lookup hit or insert.
    last_use: u64,
}

struct TenantHandles {
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evictions: Arc<Counter>,
    resident_bytes: Arc<Gauge>,
}

struct Partition {
    capacity: u64,
    resident: u64,
    entries: HashMap<SampleKey, Entry>,
    tenant: Option<(u32, TenantHandles)>,
}

impl Partition {
    /// The eviction victim: cheapest to redecode, then least recently
    /// used, then smallest key — a total order, so eviction is
    /// deterministic regardless of `HashMap` iteration order.
    fn victim(&self) -> Option<SampleKey> {
        self.entries
            .iter()
            .min_by_key(|(k, e)| (e.cost, e.last_use, **k))
            .map(|(k, _)| *k)
    }
}

struct Inner {
    partitions: Vec<Partition>,
    /// Tenant id → partition index (`Served` mode). Empty = single shared
    /// partition, index 0.
    by_tenant: HashMap<u32, usize>,
    quarantine: HashSet<SampleKey>,
    clock: u64,
}

struct Handles {
    lookups: Arc<Counter>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    insertions: Arc<Counter>,
    inserted_bytes: Arc<Counter>,
    rejected: Arc<Counter>,
    evictions: Arc<Counter>,
    evicted_bytes: Arc<Counter>,
    quarantined: Arc<Counter>,
    bypass_batches: Arc<Counter>,
    resident_bytes: Arc<Gauge>,
    resident_entries: Arc<Gauge>,
    capacity_bytes: Arc<Gauge>,
}

impl Handles {
    fn register(registry: &Registry) -> Self {
        Self {
            lookups: registry.counter(names::CACHE_LOOKUPS),
            hits: registry.counter(names::CACHE_HITS),
            misses: registry.counter(names::CACHE_MISSES),
            insertions: registry.counter(names::CACHE_INSERTIONS),
            inserted_bytes: registry.counter(names::CACHE_INSERTED_BYTES),
            rejected: registry.counter(names::CACHE_REJECTED),
            evictions: registry.counter(names::CACHE_EVICTIONS),
            evicted_bytes: registry.counter(names::CACHE_EVICTED_BYTES),
            quarantined: registry.counter(names::CACHE_QUARANTINED),
            bypass_batches: registry.counter(names::CACHE_BYPASS_BATCHES),
            resident_bytes: registry.gauge(names::CACHE_RESIDENT_BYTES),
            resident_entries: registry.gauge(names::CACHE_RESIDENT_ENTRIES),
            capacity_bytes: registry.gauge(names::CACHE_CAPACITY_BYTES),
        }
    }
}

/// The decoded-sample cache. Cheap to share (`Arc`); all methods take
/// `&self` and are thread-safe.
pub struct SampleCache {
    inner: Mutex<Inner>,
    stats: Handles,
    /// Keeps a privately-built registry alive for standalone caches.
    _own_registry: Option<Arc<Registry>>,
}

impl SampleCache {
    /// A single-partition cache recording into a private registry.
    pub fn new(capacity_bytes: u64) -> Arc<Self> {
        let registry = Arc::new(Registry::new());
        let mut cache = Self::build(capacity_bytes, &[], &registry);
        cache._own_registry = Some(registry);
        Arc::new(cache)
    }

    /// A single-partition cache recording `cache.*` metrics into the
    /// shared pipeline registry, so [`dlb_telemetry::PipelineSnapshot`]
    /// folds it into the conservation laws.
    pub fn with_telemetry(capacity_bytes: u64, telemetry: &Telemetry) -> Arc<Self> {
        Arc::new(Self::build(capacity_bytes, &[], &telemetry.registry))
    }

    /// A per-tenant partitioned cache (`DriveMode::Served`): the budget is
    /// split across `(tenant_id, weight)` partitions proportionally to
    /// weight, and every key routes to its tenant's partition, so one
    /// tenant's churn cannot evict another's hot set. Keys without a
    /// tenant (disk keys) share partition 0.
    pub fn partitioned(
        capacity_bytes: u64,
        tenants: &[(u32, u32)],
        registry: &Registry,
    ) -> Arc<Self> {
        Arc::new(Self::build(capacity_bytes, tenants, registry))
    }

    fn build(capacity_bytes: u64, tenants: &[(u32, u32)], registry: &Registry) -> Self {
        let stats = Handles::register(registry);
        let (partitions, by_tenant) = if tenants.is_empty() {
            (
                vec![Partition {
                    capacity: capacity_bytes,
                    resident: 0,
                    entries: HashMap::new(),
                    tenant: None,
                }],
                HashMap::new(),
            )
        } else {
            let total_weight: u64 = tenants.iter().map(|(_, w)| *w as u64).sum::<u64>().max(1);
            let mut partitions = Vec::with_capacity(tenants.len());
            let mut by_tenant = HashMap::new();
            for (id, weight) in tenants {
                let share = capacity_bytes * *weight as u64 / total_weight;
                by_tenant.insert(*id, partitions.len());
                let key = |field: &str| format!("{}{}.{}", names::CACHE_TENANT_PREFIX, id, field);
                partitions.push(Partition {
                    capacity: share,
                    resident: 0,
                    entries: HashMap::new(),
                    tenant: Some((
                        *id,
                        TenantHandles {
                            hits: registry.counter(&key("hits")),
                            misses: registry.counter(&key("misses")),
                            evictions: registry.counter(&key("evictions")),
                            resident_bytes: registry.gauge(&key("resident_bytes")),
                        },
                    )),
                });
            }
            (partitions, by_tenant)
        };
        let capacity_total: u64 = partitions.iter().map(|p| p.capacity).sum();
        stats.capacity_bytes.set(capacity_total as i64);
        Self {
            inner: Mutex::new(Inner {
                partitions,
                by_tenant,
                quarantine: HashSet::new(),
                clock: 0,
            }),
            stats,
            _own_registry: None,
        }
    }

    fn partition_index(inner: &Inner, key: &SampleKey) -> usize {
        key.tenant()
            .and_then(|t| inner.by_tenant.get(&t).copied())
            .unwrap_or(0)
    }

    /// Looks `key` up, counting a hit or a miss and refreshing recency on
    /// a hit. Quarantined keys always miss.
    pub fn lookup(&self, key: &SampleKey) -> Option<CachedSample> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        self.stats.lookups.inc();
        let idx = Self::partition_index(&inner, key);
        let part = &mut inner.partitions[idx];
        match part.entries.get_mut(key) {
            Some(entry) => {
                entry.last_use = clock;
                self.stats.hits.inc();
                if let Some((_, t)) = &part.tenant {
                    t.hits.inc();
                }
                Some(entry.sample.clone())
            }
            None => {
                self.stats.misses.inc();
                if let Some((_, t)) = &part.tenant {
                    t.misses.inc();
                }
                None
            }
        }
    }

    /// True when `key` is resident. No counter side effects — for tests
    /// and diagnostics; the data path uses [`SampleCache::lookup`].
    pub fn contains(&self, key: &SampleKey) -> bool {
        let inner = self.inner.lock();
        let idx = Self::partition_index(&inner, key);
        inner.partitions[idx].entries.contains_key(key)
    }

    /// Admits a decoded sample with the given relative redecode `cost`,
    /// evicting cheapest-cost entries from the key's partition until it
    /// fits. Returns `false` (counted in `cache.rejected`) when the key is
    /// quarantined or the sample cannot fit even an empty partition; a key
    /// already resident is refreshed in place (recency + cost), not
    /// double-counted.
    pub fn insert(&self, key: SampleKey, sample: CachedSample, cost: u64) -> bool {
        let bytes = sample.bytes();
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.quarantine.contains(&key) {
            self.stats.rejected.inc();
            return false;
        }
        let idx = Self::partition_index(&inner, &key);
        let part = &mut inner.partitions[idx];
        if let Some(entry) = part.entries.get_mut(&key) {
            // Same source ⇒ same pixels; just refresh the metadata.
            entry.last_use = clock;
            entry.cost = cost;
            return true;
        }
        if bytes > part.capacity {
            self.stats.rejected.inc();
            return false;
        }
        while part.resident + bytes > part.capacity {
            let victim = part.victim().expect("resident > 0 implies an entry");
            self.evict_locked(part, &victim);
        }
        part.resident += bytes;
        if let Some((_, t)) = &part.tenant {
            t.resident_bytes.add(bytes as i64);
        }
        part.entries.insert(
            key,
            Entry {
                sample,
                cost,
                last_use: clock,
            },
        );
        self.stats.insertions.inc();
        self.stats.inserted_bytes.add(bytes);
        self.stats.resident_bytes.add(bytes as i64);
        self.stats.resident_entries.inc();
        true
    }

    fn evict_locked(&self, part: &mut Partition, key: &SampleKey) {
        if let Some(entry) = part.entries.remove(key) {
            let bytes = entry.sample.bytes();
            part.resident -= bytes;
            self.stats.evictions.inc();
            self.stats.evicted_bytes.add(bytes);
            self.stats.resident_bytes.add(-(bytes as i64));
            self.stats.resident_entries.dec();
            if let Some((_, t)) = &part.tenant {
                t.evictions.inc();
                t.resident_bytes.add(-(bytes as i64));
            }
        }
    }

    /// Quarantines `key`: future inserts are refused and, if a copy is
    /// resident, it is evicted right now — a corrupted source must never
    /// be served from cache. Each call counts in `cache.quarantined`
    /// (once per failed decode observation, so tests can equate it with
    /// `reader.item_errors`).
    pub fn poison(&self, key: SampleKey) {
        let mut inner = self.inner.lock();
        self.stats.quarantined.inc();
        if inner.quarantine.insert(key) {
            let idx = Self::partition_index(&inner, &key);
            let part = &mut inner.partitions[idx];
            self.evict_locked(part, &key);
        }
    }

    /// True when `key` has been poisoned.
    pub fn is_quarantined(&self, key: &SampleKey) -> bool {
        self.inner.lock().quarantine.contains(key)
    }

    /// Records one whole delivered batch that bypassed decode (every item
    /// a hit). The reader/backends call this so failover accounting can
    /// reconcile `delivered == decoded + bypassed`.
    pub fn note_bypass_batch(&self) {
        self.stats.bypass_batches.inc();
    }

    /// Total capacity across partitions.
    pub fn capacity_bytes(&self) -> u64 {
        self.stats.capacity_bytes.get().max(0) as u64
    }

    /// Bytes resident right now.
    pub fn resident_bytes(&self) -> u64 {
        self.stats.resident_bytes.get().max(0) as u64
    }

    /// Entries resident right now.
    pub fn len(&self) -> usize {
        self.stats.resident_entries.get().max(0) as usize
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(lookups, hits, misses)` so far.
    pub fn lookup_stats(&self) -> (u64, u64, u64) {
        (
            self.stats.lookups.get(),
            self.stats.hits.get(),
            self.stats.misses.get(),
        )
    }

    /// `(insertions, evictions, rejected, quarantined)` so far.
    pub fn churn_stats(&self) -> (u64, u64, u64, u64) {
        (
            self.stats.insertions.get(),
            self.stats.evictions.get(),
            self.stats.rejected.get(),
            self.stats.quarantined.get(),
        )
    }

    /// Whole batches delivered straight from cache.
    pub fn bypass_batches(&self) -> u64 {
        self.stats.bypass_batches.get()
    }

    /// Per-tenant `(id, resident_bytes, capacity)` view (partitioned
    /// caches only).
    pub fn tenant_residency(&self) -> Vec<(u32, u64, u64)> {
        let inner = self.inner.lock();
        inner
            .partitions
            .iter()
            .filter_map(|p| {
                p.tenant
                    .as_ref()
                    .map(|(id, _)| (*id, p.resident, p.capacity))
            })
            .collect()
    }
}

impl std::fmt::Debug for SampleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampleCache")
            .field("capacity_bytes", &self.capacity_bytes())
            .field("resident_bytes", &self.resident_bytes())
            .field("entries", &self.len())
            .finish()
    }
}

/// A convenience for tests and wiring: a sample of `len` bytes with the
/// byte pattern derived from `tag`.
pub fn test_sample(tag: u8, len: usize) -> CachedSample {
    CachedSample {
        data: Arc::new(vec![tag; len]),
        label: tag as u64,
        width: len as u32,
        height: 1,
        channels: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> SampleKey {
        SampleKey::Disk {
            offset: n,
            len: 100,
        }
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = SampleCache::new(1024);
        assert!(c.lookup(&key(1)).is_none());
        assert!(c.insert(key(1), test_sample(7, 100), 50));
        let got = c.lookup(&key(1)).expect("hit");
        assert_eq!(got.data.as_slice(), &[7u8; 100]);
        assert_eq!(got.label, 7);
        let (lookups, hits, misses) = c.lookup_stats();
        assert_eq!((lookups, hits, misses), (2, 1, 1));
    }

    #[test]
    fn evicts_cheapest_cost_first() {
        let c = SampleCache::new(300);
        assert!(c.insert(key(1), test_sample(1, 100), 10)); // cheap
        assert!(c.insert(key(2), test_sample(2, 100), 900)); // expensive
        assert!(c.insert(key(3), test_sample(3, 100), 500));
        // A fourth insert must push out the cheapest (key 1), even though
        // key 1 is not the least recently used once we touch it.
        assert!(c.lookup(&key(1)).is_some());
        assert!(c.insert(key(4), test_sample(4, 100), 700));
        assert!(!c.contains(&key(1)), "cheapest-to-redecode evicted first");
        assert!(c.contains(&key(2)) && c.contains(&key(3)) && c.contains(&key(4)));
    }

    #[test]
    fn recency_breaks_cost_ties() {
        let c = SampleCache::new(200);
        assert!(c.insert(key(1), test_sample(1, 100), 50));
        assert!(c.insert(key(2), test_sample(2, 100), 50));
        assert!(c.lookup(&key(1)).is_some()); // key 2 is now LRU
        assert!(c.insert(key(3), test_sample(3, 100), 50));
        assert!(!c.contains(&key(2)));
        assert!(c.contains(&key(1)));
    }

    #[test]
    fn capacity_is_never_exceeded_and_oversized_rejected() {
        let c = SampleCache::new(250);
        for n in 0..10 {
            c.insert(key(n), test_sample(n as u8, 100), n);
            assert!(c.resident_bytes() <= 250);
        }
        assert!(!c.insert(key(99), test_sample(9, 300), 5), "oversized");
        let (_, _, rejected, _) = c.churn_stats();
        assert_eq!(rejected, 1);
    }

    #[test]
    fn quarantine_refuses_admission_and_evicts_residents() {
        let c = SampleCache::new(1024);
        c.poison(key(1));
        assert!(!c.insert(key(1), test_sample(1, 100), 5));
        assert!(c.lookup(&key(1)).is_none());
        // Poisoning a resident key removes it immediately.
        assert!(c.insert(key(2), test_sample(2, 100), 5));
        c.poison(key(2));
        assert!(!c.contains(&key(2)));
        assert!(c.is_quarantined(&key(2)));
        let (_, _, _, quarantined) = c.churn_stats();
        assert_eq!(quarantined, 2);
        // Accounting still balances: inserted == resident + evicted.
        assert_eq!(c.resident_bytes(), 0);
    }

    #[test]
    fn reinsert_refreshes_without_double_count() {
        let c = SampleCache::new(1024);
        assert!(c.insert(key(1), test_sample(1, 100), 5));
        assert!(c.insert(key(1), test_sample(1, 100), 9));
        let (insertions, ..) = c.churn_stats();
        assert_eq!(insertions, 1);
        assert_eq!(c.resident_bytes(), 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn partitions_isolate_tenants() {
        let registry = Registry::new();
        let c = SampleCache::partitioned(1000, &[(0, 1), (1, 1)], &registry);
        let k = |tenant, id| SampleKey::Object { tenant, id };
        // Tenant 0 churns way past its 500-byte share...
        for id in 0..20 {
            c.insert(k(0, id), test_sample(id as u8, 100), id);
        }
        // ...while tenant 1's hot set stays resident.
        for id in 0..5 {
            assert!(c.insert(k(1, id), test_sample(id as u8, 100), 1));
        }
        for id in 0..5 {
            assert!(c.contains(&k(1, id)), "tenant 1 object {id} evicted");
        }
        let residency = c.tenant_residency();
        assert_eq!(residency.len(), 2);
        for (_, resident, capacity) in residency {
            assert!(resident <= capacity);
        }
    }

    #[test]
    fn telemetry_counters_balance() {
        let telemetry = Telemetry::with_defaults();
        let c = SampleCache::with_telemetry(300, &telemetry);
        for n in 0..6 {
            c.insert(key(n), test_sample(n as u8, 100), n);
            c.lookup(&key(n));
        }
        c.poison(key(0));
        let snap = telemetry.registry.snapshot();
        assert_eq!(
            snap.counter(names::CACHE_HITS) + snap.counter(names::CACHE_MISSES),
            snap.counter(names::CACHE_LOOKUPS)
        );
        assert_eq!(
            snap.counter(names::CACHE_INSERTED_BYTES),
            snap.gauge(names::CACHE_RESIDENT_BYTES) as u64
                + snap.counter(names::CACHE_EVICTED_BYTES)
        );
        assert!(
            snap.gauge_high_water(names::CACHE_RESIDENT_BYTES)
                <= snap.gauge(names::CACHE_CAPACITY_BYTES)
        );
    }
}

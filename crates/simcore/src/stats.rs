//! Measurement instruments: busy-time accounting (→ "CPU cores" figures),
//! throughput meters, latency histograms, and time-weighted levels.

use crate::time::SimTime;

/// Accumulates busy intervals of a logical worker. Dividing the accumulated
/// busy time by elapsed time yields *core-equivalents* — exactly the "CPU
/// cost (# cores)" metric of the paper's Figures 2(b), 6 and 9.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    busy: SimTime,
    intervals: u64,
}

impl BusyTracker {
    /// New, empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval of the given length.
    pub fn add(&mut self, duration: SimTime) {
        self.busy += duration;
        self.intervals += 1;
    }

    /// Total busy time.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Number of recorded intervals.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }

    /// Busy time as a fraction of `elapsed` — i.e. core-equivalents.
    pub fn cores(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.busy.as_secs_f64() / elapsed.as_secs_f64()
    }
}

/// Counts discrete completions over a window → items/second.
#[derive(Debug, Clone, Default)]
pub struct ThroughputMeter {
    count: u64,
    first: Option<SimTime>,
    last: SimTime,
}

impl ThroughputMeter {
    /// New, empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` completions at time `now`.
    pub fn record(&mut self, now: SimTime, n: u64) {
        if self.first.is_none() {
            self.first = Some(now);
        }
        self.count += n;
        self.last = self.last.max(now);
    }

    /// Total completions.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Completions per second measured from simulation start to the last
    /// recorded completion.
    pub fn rate_from_origin(&self) -> f64 {
        if self.last == SimTime::ZERO {
            return 0.0;
        }
        self.count as f64 / self.last.as_secs_f64()
    }

    /// Completions per second over an explicit window.
    pub fn rate_over(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.count as f64 / elapsed.as_secs_f64()
    }
}

/// Latency distribution with exact storage (samples are few in these
/// experiments — one per inference request batch).
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// New, empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.samples_ns.push(latency.as_nanos());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True when no samples recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> SimTime {
        if self.samples_ns.is_empty() {
            return SimTime::ZERO;
        }
        let sum: u128 = self.samples_ns.iter().map(|&v| v as u128).sum();
        SimTime::from_nanos((sum / self.samples_ns.len() as u128) as u64)
    }

    /// Quantile in `[0, 1]` by nearest-rank.
    pub fn quantile(&mut self, q: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples_ns.is_empty() {
            return SimTime::ZERO;
        }
        self.ensure_sorted();
        let idx = ((q * (self.samples_ns.len() - 1) as f64).round() as usize)
            .min(self.samples_ns.len() - 1);
        SimTime::from_nanos(self.samples_ns[idx])
    }

    /// Median shortcut.
    pub fn median(&mut self) -> SimTime {
        self.quantile(0.5)
    }

    /// 99th percentile shortcut.
    pub fn p99(&mut self) -> SimTime {
        self.quantile(0.99)
    }

    /// Maximum sample.
    pub fn max(&mut self) -> SimTime {
        self.ensure_sorted();
        self.samples_ns
            .last()
            .map(|&v| SimTime::from_nanos(v))
            .unwrap_or(SimTime::ZERO)
    }
}

/// Tracks the time-average of an integer level (queue depth, pool occupancy).
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    level: i64,
    last_change: SimTime,
    weighted_sum: f64, // level · seconds
    peak: i64,
}

impl TimeWeighted {
    /// Starts tracking at `initial` level from time zero.
    pub fn new(initial: i64) -> Self {
        Self {
            level: initial,
            last_change: SimTime::ZERO,
            weighted_sum: 0.0,
            peak: initial,
        }
    }

    /// Sets the level at time `now`.
    pub fn set(&mut self, now: SimTime, level: i64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.weighted_sum += self.level as f64 * now.since(self.last_change).as_secs_f64();
        self.level = level;
        self.last_change = now;
        self.peak = self.peak.max(level);
    }

    /// Adjusts the level by `delta` at time `now`.
    pub fn adjust(&mut self, now: SimTime, delta: i64) {
        let lvl = self.level + delta;
        self.set(now, lvl);
    }

    /// Current level.
    pub fn level(&self) -> i64 {
        self.level
    }

    /// Highest level seen.
    pub fn peak(&self) -> i64 {
        self.peak
    }

    /// Time-average of the level from time zero to `now`.
    pub fn average(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return self.level as f64;
        }
        let tail = self.level as f64 * now.since(self.last_change).as_secs_f64();
        (self.weighted_sum + tail) / now.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tracker_core_equivalents() {
        let mut bt = BusyTracker::new();
        bt.add(SimTime::from_millis(250));
        bt.add(SimTime::from_millis(250));
        // 0.5s busy over 1s elapsed = 0.5 cores.
        assert!((bt.cores(SimTime::from_secs(1)) - 0.5).abs() < 1e-12);
        assert_eq!(bt.intervals(), 2);
        assert_eq!(bt.cores(SimTime::ZERO), 0.0);
    }

    #[test]
    fn busy_tracker_can_exceed_one_core() {
        // 12 workers busy the whole time = 12 cores (paper Fig. 6 CPU-based).
        let mut bt = BusyTracker::new();
        for _ in 0..12 {
            bt.add(SimTime::from_secs(10));
        }
        assert!((bt.cores(SimTime::from_secs(10)) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_meter_rates() {
        let mut tm = ThroughputMeter::new();
        tm.record(SimTime::from_secs(1), 100);
        tm.record(SimTime::from_secs(2), 300);
        assert_eq!(tm.count(), 400);
        assert!((tm.rate_from_origin() - 200.0).abs() < 1e-9);
        assert!((tm.rate_over(SimTime::from_secs(4)) - 100.0).abs() < 1e-9);
        assert_eq!(ThroughputMeter::new().rate_from_origin(), 0.0);
    }

    #[test]
    fn latency_quantiles() {
        let mut ls = LatencyStats::new();
        for ms in 1..=100u64 {
            ls.record(SimTime::from_millis(ms));
        }
        assert_eq!(ls.len(), 100);
        // Nearest-rank on an even count lands on the upper of the two
        // middle samples: index round(0.5·99) = 50 → the 51 ms sample.
        assert_eq!(ls.median(), SimTime::from_millis(51));
        assert_eq!(ls.p99(), SimTime::from_millis(99));
        assert_eq!(ls.quantile(0.0), SimTime::from_millis(1));
        assert_eq!(ls.quantile(1.0), SimTime::from_millis(100));
        assert_eq!(ls.max(), SimTime::from_millis(100));
        assert_eq!(ls.mean(), SimTime::from_micros(50_500));
    }

    #[test]
    fn latency_empty_is_zero() {
        let mut ls = LatencyStats::new();
        assert!(ls.is_empty());
        assert_eq!(ls.median(), SimTime::ZERO);
        assert_eq!(ls.mean(), SimTime::ZERO);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(0);
        tw.set(SimTime::from_secs(1), 10); // level 0 for 1s
        tw.set(SimTime::from_secs(3), 0); // level 10 for 2s
                                          // Average over 4s: (0·1 + 10·2 + 0·1) / 4 = 5.
        assert!((tw.average(SimTime::from_secs(4)) - 5.0).abs() < 1e-9);
        assert_eq!(tw.peak(), 10);
        assert_eq!(tw.level(), 0);
    }

    #[test]
    fn time_weighted_adjust() {
        let mut tw = TimeWeighted::new(5);
        tw.adjust(SimTime::from_secs(1), 3);
        assert_eq!(tw.level(), 8);
        tw.adjust(SimTime::from_secs(2), -8);
        assert_eq!(tw.level(), 0);
        assert_eq!(tw.peak(), 8);
    }
}

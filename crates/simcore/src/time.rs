//! Virtual time: a nanosecond-resolution monotone counter.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is deliberately *not* convertible from wall-clock types: the
/// simulation must be a pure function of its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future — useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// From seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// From fractional seconds (saturating at the representable range;
    /// negative values clamp to zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Duration between two instants (panics in debug if `earlier > self`).
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimTime {
        debug_assert!(self >= earlier, "time went backwards");
        SimTime(self.0 - earlier.0)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// Converts a rate in "items per second" into the duration of one item.
#[inline]
pub fn period_of_rate(items_per_sec: f64) -> SimTime {
    assert!(items_per_sec > 0.0, "rate must be positive");
    SimTime::from_secs_f64(1.0 / items_per_sec)
}

/// Duration to move `bytes` through a link of `bytes_per_sec` bandwidth.
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> SimTime {
    assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
    SimTime::from_secs_f64(bytes as f64 / bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn from_secs_f64_edge_cases() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(0.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(3);
        assert_eq!((a + b).as_nanos(), 13_000_000);
        assert_eq!((a - b).as_nanos(), 7_000_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c, SimTime::from_millis(13));
    }

    #[test]
    fn add_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_secs(1), SimTime::MAX);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn rate_helpers() {
        // 5000 images/s → 200µs per image.
        assert_eq!(period_of_rate(5000.0), SimTime::from_micros(200));
        // 1 MiB over 1 GiB/s ≈ 976.5µs.
        let t = transfer_time(1 << 20, (1u64 << 30) as f64);
        assert!((t.as_secs_f64() - 9.765e-4).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = period_of_rate(0.0);
    }

    #[test]
    fn since_measures_durations() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(12);
        assert_eq!(b.since(a), SimTime::from_millis(7));
    }
}

//! Deterministic random numbers and the distributions the workload models
//! need (uniform, exponential inter-arrivals, lognormal image sizes).

/// A splitmix64-seeded xorshift128+ generator: tiny, fast, and fully
/// deterministic. Not cryptographic — simulation only.
#[derive(Debug, Clone)]
pub struct SimRng {
    s0: u64,
    s1: u64,
    /// Cached second normal variate from the Box–Muller pair.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seeds the generator; any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        Self {
            s0,
            s1,
            spare_normal: None,
        }
    }

    /// Derives an independent stream (for per-client / per-device RNGs).
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64 bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is negligible for simulation bounds ≪ 2^64.
        self.next_u64() % bound
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Exponential variate with the given mean (inter-arrival times of the
    /// paper's online inference clients).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0);
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let (u1, u2) = loop {
            let u1 = self.uniform();
            let u2 = self.uniform();
            if u1 > 0.0 {
                break (u1, u2);
            }
        };
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Lognormal variate parameterised by the *target* median and the shape
    /// sigma — models JPEG file-size spread around the paper's ≈100 KB mean.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0 && sigma >= 0.0);
        (median.ln() + sigma * self.standard_normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval_with_sane_mean() {
        let mut rng = SimRng::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::new(9);
        let n = 50_000;
        let mean_target = 2.5;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean_target)).sum();
        let mean = sum / n as f64;
        assert!((mean - mean_target).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut rng = SimRng::new(13);
        let mut xs: Vec<f64> = (0..20_001).map(|_| rng.lognormal(100_000.0, 0.4)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!(
            (median / 100_000.0 - 1.0).abs() < 0.05,
            "median {median} vs 100000"
        );
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut root = SimRng::new(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let collisions = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn below_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }
}

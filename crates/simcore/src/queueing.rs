//! Queueing building blocks: k-server FIFO stations and serialising pipes.
//!
//! These are *passive* helpers: they hold queue state and compute admission /
//! completion transitions, while the owning [`SimModel`](crate::SimModel)
//! decides what events to post. Keeping them event-free makes them reusable
//! across every substrate and trivially testable.

use crate::time::SimTime;
use std::collections::VecDeque;

/// A FIFO service station with `capacity` parallel servers.
///
/// Typical use inside a model:
/// 1. on job arrival, call [`FifoStation::admit`]; if it returns the job,
///    compute its service time and post a completion event;
/// 2. on completion, call [`FifoStation::complete`]; if it returns a queued
///    job, post that job's completion event.
#[derive(Debug, Clone)]
pub struct FifoStation<J> {
    capacity: usize,
    in_service: usize,
    queue: VecDeque<J>,
    peak_queue: usize,
}

impl<J> FifoStation<J> {
    /// A station with `capacity ≥ 1` parallel servers.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "station needs at least one server");
        Self {
            capacity,
            in_service: 0,
            queue: VecDeque::new(),
            peak_queue: 0,
        }
    }

    /// Offers a job. Returns `Some(job)` if a server is free and the job
    /// starts service immediately; otherwise the job is queued and `None` is
    /// returned.
    pub fn admit(&mut self, job: J) -> Option<J> {
        if self.in_service < self.capacity {
            self.in_service += 1;
            Some(job)
        } else {
            self.queue.push_back(job);
            self.peak_queue = self.peak_queue.max(self.queue.len());
            None
        }
    }

    /// Records a service completion. Returns the next job to start, if any.
    pub fn complete(&mut self) -> Option<J> {
        debug_assert!(self.in_service > 0, "completion without service");
        match self.queue.pop_front() {
            Some(job) => Some(job), // server stays busy with the next job
            None => {
                self.in_service -= 1;
                None
            }
        }
    }

    /// Servers currently serving.
    pub fn busy(&self) -> usize {
        self.in_service
    }

    /// Jobs waiting (not yet in service).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Largest backlog observed.
    pub fn peak_queue(&self) -> usize {
        self.peak_queue
    }

    /// Total servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when no job is in service or queued.
    pub fn is_idle(&self) -> bool {
        self.in_service == 0 && self.queue.is_empty()
    }
}

/// A serialising bandwidth resource (NVMe channel, PCIe link, NIC wire):
/// transfers go out back-to-back at a fixed byte rate, each additionally
/// paying a fixed per-operation latency.
///
/// This is the standard "store-and-forward link" approximation — accurate
/// for the bulk DMA/readback traffic these experiments model, where
/// per-transfer sizes are large and uniform.
#[derive(Debug, Clone)]
pub struct SerialPipe {
    bytes_per_sec: f64,
    fixed_latency: SimTime,
    busy_until: SimTime,
    total_bytes: u64,
    total_ops: u64,
}

impl SerialPipe {
    /// A pipe with the given bandwidth and fixed per-op latency.
    pub fn new(bytes_per_sec: f64, fixed_latency: SimTime) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        Self {
            bytes_per_sec,
            fixed_latency,
            busy_until: SimTime::ZERO,
            total_bytes: 0,
            total_ops: 0,
        }
    }

    /// Enqueues a transfer of `bytes` submitted at `now`; returns the time
    /// the last byte arrives.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.busy_until);
        let wire = SimTime::from_secs_f64(bytes as f64 / self.bytes_per_sec);
        let done = start + wire + self.fixed_latency;
        self.busy_until = start + wire; // latency overlaps with the next op
        self.total_bytes += bytes;
        self.total_ops += 1;
        done
    }

    /// Time at which the pipe becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total transfer operations.
    pub fn total_ops(&self) -> u64 {
        self.total_ops
    }

    /// Configured bandwidth in bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }
}

/// A processor-sharing resource where concurrent users each get an equal
/// share — used to model CUDA-core contention between nvJPEG decode kernels
/// and inference kernels (paper §5.3: "the CUDA cores are competed between
/// the inference engine and nvJPEG").
///
/// Rather than tracking fluid sharing exactly, this helper exposes the
/// *slowdown factor* for a job given the fraction of the device reserved by
/// other tenants — which is how the GPU substrate consumes it.
#[derive(Debug, Clone, Copy)]
pub struct SharedCapacity {
    /// Fraction of the device (0.0–1.0) currently claimed by background work.
    background_share: f64,
}

impl SharedCapacity {
    /// A resource with no background load.
    pub fn new() -> Self {
        Self {
            background_share: 0.0,
        }
    }

    /// Sets the background share, clamped to `[0.0, 0.95]` (a device is
    /// never fully stolen; the scheduler preserves a minimum share).
    pub fn set_background_share(&mut self, share: f64) {
        self.background_share = share.clamp(0.0, 0.95);
    }

    /// Current background share.
    pub fn background_share(&self) -> f64 {
        self.background_share
    }

    /// Scales a nominal service time by contention: with share `s` stolen,
    /// the foreground job runs on `1 - s` of the device.
    pub fn stretch(&self, nominal: SimTime) -> SimTime {
        SimTime::from_secs_f64(nominal.as_secs_f64() / (1.0 - self.background_share))
    }
}

impl Default for SharedCapacity {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn station_admits_up_to_capacity() {
        let mut st = FifoStation::new(2);
        assert!(st.admit(1).is_some());
        assert!(st.admit(2).is_some());
        assert!(st.admit(3).is_none());
        assert_eq!(st.busy(), 2);
        assert_eq!(st.queued(), 1);
        assert_eq!(st.peak_queue(), 1);
    }

    #[test]
    fn station_completion_pulls_queue_fifo() {
        let mut st = FifoStation::new(1);
        assert_eq!(st.admit(10), Some(10));
        assert!(st.admit(20).is_none());
        assert!(st.admit(30).is_none());
        assert_eq!(st.complete(), Some(20));
        assert_eq!(st.complete(), Some(30));
        assert_eq!(st.complete(), None);
        assert!(st.is_idle());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_station_panics() {
        let _ = FifoStation::<u8>::new(0);
    }

    #[test]
    fn pipe_serialises_transfers() {
        // 1000 bytes/s, no latency: two 500-byte ops take 0.5s each.
        let mut p = SerialPipe::new(1000.0, SimTime::ZERO);
        let t1 = p.transfer(SimTime::ZERO, 500);
        let t2 = p.transfer(SimTime::ZERO, 500);
        assert_eq!(t1, SimTime::from_millis(500));
        assert_eq!(t2, SimTime::from_secs(1));
        assert_eq!(p.total_bytes(), 1000);
        assert_eq!(p.total_ops(), 2);
    }

    #[test]
    fn pipe_idles_between_sparse_transfers() {
        let mut p = SerialPipe::new(1000.0, SimTime::ZERO);
        let _ = p.transfer(SimTime::ZERO, 100);
        // Next op submitted long after the pipe drained: starts immediately.
        let t = p.transfer(SimTime::from_secs(10), 100);
        assert_eq!(t, SimTime::from_secs(10) + SimTime::from_millis(100));
    }

    #[test]
    fn pipe_fixed_latency_adds_but_does_not_serialise() {
        let lat = SimTime::from_micros(10);
        let mut p = SerialPipe::new(1e9, lat);
        let t1 = p.transfer(SimTime::ZERO, 1000);
        let t2 = p.transfer(SimTime::ZERO, 1000);
        // Each op pays the latency, but the wire frees up before it elapses.
        assert_eq!(t1, SimTime::from_micros(1) + lat);
        assert_eq!(t2, SimTime::from_micros(2) + lat);
    }

    #[test]
    fn shared_capacity_stretch() {
        let mut sc = SharedCapacity::new();
        let nominal = SimTime::from_millis(10);
        assert_eq!(sc.stretch(nominal), nominal);
        sc.set_background_share(0.5);
        assert_eq!(sc.stretch(nominal), SimTime::from_millis(20));
        sc.set_background_share(2.0); // clamps to 0.95
        assert!((sc.background_share() - 0.95).abs() < 1e-12);
        let stretched = sc.stretch(nominal);
        assert!((stretched.as_secs_f64() - 0.2).abs() < 1e-9);
    }
}

//! The event loop: a binary heap of timestamped events dispatched to a model.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A model advanced by the simulation: the whole system state plus the logic
/// reacting to each event.
pub trait SimModel {
    /// The event alphabet of the model.
    type Event;

    /// Reacts to `event` occurring at `now`, posting follow-up events through
    /// `sched`.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq): earlier first, FIFO at ties.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle through which a model posts future events. Borrowed mutably by the
/// engine during [`SimModel::handle`].
pub struct Scheduler<E> {
    now: SimTime,
    next_seq: u64,
    pending: Vec<Entry<E>>,
}

impl<E> Scheduler<E> {
    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Posts `event` to fire `delay` after now.
    #[inline]
    pub fn after(&mut self, delay: SimTime, event: E) {
        self.at(self.now + delay, event);
    }

    /// Posts `event` at the absolute time `at` (clamped to now if in the
    /// past, preserving monotonicity).
    #[inline]
    pub fn at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push(Entry { at, seq, event });
    }

    /// Posts `event` to fire immediately (after currently queued same-time
    /// events).
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.at(self.now, event);
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of events dispatched.
    pub events: u64,
    /// Virtual time of the last dispatched event.
    pub end_time: SimTime,
    /// True if the run stopped because the event horizon was exhausted
    /// (as opposed to hitting the event or deadline limit).
    pub drained: bool,
}

/// A discrete-event simulation over a [`SimModel`].
pub struct Simulation<M: SimModel> {
    model: M,
    heap: BinaryHeap<Entry<M::Event>>,
    clock: SimTime,
    next_seq: u64,
    dispatched: u64,
}

impl<M: SimModel> Simulation<M> {
    /// Wraps a model with an empty event queue at time zero.
    pub fn new(model: M) -> Self {
        Self {
            model,
            heap: BinaryHeap::new(),
            clock: SimTime::ZERO,
            next_seq: 0,
            dispatched: 0,
        }
    }

    /// Seeds an initial event at absolute time `at`.
    pub fn seed(&mut self, at: SimTime, event: M::Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Borrow the model (for inspection between runs).
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutably borrow the model.
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// Consume the simulation, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Runs until the queue drains, `deadline` passes, or `max_events` have
    /// been dispatched — whichever happens first.
    pub fn run_until(&mut self, deadline: SimTime, max_events: u64) -> RunSummary {
        let mut dispatched_this_run = 0u64;
        while dispatched_this_run < max_events {
            let Some(top) = self.heap.peek() else {
                return RunSummary {
                    events: dispatched_this_run,
                    end_time: self.clock,
                    drained: true,
                };
            };
            if top.at > deadline {
                return RunSummary {
                    events: dispatched_this_run,
                    end_time: self.clock,
                    drained: false,
                };
            }
            let entry = self.heap.pop().expect("peeked");
            debug_assert!(entry.at >= self.clock, "event heap violated monotonicity");
            self.clock = entry.at;
            let mut sched = Scheduler {
                now: self.clock,
                next_seq: self.next_seq,
                pending: Vec::new(),
            };
            self.model.handle(self.clock, entry.event, &mut sched);
            self.next_seq = sched.next_seq;
            for e in sched.pending {
                self.heap.push(e);
            }
            dispatched_this_run += 1;
            self.dispatched += 1;
        }
        RunSummary {
            events: dispatched_this_run,
            end_time: self.clock,
            drained: false,
        }
    }

    /// Runs to quiescence with a generous event cap (panics if exceeded,
    /// which almost always indicates an event loop in the model).
    pub fn run_to_completion(&mut self) -> RunSummary {
        const CAP: u64 = 2_000_000_000;
        let summary = self.run_until(SimTime::MAX, CAP);
        assert!(
            summary.drained,
            "simulation did not drain within {CAP} events — model is likely self-perpetuating"
        );
        summary
    }

    /// Total events dispatched over the simulation's lifetime.
    pub fn total_events(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that records the order in which its events fire.
    struct Recorder {
        log: Vec<(u64, u32)>, // (time ns, tag)
        chain: u32,           // remaining chained events to emit
    }

    impl SimModel for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now.as_nanos(), event));
            if event == 999 && self.chain > 0 {
                self.chain -= 1;
                sched.after(SimTime::from_nanos(10), 999);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain: 0,
        });
        sim.seed(SimTime::from_nanos(30), 3);
        sim.seed(SimTime::from_nanos(10), 1);
        sim.seed(SimTime::from_nanos(20), 2);
        let s = sim.run_to_completion();
        assert_eq!(s.events, 3);
        assert!(s.drained);
        assert_eq!(sim.model().log, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain: 0,
        });
        for tag in 0..50 {
            sim.seed(SimTime::from_nanos(5), tag);
        }
        sim.run_to_completion();
        let tags: Vec<u32> = sim.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chained_events_advance_clock() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain: 5,
        });
        sim.seed(SimTime::ZERO, 999);
        let s = sim.run_to_completion();
        assert_eq!(s.events, 6);
        assert_eq!(s.end_time, SimTime::from_nanos(50));
        assert_eq!(sim.model().log.len(), 6);
    }

    #[test]
    fn deadline_stops_early() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain: 100,
        });
        sim.seed(SimTime::ZERO, 999);
        let s = sim.run_until(SimTime::from_nanos(35), u64::MAX);
        assert!(!s.drained);
        // Events at 0, 10, 20, 30 fire; 40 is beyond the deadline.
        assert_eq!(s.events, 4);
        // Remaining events still run afterwards.
        let s2 = sim.run_until(SimTime::MAX, u64::MAX);
        assert!(s2.drained);
        assert_eq!(sim.model().log.len(), 101);
    }

    #[test]
    fn event_cap_stops_early() {
        let mut sim = Simulation::new(Recorder {
            log: vec![],
            chain: 100,
        });
        sim.seed(SimTime::ZERO, 999);
        let s = sim.run_until(SimTime::MAX, 10);
        assert_eq!(s.events, 10);
        assert!(!s.drained);
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct PastPoster {
            fired: Vec<u64>,
        }
        impl SimModel for PastPoster {
            type Event = u8;
            fn handle(&mut self, now: SimTime, event: u8, sched: &mut Scheduler<u8>) {
                self.fired.push(now.as_nanos());
                if event == 0 {
                    // Deliberately post "in the past": must clamp, not panic.
                    sched.at(SimTime::ZERO, 1);
                }
            }
        }
        let mut sim = Simulation::new(PastPoster { fired: vec![] });
        sim.seed(SimTime::from_nanos(100), 0);
        sim.run_to_completion();
        assert_eq!(sim.model().fired, vec![100, 100]);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sim = Simulation::new(Recorder {
                log: vec![],
                chain: 20,
            });
            sim.seed(SimTime::from_nanos(7), 999);
            sim.seed(SimTime::from_nanos(7), 1);
            sim.seed(SimTime::from_nanos(3), 2);
            sim.run_to_completion();
            sim.into_model().log
        };
        assert_eq!(run(), run());
    }
}

//! # dlb-simcore
//!
//! A small deterministic discrete-event simulation (DES) engine plus the
//! queueing/statistics building blocks used by the hardware substrates
//! (`dlb-fpga`, `dlb-gpu`, `dlb-storage`, `dlb-net`) and by the experiment
//! runners in `dlb-workflows`.
//!
//! Design notes:
//!
//! * **Virtual time** is a `u64` nanosecond counter ([`SimTime`]); all device
//!   calibration constants convert into it exactly once.
//! * **Determinism**: events at equal timestamps are ordered by insertion
//!   sequence number, so a simulation is a pure function of its inputs. The
//!   bundled [`rng::SimRng`] is a splitmix/xorshift generator seeded
//!   explicitly — wall-clock never leaks in.
//! * The engine is *callback-free*: a model implements [`SimModel::handle`]
//!   and receives a [`Scheduler`] to post future events. This sidesteps the
//!   `Rc<RefCell>` patterns that closure-based DES engines need in Rust and
//!   keeps the hot loop allocation-light (one `BinaryHeap` entry per event).

pub mod engine;
pub mod queueing;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::{Scheduler, SimModel, Simulation};
pub use rng::SimRng;
pub use time::SimTime;

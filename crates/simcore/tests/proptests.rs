//! Property tests: the DES engine's ordering and determinism guarantees,
//! and queueing-helper invariants.

use dlb_simcore::queueing::{FifoStation, SerialPipe};
use dlb_simcore::{Scheduler, SimModel, SimTime, Simulation};
use proptest::prelude::*;

/// A model that records (time, tag) for every event it sees.
struct Recorder {
    log: Vec<(u64, u32)>,
}

impl SimModel for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _sched: &mut Scheduler<u32>) {
        self.log.push((now.as_nanos(), ev));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn events_always_dispatch_in_time_order(
        seeds in prop::collection::vec((0u64..1_000_000, any::<u32>()), 1..200)
    ) {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        for &(at, tag) in &seeds {
            sim.seed(SimTime::from_nanos(at), tag);
        }
        sim.run_to_completion();
        let log = &sim.model().log;
        prop_assert_eq!(log.len(), seeds.len());
        for w in log.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards: {:?}", w);
        }
    }

    #[test]
    fn equal_time_events_dispatch_in_seed_order(
        tags in prop::collection::vec(any::<u32>(), 1..100),
        at in 0u64..1000,
    ) {
        let mut sim = Simulation::new(Recorder { log: vec![] });
        for &t in &tags {
            sim.seed(SimTime::from_nanos(at), t);
        }
        sim.run_to_completion();
        let seen: Vec<u32> = sim.model().log.iter().map(|&(_, t)| t).collect();
        prop_assert_eq!(seen, tags);
    }

    #[test]
    fn simulation_is_deterministic(
        seeds in prop::collection::vec((0u64..10_000, any::<u32>()), 1..100)
    ) {
        let run = |seeds: &[(u64, u32)]| {
            let mut sim = Simulation::new(Recorder { log: vec![] });
            for &(at, tag) in seeds {
                sim.seed(SimTime::from_nanos(at), tag);
            }
            sim.run_to_completion();
            sim.into_model().log
        };
        prop_assert_eq!(run(&seeds), run(&seeds));
    }

    #[test]
    fn fifo_station_conserves_jobs(
        capacity in 1usize..8,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        // true = arrival, false = completion (when something is in service).
        let mut st = FifoStation::new(capacity);
        let mut submitted = 0u64;
        let mut started = 0u64;
        let mut finished = 0u64;
        let mut in_service = 0usize;
        for op in ops {
            if op {
                submitted += 1;
                if st.admit(submitted).is_some() {
                    started += 1;
                    in_service += 1;
                }
            } else if in_service > 0 {
                finished += 1;
                if st.complete().is_some() {
                    started += 1;
                } else {
                    in_service -= 1;
                }
            }
            prop_assert!(st.busy() <= capacity);
            prop_assert_eq!(st.busy(), in_service);
        }
        // Conservation: everything submitted is started, queued, or...
        prop_assert_eq!(started as usize, submitted as usize - st.queued());
        prop_assert!(finished <= started);
    }

    #[test]
    fn serial_pipe_completions_are_monotone(
        transfers in prop::collection::vec((0u64..10_000, 1u64..1_000_000), 1..100)
    ) {
        let mut pipe = SerialPipe::new(1e9, SimTime::from_micros(5));
        let mut sorted = transfers.clone();
        sorted.sort_by_key(|&(at, _)| at);
        let mut last_done = SimTime::ZERO;
        let mut total = 0u64;
        for (at, bytes) in sorted {
            let done = pipe.transfer(SimTime::from_nanos(at), bytes);
            prop_assert!(done >= last_done, "pipe completions reordered");
            prop_assert!(done > SimTime::from_nanos(at));
            last_done = done;
            total += bytes;
        }
        prop_assert_eq!(pipe.total_bytes(), total);
        // The pipe can never be "faster than its bandwidth": the final
        // completion is at least total/bw after the earliest submission.
        let min_span = total as f64 / 1e9;
        prop_assert!(last_done.as_secs_f64() >= min_span);
    }
}

//! Property-based tests for the telemetry primitives: snapshot merging
//! must be associative and commutative (so per-thread or per-stage
//! snapshots can be folded in any grouping), and quantile estimates must
//! respect the bucket layout.

use dlb_telemetry::{Histogram, HistogramSnapshot, Registry};
use proptest::prelude::*;

/// Ascending bucket bounds derived from positive deltas.
fn bounds_from_deltas(deltas: &[u64]) -> Vec<u64> {
    let mut bounds = Vec::with_capacity(deltas.len());
    let mut b = 0u64;
    for &d in deltas {
        b += d.max(1);
        bounds.push(b);
    }
    bounds
}

fn snapshot_of(bounds: &[u64], values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new(bounds.to_vec());
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_merge_is_associative_and_commutative(
        deltas in prop::collection::vec(1u64..1000, 1..8),
        a in prop::collection::vec(0u64..10_000, 0..40),
        b in prop::collection::vec(0u64..10_000, 0..40),
        c in prop::collection::vec(0u64..10_000, 0..40),
    ) {
        let bounds = bounds_from_deltas(&deltas);
        let (sa, sb, sc) = (
            snapshot_of(&bounds, &a),
            snapshot_of(&bounds, &b),
            snapshot_of(&bounds, &c),
        );

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // The merged snapshot equals one histogram fed everything.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &snapshot_of(&bounds, &all));
    }

    #[test]
    fn empty_is_merge_identity(
        deltas in prop::collection::vec(1u64..1000, 1..8),
        values in prop::collection::vec(0u64..10_000, 0..40),
    ) {
        let bounds = bounds_from_deltas(&deltas);
        let s = snapshot_of(&bounds, &values);
        let mut merged = HistogramSnapshot::empty(bounds);
        merged.merge(&s);
        prop_assert_eq!(&merged, &s);
    }

    #[test]
    fn quantile_is_a_valid_bucket_bound(
        deltas in prop::collection::vec(1u64..1000, 1..8),
        values in prop::collection::vec(0u64..10_000, 1..60),
        q in 0.0f64..=1.0,
    ) {
        let bounds = bounds_from_deltas(&deltas);
        let s = snapshot_of(&bounds, &values);
        let est = s.quantile(q);
        // The estimate is either a configured bound or the exact max (for
        // the overflow bucket).
        prop_assert!(
            bounds.contains(&est) || est == s.max,
            "quantile {} not a bound or max: {}", q, est
        );
        // It never understates the true minimum's bucket: the estimate is
        // at least the bound covering the smallest observation.
        let min_bound = bounds
            .iter()
            .copied()
            .find(|&b| b >= s.min)
            .unwrap_or(s.max);
        prop_assert!(est >= min_bound.min(s.max));
        // Quantiles are monotone in q.
        prop_assert!(s.quantile(1.0) >= est && est >= s.quantile(0.0));
    }

    #[test]
    fn quantile_brackets_exact_rank_statistic(
        values in prop::collection::vec(0u64..50_000, 1..60),
        q in 0.0f64..=1.0,
    ) {
        // With the default latency layout, the estimated quantile must be
        // an upper bound for the exact order statistic at the same rank.
        let h = Histogram::latency();
        for &v in &values {
            h.record(v);
        }
        let s = h.snapshot();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
        let exact = sorted[rank - 1];
        prop_assert!(
            s.quantile(q) >= exact,
            "estimate {} below exact order statistic {}", s.quantile(q), exact
        );
    }

    #[test]
    fn registry_snapshot_merge_matches_combined_recording(
        counts_a in prop::collection::vec(0u64..100, 3usize),
        counts_b in prop::collection::vec(0u64..100, 3usize),
        lat_a in prop::collection::vec(1u64..1_000_000, 0..30),
        lat_b in prop::collection::vec(1u64..1_000_000, 0..30),
        gauge_moves in prop::collection::vec(-20i64..20, 0..20),
    ) {
        let names = ["stage.one", "stage.two", "stage.three"];
        let ra = Registry::new();
        let rb = Registry::new();
        let combined = Registry::new();
        for (name, (&ca, &cb)) in names.iter().zip(counts_a.iter().zip(&counts_b)) {
            ra.counter(name).add(ca);
            rb.counter(name).add(cb);
            combined.counter(name).add(ca + cb);
        }
        for &v in &lat_a {
            ra.histogram("lat").record(v);
            combined.histogram("lat").record(v);
        }
        for &v in &lat_b {
            rb.histogram("lat").record(v);
            combined.histogram("lat").record(v);
        }
        for &d in &gauge_moves {
            ra.gauge("depth").add(d);
            combined.gauge("depth").add(d);
        }

        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot());
        let expect = combined.snapshot();
        for name in names {
            prop_assert_eq!(merged.counter(name), expect.counter(name));
        }
        prop_assert_eq!(merged.histogram("lat"), expect.histogram("lat"));
        prop_assert_eq!(merged.gauge("depth"), expect.gauge("depth"));
        prop_assert_eq!(
            merged.gauge_high_water("depth"),
            expect.gauge_high_water("depth")
        );
    }
}

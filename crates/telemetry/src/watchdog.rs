//! Stall watchdog: stages register a heartbeat tied to a queue-depth
//! gauge; a stage whose queue holds work but whose heartbeat has not
//! advanced within the threshold is flagged as stalled.

use crate::metrics::Gauge;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Progress pulse for one stage. Cheap to beat from hot paths.
#[derive(Debug)]
pub struct Heartbeat {
    epoch: Instant,
    last_nanos: AtomicU64,
}

impl Heartbeat {
    fn new(epoch: Instant) -> Self {
        Self {
            epoch,
            last_nanos: AtomicU64::new(0),
        }
    }

    /// Records progress now.
    pub fn beat(&self) {
        let nanos = self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.last_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Time since the last beat (or since registration when never beaten).
    pub fn idle(&self) -> Duration {
        let last = Duration::from_nanos(self.last_nanos.load(Ordering::Relaxed));
        self.epoch.elapsed().saturating_sub(last)
    }
}

struct Watched {
    stage: String,
    heartbeat: Arc<Heartbeat>,
    depth: Option<Arc<Gauge>>,
}

/// Progress state of one watched stage, captured when a stall trips (or on
/// demand via [`Watchdog::queue_progress`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueProgress {
    /// Stage name as registered.
    pub stage: String,
    /// Time since this stage last made progress.
    pub last_progress: Duration,
    /// Queue depth right now (0 for stages watched without a depth gauge).
    pub depth: i64,
}

/// One stalled stage, as reported by [`Watchdog::stalled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Stage name as registered.
    pub stage: String,
    /// Time since the stage last made progress.
    pub idle: Duration,
    /// Queue depth at detection time (0 for stages watched without a
    /// depth gauge).
    pub depth: i64,
    /// Progress age + depth of *every* watched stage, captured at trip
    /// time, so one stall report alone localizes the wedged stage.
    pub queues: Vec<QueueProgress>,
}

/// Flags stage queues that hold work but have stopped moving.
pub struct Watchdog {
    threshold: Duration,
    epoch: Instant,
    watched: Mutex<Vec<Watched>>,
}

impl Watchdog {
    /// Watchdog flagging stages idle longer than `threshold` while their
    /// queue is non-empty.
    pub fn new(threshold: Duration) -> Self {
        Self {
            threshold,
            epoch: Instant::now(),
            watched: Mutex::new(Vec::new()),
        }
    }

    /// Configured stall threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Registers a stage whose stall condition is "queue non-empty and no
    /// beat for threshold". Returns the heartbeat to pulse on progress.
    pub fn watch_queue(&self, stage: &str, depth: Arc<Gauge>) -> Arc<Heartbeat> {
        self.register(stage, Some(depth))
    }

    /// Registers a stage watched on heartbeat alone (stalled whenever the
    /// beat goes quiet past the threshold).
    pub fn watch(&self, stage: &str) -> Arc<Heartbeat> {
        self.register(stage, None)
    }

    fn register(&self, stage: &str, depth: Option<Arc<Gauge>>) -> Arc<Heartbeat> {
        let hb = Arc::new(Heartbeat::new(self.epoch));
        hb.beat(); // registration counts as progress
        self.watched
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Watched {
                stage: stage.to_string(),
                heartbeat: Arc::clone(&hb),
                depth,
            });
        hb
    }

    /// Progress age and depth of every watched stage, right now.
    pub fn queue_progress(&self) -> Vec<QueueProgress> {
        let watched = self.watched.lock().unwrap_or_else(|p| p.into_inner());
        Self::progress_of(&watched)
    }

    fn progress_of(watched: &[Watched]) -> Vec<QueueProgress> {
        watched
            .iter()
            .map(|w| QueueProgress {
                stage: w.stage.clone(),
                last_progress: w.heartbeat.idle(),
                depth: w.depth.as_ref().map_or(0, |g| g.get()),
            })
            .collect()
    }

    /// Stages currently stalled, worst (longest idle) first. Each report
    /// carries a [`QueueProgress`] snapshot of every watched stage taken at
    /// trip time (computed once, only when something actually stalled).
    pub fn stalled(&self) -> Vec<StallReport> {
        let watched = self.watched.lock().unwrap_or_else(|p| p.into_inner());
        let mut queues: Option<Vec<QueueProgress>> = None;
        let mut reports: Vec<StallReport> = watched
            .iter()
            .filter_map(|w| {
                let idle = w.heartbeat.idle();
                if idle <= self.threshold {
                    return None;
                }
                let depth = w.depth.as_ref().map_or(0, |g| g.get());
                // With a depth gauge, an empty queue is idle, not stalled.
                if w.depth.is_some() && depth <= 0 {
                    return None;
                }
                let queues = queues
                    .get_or_insert_with(|| Self::progress_of(&watched))
                    .clone();
                Some(StallReport {
                    stage: w.stage.clone(),
                    idle,
                    depth,
                    queues,
                })
            })
            .collect();
        reports.sort_by_key(|r| std::cmp::Reverse(r.idle));
        reports
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("threshold", &self.threshold)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_empty_queue_is_not_stalled() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let depth = Arc::new(Gauge::new());
        let _hb = wd.watch_queue("q", Arc::clone(&depth));
        std::thread::sleep(Duration::from_millis(15));
        assert!(wd.stalled().is_empty());
    }

    #[test]
    fn loaded_quiet_queue_trips() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let depth = Arc::new(Gauge::new());
        let _hb = wd.watch_queue("q", Arc::clone(&depth));
        depth.set(3);
        std::thread::sleep(Duration::from_millis(15));
        let stalls = wd.stalled();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].stage, "q");
        assert_eq!(stalls[0].depth, 3);
        assert!(stalls[0].idle >= Duration::from_millis(5));
    }

    #[test]
    fn beating_keeps_stage_healthy() {
        let wd = Watchdog::new(Duration::from_millis(20));
        let depth = Arc::new(Gauge::new());
        let hb = wd.watch_queue("q", Arc::clone(&depth));
        depth.set(1);
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(4));
            hb.beat();
        }
        assert!(wd.stalled().is_empty());
    }

    #[test]
    fn stall_report_snapshots_all_watched_queues() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let depth_a = Arc::new(Gauge::new());
        let depth_b = Arc::new(Gauge::new());
        let _hb_a = wd.watch_queue("wedged", Arc::clone(&depth_a));
        let hb_b = wd.watch_queue("healthy", Arc::clone(&depth_b));
        depth_a.set(7);
        depth_b.set(2);
        std::thread::sleep(Duration::from_millis(15));
        hb_b.beat();
        let stalls = wd.stalled();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].stage, "wedged");
        // The trip-time snapshot covers every watched stage, including the
        // healthy one, with its depth and last-progress age.
        assert_eq!(stalls[0].queues.len(), 2);
        let wedged = stalls[0]
            .queues
            .iter()
            .find(|q| q.stage == "wedged")
            .unwrap();
        let healthy = stalls[0]
            .queues
            .iter()
            .find(|q| q.stage == "healthy")
            .unwrap();
        assert_eq!(wedged.depth, 7);
        assert!(wedged.last_progress >= Duration::from_millis(5));
        assert_eq!(healthy.depth, 2);
        assert!(healthy.last_progress < Duration::from_millis(5));
        // On-demand progress works without a stall too.
        assert_eq!(wd.queue_progress().len(), 2);
    }

    #[test]
    fn heartbeat_only_watch_trips_on_silence() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let _hb = wd.watch("stage");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(wd.stalled().len(), 1);
    }
}

//! Stall watchdog: stages register a heartbeat tied to a queue-depth
//! gauge; a stage whose queue holds work but whose heartbeat has not
//! advanced within the threshold is flagged as stalled.

use crate::metrics::Gauge;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Progress pulse for one stage. Cheap to beat from hot paths.
#[derive(Debug)]
pub struct Heartbeat {
    epoch: Instant,
    last_nanos: AtomicU64,
}

impl Heartbeat {
    fn new(epoch: Instant) -> Self {
        Self {
            epoch,
            last_nanos: AtomicU64::new(0),
        }
    }

    /// Records progress now.
    pub fn beat(&self) {
        let nanos = self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.last_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Time since the last beat (or since registration when never beaten).
    pub fn idle(&self) -> Duration {
        let last = Duration::from_nanos(self.last_nanos.load(Ordering::Relaxed));
        self.epoch.elapsed().saturating_sub(last)
    }
}

struct Watched {
    stage: String,
    heartbeat: Arc<Heartbeat>,
    depth: Option<Arc<Gauge>>,
}

/// One stalled stage, as reported by [`Watchdog::stalled`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// Stage name as registered.
    pub stage: String,
    /// Time since the stage last made progress.
    pub idle: Duration,
    /// Queue depth at detection time (0 for stages watched without a
    /// depth gauge).
    pub depth: i64,
}

/// Flags stage queues that hold work but have stopped moving.
pub struct Watchdog {
    threshold: Duration,
    epoch: Instant,
    watched: Mutex<Vec<Watched>>,
}

impl Watchdog {
    /// Watchdog flagging stages idle longer than `threshold` while their
    /// queue is non-empty.
    pub fn new(threshold: Duration) -> Self {
        Self {
            threshold,
            epoch: Instant::now(),
            watched: Mutex::new(Vec::new()),
        }
    }

    /// Configured stall threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Registers a stage whose stall condition is "queue non-empty and no
    /// beat for threshold". Returns the heartbeat to pulse on progress.
    pub fn watch_queue(&self, stage: &str, depth: Arc<Gauge>) -> Arc<Heartbeat> {
        self.register(stage, Some(depth))
    }

    /// Registers a stage watched on heartbeat alone (stalled whenever the
    /// beat goes quiet past the threshold).
    pub fn watch(&self, stage: &str) -> Arc<Heartbeat> {
        self.register(stage, None)
    }

    fn register(&self, stage: &str, depth: Option<Arc<Gauge>>) -> Arc<Heartbeat> {
        let hb = Arc::new(Heartbeat::new(self.epoch));
        hb.beat(); // registration counts as progress
        self.watched
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Watched {
                stage: stage.to_string(),
                heartbeat: Arc::clone(&hb),
                depth,
            });
        hb
    }

    /// Stages currently stalled, worst (longest idle) first.
    pub fn stalled(&self) -> Vec<StallReport> {
        let watched = self.watched.lock().unwrap_or_else(|p| p.into_inner());
        let mut reports: Vec<StallReport> = watched
            .iter()
            .filter_map(|w| {
                let idle = w.heartbeat.idle();
                if idle <= self.threshold {
                    return None;
                }
                let depth = w.depth.as_ref().map_or(0, |g| g.get());
                // With a depth gauge, an empty queue is idle, not stalled.
                if w.depth.is_some() && depth <= 0 {
                    return None;
                }
                Some(StallReport {
                    stage: w.stage.clone(),
                    idle,
                    depth,
                })
            })
            .collect();
        reports.sort_by_key(|r| std::cmp::Reverse(r.idle));
        reports
    }
}

impl std::fmt::Debug for Watchdog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Watchdog")
            .field("threshold", &self.threshold)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_empty_queue_is_not_stalled() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let depth = Arc::new(Gauge::new());
        let _hb = wd.watch_queue("q", Arc::clone(&depth));
        std::thread::sleep(Duration::from_millis(15));
        assert!(wd.stalled().is_empty());
    }

    #[test]
    fn loaded_quiet_queue_trips() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let depth = Arc::new(Gauge::new());
        let _hb = wd.watch_queue("q", Arc::clone(&depth));
        depth.set(3);
        std::thread::sleep(Duration::from_millis(15));
        let stalls = wd.stalled();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].stage, "q");
        assert_eq!(stalls[0].depth, 3);
        assert!(stalls[0].idle >= Duration::from_millis(5));
    }

    #[test]
    fn beating_keeps_stage_healthy() {
        let wd = Watchdog::new(Duration::from_millis(20));
        let depth = Arc::new(Gauge::new());
        let hb = wd.watch_queue("q", Arc::clone(&depth));
        depth.set(1);
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(4));
            hb.beat();
        }
        assert!(wd.stalled().is_empty());
    }

    #[test]
    fn heartbeat_only_watch_trips_on_silence() {
        let wd = Watchdog::new(Duration::from_millis(5));
        let _hb = wd.watch("stage");
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(wd.stalled().len(), 1);
    }
}

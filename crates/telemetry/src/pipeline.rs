//! Pipeline-level aggregation: canonical metric names for the six stages,
//! the [`PipelineSnapshot`] view over a registry snapshot, and the
//! [`Telemetry`] bundle (registry + watchdog) threaded through the
//! pipeline.

use crate::json::Json;
use crate::metrics::HistogramSnapshot;
use crate::registry::{Registry, RegistrySnapshot};
use crate::watchdog::{StallReport, Watchdog};
use dlb_trace::Tracer;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Canonical metric names, shared by stage wiring and aggregation.
pub mod names {
    /// Reader: batches handed to the FPGA.
    pub const READER_BATCHES_SUBMITTED: &str = "reader.batches_submitted";
    /// Reader: batches fully drained back.
    pub const READER_BATCHES_COMPLETED: &str = "reader.batches_completed";
    /// Reader: batches aborted before completion.
    pub const READER_BATCH_ERRORS: &str = "reader.batch_errors";
    /// Reader: per-item FINISH errors observed while draining.
    pub const READER_ITEM_ERRORS: &str = "reader.item_errors";
    /// Reader: CPU busy nanoseconds (Algorithm 1 loop).
    pub const READER_CPU_BUSY_NANOS: &str = "reader.cpu_busy_nanos";
    /// Reader: cmd submit→completion latency histogram (ns).
    pub const READER_SUBMIT_LATENCY: &str = "reader.submit_latency_nanos";
    /// Reader: cmds currently in flight on the device.
    pub const READER_INFLIGHT: &str = "reader.inflight_cmds";

    /// Channel: cmds submitted to the device.
    pub const CHANNEL_CMDS_SUBMITTED: &str = "channel.cmds_submitted";
    /// Channel: completions drained from the device.
    pub const CHANNEL_CMDS_DRAINED: &str = "channel.cmds_drained";
    /// Channel: submitted minus drained.
    pub const CHANNEL_INFLIGHT: &str = "channel.inflight";

    /// Decoder: batches retired by the lanes.
    pub const DECODER_BATCHES: &str = "decoder.batches";
    /// Decoder: items entering the lanes.
    pub const DECODER_ITEMS_IN: &str = "decoder.items_in";
    /// Decoder: items decoded successfully.
    pub const DECODER_ITEMS_OK: &str = "decoder.items_ok";
    /// Decoder: items failed (FINISH error).
    pub const DECODER_ITEMS_ERR: &str = "decoder.items_err";
    /// Decoder: DMA bytes written back to host memory.
    pub const DECODER_BYTES_WRITTEN: &str = "decoder.bytes_written";
    /// Decoder: per-item lane service time histogram (ns).
    pub const DECODER_LANE_SERVICE: &str = "decoder.lane_service_nanos";

    /// Pool: successful leases.
    pub const POOL_LEASES: &str = "pool.leases";
    /// Pool: units recycled.
    pub const POOL_RECYCLES: &str = "pool.recycles";
    /// Pool: lease attempts that had to wait (starvation events).
    pub const POOL_STARVATIONS: &str = "pool.starvations";
    /// Pool: nanoseconds spent blocked waiting for a unit.
    pub const POOL_BLOCKED_NANOS: &str = "pool.blocked_nanos";
    /// Pool: free units right now.
    pub const POOL_FREE_UNITS: &str = "pool.free_units";

    /// Dispatcher: batches copied host→device.
    pub const DISPATCHER_BATCHES: &str = "dispatcher.batches";
    /// Dispatcher: H2D bytes copied.
    pub const DISPATCHER_BYTES_COPIED: &str = "dispatcher.bytes_copied";
    /// Dispatcher: failed copies.
    pub const DISPATCHER_COPY_ERRORS: &str = "dispatcher.copy_errors";
    /// Dispatcher: CPU busy nanoseconds (Algorithm 3 loop).
    pub const DISPATCHER_CPU_BUSY_NANOS: &str = "dispatcher.cpu_busy_nanos";
    /// Dispatcher: per-batch copy latency histogram (ns).
    pub const DISPATCHER_COPY_LATENCY: &str = "dispatcher.copy_latency_nanos";

    /// Engines: batches consumed (training iterations / inference calls).
    pub const ENGINE_BATCHES: &str = "engine.batches";
    /// Engines: time spent waiting for a ready batch (ns histogram).
    pub const ENGINE_BATCH_WAIT: &str = "engine.batch_wait_nanos";
    /// Engines: time spent in compute per batch (ns histogram).
    pub const ENGINE_COMPUTE: &str = "engine.compute_nanos";

    /// Router: batches delivered to slot queues.
    pub const ROUTER_DELIVERED: &str = "router.delivered";

    /// Serving: requests offered to the admission controller.
    pub const SERVING_OFFERED: &str = "serving.offered";
    /// Serving: requests admitted into the serving queue.
    pub const SERVING_ADMITTED: &str = "serving.admitted";
    /// Serving: requests rejected at the admission door.
    pub const SERVING_REJECTED: &str = "serving.rejected";
    /// Serving: admitted requests later evicted by the shedding policy.
    pub const SERVING_SHED: &str = "serving.shed";
    /// Serving: admitted requests that completed (prediction returned).
    pub const SERVING_COMPLETED: &str = "serving.completed";
    /// Serving: completions that met their SLO deadline (goodput).
    pub const SERVING_GOOD: &str = "serving.good";
    /// Serving: admitted requests currently queued or in the pipeline.
    pub const SERVING_INFLIGHT: &str = "serving.inflight";
    /// Serving: admission-queue depth (gauge; high-water = worst backlog).
    pub const SERVING_QUEUE_DEPTH: &str = "serving.queue_depth";
    /// Serving: admission-queue delay histogram (ns, arrival→dequeue).
    pub const SERVING_QUEUE_DELAY: &str = "serving.queue_delay_nanos";
    /// Serving: formed-batch size histogram (items per batch).
    pub const SERVING_BATCH_SIZE: &str = "serving.batch_size";
    /// Serving: batches formed by the dynamic batcher.
    pub const SERVING_BATCHES: &str = "serving.batches_formed";
    /// Serving: batches closed because they reached `max_batch`.
    pub const SERVING_BATCH_FULL: &str = "serving.batches_closed_full";
    /// Serving: batches closed because `max_linger` expired.
    pub const SERVING_BATCH_LINGER: &str = "serving.batches_closed_linger";
    /// Prefix for per-tenant serving metrics
    /// (`serving.tenant.<id>.admitted|completed|shed|goodput`).
    pub const SERVING_TENANT_PREFIX: &str = "serving.tenant.";

    /// Cache: sample lookups against the decoded-sample cache.
    pub const CACHE_LOOKUPS: &str = "cache.lookups";
    /// Cache: lookups that found a resident decoded sample.
    pub const CACHE_HITS: &str = "cache.hits";
    /// Cache: lookups that missed (redecode required).
    pub const CACHE_MISSES: &str = "cache.misses";
    /// Cache: samples admitted.
    pub const CACHE_INSERTIONS: &str = "cache.insertions";
    /// Cache: bytes admitted (sum of admitted sample sizes).
    pub const CACHE_INSERTED_BYTES: &str = "cache.inserted_bytes";
    /// Cache: admissions refused (quarantined key or oversized sample).
    pub const CACHE_REJECTED: &str = "cache.rejected";
    /// Cache: samples evicted (cost-aware policy or quarantine removal).
    pub const CACHE_EVICTIONS: &str = "cache.evictions";
    /// Cache: bytes evicted.
    pub const CACHE_EVICTED_BYTES: &str = "cache.evicted_bytes";
    /// Cache: failed-decode observations that poisoned a key.
    pub const CACHE_QUARANTINED: &str = "cache.quarantined";
    /// Cache: whole batches delivered straight from cache (decode skipped).
    pub const CACHE_BYPASS_BATCHES: &str = "cache.bypass_batches";
    /// Cache: bytes resident right now (gauge; high-water must stay ≤
    /// capacity).
    pub const CACHE_RESIDENT_BYTES: &str = "cache.resident_bytes";
    /// Cache: entries resident right now (gauge).
    pub const CACHE_RESIDENT_ENTRIES: &str = "cache.resident_entries";
    /// Cache: configured capacity in bytes (gauge, set at construction).
    pub const CACHE_CAPACITY_BYTES: &str = "cache.capacity_bytes";
    /// Prefix for per-tenant cache partitions
    /// (`cache.tenant.<id>.hits|misses|evictions|resident_bytes`).
    pub const CACHE_TENANT_PREFIX: &str = "cache.tenant.";

    /// Cluster: requests arriving at the shard router's door.
    pub const CLUSTER_REQUESTS: &str = "cluster.requests";
    /// Cluster: requests that passed quota + routing (primary dispatched).
    pub const CLUSTER_ADMITTED: &str = "cluster.admitted";
    /// Cluster: requests terminally shed (quota, dead ring, or an
    /// unreplayable loss).
    pub const CLUSTER_SHED: &str = "cluster.shed";
    /// Cluster: the subset of sheds denied by a tenant quota bucket.
    pub const CLUSTER_QUOTA_SHED: &str = "cluster.quota_shed";
    /// Cluster: copies placed on node queues (primaries + hedges +
    /// replays).
    pub const CLUSTER_DISPATCHES: &str = "cluster.dispatches";
    /// Cluster: hedge copies dispatched after a budget expiry.
    pub const CLUSTER_HEDGES: &str = "cluster.hedges";
    /// Cluster: requests whose first completion came from a hedge copy.
    pub const CLUSTER_HEDGE_WINS: &str = "cluster.hedge_wins";
    /// Cluster: duplicate completions of already-terminal requests.
    pub const CLUSTER_HEDGE_DUPS: &str = "cluster.hedge_dups";
    /// Cluster: replay copies dispatched for work lost to a node kill.
    pub const CLUSTER_REPLAYS: &str = "cluster.replays";
    /// Cluster: copies that finished service (wins and duplicates).
    pub const CLUSTER_COMPLETIONS: &str = "cluster.completions";
    /// Cluster: completions by primary or hedge copies.
    pub const CLUSTER_SERVED: &str = "cluster.served";
    /// Cluster: completions by replay copies.
    pub const CLUSTER_REPLAYED: &str = "cluster.replayed";
    /// Cluster: winning completions inside the SLO deadline (goodput).
    pub const CLUSTER_GOOD: &str = "cluster.good";
    /// Cluster: copies that died with a killed node.
    pub const CLUSTER_LOST: &str = "cluster.lost";
    /// Cluster: lost copies not re-dispatched (stale, covered, or shed).
    pub const CLUSTER_LOST_UNREPLAYED: &str = "cluster.lost_unreplayed";
    /// Cluster: nodes chaos-killed.
    pub const CLUSTER_KILLS: &str = "cluster.kills";
    /// Cluster: quota rebalances after membership changes.
    pub const CLUSTER_REBALANCES: &str = "cluster.rebalances";
    /// Cluster: requests admitted to the door but not yet terminal.
    pub const CLUSTER_INFLIGHT: &str = "cluster.inflight";
    /// Cluster: copies dispatched but not yet completed or lost.
    pub const CLUSTER_NODE_QUEUED: &str = "cluster.node_queued";
    /// Cluster: live nodes on the ring right now.
    pub const CLUSTER_NODES_ALIVE: &str = "cluster.nodes_alive";
    /// Cluster: winning-request arrival→completion latency (ns).
    pub const CLUSTER_LATENCY: &str = "cluster.latency_nanos";
    /// Prefix for per-tenant cluster metrics
    /// (`cluster.tenant.<id>.requests|completed|shed|good`).
    pub const CLUSTER_TENANT_PREFIX: &str = "cluster.tenant.";

    /// Codec: wall nanoseconds in Huffman entropy decoding (summed across
    /// decode workers, so it can exceed wall time).
    pub const CODEC_HUFFMAN_NANOS: &str = "codec.huffman_ns";
    /// Codec: wall nanoseconds in dequantisation + inverse DCT.
    pub const CODEC_IDCT_NANOS: &str = "codec.idct_ns";
    /// Codec: wall nanoseconds in resize (decode-side bilinear scaling).
    pub const CODEC_RESIZE_NANOS: &str = "codec.resize_ns";
    /// Codec: wall nanoseconds in chroma upsampling + YCbCr→RGB conversion.
    pub const CODEC_COLOR_NANOS: &str = "codec.color_ns";

    /// NIC: frames dropped because the bounded RX ring was full.
    pub const NET_RX_DROPS: &str = "net.rx_ring_drops";
    /// NIC: frames rejected by the wire parser.
    pub const NET_FRAMES_BAD: &str = "net.frames_bad";

    /// Chaos: total faults injected across every stage.
    pub const CHAOS_FAULTS_TOTAL: &str = "chaos.faults_total";
    /// Chaos: faults injected into storage reads.
    pub const CHAOS_INJECTED_STORAGE: &str = "chaos.injected.storage";
    /// Chaos: faults injected into NIC RX delivery.
    pub const CHAOS_INJECTED_NET: &str = "chaos.injected.net";
    /// Chaos: faults injected into FPGA decode lanes.
    pub const CHAOS_INJECTED_FPGA: &str = "chaos.injected.fpga";
    /// Chaos: faults injected into the batch pool.
    pub const CHAOS_INJECTED_POOL: &str = "chaos.injected.pool";
    /// Chaos: faults injected into GPU copy slots.
    pub const CHAOS_INJECTED_GPU: &str = "chaos.injected.gpu";
    /// Chaos: primary→fallback backend failovers performed.
    pub const CHAOS_FAILOVER_TOTAL: &str = "chaos.failover_total";

    /// Retry: operation attempts (first tries included).
    pub const RETRY_ATTEMPTS: &str = "retry.attempts";
    /// Retry: retries performed after a transient failure.
    pub const RETRY_RETRIES: &str = "retry.retries";
    /// Retry: operations that exhausted their attempt budget.
    pub const RETRY_GIVEUPS: &str = "retry.giveups";
    /// Retry: nanoseconds of backoff scheduled between attempts.
    pub const RETRY_BACKOFF_NANOS: &str = "retry.backoff_nanos";
    /// Retry: reader cmd batches that exceeded their completion timeout.
    pub const RETRY_CMD_TIMEOUTS: &str = "retry.cmd_timeouts";
    /// Retry: reader cmd batches re-submitted after a timeout.
    pub const RETRY_CMD_RESUBMITS: &str = "retry.cmd_resubmits";
    /// Retry: late completions of timed-out batches, drained and dropped.
    pub const RETRY_LATE_COMPLETIONS: &str = "retry.late_completions";

    /// Prefix for per-queue metrics (`queue.<name>.depth` etc.).
    pub const QUEUE_PREFIX: &str = "queue.";

    /// Every *counter* that participates in a
    /// [`PipelineSnapshot::invariant_violations`](super::PipelineSnapshot::invariant_violations)
    /// conservation law, under its canonical registry name. Stage wiring
    /// must register these exact strings — a silent rename would make a
    /// law trivially "hold" on zeros. `tests/api_surface.rs` audits that
    /// each name feeds the typed snapshot field the law reads.
    /// (Per-queue and per-tenant counters are discovered by prefix and are
    /// exercised separately.)
    pub const CONSERVATION_COUNTERS: &[&str] = &[
        // batch law
        READER_BATCHES_SUBMITTED,
        READER_BATCHES_COMPLETED,
        READER_BATCH_ERRORS,
        // item law
        DECODER_ITEMS_IN,
        DECODER_ITEMS_OK,
        DECODER_ITEMS_ERR,
        // channel law
        CHANNEL_CMDS_SUBMITTED,
        CHANNEL_CMDS_DRAINED,
        // serving laws
        SERVING_OFFERED,
        SERVING_ADMITTED,
        SERVING_REJECTED,
        SERVING_COMPLETED,
        SERVING_SHED,
        SERVING_GOOD,
        // cache laws
        CACHE_LOOKUPS,
        CACHE_HITS,
        CACHE_MISSES,
        CACHE_INSERTIONS,
        CACHE_INSERTED_BYTES,
        CACHE_EVICTIONS,
        CACHE_EVICTED_BYTES,
        // cluster laws
        CLUSTER_REQUESTS,
        CLUSTER_ADMITTED,
        CLUSTER_SHED,
        CLUSTER_QUOTA_SHED,
        CLUSTER_DISPATCHES,
        CLUSTER_HEDGES,
        CLUSTER_HEDGE_WINS,
        CLUSTER_HEDGE_DUPS,
        CLUSTER_REPLAYS,
        CLUSTER_COMPLETIONS,
        CLUSTER_SERVED,
        CLUSTER_REPLAYED,
        CLUSTER_LOST,
        CLUSTER_LOST_UNREPLAYED,
        // retry law
        RETRY_ATTEMPTS,
        RETRY_RETRIES,
        RETRY_GIVEUPS,
    ];
}

/// Registry + watchdog bundle threaded through pipeline construction.
#[derive(Debug)]
pub struct Telemetry {
    /// The single metric registry.
    pub registry: Arc<Registry>,
    /// Stall watchdog over stage queues.
    pub watchdog: Arc<Watchdog>,
    /// Optional span tracer (see [`Telemetry::install_tracer`]). Empty by
    /// default: stages probe it per batch and skip recording when unset, so
    /// disabled tracing costs one load + branch per record site. Shared
    /// behind an `Arc` so stage daemons can keep a clone of the cell and
    /// observe a tracer installed after they started (the same
    /// first-attach-wins shape as the chaos and cache hooks).
    tracer: Arc<OnceLock<Arc<Tracer>>>,
}

impl Telemetry {
    /// Bundle with the given stall threshold.
    pub fn new(stall_threshold: Duration) -> Arc<Self> {
        Arc::new(Self {
            registry: Arc::new(Registry::new()),
            watchdog: Arc::new(Watchdog::new(stall_threshold)),
            tracer: Arc::new(OnceLock::new()),
        })
    }

    /// Bundle with a threshold long enough that healthy test runs never
    /// trip it (2 s).
    pub fn with_defaults() -> Arc<Self> {
        Self::new(Duration::from_secs(2))
    }

    /// Installs a span tracer; every stage holding this bundle starts
    /// recording spans through it. First install wins (mirrors the
    /// first-attach-wins cells used elsewhere in the pipeline); returns
    /// `false` if a tracer was already installed.
    pub fn install_tracer(&self, tracer: Arc<Tracer>) -> bool {
        self.tracer.set(tracer).is_ok()
    }

    /// The installed tracer, if any. Stages call this per batch; `None`
    /// means tracing is disabled and the record site is a no-op.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.tracer.get()
    }

    /// The shared tracer cell, for stage daemons that outlive their
    /// construction-time `&Telemetry` borrow: probe `cell.get()` per batch
    /// exactly like [`Telemetry::tracer`].
    pub fn tracer_cell(&self) -> Arc<OnceLock<Arc<Tracer>>> {
        Arc::clone(&self.tracer)
    }

    /// Captures a [`PipelineSnapshot`] right now.
    pub fn pipeline_snapshot(&self) -> PipelineSnapshot {
        PipelineSnapshot::capture(&self.registry.snapshot(), &self.watchdog)
    }
}

/// Reader-stage view.
#[derive(Debug, Clone, Default)]
pub struct ReaderMetrics {
    /// Batches handed to the FPGA.
    pub batches_submitted: u64,
    /// Batches fully drained back.
    pub batches_completed: u64,
    /// Batches aborted before completion.
    pub batch_errors: u64,
    /// Per-item FINISH errors observed while draining.
    pub item_errors: u64,
    /// CPU busy nanoseconds.
    pub cpu_busy_nanos: u64,
    /// Cmd submit→completion latency (ns).
    pub submit_latency: Option<HistogramSnapshot>,
    /// Cmds in flight at snapshot time.
    pub inflight: i64,
}

/// Channel-stage view.
#[derive(Debug, Clone, Default)]
pub struct ChannelMetrics {
    /// Cmds submitted to the device.
    pub cmds_submitted: u64,
    /// Completions drained.
    pub cmds_drained: u64,
    /// Submitted minus drained at snapshot time.
    pub inflight: i64,
}

/// Decoder-stage view.
#[derive(Debug, Clone, Default)]
pub struct DecoderMetrics {
    /// Batches retired by the lanes.
    pub batches: u64,
    /// Items entering the lanes.
    pub items_in: u64,
    /// Items decoded successfully.
    pub items_ok: u64,
    /// Items failed (FINISH error).
    pub items_err: u64,
    /// DMA bytes written back.
    pub bytes_written: u64,
    /// Per-item lane service time (ns).
    pub lane_service: Option<HistogramSnapshot>,
}

/// Pool-stage view.
#[derive(Debug, Clone, Default)]
pub struct PoolMetrics {
    /// Successful leases.
    pub leases: u64,
    /// Units recycled.
    pub recycles: u64,
    /// Lease attempts that had to wait.
    pub starvations: u64,
    /// Nanoseconds spent blocked waiting for a unit.
    pub blocked_nanos: u64,
    /// Free units at snapshot time.
    pub free_units: i64,
}

/// Dispatcher-stage view.
#[derive(Debug, Clone, Default)]
pub struct DispatcherMetrics {
    /// Batches copied host→device.
    pub batches: u64,
    /// H2D bytes copied.
    pub bytes_copied: u64,
    /// Failed copies.
    pub copy_errors: u64,
    /// CPU busy nanoseconds.
    pub cpu_busy_nanos: u64,
    /// Per-batch copy latency (ns).
    pub copy_latency: Option<HistogramSnapshot>,
}

/// Trainer/inference-engine view.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    /// Batches consumed.
    pub batches: u64,
    /// Waiting-for-batch time (ns).
    pub batch_wait: Option<HistogramSnapshot>,
    /// Compute time per batch (ns).
    pub compute: Option<HistogramSnapshot>,
}

/// One tenant class's serving view.
#[derive(Debug, Clone, Default)]
pub struct TenantServingMetrics {
    /// Tenant id as registered (the `<id>` in `serving.tenant.<id>.*`).
    pub tenant: String,
    /// Requests admitted for this tenant.
    pub admitted: u64,
    /// Completions for this tenant.
    pub completed: u64,
    /// Requests shed (rejected or evicted) for this tenant.
    pub shed: u64,
    /// In-SLO completions for this tenant (goodput gauge level).
    pub goodput: i64,
}

/// Serving-layer view: admission, shedding, dynamic batching, goodput.
#[derive(Debug, Clone, Default)]
pub struct ServingMetrics {
    /// Requests offered to admission.
    pub offered: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected at the door.
    pub rejected: u64,
    /// Admitted requests later evicted by shedding.
    pub shed: u64,
    /// Admitted requests completed.
    pub completed: u64,
    /// Completions that met the SLO deadline.
    pub good: u64,
    /// Admitted minus (completed + shed) at snapshot time.
    pub inflight: i64,
    /// Admission-queue depth at snapshot time.
    pub queue_depth: i64,
    /// Highest admission-queue depth observed.
    pub queue_depth_high_water: i64,
    /// Batches formed by the dynamic batcher.
    pub batches: u64,
    /// Batches closed at `max_batch`.
    pub batches_closed_full: u64,
    /// Batches closed by `max_linger` expiry.
    pub batches_closed_linger: u64,
    /// Formed-batch size distribution.
    pub batch_size: Option<HistogramSnapshot>,
    /// Admission-queue delay distribution (ns).
    pub queue_delay: Option<HistogramSnapshot>,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantServingMetrics>,
}

impl ServingMetrics {
    /// True when no serving layer recorded anything into this registry.
    pub fn is_empty(&self) -> bool {
        self.offered == 0 && self.admitted == 0 && self.batches == 0
    }
}

/// One tenant partition's cache view.
#[derive(Debug, Clone, Default)]
pub struct TenantCacheMetrics {
    /// Tenant id as registered (the `<id>` in `cache.tenant.<id>.*`).
    pub tenant: String,
    /// Lookup hits in this tenant's partition.
    pub hits: u64,
    /// Lookup misses in this tenant's partition.
    pub misses: u64,
    /// Evictions from this tenant's partition.
    pub evictions: u64,
    /// Bytes resident in this tenant's partition.
    pub resident_bytes: i64,
}

/// Decoded-sample cache view (`dlb-cache`): admission, eviction,
/// quarantine and residency accounting.
#[derive(Debug, Clone, Default)]
pub struct CacheMetrics {
    /// Sample lookups.
    pub lookups: u64,
    /// Lookups served from a resident sample.
    pub hits: u64,
    /// Lookups that required a redecode.
    pub misses: u64,
    /// Samples admitted.
    pub insertions: u64,
    /// Bytes admitted.
    pub inserted_bytes: u64,
    /// Admissions refused (quarantine or oversized).
    pub rejected: u64,
    /// Samples evicted.
    pub evictions: u64,
    /// Bytes evicted.
    pub evicted_bytes: u64,
    /// Failed-decode observations that poisoned a key.
    pub quarantined: u64,
    /// Whole batches delivered straight from cache.
    pub bypass_batches: u64,
    /// Bytes resident at snapshot time.
    pub resident_bytes: i64,
    /// Highest residency ever observed.
    pub resident_bytes_high_water: i64,
    /// Entries resident at snapshot time.
    pub resident_entries: i64,
    /// Configured capacity in bytes.
    pub capacity_bytes: i64,
    /// Per-tenant partition breakdown (`DriveMode::Served`).
    pub tenants: Vec<TenantCacheMetrics>,
}

impl CacheMetrics {
    /// True when no sample cache recorded anything into this registry.
    pub fn is_empty(&self) -> bool {
        self.lookups == 0 && self.insertions == 0 && self.capacity_bytes == 0
    }
}

/// One tenant's cluster view.
#[derive(Debug, Clone, Default)]
pub struct TenantClusterMetrics {
    /// Tenant id as registered (the `<id>` in `cluster.tenant.<id>.*`).
    pub tenant: String,
    /// Requests this tenant offered to the cluster door.
    pub requests: u64,
    /// Requests whose first completion arrived (request-level serves).
    pub completed: u64,
    /// Requests terminally shed for this tenant.
    pub shed: u64,
    /// Completions inside the SLO deadline.
    pub good: u64,
}

/// Shard-router view (`dlb-cluster`): consistent-hash routing, tenant
/// quotas, hedging, and node-kill replay accounting.
///
/// Counter semantics: `served`/`replayed` count **copy** completions
/// (primary/hedge vs replay), including duplicates; `hedge_dups` counts
/// exactly the duplicate completions. The headline conservation law
/// `requests + hedge_dups = served + replayed + shed + inflight` is the
/// ISSUE form `in = served + shed + replayed − hedge_dups` rearranged so
/// both sides stay unsigned; at quiescence `inflight` is zero.
#[derive(Debug, Clone, Default)]
pub struct ClusterMetrics {
    /// Requests arriving at the router door.
    pub requests: u64,
    /// Requests that passed quota + routing.
    pub admitted: u64,
    /// Requests terminally shed.
    pub shed: u64,
    /// Sheds caused by a dry tenant quota bucket.
    pub quota_shed: u64,
    /// Copies placed on node queues.
    pub dispatches: u64,
    /// Hedge copies dispatched.
    pub hedges: u64,
    /// Requests first completed by a hedge copy.
    pub hedge_wins: u64,
    /// Duplicate completions of already-terminal requests.
    pub hedge_dups: u64,
    /// Replay copies dispatched after node kills.
    pub replays: u64,
    /// Copies that finished service.
    pub completions: u64,
    /// Completions by primary/hedge copies (duplicates included).
    pub served: u64,
    /// Completions by replay copies (duplicates included).
    pub replayed: u64,
    /// Winning completions inside the SLO deadline.
    pub good: u64,
    /// Copies that died with a killed node.
    pub lost: u64,
    /// Lost copies not re-dispatched.
    pub lost_unreplayed: u64,
    /// Nodes chaos-killed.
    pub kills: u64,
    /// Quota rebalances performed.
    pub rebalances: u64,
    /// Requests not yet terminal at snapshot time.
    pub inflight: i64,
    /// Copies on node queues at snapshot time.
    pub node_queued: i64,
    /// Live nodes at snapshot time.
    pub nodes_alive: i64,
    /// Winning-request arrival→completion latency (ns).
    pub latency: Option<HistogramSnapshot>,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantClusterMetrics>,
}

impl ClusterMetrics {
    /// True when no shard router recorded anything into this registry.
    pub fn is_empty(&self) -> bool {
        self.requests == 0 && self.dispatches == 0 && self.kills == 0
    }
}

/// Chaos/fault-plane view: injected faults per stage plus the recovery
/// policy's retry/failover accounting.
#[derive(Debug, Clone, Default)]
pub struct ChaosMetrics {
    /// Total faults injected across every stage.
    pub faults_total: u64,
    /// Faults injected into storage reads.
    pub injected_storage: u64,
    /// Faults injected into NIC RX delivery.
    pub injected_net: u64,
    /// Faults injected into FPGA decode lanes.
    pub injected_fpga: u64,
    /// Faults injected into the batch pool.
    pub injected_pool: u64,
    /// Faults injected into GPU copy slots.
    pub injected_gpu: u64,
    /// Primary→fallback backend failovers performed.
    pub failovers: u64,
    /// Operation attempts made under a retry policy.
    pub retry_attempts: u64,
    /// Retries performed after transient failures.
    pub retry_retries: u64,
    /// Operations that exhausted their attempt budget.
    pub retry_giveups: u64,
    /// Nanoseconds of backoff scheduled between attempts.
    pub retry_backoff_nanos: u64,
    /// Reader cmd batches that exceeded their completion timeout.
    pub cmd_timeouts: u64,
    /// Reader cmd batches re-submitted after a timeout.
    pub cmd_resubmits: u64,
    /// Late completions of timed-out batches, drained and dropped.
    pub late_completions: u64,
}

impl ChaosMetrics {
    /// True when neither the fault plane nor the retry policy recorded
    /// anything into this registry.
    pub fn is_empty(&self) -> bool {
        self.faults_total == 0
            && self.failovers == 0
            && self.retry_attempts == 0
            && self.cmd_timeouts == 0
    }
}

/// Per-stage codec timers exported by the decode workers (`codec.*_ns`).
/// Summed across workers, so values can exceed wall time; together they
/// account for where decode CPU cycles went (entropy, transform, colour,
/// resize).
#[derive(Debug, Clone, Copy, Default)]
pub struct CodecMetrics {
    /// Nanoseconds in Huffman entropy decoding.
    pub huffman_nanos: u64,
    /// Nanoseconds in dequantisation + inverse DCT.
    pub idct_nanos: u64,
    /// Nanoseconds in chroma upsampling + YCbCr→RGB conversion.
    pub color_nanos: u64,
    /// Nanoseconds in decode-side resizing.
    pub resize_nanos: u64,
}

impl CodecMetrics {
    /// True when no decode worker exported stage timers into this registry.
    pub fn is_empty(&self) -> bool {
        self.huffman_nanos == 0
            && self.idct_nanos == 0
            && self.color_nanos == 0
            && self.resize_nanos == 0
    }

    /// Total accounted nanoseconds across the four stages.
    pub fn total_nanos(&self) -> u64 {
        self.huffman_nanos + self.idct_nanos + self.color_nanos + self.resize_nanos
    }
}

/// One instrumented queue's view.
#[derive(Debug, Clone, Default)]
pub struct QueueMetrics {
    /// Queue name as registered.
    pub name: String,
    /// Depth at snapshot time.
    pub depth: i64,
    /// Highest depth observed.
    pub high_water: i64,
    /// Items pushed.
    pub pushed: u64,
    /// Items popped.
    pub popped: u64,
    /// Producer blocked time (ns).
    pub blocked_push_nanos: u64,
    /// Consumer blocked time (ns).
    pub blocked_pop_nanos: u64,
}

/// A structured view over one pipeline's telemetry: per-stage metrics,
/// instrumented queues, current stalls, and the raw registry snapshot.
#[derive(Debug, Clone, Default)]
pub struct PipelineSnapshot {
    /// FpgaReader stage.
    pub reader: ReaderMetrics,
    /// FpgaChannel stage.
    pub channel: ChannelMetrics,
    /// DecoderEngine stage.
    pub decoder: DecoderMetrics,
    /// MemManager stage.
    pub pool: PoolMetrics,
    /// Dispatcher stage.
    pub dispatcher: DispatcherMetrics,
    /// Trainer/inference engines.
    pub engines: EngineMetrics,
    /// Batches the router delivered to slot queues.
    pub router_delivered: u64,
    /// SLO-aware serving layer (admission, shedding, dynamic batching).
    pub serving: ServingMetrics,
    /// Decoded-sample cache (admission, eviction, quarantine, residency).
    pub cache: CacheMetrics,
    /// Shard router (`dlb-cluster`): quotas, hedging, kill replay.
    pub cluster: ClusterMetrics,
    /// Chaos fault plane + retry/failover recovery accounting.
    pub chaos: ChaosMetrics,
    /// Codec per-stage timers (entropy / iDCT / colour / resize).
    pub codec: CodecMetrics,
    /// Instrumented queues (slot queues, trans queues, ...).
    pub queues: Vec<QueueMetrics>,
    /// Stages flagged as stalled at capture time.
    pub stalls: Vec<StallReport>,
    /// The underlying raw snapshot (all metrics, mergeable).
    pub raw: RegistrySnapshot,
}

impl PipelineSnapshot {
    /// Builds the typed view from a raw snapshot plus the watchdog's
    /// current verdicts.
    pub fn capture(raw: &RegistrySnapshot, watchdog: &Watchdog) -> Self {
        Self::from_parts(raw.clone(), watchdog.stalled())
    }

    /// Builds the typed view from already-collected parts.
    pub fn from_parts(raw: RegistrySnapshot, stalls: Vec<StallReport>) -> Self {
        use names::*;
        let queues = collect_queues(&raw);
        let serving = collect_serving(&raw);
        let cache = collect_cache(&raw);
        let cluster = collect_cluster(&raw);
        let chaos = ChaosMetrics {
            faults_total: raw.counter(CHAOS_FAULTS_TOTAL),
            injected_storage: raw.counter(CHAOS_INJECTED_STORAGE),
            injected_net: raw.counter(CHAOS_INJECTED_NET),
            injected_fpga: raw.counter(CHAOS_INJECTED_FPGA),
            injected_pool: raw.counter(CHAOS_INJECTED_POOL),
            injected_gpu: raw.counter(CHAOS_INJECTED_GPU),
            failovers: raw.counter(CHAOS_FAILOVER_TOTAL),
            retry_attempts: raw.counter(RETRY_ATTEMPTS),
            retry_retries: raw.counter(RETRY_RETRIES),
            retry_giveups: raw.counter(RETRY_GIVEUPS),
            retry_backoff_nanos: raw.counter(RETRY_BACKOFF_NANOS),
            cmd_timeouts: raw.counter(RETRY_CMD_TIMEOUTS),
            cmd_resubmits: raw.counter(RETRY_CMD_RESUBMITS),
            late_completions: raw.counter(RETRY_LATE_COMPLETIONS),
        };
        Self {
            reader: ReaderMetrics {
                batches_submitted: raw.counter(READER_BATCHES_SUBMITTED),
                batches_completed: raw.counter(READER_BATCHES_COMPLETED),
                batch_errors: raw.counter(READER_BATCH_ERRORS),
                item_errors: raw.counter(READER_ITEM_ERRORS),
                cpu_busy_nanos: raw.counter(READER_CPU_BUSY_NANOS),
                submit_latency: raw.histogram(READER_SUBMIT_LATENCY).cloned(),
                inflight: raw.gauge(READER_INFLIGHT),
            },
            channel: ChannelMetrics {
                cmds_submitted: raw.counter(CHANNEL_CMDS_SUBMITTED),
                cmds_drained: raw.counter(CHANNEL_CMDS_DRAINED),
                inflight: raw.gauge(CHANNEL_INFLIGHT),
            },
            decoder: DecoderMetrics {
                batches: raw.counter(DECODER_BATCHES),
                items_in: raw.counter(DECODER_ITEMS_IN),
                items_ok: raw.counter(DECODER_ITEMS_OK),
                items_err: raw.counter(DECODER_ITEMS_ERR),
                bytes_written: raw.counter(DECODER_BYTES_WRITTEN),
                lane_service: raw.histogram(DECODER_LANE_SERVICE).cloned(),
            },
            pool: PoolMetrics {
                leases: raw.counter(POOL_LEASES),
                recycles: raw.counter(POOL_RECYCLES),
                starvations: raw.counter(POOL_STARVATIONS),
                blocked_nanos: raw.counter(POOL_BLOCKED_NANOS),
                free_units: raw.gauge(POOL_FREE_UNITS),
            },
            dispatcher: DispatcherMetrics {
                batches: raw.counter(DISPATCHER_BATCHES),
                bytes_copied: raw.counter(DISPATCHER_BYTES_COPIED),
                copy_errors: raw.counter(DISPATCHER_COPY_ERRORS),
                cpu_busy_nanos: raw.counter(DISPATCHER_CPU_BUSY_NANOS),
                copy_latency: raw.histogram(DISPATCHER_COPY_LATENCY).cloned(),
            },
            engines: EngineMetrics {
                batches: raw.counter(ENGINE_BATCHES),
                batch_wait: raw.histogram(ENGINE_BATCH_WAIT).cloned(),
                compute: raw.histogram(ENGINE_COMPUTE).cloned(),
            },
            router_delivered: raw.counter(ROUTER_DELIVERED),
            codec: CodecMetrics {
                huffman_nanos: raw.counter(CODEC_HUFFMAN_NANOS),
                idct_nanos: raw.counter(CODEC_IDCT_NANOS),
                color_nanos: raw.counter(CODEC_COLOR_NANOS),
                resize_nanos: raw.counter(CODEC_RESIZE_NANOS),
            },
            serving,
            cache,
            cluster,
            chaos,
            queues,
            stalls,
            raw,
        }
    }

    /// Batches that entered the pipeline (reader submissions).
    pub fn batches_in(&self) -> u64 {
        self.reader.batches_submitted
    }

    /// Batches that left the reader stage intact.
    pub fn batches_out(&self) -> u64 {
        self.reader.batches_completed
    }

    /// Batch-level errors.
    pub fn batch_errors(&self) -> u64 {
        self.reader.batch_errors
    }

    /// Conservation checks that must hold once the pipeline is quiescent.
    /// Returns human-readable violations (empty = healthy).
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.batches_in() != self.batches_out() + self.batch_errors() {
            v.push(format!(
                "batch conservation: submitted {} != completed {} + errors {}",
                self.batches_in(),
                self.batches_out(),
                self.batch_errors()
            ));
        }
        if self.decoder.items_in != self.decoder.items_ok + self.decoder.items_err {
            v.push(format!(
                "item conservation: in {} != ok {} + err {}",
                self.decoder.items_in, self.decoder.items_ok, self.decoder.items_err
            ));
        }
        if self.channel.cmds_submitted
            != self.channel.cmds_drained + self.channel.inflight.max(0) as u64
        {
            v.push(format!(
                "channel conservation: submitted {} != drained {} + inflight {}",
                self.channel.cmds_submitted, self.channel.cmds_drained, self.channel.inflight
            ));
        }
        for q in &self.queues {
            if q.pushed != q.popped + q.depth.max(0) as u64 {
                v.push(format!(
                    "queue {} conservation: pushed {} != popped {} + depth {}",
                    q.name, q.pushed, q.popped, q.depth
                ));
            }
        }
        if !self.serving.is_empty() {
            let s = &self.serving;
            if s.offered != s.admitted + s.rejected {
                v.push(format!(
                    "serving admission conservation: offered {} != admitted {} + rejected {}",
                    s.offered, s.admitted, s.rejected
                ));
            }
            if s.admitted != s.completed + s.shed + s.inflight.max(0) as u64 {
                v.push(format!(
                    "serving conservation: admitted {} != completed {} + shed {} + inflight {}",
                    s.admitted, s.completed, s.shed, s.inflight
                ));
            }
            if s.good > s.completed {
                v.push(format!(
                    "serving goodput exceeds completions: good {} > completed {}",
                    s.good, s.completed
                ));
            }
        }
        if !self.cache.is_empty() {
            let c = &self.cache;
            if c.hits + c.misses != c.lookups {
                v.push(format!(
                    "cache lookup conservation: hits {} + misses {} != lookups {}",
                    c.hits, c.misses, c.lookups
                ));
            }
            if c.resident_bytes_high_water > c.capacity_bytes {
                v.push(format!(
                    "cache capacity exceeded: resident high-water {} > capacity {}",
                    c.resident_bytes_high_water, c.capacity_bytes
                ));
            }
            if c.inserted_bytes != c.resident_bytes.max(0) as u64 + c.evicted_bytes {
                v.push(format!(
                    "cache byte conservation: inserted {} != resident {} + evicted {}",
                    c.inserted_bytes, c.resident_bytes, c.evicted_bytes
                ));
            }
            if c.insertions != c.resident_entries.max(0) as u64 + c.evictions {
                v.push(format!(
                    "cache entry conservation: insertions {} != resident {} + evictions {}",
                    c.insertions, c.resident_entries, c.evictions
                ));
            }
            if !c.tenants.is_empty() {
                let tenant_resident: i64 = c.tenants.iter().map(|t| t.resident_bytes).sum();
                if tenant_resident != c.resident_bytes {
                    v.push(format!(
                        "cache partition conservation: tenant residency sum {} != resident {}",
                        tenant_resident, c.resident_bytes
                    ));
                }
            }
        }
        if !self.cluster.is_empty() {
            let c = &self.cluster;
            if c.requests + c.hedge_dups
                != c.served + c.replayed + c.shed + c.inflight.max(0) as u64
            {
                v.push(format!(
                    "cluster request conservation: requests {} + hedge_dups {} != served {} + replayed {} + shed {} + inflight {}",
                    c.requests, c.hedge_dups, c.served, c.replayed, c.shed, c.inflight
                ));
            }
            if c.dispatches != c.admitted + c.hedges + c.replays {
                v.push(format!(
                    "cluster dispatch composition: dispatches {} != admitted {} + hedges {} + replays {}",
                    c.dispatches, c.admitted, c.hedges, c.replays
                ));
            }
            if c.dispatches != c.completions + c.lost + c.node_queued.max(0) as u64 {
                v.push(format!(
                    "cluster copy conservation: dispatches {} != completions {} + lost {} + node_queued {}",
                    c.dispatches, c.completions, c.lost, c.node_queued
                ));
            }
            if c.completions != c.served + c.replayed {
                v.push(format!(
                    "cluster completion split: completions {} != served {} + replayed {}",
                    c.completions, c.served, c.replayed
                ));
            }
            if c.lost != c.replays + c.lost_unreplayed {
                v.push(format!(
                    "cluster loss accounting: lost {} != replays {} + unreplayed {}",
                    c.lost, c.replays, c.lost_unreplayed
                ));
            }
            if c.quota_shed > c.shed || c.hedge_wins > c.hedges || c.hedge_dups > c.completions {
                v.push(format!(
                    "cluster hedge/quota bounds: quota_shed {} ≤ shed {}, hedge_wins {} ≤ hedges {}, hedge_dups {} ≤ completions {} must all hold",
                    c.quota_shed, c.shed, c.hedge_wins, c.hedges, c.hedge_dups, c.completions
                ));
            }
            if !c.tenants.is_empty() {
                let req_sum: u64 = c.tenants.iter().map(|t| t.requests).sum();
                if req_sum != c.requests {
                    v.push(format!(
                        "cluster tenant conservation: tenant request sum {} != requests {}",
                        req_sum, c.requests
                    ));
                }
                for t in &c.tenants {
                    if t.good > t.completed || t.completed + t.shed > t.requests {
                        v.push(format!(
                            "cluster tenant {} accounting: completed {} + shed {} ≤ requests {} and good {} ≤ completed must hold",
                            t.tenant, t.completed, t.shed, t.requests, t.good
                        ));
                    }
                }
            }
        }
        if !self.chaos.is_empty() {
            let c = &self.chaos;
            if c.retry_retries + c.retry_giveups > c.retry_attempts {
                v.push(format!(
                    "retry conservation: retries {} + giveups {} > attempts {}",
                    c.retry_retries, c.retry_giveups, c.retry_attempts
                ));
            }
            if c.cmd_resubmits > c.cmd_timeouts {
                v.push(format!(
                    "reader resubmits exceed timeouts: {} > {}",
                    c.cmd_resubmits, c.cmd_timeouts
                ));
            }
            let per_stage = c.injected_storage
                + c.injected_net
                + c.injected_fpga
                + c.injected_pool
                + c.injected_gpu;
            if per_stage != c.faults_total {
                v.push(format!(
                    "chaos conservation: per-stage sum {} != faults_total {}",
                    per_stage, c.faults_total
                ));
            }
        }
        v
    }

    /// Structured JSON form (stage sections + stalls + raw metrics).
    pub fn to_json(&self) -> Json {
        fn hist(h: &Option<HistogramSnapshot>) -> Json {
            match h {
                None => Json::Null,
                Some(h) => Json::object(vec![
                    ("count", Json::from(h.count)),
                    ("mean_ns", Json::from(h.mean())),
                    ("p50_ns", Json::from(h.quantile(0.5))),
                    ("p99_ns", Json::from(h.quantile(0.99))),
                    ("max_ns", Json::from(h.max)),
                ]),
            }
        }
        Json::object(vec![
            (
                "reader",
                Json::object(vec![
                    ("batches_submitted", self.reader.batches_submitted.into()),
                    ("batches_completed", self.reader.batches_completed.into()),
                    ("batch_errors", self.reader.batch_errors.into()),
                    ("item_errors", self.reader.item_errors.into()),
                    ("cpu_busy_nanos", self.reader.cpu_busy_nanos.into()),
                    ("submit_latency", hist(&self.reader.submit_latency)),
                    ("inflight", self.reader.inflight.into()),
                ]),
            ),
            (
                "channel",
                Json::object(vec![
                    ("cmds_submitted", self.channel.cmds_submitted.into()),
                    ("cmds_drained", self.channel.cmds_drained.into()),
                    ("inflight", self.channel.inflight.into()),
                ]),
            ),
            (
                "decoder",
                Json::object(vec![
                    ("batches", self.decoder.batches.into()),
                    ("items_in", self.decoder.items_in.into()),
                    ("items_ok", self.decoder.items_ok.into()),
                    ("items_err", self.decoder.items_err.into()),
                    ("bytes_written", self.decoder.bytes_written.into()),
                    ("lane_service", hist(&self.decoder.lane_service)),
                ]),
            ),
            (
                "pool",
                Json::object(vec![
                    ("leases", self.pool.leases.into()),
                    ("recycles", self.pool.recycles.into()),
                    ("starvations", self.pool.starvations.into()),
                    ("blocked_nanos", self.pool.blocked_nanos.into()),
                    ("free_units", self.pool.free_units.into()),
                ]),
            ),
            (
                "dispatcher",
                Json::object(vec![
                    ("batches", self.dispatcher.batches.into()),
                    ("bytes_copied", self.dispatcher.bytes_copied.into()),
                    ("copy_errors", self.dispatcher.copy_errors.into()),
                    ("cpu_busy_nanos", self.dispatcher.cpu_busy_nanos.into()),
                    ("copy_latency", hist(&self.dispatcher.copy_latency)),
                ]),
            ),
            (
                "engines",
                Json::object(vec![
                    ("batches", self.engines.batches.into()),
                    ("batch_wait", hist(&self.engines.batch_wait)),
                    ("compute", hist(&self.engines.compute)),
                ]),
            ),
            ("router_delivered", self.router_delivered.into()),
            (
                "serving",
                Json::object(vec![
                    ("offered", self.serving.offered.into()),
                    ("admitted", self.serving.admitted.into()),
                    ("rejected", self.serving.rejected.into()),
                    ("shed", self.serving.shed.into()),
                    ("completed", self.serving.completed.into()),
                    ("good", self.serving.good.into()),
                    ("inflight", self.serving.inflight.into()),
                    ("queue_depth", self.serving.queue_depth.into()),
                    (
                        "queue_depth_high_water",
                        self.serving.queue_depth_high_water.into(),
                    ),
                    ("batches", self.serving.batches.into()),
                    (
                        "batches_closed_full",
                        self.serving.batches_closed_full.into(),
                    ),
                    (
                        "batches_closed_linger",
                        self.serving.batches_closed_linger.into(),
                    ),
                    ("batch_size", hist(&self.serving.batch_size)),
                    ("queue_delay", hist(&self.serving.queue_delay)),
                    (
                        "tenants",
                        Json::Array(
                            self.serving
                                .tenants
                                .iter()
                                .map(|t| {
                                    Json::object(vec![
                                        ("tenant", t.tenant.as_str().into()),
                                        ("admitted", t.admitted.into()),
                                        ("completed", t.completed.into()),
                                        ("shed", t.shed.into()),
                                        ("goodput", t.goodput.into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "cache",
                Json::object(vec![
                    ("lookups", self.cache.lookups.into()),
                    ("hits", self.cache.hits.into()),
                    ("misses", self.cache.misses.into()),
                    ("insertions", self.cache.insertions.into()),
                    ("inserted_bytes", self.cache.inserted_bytes.into()),
                    ("rejected", self.cache.rejected.into()),
                    ("evictions", self.cache.evictions.into()),
                    ("evicted_bytes", self.cache.evicted_bytes.into()),
                    ("quarantined", self.cache.quarantined.into()),
                    ("bypass_batches", self.cache.bypass_batches.into()),
                    ("resident_bytes", self.cache.resident_bytes.into()),
                    (
                        "resident_bytes_high_water",
                        self.cache.resident_bytes_high_water.into(),
                    ),
                    ("resident_entries", self.cache.resident_entries.into()),
                    ("capacity_bytes", self.cache.capacity_bytes.into()),
                    (
                        "tenants",
                        Json::Array(
                            self.cache
                                .tenants
                                .iter()
                                .map(|t| {
                                    Json::object(vec![
                                        ("tenant", t.tenant.as_str().into()),
                                        ("hits", t.hits.into()),
                                        ("misses", t.misses.into()),
                                        ("evictions", t.evictions.into()),
                                        ("resident_bytes", t.resident_bytes.into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "cluster",
                Json::object(vec![
                    ("requests", self.cluster.requests.into()),
                    ("admitted", self.cluster.admitted.into()),
                    ("shed", self.cluster.shed.into()),
                    ("quota_shed", self.cluster.quota_shed.into()),
                    ("dispatches", self.cluster.dispatches.into()),
                    ("hedges", self.cluster.hedges.into()),
                    ("hedge_wins", self.cluster.hedge_wins.into()),
                    ("hedge_dups", self.cluster.hedge_dups.into()),
                    ("replays", self.cluster.replays.into()),
                    ("completions", self.cluster.completions.into()),
                    ("served", self.cluster.served.into()),
                    ("replayed", self.cluster.replayed.into()),
                    ("good", self.cluster.good.into()),
                    ("lost", self.cluster.lost.into()),
                    ("lost_unreplayed", self.cluster.lost_unreplayed.into()),
                    ("kills", self.cluster.kills.into()),
                    ("rebalances", self.cluster.rebalances.into()),
                    ("inflight", self.cluster.inflight.into()),
                    ("node_queued", self.cluster.node_queued.into()),
                    ("nodes_alive", self.cluster.nodes_alive.into()),
                    ("latency", hist(&self.cluster.latency)),
                    (
                        "tenants",
                        Json::Array(
                            self.cluster
                                .tenants
                                .iter()
                                .map(|t| {
                                    Json::object(vec![
                                        ("tenant", t.tenant.as_str().into()),
                                        ("requests", t.requests.into()),
                                        ("completed", t.completed.into()),
                                        ("shed", t.shed.into()),
                                        ("good", t.good.into()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "chaos",
                Json::object(vec![
                    ("faults_total", self.chaos.faults_total.into()),
                    ("injected_storage", self.chaos.injected_storage.into()),
                    ("injected_net", self.chaos.injected_net.into()),
                    ("injected_fpga", self.chaos.injected_fpga.into()),
                    ("injected_pool", self.chaos.injected_pool.into()),
                    ("injected_gpu", self.chaos.injected_gpu.into()),
                    ("failovers", self.chaos.failovers.into()),
                    ("retry_attempts", self.chaos.retry_attempts.into()),
                    ("retry_retries", self.chaos.retry_retries.into()),
                    ("retry_giveups", self.chaos.retry_giveups.into()),
                    ("retry_backoff_nanos", self.chaos.retry_backoff_nanos.into()),
                    ("cmd_timeouts", self.chaos.cmd_timeouts.into()),
                    ("cmd_resubmits", self.chaos.cmd_resubmits.into()),
                    ("late_completions", self.chaos.late_completions.into()),
                ]),
            ),
            (
                "queues",
                Json::Array(
                    self.queues
                        .iter()
                        .map(|q| {
                            Json::object(vec![
                                ("name", q.name.as_str().into()),
                                ("depth", q.depth.into()),
                                ("high_water", q.high_water.into()),
                                ("pushed", q.pushed.into()),
                                ("popped", q.popped.into()),
                                ("blocked_push_nanos", q.blocked_push_nanos.into()),
                                ("blocked_pop_nanos", q.blocked_pop_nanos.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "stalls",
                Json::Array(
                    self.stalls
                        .iter()
                        .map(|s| {
                            Json::object(vec![
                                ("stage", s.stage.as_str().into()),
                                ("idle_ms", Json::from(s.idle.as_millis() as u64)),
                                ("depth", s.depth.into()),
                                (
                                    "queues",
                                    Json::Array(
                                        s.queues
                                            .iter()
                                            .map(|q| {
                                                Json::object(vec![
                                                    ("stage", q.stage.as_str().into()),
                                                    (
                                                        "last_progress_ms",
                                                        Json::from(
                                                            q.last_progress.as_millis() as u64
                                                        ),
                                                    ),
                                                    ("depth", q.depth.into()),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("metrics", self.raw.to_json()),
        ])
    }

    /// Human-readable multi-line report.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        fn hist_line(h: &Option<HistogramSnapshot>) -> String {
            match h {
                None => "n=0".to_string(),
                Some(h) if h.count == 0 => "n=0".to_string(),
                Some(h) => format!(
                    "n={} mean={:.1}µs p50={:.1}µs p99={:.1}µs max={:.1}µs",
                    h.count,
                    h.mean() / 1e3,
                    h.quantile(0.5) as f64 / 1e3,
                    h.quantile(0.99) as f64 / 1e3,
                    h.max as f64 / 1e3
                ),
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "pipeline telemetry");
        let _ = writeln!(
            out,
            "  reader     submitted={} completed={} batch_errs={} item_errs={} inflight={} submit[{}]",
            self.reader.batches_submitted,
            self.reader.batches_completed,
            self.reader.batch_errors,
            self.reader.item_errors,
            self.reader.inflight,
            hist_line(&self.reader.submit_latency)
        );
        let _ = writeln!(
            out,
            "  channel    submitted={} drained={} inflight={}",
            self.channel.cmds_submitted, self.channel.cmds_drained, self.channel.inflight
        );
        let _ = writeln!(
            out,
            "  decoder    batches={} items in={} ok={} err={} bytes={} lane[{}]",
            self.decoder.batches,
            self.decoder.items_in,
            self.decoder.items_ok,
            self.decoder.items_err,
            self.decoder.bytes_written,
            hist_line(&self.decoder.lane_service)
        );
        let _ = writeln!(
            out,
            "  pool       leases={} recycles={} starvations={} blocked={:.1}ms free={}",
            self.pool.leases,
            self.pool.recycles,
            self.pool.starvations,
            self.pool.blocked_nanos as f64 / 1e6,
            self.pool.free_units
        );
        let _ = writeln!(
            out,
            "  dispatcher batches={} bytes={} errors={} copy[{}]",
            self.dispatcher.batches,
            self.dispatcher.bytes_copied,
            self.dispatcher.copy_errors,
            hist_line(&self.dispatcher.copy_latency)
        );
        let _ = writeln!(
            out,
            "  engines    batches={} wait[{}] compute[{}]",
            self.engines.batches,
            hist_line(&self.engines.batch_wait),
            hist_line(&self.engines.compute)
        );
        let _ = writeln!(out, "  router     delivered={}", self.router_delivered);
        if !self.serving.is_empty() {
            let s = &self.serving;
            let _ = writeln!(
                out,
                "  serving    offered={} admitted={} rejected={} shed={} completed={} good={} inflight={}",
                s.offered, s.admitted, s.rejected, s.shed, s.completed, s.good, s.inflight
            );
            let _ = writeln!(
                out,
                "  serving    queue depth={} (hw {}) batches={} (full {} / linger {}) delay[{}]",
                s.queue_depth,
                s.queue_depth_high_water,
                s.batches,
                s.batches_closed_full,
                s.batches_closed_linger,
                hist_line(&s.queue_delay)
            );
            for t in &s.tenants {
                let _ = writeln!(
                    out,
                    "  tenant {:<8} admitted={} completed={} shed={} goodput={}",
                    t.tenant, t.admitted, t.completed, t.shed, t.goodput
                );
            }
        }
        if !self.cache.is_empty() {
            let c = &self.cache;
            let _ = writeln!(
                out,
                "  cache      lookups={} hits={} misses={} bypass_batches={} quarantined={}",
                c.lookups, c.hits, c.misses, c.bypass_batches, c.quarantined
            );
            let _ = writeln!(
                out,
                "  cache      resident={}B (hw {}B / cap {}B) entries={} inserted={} evicted={} rejected={}",
                c.resident_bytes,
                c.resident_bytes_high_water,
                c.capacity_bytes,
                c.resident_entries,
                c.insertions,
                c.evictions,
                c.rejected
            );
            for t in &c.tenants {
                let _ = writeln!(
                    out,
                    "  cache tnt {:<8} hits={} misses={} evictions={} resident={}B",
                    t.tenant, t.hits, t.misses, t.evictions, t.resident_bytes
                );
            }
        }
        if !self.cluster.is_empty() {
            let c = &self.cluster;
            let _ = writeln!(
                out,
                "  cluster    requests={} admitted={} shed={} (quota {}) served={} replayed={} good={} inflight={}",
                c.requests, c.admitted, c.shed, c.quota_shed, c.served, c.replayed, c.good, c.inflight
            );
            let _ = writeln!(
                out,
                "  cluster    dispatches={} hedges={} (wins {} / dups {}) replays={} lost={} kills={} rebalances={} alive={} latency[{}]",
                c.dispatches,
                c.hedges,
                c.hedge_wins,
                c.hedge_dups,
                c.replays,
                c.lost,
                c.kills,
                c.rebalances,
                c.nodes_alive,
                hist_line(&c.latency)
            );
            for t in &c.tenants {
                let _ = writeln!(
                    out,
                    "  cluster tnt {:<7} requests={} completed={} shed={} good={}",
                    t.tenant, t.requests, t.completed, t.shed, t.good
                );
            }
        }
        if !self.chaos.is_empty() {
            let c = &self.chaos;
            let _ = writeln!(
                out,
                "  chaos      faults={} (storage {} / net {} / fpga {} / pool {} / gpu {}) failovers={}",
                c.faults_total,
                c.injected_storage,
                c.injected_net,
                c.injected_fpga,
                c.injected_pool,
                c.injected_gpu,
                c.failovers
            );
            let _ = writeln!(
                out,
                "  retry      attempts={} retries={} giveups={} backoff={:.1}ms timeouts={} resubmits={} late={}",
                c.retry_attempts,
                c.retry_retries,
                c.retry_giveups,
                c.retry_backoff_nanos as f64 / 1e6,
                c.cmd_timeouts,
                c.cmd_resubmits,
                c.late_completions
            );
        }
        for q in &self.queues {
            let _ = writeln!(
                out,
                "  queue {:<12} depth={} (hw {}) pushed={} popped={} blocked push={:.1}ms pop={:.1}ms",
                q.name,
                q.depth,
                q.high_water,
                q.pushed,
                q.popped,
                q.blocked_push_nanos as f64 / 1e6,
                q.blocked_pop_nanos as f64 / 1e6
            );
        }
        if self.stalls.is_empty() {
            let _ = writeln!(out, "  watchdog   quiet");
        } else {
            for s in &self.stalls {
                let _ = writeln!(
                    out,
                    "  watchdog   STALL {} idle={:?} depth={}",
                    s.stage, s.idle, s.depth
                );
                for q in &s.queues {
                    let _ = writeln!(
                        out,
                        "    at trip: {:<12} last_progress={:?} depth={}",
                        q.stage, q.last_progress, q.depth
                    );
                }
            }
        }
        out
    }
}

fn collect_serving(raw: &RegistrySnapshot) -> ServingMetrics {
    use names::*;
    let mut tenant_ids: Vec<String> = raw
        .metrics
        .keys()
        .filter_map(|k| {
            let rest = k.strip_prefix(SERVING_TENANT_PREFIX)?;
            let (id, field) = rest.rsplit_once('.')?;
            (field == "admitted").then(|| id.to_string())
        })
        .collect();
    tenant_ids.dedup();
    let tenants = tenant_ids
        .into_iter()
        .map(|id| {
            let key = |field: &str| format!("{SERVING_TENANT_PREFIX}{id}.{field}");
            TenantServingMetrics {
                admitted: raw.counter(&key("admitted")),
                completed: raw.counter(&key("completed")),
                shed: raw.counter(&key("shed")),
                goodput: raw.gauge(&key("goodput")),
                tenant: id,
            }
        })
        .collect();
    ServingMetrics {
        offered: raw.counter(SERVING_OFFERED),
        admitted: raw.counter(SERVING_ADMITTED),
        rejected: raw.counter(SERVING_REJECTED),
        shed: raw.counter(SERVING_SHED),
        completed: raw.counter(SERVING_COMPLETED),
        good: raw.counter(SERVING_GOOD),
        inflight: raw.gauge(SERVING_INFLIGHT),
        queue_depth: raw.gauge(SERVING_QUEUE_DEPTH),
        queue_depth_high_water: raw.gauge_high_water(SERVING_QUEUE_DEPTH),
        batches: raw.counter(SERVING_BATCHES),
        batches_closed_full: raw.counter(SERVING_BATCH_FULL),
        batches_closed_linger: raw.counter(SERVING_BATCH_LINGER),
        batch_size: raw.histogram(SERVING_BATCH_SIZE).cloned(),
        queue_delay: raw.histogram(SERVING_QUEUE_DELAY).cloned(),
        tenants,
    }
}

fn collect_cache(raw: &RegistrySnapshot) -> CacheMetrics {
    use names::*;
    let mut tenant_ids: Vec<String> = raw
        .metrics
        .keys()
        .filter_map(|k| {
            let rest = k.strip_prefix(CACHE_TENANT_PREFIX)?;
            let (id, field) = rest.rsplit_once('.')?;
            (field == "resident_bytes").then(|| id.to_string())
        })
        .collect();
    tenant_ids.dedup();
    let tenants = tenant_ids
        .into_iter()
        .map(|id| {
            let key = |field: &str| format!("{CACHE_TENANT_PREFIX}{id}.{field}");
            TenantCacheMetrics {
                hits: raw.counter(&key("hits")),
                misses: raw.counter(&key("misses")),
                evictions: raw.counter(&key("evictions")),
                resident_bytes: raw.gauge(&key("resident_bytes")),
                tenant: id,
            }
        })
        .collect();
    CacheMetrics {
        lookups: raw.counter(CACHE_LOOKUPS),
        hits: raw.counter(CACHE_HITS),
        misses: raw.counter(CACHE_MISSES),
        insertions: raw.counter(CACHE_INSERTIONS),
        inserted_bytes: raw.counter(CACHE_INSERTED_BYTES),
        rejected: raw.counter(CACHE_REJECTED),
        evictions: raw.counter(CACHE_EVICTIONS),
        evicted_bytes: raw.counter(CACHE_EVICTED_BYTES),
        quarantined: raw.counter(CACHE_QUARANTINED),
        bypass_batches: raw.counter(CACHE_BYPASS_BATCHES),
        resident_bytes: raw.gauge(CACHE_RESIDENT_BYTES),
        resident_bytes_high_water: raw.gauge_high_water(CACHE_RESIDENT_BYTES),
        resident_entries: raw.gauge(CACHE_RESIDENT_ENTRIES),
        capacity_bytes: raw.gauge(CACHE_CAPACITY_BYTES),
        tenants,
    }
}

fn collect_cluster(raw: &RegistrySnapshot) -> ClusterMetrics {
    use names::*;
    let mut tenant_ids: Vec<String> = raw
        .metrics
        .keys()
        .filter_map(|k| {
            let rest = k.strip_prefix(CLUSTER_TENANT_PREFIX)?;
            let (id, field) = rest.rsplit_once('.')?;
            (field == "requests").then(|| id.to_string())
        })
        .collect();
    tenant_ids.dedup();
    let tenants = tenant_ids
        .into_iter()
        .map(|id| {
            let key = |field: &str| format!("{CLUSTER_TENANT_PREFIX}{id}.{field}");
            TenantClusterMetrics {
                requests: raw.counter(&key("requests")),
                completed: raw.counter(&key("completed")),
                shed: raw.counter(&key("shed")),
                good: raw.counter(&key("good")),
                tenant: id,
            }
        })
        .collect();
    ClusterMetrics {
        requests: raw.counter(CLUSTER_REQUESTS),
        admitted: raw.counter(CLUSTER_ADMITTED),
        shed: raw.counter(CLUSTER_SHED),
        quota_shed: raw.counter(CLUSTER_QUOTA_SHED),
        dispatches: raw.counter(CLUSTER_DISPATCHES),
        hedges: raw.counter(CLUSTER_HEDGES),
        hedge_wins: raw.counter(CLUSTER_HEDGE_WINS),
        hedge_dups: raw.counter(CLUSTER_HEDGE_DUPS),
        replays: raw.counter(CLUSTER_REPLAYS),
        completions: raw.counter(CLUSTER_COMPLETIONS),
        served: raw.counter(CLUSTER_SERVED),
        replayed: raw.counter(CLUSTER_REPLAYED),
        good: raw.counter(CLUSTER_GOOD),
        lost: raw.counter(CLUSTER_LOST),
        lost_unreplayed: raw.counter(CLUSTER_LOST_UNREPLAYED),
        kills: raw.counter(CLUSTER_KILLS),
        rebalances: raw.counter(CLUSTER_REBALANCES),
        inflight: raw.gauge(CLUSTER_INFLIGHT),
        node_queued: raw.gauge(CLUSTER_NODE_QUEUED),
        nodes_alive: raw.gauge(CLUSTER_NODES_ALIVE),
        latency: raw.histogram(CLUSTER_LATENCY).cloned(),
        tenants,
    }
}

fn collect_queues(raw: &RegistrySnapshot) -> Vec<QueueMetrics> {
    let mut names: Vec<String> = raw
        .metrics
        .keys()
        .filter_map(|k| {
            let rest = k.strip_prefix(names::QUEUE_PREFIX)?;
            let (name, field) = rest.rsplit_once('.')?;
            (field == "depth").then(|| name.to_string())
        })
        .collect();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let key = |field: &str| format!("{}{}.{}", names::QUEUE_PREFIX, name, field);
            QueueMetrics {
                depth: raw.gauge(&key("depth")),
                high_water: raw.gauge_high_water(&key("depth")),
                pushed: raw.counter(&key("pushed")),
                popped: raw.counter(&key("popped")),
                blocked_push_nanos: raw.counter(&key("blocked_push_nanos")),
                blocked_pop_nanos: raw.counter(&key("blocked_pop_nanos")),
                name,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_extracts_stage_views() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::READER_BATCHES_SUBMITTED).add(4);
        t.registry.counter(names::READER_BATCHES_COMPLETED).add(4);
        t.registry.counter(names::DECODER_ITEMS_IN).add(10);
        t.registry.counter(names::DECODER_ITEMS_OK).add(9);
        t.registry.counter(names::DECODER_ITEMS_ERR).add(1);
        t.registry
            .histogram(names::DECODER_LANE_SERVICE)
            .record(1500);
        t.registry.gauge("queue.slot0.depth").set(1);
        t.registry.counter("queue.slot0.pushed").add(3);
        t.registry.counter("queue.slot0.popped").add(2);
        let snap = t.pipeline_snapshot();
        assert_eq!(snap.batches_in(), 4);
        assert_eq!(snap.batches_out(), 4);
        assert_eq!(snap.decoder.items_ok, 9);
        assert_eq!(snap.decoder.lane_service.as_ref().unwrap().count, 1);
        assert_eq!(snap.queues.len(), 1);
        assert_eq!(snap.queues[0].name, "slot0");
        assert_eq!(snap.queues[0].pushed, 3);
        assert!(snap.invariant_violations().is_empty());
        assert!(snap.stalls.is_empty());
    }

    #[test]
    fn violations_detected() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::READER_BATCHES_SUBMITTED).add(5);
        t.registry.counter(names::READER_BATCHES_COMPLETED).add(3);
        let snap = t.pipeline_snapshot();
        let v = snap.invariant_violations();
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("batch conservation"));
    }

    #[test]
    fn serving_metrics_collected_and_conserved() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::SERVING_OFFERED).add(10);
        t.registry.counter(names::SERVING_ADMITTED).add(7);
        t.registry.counter(names::SERVING_REJECTED).add(3);
        t.registry.counter(names::SERVING_SHED).add(1);
        t.registry.counter(names::SERVING_COMPLETED).add(4);
        t.registry.counter(names::SERVING_GOOD).add(4);
        t.registry.gauge(names::SERVING_INFLIGHT).set(2);
        t.registry.gauge(names::SERVING_QUEUE_DEPTH).set(2);
        t.registry.counter("serving.tenant.0.admitted").add(7);
        t.registry.counter("serving.tenant.0.completed").add(4);
        t.registry.gauge("serving.tenant.0.goodput").set(4);
        let snap = t.pipeline_snapshot();
        assert_eq!(snap.serving.offered, 10);
        assert_eq!(snap.serving.admitted, 7);
        assert_eq!(snap.serving.inflight, 2);
        assert_eq!(snap.serving.tenants.len(), 1);
        assert_eq!(snap.serving.tenants[0].tenant, "0");
        assert_eq!(snap.serving.tenants[0].goodput, 4);
        assert!(
            snap.invariant_violations().is_empty(),
            "{:?}",
            snap.invariant_violations()
        );
        let text = snap.to_text();
        assert!(text.contains("serving    offered=10 admitted=7"));
        let j = snap.to_json();
        assert_eq!(j["serving"]["admitted"], 7u64);
        assert_eq!(j["serving"]["tenants"][0]["goodput"], 4u64);
    }

    #[test]
    fn serving_conservation_violations_detected() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::SERVING_OFFERED).add(5);
        t.registry.counter(names::SERVING_ADMITTED).add(5);
        // completed + shed + inflight = 3 != 5 admitted.
        t.registry.counter(names::SERVING_COMPLETED).add(3);
        let v = t.pipeline_snapshot().invariant_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("serving conservation"));
    }

    #[test]
    fn empty_serving_is_invisible() {
        let t = Telemetry::with_defaults();
        let snap = t.pipeline_snapshot();
        assert!(snap.serving.is_empty());
        assert!(!snap.to_text().contains("serving"));
        assert!(snap.invariant_violations().is_empty());
    }

    #[test]
    fn cache_metrics_collected_and_conserved() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CACHE_LOOKUPS).add(10);
        t.registry.counter(names::CACHE_HITS).add(6);
        t.registry.counter(names::CACHE_MISSES).add(4);
        t.registry.counter(names::CACHE_INSERTIONS).add(4);
        t.registry.counter(names::CACHE_INSERTED_BYTES).add(400);
        t.registry.counter(names::CACHE_EVICTIONS).add(1);
        t.registry.counter(names::CACHE_EVICTED_BYTES).add(100);
        t.registry.gauge(names::CACHE_RESIDENT_BYTES).set(300);
        t.registry.gauge(names::CACHE_RESIDENT_ENTRIES).set(3);
        t.registry.gauge(names::CACHE_CAPACITY_BYTES).set(1024);
        t.registry.counter("cache.tenant.0.hits").add(6);
        t.registry.gauge("cache.tenant.0.resident_bytes").set(300);
        let snap = t.pipeline_snapshot();
        assert_eq!(snap.cache.lookups, 10);
        assert_eq!(snap.cache.hits, 6);
        assert_eq!(snap.cache.resident_bytes, 300);
        assert_eq!(snap.cache.tenants.len(), 1);
        assert_eq!(snap.cache.tenants[0].hits, 6);
        assert!(
            snap.invariant_violations().is_empty(),
            "{:?}",
            snap.invariant_violations()
        );
        assert!(snap.to_text().contains("cache      lookups=10 hits=6"));
        assert_eq!(snap.to_json()["cache"]["hits"], 6u64);
        assert_eq!(
            snap.to_json()["cache"]["tenants"][0]["resident_bytes"],
            300u64
        );
        // Quiet registries hide the section entirely.
        let quiet = Telemetry::with_defaults().pipeline_snapshot();
        assert!(quiet.cache.is_empty());
        assert!(!quiet.to_text().contains("cache"));
    }

    #[test]
    fn cache_conservation_violations_detected() {
        // Lookup law: hits + misses must equal lookups.
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CACHE_LOOKUPS).add(5);
        t.registry.counter(names::CACHE_HITS).add(3);
        let v = t.pipeline_snapshot().invariant_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("cache lookup conservation"));

        // Capacity law: residency may never have exceeded capacity.
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CACHE_LOOKUPS).add(1);
        t.registry.counter(names::CACHE_MISSES).add(1);
        let g = t.registry.gauge(names::CACHE_RESIDENT_BYTES);
        g.set(2048); // high-water records the spike...
        g.set(100); // ...even after it settles back under capacity
        t.registry.gauge(names::CACHE_CAPACITY_BYTES).set(1024);
        t.registry.counter(names::CACHE_INSERTED_BYTES).add(100);
        t.registry.gauge(names::CACHE_RESIDENT_ENTRIES).set(0);
        let v = t.pipeline_snapshot().invariant_violations();
        assert!(
            v.iter().any(|m| m.contains("cache capacity exceeded")),
            "{v:?}"
        );

        // Byte law: every inserted byte is resident or was evicted.
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CACHE_INSERTIONS).add(2);
        t.registry.counter(names::CACHE_INSERTED_BYTES).add(200);
        t.registry.gauge(names::CACHE_RESIDENT_BYTES).set(100);
        t.registry.gauge(names::CACHE_RESIDENT_ENTRIES).set(2);
        t.registry.gauge(names::CACHE_CAPACITY_BYTES).set(1024);
        let v = t.pipeline_snapshot().invariant_violations();
        assert!(
            v.iter().any(|m| m.contains("cache byte conservation")),
            "{v:?}"
        );
    }

    #[test]
    fn cluster_metrics_collected_and_conserved() {
        let t = Telemetry::with_defaults();
        // 10 requests: 7 plain serves, 1 hedged (primary wins, hedge
        // dups), 1 killed-and-replayed, 1 quota-shed.
        t.registry.counter(names::CLUSTER_REQUESTS).add(10);
        t.registry.counter(names::CLUSTER_ADMITTED).add(9);
        t.registry.counter(names::CLUSTER_SHED).add(1);
        t.registry.counter(names::CLUSTER_QUOTA_SHED).add(1);
        t.registry.counter(names::CLUSTER_DISPATCHES).add(11); // 9 + 1 hedge + 1 replay
        t.registry.counter(names::CLUSTER_HEDGES).add(1);
        t.registry.counter(names::CLUSTER_HEDGE_DUPS).add(1);
        t.registry.counter(names::CLUSTER_REPLAYS).add(1);
        t.registry.counter(names::CLUSTER_COMPLETIONS).add(10);
        t.registry.counter(names::CLUSTER_SERVED).add(9); // 8 wins + 1 dup
        t.registry.counter(names::CLUSTER_REPLAYED).add(1);
        t.registry.counter(names::CLUSTER_GOOD).add(8);
        t.registry.counter(names::CLUSTER_LOST).add(1);
        t.registry.counter(names::CLUSTER_KILLS).add(1);
        t.registry.counter(names::CLUSTER_REBALANCES).add(1);
        t.registry.gauge(names::CLUSTER_NODES_ALIVE).set(7);
        t.registry.histogram(names::CLUSTER_LATENCY).record(42_000);
        t.registry.counter("cluster.tenant.0.requests").add(10);
        t.registry.counter("cluster.tenant.0.completed").add(9);
        t.registry.counter("cluster.tenant.0.shed").add(1);
        t.registry.counter("cluster.tenant.0.good").add(8);
        let snap = t.pipeline_snapshot();
        assert_eq!(snap.cluster.requests, 10);
        assert_eq!(snap.cluster.hedge_dups, 1);
        assert_eq!(snap.cluster.nodes_alive, 7);
        assert_eq!(snap.cluster.tenants.len(), 1);
        assert_eq!(snap.cluster.tenants[0].good, 8);
        // The headline ISSUE law, in its unsigned arrangement.
        let c = &snap.cluster;
        assert_eq!(c.requests + c.hedge_dups, c.served + c.replayed + c.shed);
        assert!(
            snap.invariant_violations().is_empty(),
            "{:?}",
            snap.invariant_violations()
        );
        assert!(snap.to_text().contains("cluster    requests=10"));
        assert_eq!(snap.to_json()["cluster"]["replayed"], 1u64);
        assert_eq!(snap.to_json()["cluster"]["tenants"][0]["requests"], 10u64);
        // Quiet registries hide the section entirely.
        let quiet = Telemetry::with_defaults().pipeline_snapshot();
        assert!(quiet.cluster.is_empty());
        assert!(!quiet.to_text().contains("cluster"));
    }

    #[test]
    fn cluster_conservation_violations_detected() {
        // Headline law: a served completion with no matching request.
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CLUSTER_REQUESTS).add(2);
        t.registry.counter(names::CLUSTER_ADMITTED).add(2);
        t.registry.counter(names::CLUSTER_DISPATCHES).add(2);
        t.registry.counter(names::CLUSTER_COMPLETIONS).add(3);
        t.registry.counter(names::CLUSTER_SERVED).add(3);
        let v = t.pipeline_snapshot().invariant_violations();
        assert!(
            v.iter().any(|m| m.contains("cluster request conservation")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|m| m.contains("cluster copy conservation")),
            "{v:?}"
        );

        // Loss law: a lost copy neither replayed nor written off.
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CLUSTER_REQUESTS).add(1);
        t.registry.counter(names::CLUSTER_ADMITTED).add(1);
        t.registry.counter(names::CLUSTER_DISPATCHES).add(1);
        t.registry.counter(names::CLUSTER_LOST).add(1);
        t.registry.counter(names::CLUSTER_SHED).add(1);
        let v = t.pipeline_snapshot().invariant_violations();
        assert!(
            v.iter().any(|m| m.contains("cluster loss accounting")),
            "{v:?}"
        );
    }

    #[test]
    fn chaos_metrics_collected_and_checked() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CHAOS_FAULTS_TOTAL).add(5);
        t.registry.counter(names::CHAOS_INJECTED_STORAGE).add(3);
        t.registry.counter(names::CHAOS_INJECTED_FPGA).add(2);
        t.registry.counter(names::CHAOS_FAILOVER_TOTAL).add(1);
        t.registry.counter(names::RETRY_ATTEMPTS).add(6);
        t.registry.counter(names::RETRY_RETRIES).add(2);
        t.registry.counter(names::RETRY_GIVEUPS).add(1);
        let snap = t.pipeline_snapshot();
        assert_eq!(snap.chaos.faults_total, 5);
        assert_eq!(snap.chaos.injected_storage, 3);
        assert_eq!(snap.chaos.failovers, 1);
        assert!(
            snap.invariant_violations().is_empty(),
            "{:?}",
            snap.invariant_violations()
        );
        assert!(snap.to_text().contains("chaos      faults=5"));
        assert_eq!(snap.to_json()["chaos"]["failovers"], 1u64);
        // Quiet registries hide the section entirely.
        let quiet = Telemetry::with_defaults().pipeline_snapshot();
        assert!(quiet.chaos.is_empty());
        assert!(!quiet.to_text().contains("chaos"));
    }

    #[test]
    fn chaos_conservation_violations_detected() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::CHAOS_FAULTS_TOTAL).add(4);
        t.registry.counter(names::CHAOS_INJECTED_NET).add(1);
        let v = t.pipeline_snapshot().invariant_violations();
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("chaos conservation"));
    }

    #[test]
    fn json_and_text_render() {
        let t = Telemetry::with_defaults();
        t.registry.counter(names::DISPATCHER_BYTES_COPIED).add(1024);
        let snap = t.pipeline_snapshot();
        let j = snap.to_json();
        assert_eq!(j["dispatcher"]["bytes_copied"], 1024u64);
        assert_eq!(j["stalls"], Json::Array(vec![]));
        let text = snap.to_text();
        assert!(text.contains("dispatcher batches=0 bytes=1024"));
        assert!(text.contains("watchdog   quiet"));
    }
}

//! Dependency-free JSON value: build, index, compare, and render (compact
//! or pretty). This is the serialization substrate for telemetry snapshots
//! and the figure reports — no external serde needed.

use std::fmt;
use std::ops::Index;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (rendered losslessly for integer-valued floats).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (insertion order preserved).
    pub fn object(pairs: Vec<(&str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object (`None` on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by position (`None` out of bounds or non-array).
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Array(items) => items.get(idx),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact one-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented multi-line rendering (2-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Object(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d)
                })
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = fmt::Write::write_fmt(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

impl Index<&str> for Json {
    type Output = Json;

    fn index(&self, key: &str) -> &Json {
        static NULL: Json = Json::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Json {
    type Output = Json;

    fn index(&self, idx: usize) -> &Json {
        static NULL: Json = Json::Null;
        self.at(idx).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Json::Str(s) if s == other)
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Json::Str(s) if s == other)
    }
}

impl PartialEq<f64> for Json {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Json::Num(n) if n == other)
    }
}

impl PartialEq<u64> for Json {
    fn eq(&self, other: &u64) -> bool {
        matches!(self, Json::Num(n) if *n == *other as f64)
    }
}

impl PartialEq<i32> for Json {
    fn eq(&self, other: &i32) -> bool {
        matches!(self, Json::Num(n) if *n == f64::from(*other))
    }
}

impl PartialEq<usize> for Json {
    fn eq(&self, other: &usize) -> bool {
        matches!(self, Json::Num(n) if *n == *other as f64)
    }
}

impl PartialEq<bool> for Json {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Json::Bool(b) if b == other)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(f64::from(n))
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Json> + Clone> From<&[T]> for Json {
    fn from(items: &[T]) -> Json {
        Json::Array(items.iter().cloned().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let j = Json::object(vec![
            ("id", "Fig 1".into()),
            ("n", 3u64.into()),
            (
                "rows",
                Json::Array(vec![Json::from(1u64), Json::from(2u64)]),
            ),
        ]);
        assert_eq!(
            j.to_string_compact(),
            r#"{"id":"Fig 1","n":3,"rows":[1,2]}"#
        );
        let pretty = j.to_string_pretty();
        assert!(pretty.contains("\n  \"id\": \"Fig 1\""));
    }

    #[test]
    fn indexing_and_comparisons() {
        let j = Json::object(vec![
            ("id", "Fig 1".into()),
            (
                "rows",
                Json::Array(vec![Json::object(vec![(
                    "cells",
                    Json::Array(vec!["a".into(), 2.5f64.into()]),
                )])]),
            ),
        ]);
        assert_eq!(j["id"], "Fig 1");
        assert_eq!(j["rows"][0]["cells"][0], "a");
        assert_eq!(j["rows"][0]["cells"][1], 2.5f64);
        assert_eq!(j["missing"], Json::Null);
        assert_eq!(j["rows"][99], Json::Null);
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".to_string());
        assert_eq!(j.to_string_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn integer_valued_floats_render_without_point() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(3.25).to_string_compact(), "3.25");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }
}

//! # dlb-telemetry
//!
//! Pipeline-wide observability for the DLBooster reproduction, with zero
//! external dependencies:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — lock-free recording
//!   primitives with mergeable snapshots ([`HistogramSnapshot`],
//!   [`RegistrySnapshot`]);
//! * [`Registry`] — get-or-create named metrics behind one handle;
//! * [`Watchdog`] — flags stage queues that hold work but stop moving;
//! * [`PipelineSnapshot`] — the typed six-stage view (reader, channel,
//!   decoder, pool, dispatcher, engines) with conservation invariants and
//!   text/JSON rendering;
//! * [`Json`] — a dependency-free JSON value used for every structured
//!   report in the workspace;
//! * [`prometheus`] — text-exposition rendering of a [`RegistrySnapshot`]
//!   for scrape-based collection, next to the JSON export.
//!
//! Stage crates record through `Arc` handles obtained once at
//! construction; the hot path is a relaxed atomic op. The [`Telemetry`]
//! bundle (registry + watchdog) is created by the Booster and threaded
//! through the stages it builds.

#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod pipeline;
pub mod prometheus;
pub mod registry;
pub mod watchdog;

pub use json::Json;
pub use metrics::{default_latency_bounds, Counter, Gauge, Histogram, HistogramSnapshot};
pub use pipeline::{
    names, ChannelMetrics, ChaosMetrics, DecoderMetrics, DispatcherMetrics, EngineMetrics,
    PipelineSnapshot, PoolMetrics, QueueMetrics, ReaderMetrics, ServingMetrics, Telemetry,
    TenantServingMetrics,
};
pub use registry::{MetricValue, Registry, RegistrySnapshot};
pub use watchdog::{Heartbeat, QueueProgress, StallReport, Watchdog};

//! Lock-free metric primitives: [`Counter`], [`Gauge`], and fixed-bucket
//! [`Histogram`], each with a cheap mergeable snapshot.
//!
//! Recording is wait-free (relaxed atomics on the hot path); snapshots are
//! point-in-time copies that merge associatively, so per-thread or
//! per-stage snapshots can be folded in any grouping and produce the same
//! totals — the property the snapshot-merge tests pin down.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, inflight ops) with a
/// high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    high_water: AtomicI64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
            high_water: AtomicI64::new(0),
        }
    }

    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjusts the level by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.high_water.fetch_max(new, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    pub fn high_water(&self) -> i64 {
        self.high_water.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds: exponential (×4) from 1 µs to
/// ~68 s, in nanoseconds. 14 buckets + overflow.
pub fn default_latency_bounds() -> Vec<u64> {
    let mut bounds = Vec::with_capacity(14);
    let mut b = 1_000u64; // 1 µs
    for _ in 0..14 {
        bounds.push(b);
        b = b.saturating_mul(4);
    }
    bounds
}

/// Fixed-bucket histogram with lock-free recording.
///
/// `bounds` are inclusive upper bounds per bucket; one implicit overflow
/// bucket catches everything above the last bound.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// Histogram over the given inclusive upper bounds (must be strictly
    /// ascending and non-empty).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must ascend"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Histogram with the default latency bucket layout.
    pub fn latency() -> Self {
        Self::new(default_latency_bounds())
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Mergeable copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds (buckets has one extra overflow slot).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `bounds`.
    pub fn empty(bounds: Vec<u64>) -> Self {
        let buckets = vec![0; bounds.len() + 1];
        Self {
            bounds,
            buckets,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds `other` into `self`. Panics when bucket layouts differ —
    /// merging is only defined across snapshots of the same shape.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(self.bounds, other.bounds, "histogram layouts differ");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// `q`-th observation (`q` in [0, 1]). Returns 0 when empty; the exact
    /// `max` for the overflow bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_level_and_high_water() {
        let g = Gauge::new();
        g.add(3);
        g.add(2);
        g.dec();
        assert_eq!(g.get(), 4);
        assert_eq!(g.high_water(), 5);
        g.set(-2);
        assert_eq!(g.get(), -2);
        assert_eq!(g.high_water(), 5);
    }

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(vec![10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 5000);
        assert_eq!(s.sum, 5126);
    }

    #[test]
    fn quantiles_on_known_distribution() {
        let h = Histogram::new(vec![10, 20, 30, 40]);
        // 10 values ≤10, 10 in (10,20], 10 in (20,30].
        for v in 1..=10 {
            h.record(v);
            h.record(10 + v);
            h.record(20 + v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 10);
        assert_eq!(s.quantile(0.33), 10);
        assert_eq!(s.quantile(0.5), 20);
        assert_eq!(s.quantile(0.99), 30);
        assert_eq!(s.quantile(1.0), 30);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new(vec![10, 100]);
        let b = Histogram::new(vec![10, 100]);
        a.record(5);
        b.record(50);
        b.record(500);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets, vec![1, 1, 1]);
        assert_eq!(s.min, 5);
        assert_eq!(s.max, 500);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let s = Histogram::latency().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }
}

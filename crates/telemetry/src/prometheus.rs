//! Prometheus text-exposition rendering of a [`RegistrySnapshot`], next to
//! the existing JSON export.
//!
//! [`render`] emits the [text-based exposition format] version 0.0.4:
//!
//! * metric names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (every other
//!   character becomes `_`, so `reader.batches_submitted` exports as
//!   `reader_batches_submitted`);
//! * counters emit `# TYPE <name> counter` and their total;
//! * gauges emit `# TYPE <name> gauge` plus a companion
//!   `<name>_high_water` gauge;
//! * histograms emit *cumulative* `<name>_bucket{le="..."}` series ending
//!   in `le="+Inf"`, plus `<name>_sum` and `<name>_count`.
//!
//! [text-based exposition format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::registry::{MetricValue, RegistrySnapshot};
use std::fmt::Write as _;

/// Render a snapshot in the Prometheus text exposition format.
pub fn render(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::with_capacity(snapshot.metrics.len() * 96);
    for (name, value) in &snapshot.metrics {
        let name = sanitize(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {name} counter");
                let _ = writeln!(out, "{name} {v}");
            }
            MetricValue::Gauge { value, high_water } => {
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {value}");
                let _ = writeln!(out, "# TYPE {name}_high_water gauge");
                let _ = writeln!(out, "{name}_high_water {high_water}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {name} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in h.bounds.iter().zip(h.buckets.iter()) {
                    cumulative += count;
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{name}_sum {}", h.sum);
                let _ = writeln!(out, "{name}_count {}", h.count);
            }
        }
    }
    out
}

/// Sanitize a metric name to the Prometheus charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;
    use crate::registry::Registry;
    use std::collections::BTreeMap;

    /// Parse the exposition text back into `(name → (type, samples))` for
    /// the round-trip test.
    fn parse(text: &str) -> BTreeMap<String, (String, BTreeMap<String, f64>)> {
        let mut types: BTreeMap<String, String> = BTreeMap::new();
        let mut out: BTreeMap<String, (String, BTreeMap<String, f64>)> = BTreeMap::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().unwrap().to_string();
                let kind = it.next().unwrap().to_string();
                types.insert(name, kind);
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (sample, value) = line.rsplit_once(' ').expect("sample line");
            let value: f64 = value.parse().expect("numeric value");
            // Family = sample name with any {labels} and any recognized
            // histogram suffix stripped.
            let bare = sample.split('{').next().unwrap();
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| bare.strip_suffix(suf))
                .filter(|fam| types.contains_key(*fam))
                .unwrap_or(bare);
            let kind = types.get(family).cloned().unwrap_or_default();
            out.entry(family.to_string())
                .or_insert_with(|| (kind, BTreeMap::new()))
                .1
                .insert(sample.to_string(), value);
        }
        out
    }

    #[test]
    fn round_trip_counters_gauges_histograms() {
        let reg = Registry::new();
        reg.counter("reader.batches_submitted").add(42);
        reg.gauge("pool.free_units").set(3);
        reg.gauge("pool.free_units").set(1);
        let h = reg.histogram_with("reader.submit_latency_nanos", vec![10, 100, 1000]);
        h.record(5);
        h.record(50);
        h.record(50_000); // overflow bucket
        let snap = reg.snapshot();
        let text = render(&snap);
        let parsed = parse(&text);

        let (kind, samples) = &parsed["reader_batches_submitted"];
        assert_eq!(kind, "counter");
        assert_eq!(samples["reader_batches_submitted"], 42.0);

        let (kind, samples) = &parsed["pool_free_units"];
        assert_eq!(kind, "gauge");
        assert_eq!(samples["pool_free_units"], 1.0);
        let (_, hw) = &parsed["pool_free_units_high_water"];
        assert_eq!(hw["pool_free_units_high_water"], 3.0);

        let (kind, samples) = &parsed["reader_submit_latency_nanos"];
        assert_eq!(kind, "histogram");
        // Cumulative buckets: ≤10 → 1, ≤100 → 2, ≤1000 → 2, +Inf → 3.
        assert_eq!(
            samples["reader_submit_latency_nanos_bucket{le=\"10\"}"],
            1.0
        );
        assert_eq!(
            samples["reader_submit_latency_nanos_bucket{le=\"100\"}"],
            2.0
        );
        assert_eq!(
            samples["reader_submit_latency_nanos_bucket{le=\"1000\"}"],
            2.0
        );
        assert_eq!(
            samples["reader_submit_latency_nanos_bucket{le=\"+Inf\"}"],
            3.0
        );
        assert_eq!(samples["reader_submit_latency_nanos_sum"], 50_055.0);
        assert_eq!(samples["reader_submit_latency_nanos_count"], 3.0);

        // Round trip: every registry metric appears under its sanitized
        // name with its exact snapshot value.
        for (name, value) in &snap.metrics {
            let fam = sanitize(name);
            let (_, samples) = parsed.get(&fam).expect("family present");
            match value {
                MetricValue::Counter(v) => assert_eq!(samples[&fam], *v as f64),
                MetricValue::Gauge { value, .. } => assert_eq!(samples[&fam], *value as f64),
                MetricValue::Histogram(h) => {
                    assert_eq!(samples[&format!("{fam}_count")], h.count as f64);
                    assert_eq!(samples[&format!("{fam}_sum")], h.sum as f64);
                }
            }
        }
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let h = HistogramSnapshot {
            bounds: vec![1, 2, 4],
            buckets: vec![3, 0, 2, 1],
            count: 6,
            sum: 20,
            min: 1,
            max: 9,
        };
        let mut snap = RegistrySnapshot::default();
        snap.metrics.insert("lat".into(), MetricValue::Histogram(h));
        let text = render(&snap);
        let mut last = 0.0;
        for line in text.lines().filter(|l| l.contains("_bucket")) {
            let v: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {text}");
            last = v;
        }
        assert!(text.ends_with("lat_sum 20\nlat_count 6\n"));
    }

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("queue.slot-0.depth"), "queue_slot_0_depth");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("ok_name:x"), "ok_name:x");
    }
}

//! The metric registry: named counters/gauges/histograms behind one
//! handle, with point-in-time mergeable snapshots.

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Get-or-create by name; handles are
/// cheap `Arc`s recorded to lock-free, so the registry lock is only taken
/// at registration and snapshot time.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with another kind"),
        }
    }

    /// Gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with another kind"),
        }
    }

    /// Latency histogram named `name` (default buckets; created on first
    /// use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, crate::metrics::default_latency_bounds())
    }

    /// Histogram named `name` with explicit bucket bounds (bounds only
    /// apply on first registration).
    pub fn histogram_with(&self, name: &str, bounds: Vec<u64>) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with another kind"),
        }
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let m = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        RegistrySnapshot {
            metrics: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge {
                            value: g.get(),
                            high_water: g.high_water(),
                        },
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.metrics.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("Registry")
            .field("metrics", &m.len())
            .finish()
    }
}

/// One metric's snapshotted value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level and high-water mark.
    Gauge {
        /// Level at snapshot time.
        value: i64,
        /// Highest level observed.
        high_water: i64,
    },
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A mergeable point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// Metric name → snapshotted value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl RegistrySnapshot {
    /// Folds `other` into `self`: counters and histograms accumulate,
    /// gauges sum levels and take the max high-water. Metrics present on
    /// one side only carry over — merge is associative and commutative.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
                Some(mine) => match (mine, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (
                        MetricValue::Gauge {
                            value: a,
                            high_water: ah,
                        },
                        MetricValue::Gauge {
                            value: b,
                            high_water: bh,
                        },
                    ) => {
                        *a += b;
                        *ah = (*ah).max(*bh);
                    }
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    (mine, theirs) => {
                        panic!("metric {name} kind mismatch on merge: {mine:?} vs {theirs:?}")
                    }
                },
            }
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge level (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge { value, .. }) => *value,
            _ => 0,
        }
    }

    /// Gauge high-water mark (0 when absent).
    pub fn gauge_high_water(&self, name: &str) -> i64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge { high_water, .. }) => *high_water,
            _ => 0,
        }
    }

    /// Histogram snapshot, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// JSON rendering: `{name: value}` with histograms expanded.
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.metrics
                .iter()
                .map(|(name, value)| {
                    let v = match value {
                        MetricValue::Counter(c) => Json::from(*c),
                        MetricValue::Gauge { value, high_water } => Json::object(vec![
                            ("value", Json::from(*value)),
                            ("high_water", Json::from(*high_water)),
                        ]),
                        MetricValue::Histogram(h) => Json::object(vec![
                            ("count", Json::from(h.count)),
                            ("sum", Json::from(h.sum)),
                            ("mean", Json::from(h.mean())),
                            ("min", Json::from(if h.count == 0 { 0 } else { h.min })),
                            ("max", Json::from(h.max)),
                            ("p50", Json::from(h.quantile(0.5))),
                            ("p99", Json::from(h.quantile(0.99))),
                        ]),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("x"), 2);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn kind_collision_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let a = Registry::new();
        a.counter("c").add(2);
        a.gauge("g").set(3);
        a.histogram_with("h", vec![10, 100]).record(5);
        let b = Registry::new();
        b.counter("c").add(5);
        b.counter("only_b").inc();
        b.gauge("g").set(4);
        b.histogram_with("h", vec![10, 100]).record(50);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("c"), 7);
        assert_eq!(s.counter("only_b"), 1);
        assert_eq!(s.gauge("g"), 7);
        assert_eq!(s.gauge_high_water("g"), 4);
        assert_eq!(s.histogram("h").unwrap().count, 2);
    }

    #[test]
    fn json_exposes_all_kinds() {
        let reg = Registry::new();
        reg.counter("events").add(3);
        reg.gauge("depth").set(2);
        reg.histogram_with("lat", vec![10]).record(7);
        let j = reg.snapshot().to_json();
        assert_eq!(j["events"], 3u64);
        assert_eq!(j["depth"]["value"], 2u64);
        assert_eq!(j["lat"]["count"], 1u64);
        assert_eq!(j["lat"]["p50"], 10u64);
    }
}

//! NVCaffe-like data-parallel training engine.
//!
//! One solver thread per GPU (§3.4.3: every GPU isolated, fed through its
//! own Trans Queue pair). Each iteration: pop a device batch → forward →
//! backward → (barrier) allreduce → update → recycle the device buffer.
//! Kernel durations come from the calibrated `dlb-gpu` timing model and run
//! as scaled waits on per-solver compute streams; host CPU charges (launch /
//! transform / update) follow the same model (Fig. 6(d)).

use crate::metrics::{CpuCostBreakdown, EngineClock};
use dlb_gpu::stream::GpuOp;
use dlb_gpu::{GpuDevice, GpuTimingModel, ModelZoo, Precision, StreamSet};
use dlb_simcore::SimTime;
use dlb_telemetry::{names, Telemetry};
use dlbooster_core::{Dispatcher, PreprocessBackend};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Training-session parameters.
#[derive(Debug, Clone)]
pub struct TrainingConfig {
    /// Which network to train.
    pub model: ModelZoo,
    /// Images per GPU per iteration.
    pub batch_size: u32,
    /// Compute precision (training experiments use fp32).
    pub precision: Precision,
    /// Iterations each solver runs.
    pub iterations: u64,
    /// Wall-time compression for the functional kernels (0 = don't sleep).
    pub time_scale: f64,
    /// GPU contention from a device-resident decode backend (nvJPEG).
    pub gpu_background_share: f64,
}

/// What a training session measured.
#[derive(Debug)]
pub struct TrainingReport {
    /// Backend name used.
    pub backend: &'static str,
    /// Model trained.
    pub model: ModelZoo,
    /// GPUs used.
    pub n_gpus: usize,
    /// Total images consumed.
    pub images: u64,
    /// Total iterations retired across solvers.
    pub iterations: u64,
    /// Modelled GPU time of the *slowest* solver (per-GPU pipeline time).
    pub modelled_time: SimTime,
    /// Modelled end-to-end throughput in images/s (all GPUs).
    pub modelled_throughput: f64,
    /// Wall-clock duration of the functional run.
    pub wall: Duration,
    /// Host CPU cost breakdown (engine side).
    pub engine_cpu: CpuCostBreakdown,
    /// Backend CPU busy nanos (preprocessing side).
    pub backend_cpu_nanos: u64,
}

impl TrainingReport {
    /// Total engine+backend CPU core-equivalents over the modelled time.
    pub fn total_cpu_cores(&self) -> f64 {
        if self.modelled_time == SimTime::ZERO {
            return 0.0;
        }
        self.engine_cpu.total_cores(self.modelled_time)
            + self.backend_cpu_nanos as f64 / 1e9 / self.modelled_time.as_secs_f64()
    }
}

/// A data-parallel training session (drives solvers + dispatcher).
pub struct TrainingSession;

impl TrainingSession {
    /// Runs training end to end on `backend` over `gpus`, consuming
    /// `config.iterations` batches per GPU.
    pub fn run(
        backend: Arc<dyn PreprocessBackend>,
        gpus: &[GpuDevice],
        config: &TrainingConfig,
    ) -> TrainingReport {
        Self::run_with_telemetry(backend, gpus, config, &Telemetry::with_defaults())
    }

    /// Like [`TrainingSession::run`], but recording `engine.*` and
    /// `dispatcher.*` metrics into the shared pipeline `telemetry`.
    pub fn run_with_telemetry(
        backend: Arc<dyn PreprocessBackend>,
        gpus: &[GpuDevice],
        config: &TrainingConfig,
        telemetry: &Telemetry,
    ) -> TrainingReport {
        assert!(!gpus.is_empty(), "need at least one GPU");
        assert!(config.iterations > 0 && config.batch_size > 0);
        let n = gpus.len();
        let model = config.model.model();
        let (c, h, w) = config.model.input_dims();
        let image_bytes = c as u64 * h as u64 * w as u64;
        let unit_bytes = backend.max_batch_bytes();

        // One copy stream per solver for the dispatcher, plus compute
        // streams inside the solver loop.
        let copy_streams = Arc::new(StreamSet::new("copy", n, config.time_scale));
        let compute_streams = Arc::new(StreamSet::new("compute", n, config.time_scale));
        let pcie = gpus[0].spec().pcie_bytes_per_sec;
        let dispatcher = Dispatcher::start_with_telemetry(
            Arc::clone(&backend),
            Arc::clone(&copy_streams),
            n,
            4,
            pcie,
            telemetry,
        );
        let engine_batches = telemetry.registry.counter(names::ENGINE_BATCHES);
        let batch_wait = telemetry.registry.histogram(names::ENGINE_BATCH_WAIT);
        let compute = telemetry.registry.histogram(names::ENGINE_COMPUTE);

        let clock = Arc::new(EngineClock::new());
        let engine_cpu = Arc::new(CpuCostBreakdown::new());
        let barrier = Arc::new(Barrier::new(n));
        let wall_start = Instant::now();
        let mut per_solver_modelled = vec![SimTime::ZERO; n];

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (slot, gpu) in gpus.iter().enumerate() {
                let tq = dispatcher.trans_queues(slot);
                let clock = Arc::clone(&clock);
                let engine_cpu = Arc::clone(&engine_cpu);
                let barrier = Arc::clone(&barrier);
                let compute_streams = Arc::clone(&compute_streams);
                let mut timing = GpuTimingModel::new(gpu.spec(), &model, config.precision);
                timing.set_background_share(config.gpu_background_share);
                let config = config.clone();
                let engine_batches = Arc::clone(&engine_batches);
                let batch_wait = Arc::clone(&batch_wait);
                let compute = Arc::clone(&compute);
                handles.push(scope.spawn(move || {
                    gpu.bind(&format!("solver-{slot}")).expect("free device");
                    // Seed the free trans queue with double buffers.
                    for _ in 0..2 {
                        tq.free
                            .push(gpu.alloc(unit_bytes).expect("device memory"))
                            .expect("fresh queue");
                    }
                    let mut modelled = SimTime::ZERO;
                    for _iter in 0..config.iterations {
                        let waited = Instant::now();
                        let Ok(db) = tq.full.pop() else { break };
                        batch_wait.record_duration(waited.elapsed());
                        engine_batches.inc();
                        let images = db.items.len() as u64;
                        // Host-side input transform charge.
                        engine_cpu.transform_nanos.fetch_add(
                            timing
                                .transform_cpu_time(images as u32, image_bytes)
                                .as_nanos(),
                            Ordering::Relaxed,
                        );
                        // Forward + backward on the compute stream.
                        let fwd = timing.forward_time(config.batch_size);
                        let bwd = timing.backward_time(config.batch_size);
                        let stream = compute_streams.stream(slot);
                        stream.enqueue(GpuOp::Kernel {
                            name: "forward".into(),
                            duration: Duration::from_nanos(fwd.as_nanos()),
                        });
                        stream.enqueue(GpuOp::Kernel {
                            name: "backward".into(),
                            duration: Duration::from_nanos(bwd.as_nanos()),
                        });
                        engine_cpu.launch_nanos.fetch_add(
                            timing.launch_cpu_time(fwd + bwd, true).as_nanos(),
                            Ordering::Relaxed,
                        );
                        stream.synchronize();
                        // Gradient synchronisation across solvers.
                        let allreduce = timing.allreduce_time(n as u32);
                        if n > 1 {
                            barrier.wait();
                        }
                        // Optimiser step.
                        let upd = timing.update_time();
                        engine_cpu.update_nanos.fetch_add(
                            timing.update_cpu_time(config.batch_size).as_nanos(),
                            Ordering::Relaxed,
                        );
                        let iter_time = fwd + bwd + allreduce + upd;
                        compute.record(iter_time.as_nanos());
                        modelled += iter_time;
                        clock.record_batch(images, iter_time);
                        // Return the device buffer for the next copy.
                        if tq.free.push(db.dev).is_err() {
                            break;
                        }
                    }
                    gpu.unbind();
                    modelled
                }));
            }
            for (slot, h) in handles.into_iter().enumerate() {
                per_solver_modelled[slot] = h.join().expect("solver panicked");
            }
        });

        backend.shutdown();
        let wall = wall_start.elapsed();
        let modelled_time = per_solver_modelled
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        let images = clock.images();
        let modelled_throughput = if modelled_time == SimTime::ZERO {
            0.0
        } else {
            images as f64 / modelled_time.as_secs_f64()
        };
        // Preprocessing CPU is whatever the backend burned.
        let backend_cpu_nanos = backend.cpu_busy_nanos();
        engine_cpu
            .preprocessing_nanos
            .store(backend_cpu_nanos, Ordering::Relaxed);
        let report = TrainingReport {
            backend: backend.name(),
            model: config.model,
            n_gpus: n,
            images,
            iterations: clock.iterations(),
            modelled_time,
            modelled_throughput,
            wall,
            engine_cpu: Arc::try_unwrap(engine_cpu).unwrap_or_default(),
            backend_cpu_nanos,
        };
        dispatcher.join();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_backends::{CpuBackend, CpuBackendConfig};
    use dlb_gpu::GpuSpec;
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
    use dlbooster_core::{CombinedResolver, DataCollector};

    fn cpu_backend(n_engines: usize, batch: usize, max: u64) -> Arc<CpuBackend> {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(16, 12), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 1));
        Arc::new(
            CpuBackend::start(
                collector,
                Arc::new(CombinedResolver::disk_only(disk)),
                CpuBackendConfig {
                    n_engines,
                    batch_size: batch,
                    target_w: 28,
                    target_h: 28,
                    workers: 2,
                    max_batches: Some(max),
                    sample_cache: None,
                },
            )
            .unwrap(),
        )
    }

    fn config(iterations: u64) -> TrainingConfig {
        TrainingConfig {
            model: ModelZoo::LeNet5,
            batch_size: 4,
            precision: Precision::Fp32,
            iterations,
            time_scale: 0.0,
            gpu_background_share: 0.0,
        }
    }

    #[test]
    fn single_gpu_training_runs_to_completion() {
        let backend = cpu_backend(1, 4, 6);
        let gpus = vec![GpuDevice::new(GpuSpec::tesla_p100(), 0)];
        let report = TrainingSession::run(backend, &gpus, &config(6));
        assert_eq!(report.iterations, 6);
        assert_eq!(report.images, 24);
        assert_eq!(report.n_gpus, 1);
        assert!(report.modelled_time > SimTime::ZERO);
        assert!(report.modelled_throughput > 0.0);
        assert!(report.backend_cpu_nanos > 0);
        assert!(report.total_cpu_cores() > 0.0);
    }

    #[test]
    fn two_gpu_training_splits_batches() {
        let backend = cpu_backend(2, 4, 8);
        let gpus: Vec<GpuDevice> = (0..2)
            .map(|i| GpuDevice::new(GpuSpec::tesla_p100(), i))
            .collect();
        let report = TrainingSession::run(backend, &gpus, &config(4));
        assert_eq!(report.iterations, 8, "4 per solver");
        assert_eq!(report.images, 32);
        assert_eq!(report.n_gpus, 2);
    }

    #[test]
    fn contention_reduces_modelled_throughput() {
        let fast = {
            let backend = cpu_backend(1, 4, 4);
            let gpus = vec![GpuDevice::new(GpuSpec::tesla_p100(), 0)];
            TrainingSession::run(backend, &gpus, &config(4)).modelled_throughput
        };
        let slow = {
            let backend = cpu_backend(1, 4, 4);
            let gpus = vec![GpuDevice::new(GpuSpec::tesla_p100(), 0)];
            let mut c = config(4);
            c.gpu_background_share = 0.3;
            TrainingSession::run(backend, &gpus, &c).modelled_throughput
        };
        assert!(
            slow < fast * 0.85,
            "30% steal should slow training: {slow:.0} vs {fast:.0}"
        );
    }
}

//! TensorRT-like fp16 batched inference engine.
//!
//! Online-inference loop of §5.3: device batches arrive through the
//! dispatcher, a forward pass runs per batch, and per-request latency is
//! measured "from the point when the inference system receives pictures
//! from clients to the point when engines make a prediction".

use crate::metrics::{CpuCostBreakdown, EngineClock};
use dlb_gpu::stream::GpuOp;
use dlb_gpu::{GpuDevice, GpuTimingModel, ModelZoo, Precision, StreamSet};
use dlb_simcore::stats::LatencyStats;
use dlb_simcore::SimTime;
use dlb_telemetry::{names, Telemetry};
use dlbooster_core::{Dispatcher, PreprocessBackend};
use parking_lot::Mutex;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Inference-session parameters.
#[derive(Debug, Clone)]
pub struct InferenceConfig {
    /// Which network to serve.
    pub model: ModelZoo,
    /// Images per batch ("batch size" axis of Figs. 7–8).
    pub batch_size: u32,
    /// Precision (paper: fp16 to enable Tensor Cores).
    pub precision: Precision,
    /// Batches to serve per GPU before stopping.
    pub batches: u64,
    /// Wall-time compression.
    pub time_scale: f64,
    /// GPU contention share (nvJPEG backends advertise 0.3).
    pub gpu_background_share: f64,
}

/// What an inference session measured.
#[derive(Debug)]
pub struct InferenceReport {
    /// Backend used.
    pub backend: &'static str,
    /// Model served.
    pub model: ModelZoo,
    /// GPUs used.
    pub n_gpus: usize,
    /// Requests served.
    pub images: u64,
    /// Batches served.
    pub batches: u64,
    /// Modelled GPU time of the slowest engine.
    pub modelled_time: SimTime,
    /// Modelled throughput (images/s, all GPUs).
    pub modelled_throughput: f64,
    /// Modelled per-request latency distribution: queueing-from-arrival is
    /// observable only in the DES layer; functionally this records the
    /// modelled decode→predict pipeline time per batch.
    pub latency: LatencyStats,
    /// Wall duration of the functional run.
    pub wall: Duration,
    /// Engine CPU breakdown.
    pub engine_cpu: CpuCostBreakdown,
    /// Backend CPU busy nanos.
    pub backend_cpu_nanos: u64,
}

/// A batched-inference session.
pub struct InferenceSession;

impl InferenceSession {
    /// Serves `config.batches` batches per GPU from `backend`.
    pub fn run(
        backend: Arc<dyn PreprocessBackend>,
        gpus: &[GpuDevice],
        config: &InferenceConfig,
    ) -> InferenceReport {
        Self::run_with_telemetry(backend, gpus, config, &Telemetry::with_defaults())
    }

    /// Like [`InferenceSession::run`], but recording `engine.*` and
    /// `dispatcher.*` metrics into the shared pipeline `telemetry`.
    pub fn run_with_telemetry(
        backend: Arc<dyn PreprocessBackend>,
        gpus: &[GpuDevice],
        config: &InferenceConfig,
        telemetry: &Telemetry,
    ) -> InferenceReport {
        assert!(!gpus.is_empty() && config.batches > 0 && config.batch_size > 0);
        let n = gpus.len();
        let model = config.model.model();
        let (_c, _h, _w) = config.model.input_dims();
        let unit_bytes = backend.max_batch_bytes();

        let copy_streams = Arc::new(StreamSet::new("icopy", n, config.time_scale));
        let compute_streams = Arc::new(StreamSet::new("icompute", n, config.time_scale));
        let dispatcher = Dispatcher::start_with_telemetry(
            Arc::clone(&backend),
            Arc::clone(&copy_streams),
            n,
            4,
            gpus[0].spec().pcie_bytes_per_sec,
            telemetry,
        );
        let engine_batches = telemetry.registry.counter(names::ENGINE_BATCHES);
        let batch_wait = telemetry.registry.histogram(names::ENGINE_BATCH_WAIT);
        let compute = telemetry.registry.histogram(names::ENGINE_COMPUTE);

        let clock = Arc::new(EngineClock::new());
        let engine_cpu = Arc::new(CpuCostBreakdown::new());
        let latency = Arc::new(Mutex::new(LatencyStats::new()));
        let wall_start = Instant::now();
        let mut per_engine_modelled = vec![SimTime::ZERO; n];

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (slot, gpu) in gpus.iter().enumerate() {
                let tq = dispatcher.trans_queues(slot);
                let clock = Arc::clone(&clock);
                let engine_cpu = Arc::clone(&engine_cpu);
                let latency = Arc::clone(&latency);
                let compute_streams = Arc::clone(&compute_streams);
                let mut timing = GpuTimingModel::new(gpu.spec(), &model, config.precision);
                timing.set_background_share(config.gpu_background_share);
                let config = config.clone();
                let pcie = gpu.spec().pcie_bytes_per_sec;
                let engine_batches = Arc::clone(&engine_batches);
                let batch_wait = Arc::clone(&batch_wait);
                let compute = Arc::clone(&compute);
                handles.push(scope.spawn(move || {
                    for _ in 0..2 {
                        tq.free
                            .push(gpu.alloc(unit_bytes).expect("device memory"))
                            .expect("fresh queue");
                    }
                    let mut modelled = SimTime::ZERO;
                    for _ in 0..config.batches {
                        let waited = Instant::now();
                        let Ok(db) = tq.full.pop() else { break };
                        batch_wait.record_duration(waited.elapsed());
                        engine_batches.inc();
                        let images = db.items.len() as u64;
                        let fwd = timing.forward_time(images as u32);
                        let stream = compute_streams.stream(slot);
                        stream.enqueue(GpuOp::Kernel {
                            name: "infer".into(),
                            duration: Duration::from_nanos(fwd.as_nanos()),
                        });
                        engine_cpu.launch_nanos.fetch_add(
                            timing.launch_cpu_time(fwd, false).as_nanos(),
                            Ordering::Relaxed,
                        );
                        stream.synchronize();
                        // Modelled pipeline latency for this batch: H2D copy
                        // + forward (decode latency is the backend's, added
                        // by the DES; functionally we record the
                        // engine-side component).
                        let copy = SimTime::from_secs_f64(unit_bytes as f64 / pcie);
                        latency.lock().record(copy + fwd);
                        compute.record(fwd.as_nanos());
                        modelled += fwd;
                        clock.record_batch(images, fwd);
                        if tq.free.push(db.dev).is_err() {
                            break;
                        }
                    }
                    modelled
                }));
            }
            for (slot, h) in handles.into_iter().enumerate() {
                per_engine_modelled[slot] = h.join().expect("engine panicked");
            }
        });

        backend.shutdown();
        let wall = wall_start.elapsed();
        let modelled_time = per_engine_modelled
            .iter()
            .copied()
            .max()
            .unwrap_or(SimTime::ZERO);
        let images = clock.images();
        let backend_cpu_nanos = backend.cpu_busy_nanos();
        engine_cpu
            .preprocessing_nanos
            .store(backend_cpu_nanos, Ordering::Relaxed);
        let report = InferenceReport {
            backend: backend.name(),
            model: config.model,
            n_gpus: n,
            images,
            batches: clock.iterations(),
            modelled_time,
            modelled_throughput: if modelled_time == SimTime::ZERO {
                0.0
            } else {
                images as f64 / modelled_time.as_secs_f64()
            },
            latency: Arc::try_unwrap(latency)
                .map(|m| m.into_inner())
                .unwrap_or_default(),
            wall,
            engine_cpu: Arc::try_unwrap(engine_cpu).unwrap_or_default(),
            backend_cpu_nanos,
        };
        dispatcher.join();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_backends::{NvJpegBackend, NvJpegBackendConfig};
    use dlb_gpu::GpuSpec;
    use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
    use dlbooster_core::{CombinedResolver, DataCollector};

    fn nvjpeg_backend(max: u64) -> Arc<NvJpegBackend> {
        let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(12, 17), &disk).unwrap();
        let collector = Arc::new(DataCollector::load_from_disk(&ds.records, 0));
        let mut cfg = NvJpegBackendConfig::paper_defaults(1, 4, (32, 32));
        cfg.max_batches = Some(max);
        Arc::new(
            NvJpegBackend::start(collector, Arc::new(CombinedResolver::disk_only(disk)), cfg)
                .unwrap(),
        )
    }

    #[test]
    fn inference_serves_batches_and_measures() {
        let backend = nvjpeg_backend(5);
        let share = backend.gpu_background_share();
        let gpus = vec![GpuDevice::new(GpuSpec::tesla_v100(), 0)];
        let config = InferenceConfig {
            model: ModelZoo::GoogLeNet,
            batch_size: 4,
            precision: Precision::Fp16,
            batches: 5,
            time_scale: 0.0,
            gpu_background_share: share,
        };
        let report = InferenceSession::run(backend, &gpus, &config);
        assert_eq!(report.batches, 5);
        assert_eq!(report.images, 20);
        assert!(report.modelled_throughput > 0.0);
        assert_eq!(report.latency.len(), 5);
        assert!(report.backend_cpu_nanos > 0);
        // The modelled throughput must beat half the bs=1 bound (batching
        // can only help; Fig. 7 shape).
        let timing = GpuTimingModel::new(
            &GpuSpec::tesla_v100(),
            &ModelZoo::GoogLeNet.model(),
            Precision::Fp16,
        );
        assert!(report.modelled_throughput > timing.inference_throughput(1) * 0.5);
    }

    #[test]
    fn contention_shows_in_latency() {
        let run = |share: f64| {
            let backend = nvjpeg_backend(3);
            let gpus = vec![GpuDevice::new(GpuSpec::tesla_v100(), 0)];
            let config = InferenceConfig {
                model: ModelZoo::ResNet50,
                batch_size: 4,
                precision: Precision::Fp16,
                batches: 3,
                time_scale: 0.0,
                gpu_background_share: share,
            };
            let mut r = InferenceSession::run(backend, &gpus, &config);
            r.latency.median()
        };
        let clean = run(0.0);
        let contended = run(0.3);
        assert!(
            contended > clean,
            "contention must raise latency: {contended} vs {clean}"
        );
    }
}

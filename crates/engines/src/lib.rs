//! # dlb-engines
//!
//! The compute engines DLBooster feeds (paper §4.2/§5): an NVCaffe-like
//! data-parallel **training engine** and a TensorRT-like fp16 **inference
//! engine**. Both are backend-agnostic — they pull batches through the
//! Algorithm-3 [`Dispatcher`](dlbooster_core::Dispatcher) and never know
//! which backend decoded the pixels (§3.1's decoupling).
//!
//! ## Substitution note
//!
//! There is no CUDA here: kernels are priced by `dlb-gpu`'s calibrated
//! timing model and executed as scaled waits on functional streams. Each
//! engine therefore reports two clocks:
//! * **modelled time** — the virtual GPU time the kernels would take on the
//!   paper's parts (what the figures use), and
//! * **wall time** — real elapsed time of the functional run (used by tests
//!   to validate pipelining, not absolute numbers).
//!
//! Host-side CPU costs (kernel launch / input transform / optimiser step —
//! the Fig. 6(d) breakdown) are charged from the same timing model.

pub mod inference;
pub mod metrics;
pub mod trainer;

pub use inference::{InferenceConfig, InferenceReport, InferenceSession};
pub use metrics::{CpuCostBreakdown, EngineClock};
pub use trainer::{TrainingConfig, TrainingReport, TrainingSession};

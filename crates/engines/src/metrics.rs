//! Engine-side measurement: the modelled clock and the CPU-cost breakdown
//! the paper's Figures 2(b), 6 and 9 report.

use dlb_simcore::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulates modelled (virtual) GPU/engine time alongside counters.
#[derive(Debug, Default)]
pub struct EngineClock {
    /// Modelled nanoseconds of GPU work enqueued.
    modelled_nanos: AtomicU64,
    /// Images processed.
    images: AtomicU64,
    /// Iterations / batches retired.
    iterations: AtomicU64,
}

impl EngineClock {
    /// New zeroed clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one retired batch of `images` images costing `modelled` time.
    pub fn record_batch(&self, images: u64, modelled: SimTime) {
        self.modelled_nanos
            .fetch_add(modelled.as_nanos(), Ordering::Relaxed);
        self.images.fetch_add(images, Ordering::Relaxed);
        self.iterations.fetch_add(1, Ordering::Relaxed);
    }

    /// Total modelled time.
    pub fn modelled(&self) -> SimTime {
        SimTime::from_nanos(self.modelled_nanos.load(Ordering::Relaxed))
    }

    /// Images retired.
    pub fn images(&self) -> u64 {
        self.images.load(Ordering::Relaxed)
    }

    /// Batches retired.
    pub fn iterations(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Modelled throughput (images per modelled second).
    pub fn modelled_throughput(&self) -> f64 {
        let t = self.modelled().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.images() as f64 / t
        }
    }
}

/// Host CPU cost split by activity — Fig. 6(d)'s four bars.
#[derive(Debug, Default)]
pub struct CpuCostBreakdown {
    /// Preprocessing (decode / read) nanos — charged by the backend.
    pub preprocessing_nanos: AtomicU64,
    /// Input-transform nanos (tensor layout / normalisation bookkeeping).
    pub transform_nanos: AtomicU64,
    /// Kernel-launch driver nanos.
    pub launch_nanos: AtomicU64,
    /// Optimiser-step driver nanos.
    pub update_nanos: AtomicU64,
}

impl CpuCostBreakdown {
    /// New zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total CPU nanos across activities.
    pub fn total_nanos(&self) -> u64 {
        self.preprocessing_nanos.load(Ordering::Relaxed)
            + self.transform_nanos.load(Ordering::Relaxed)
            + self.launch_nanos.load(Ordering::Relaxed)
            + self.update_nanos.load(Ordering::Relaxed)
    }

    /// Core-equivalents of each activity over `elapsed` modelled time:
    /// (preprocessing, transform, launch, update).
    pub fn cores(&self, elapsed: SimTime) -> (f64, f64, f64, f64) {
        let e = elapsed.as_secs_f64();
        if e == 0.0 {
            return (0.0, 0.0, 0.0, 0.0);
        }
        let f = |v: &AtomicU64| v.load(Ordering::Relaxed) as f64 / 1e9 / e;
        (
            f(&self.preprocessing_nanos),
            f(&self.transform_nanos),
            f(&self.launch_nanos),
            f(&self.update_nanos),
        )
    }

    /// Total core-equivalents.
    pub fn total_cores(&self, elapsed: SimTime) -> f64 {
        let (a, b, c, d) = self.cores(elapsed);
        a + b + c + d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let c = EngineClock::new();
        c.record_batch(256, SimTime::from_millis(100));
        c.record_batch(256, SimTime::from_millis(100));
        assert_eq!(c.images(), 512);
        assert_eq!(c.iterations(), 2);
        assert_eq!(c.modelled(), SimTime::from_millis(200));
        assert!((c.modelled_throughput() - 2560.0).abs() < 1e-6);
    }

    #[test]
    fn empty_clock_throughput_zero() {
        assert_eq!(EngineClock::new().modelled_throughput(), 0.0);
    }

    #[test]
    fn breakdown_core_math() {
        let b = CpuCostBreakdown::new();
        b.preprocessing_nanos.store(300_000_000, Ordering::Relaxed); // 0.3 s
        b.transform_nanos.store(150_000_000, Ordering::Relaxed);
        b.launch_nanos.store(950_000_000, Ordering::Relaxed);
        b.update_nanos.store(120_000_000, Ordering::Relaxed);
        // Over 1 s elapsed this is exactly Fig. 6(d)'s bars.
        let (p, t, l, u) = b.cores(SimTime::from_secs(1));
        assert!((p - 0.3).abs() < 1e-9);
        assert!((t - 0.15).abs() < 1e-9);
        assert!((l - 0.95).abs() < 1e-9);
        assert!((u - 0.12).abs() < 1e-9);
        assert!((b.total_cores(SimTime::from_secs(1)) - 1.52).abs() < 1e-9);
        assert_eq!(b.cores(SimTime::ZERO), (0.0, 0.0, 0.0, 0.0));
    }
}

//! # dlb-graph — composable pipeline graphs
//!
//! ROADMAP item 3: a typed, user-composable pipeline-graph API in the
//! style of DALI's pre-compiled pipeline definitions. Users describe a
//! preprocessing pipeline as named stages with declared input/output kinds
//! ([`DataKind`]); [`GraphBuilder::build`] validates the structure at
//! build time (type mismatches, cycles, orphan stages → structured
//! [`GraphError`]s), and [`PipelineGraph::compile`] — a pure function of
//! `(graph, config)` — lowers it to a [`CompiledPipeline`] that the
//! executors (`DlBooster`, `CpuBackend`) wire onto the existing
//! queue/pool/telemetry substrate. The legacy constructors are canned
//! graphs ([`canned`]).
//!
//! The crate also ships the training-augmentation stages the paper skips
//! (`RandomCrop`, `RandomFlip`, `Normalize`), driven by a per-(epoch,
//! sample) splitmix64 seed derivation ([`seed`]) that follows the chaos
//! plane's determinism rules: any epoch's augmentations replay bitwise
//! from the run seed, regardless of worker count, batch composition, or
//! chaos-injected retries.
//!
//! ```
//! use dlb_graph::{Chain, GraphConfig, StageSpec, SourceKind, DecodeDevice, DataKind};
//!
//! let graph = Chain::new()
//!     .then("manifest", StageSpec::Source { kind: SourceKind::Disk })
//!     .then("decode", StageSpec::Decode { device: DecodeDevice::Cpu })
//!     .parallelism(4)
//!     .then("resize", StageSpec::Resize { width: 64, height: 64 })
//!     .then("crop", StageSpec::RandomCrop { width: 48, height: 48 })
//!     .then("flip", StageSpec::RandomFlip { prob: 0.5 })
//!     .then("dispatch", StageSpec::Sink)
//!     .build()
//!     .unwrap();
//! let compiled = graph.compile(&GraphConfig { seed: 7, ..Default::default() }).unwrap();
//! assert_eq!(compiled.output.kind, DataKind::DecodedImage);
//! assert_eq!(compiled.output.width, 48);
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod canned;
pub mod graph;
pub mod seed;
pub mod stage;

pub use augment::{AugmentOp, AugmentPlan, AugmentedSample, SampleAugmentor};
pub use canned::{augmented_training, cpu_training, fpga_streaming, fpga_training, Chain};
pub use graph::{
    CompiledPipeline, GraphBuilder, GraphConfig, GraphError, NodeId, OutputDesc, PipelineGraph,
};
pub use seed::{derive_sample_seed, resolve_run_seed, source_identity, SeedStream};
pub use stage::{DataKind, DecodeDevice, SourceKind, StageNode, StageSpec};

//! Graph construction, validation and compilation.
//!
//! A [`GraphBuilder`] collects named stages and edges; [`GraphBuilder::build`]
//! validates the structure (exactly one source and one sink, no cycles, no
//! orphans, no fan-in/fan-out, kinds agree along every edge) and returns a
//! [`PipelineGraph`]. [`PipelineGraph::compile`] is a *pure function* of
//! `(graph, config)`: it resolves geometry through the chain, sizes batch
//! units, extracts the augmentation plan, and yields the
//! [`CompiledPipeline`] the executors (DlBooster, CpuBackend) wire onto the
//! existing queue/pool/telemetry substrate.

use crate::augment::{AugmentOp, AugmentPlan, SampleAugmentor};
use crate::stage::{DataKind, DecodeDevice, SourceKind, StageNode, StageSpec};

/// Handle to a stage added to a [`GraphBuilder`]. Only valid for the
/// builder that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(pub(crate) usize);

/// Why a graph failed validation or compilation. Every rejection names the
/// offending stage so the error is actionable.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// The graph has no stages.
    Empty,
    /// Two stages share a name.
    DuplicateStage {
        /// The repeated name.
        name: String,
    },
    /// An edge references a [`NodeId`] this builder never issued.
    UnknownStage {
        /// The out-of-range index.
        index: usize,
    },
    /// A stage connected to itself.
    SelfEdge {
        /// The stage.
        stage: String,
    },
    /// The same edge was added twice.
    DuplicateEdge {
        /// Producer stage.
        from: String,
        /// Consumer stage.
        to: String,
    },
    /// No `Source` stage.
    MissingSource,
    /// More than one `Source` stage.
    MultipleSources {
        /// All source stages.
        stages: Vec<String>,
    },
    /// No `Sink` stage.
    MissingSink,
    /// More than one `Sink` stage.
    MultipleSinks {
        /// All sink stages.
        stages: Vec<String>,
    },
    /// A stage feeds more than one consumer (unsupported on this substrate).
    FanOut {
        /// The branching stage.
        stage: String,
    },
    /// A stage has more than one producer.
    FanIn {
        /// The merging stage.
        stage: String,
    },
    /// A stage sits on a cycle.
    Cycle {
        /// One stage on the cycle.
        stage: String,
    },
    /// A stage is not on the source→sink chain.
    Orphan {
        /// The disconnected stage.
        stage: String,
    },
    /// An edge connects stages whose data kinds disagree.
    TypeMismatch {
        /// Producer stage.
        from: String,
        /// Consumer stage.
        to: String,
        /// What `from` produces.
        produced: DataKind,
        /// What `to` expects.
        expected: &'static str,
    },
    /// `parallelism` was explicitly set to zero.
    ZeroParallelism {
        /// The stage.
        stage: String,
    },
    /// `queue_depth` was explicitly set to zero.
    ZeroQueueDepth {
        /// The stage.
        stage: String,
    },
    /// A resize/crop dimension is zero.
    ZeroDimension {
        /// The stage.
        stage: String,
    },
    /// A flip probability outside `[0, 1]` (or NaN).
    BadProbability {
        /// The stage.
        stage: String,
    },
    /// A normalize scale component is zero.
    ZeroScale {
        /// The stage.
        stage: String,
    },
    /// The decode substrate fuses the first resize; `Decode` must feed a
    /// `Resize` directly.
    DecodeRequiresResize {
        /// The stage that followed decode instead.
        stage: String,
    },
    /// A crop larger than its (known) input geometry.
    CropLargerThanInput {
        /// The crop stage.
        stage: String,
        /// Upstream geometry.
        input: (u32, u32),
        /// Requested crop.
        crop: (u32, u32),
    },
    /// A config knob the substrate cannot honour.
    BadConfig {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Empty => write!(f, "graph has no stages"),
            GraphError::DuplicateStage { name } => write!(f, "duplicate stage name {name:?}"),
            GraphError::UnknownStage { index } => {
                write!(f, "edge references unknown stage #{index}")
            }
            GraphError::SelfEdge { stage } => write!(f, "stage {stage:?} connects to itself"),
            GraphError::DuplicateEdge { from, to } => {
                write!(f, "edge {from:?} -> {to:?} added twice")
            }
            GraphError::MissingSource => write!(f, "graph has no Source stage"),
            GraphError::MultipleSources { stages } => {
                write!(f, "graph has multiple Source stages: {stages:?}")
            }
            GraphError::MissingSink => write!(f, "graph has no Sink stage"),
            GraphError::MultipleSinks { stages } => {
                write!(f, "graph has multiple Sink stages: {stages:?}")
            }
            GraphError::FanOut { stage } => write!(f, "stage {stage:?} feeds multiple consumers"),
            GraphError::FanIn { stage } => write!(f, "stage {stage:?} has multiple producers"),
            GraphError::Cycle { stage } => write!(f, "stage {stage:?} sits on a cycle"),
            GraphError::Orphan { stage } => {
                write!(f, "stage {stage:?} is not on the source\u{2192}sink chain")
            }
            GraphError::TypeMismatch {
                from,
                to,
                produced,
                expected,
            } => write!(
                f,
                "edge {from:?} -> {to:?}: {from:?} produces {produced}, {to:?} expects {expected}"
            ),
            GraphError::ZeroParallelism { stage } => {
                write!(f, "stage {stage:?}: parallelism must be >= 1")
            }
            GraphError::ZeroQueueDepth { stage } => {
                write!(f, "stage {stage:?}: queue depth must be >= 1")
            }
            GraphError::ZeroDimension { stage } => {
                write!(f, "stage {stage:?}: dimensions must be >= 1")
            }
            GraphError::BadProbability { stage } => {
                write!(f, "stage {stage:?}: probability must be in [0, 1]")
            }
            GraphError::ZeroScale { stage } => {
                write!(f, "stage {stage:?}: normalize scale must be non-zero")
            }
            GraphError::DecodeRequiresResize { stage } => write!(
                f,
                "decode fuses the first resize on this substrate; expected a Resize \
                 stage directly after Decode, found {stage:?}"
            ),
            GraphError::CropLargerThanInput { stage, input, crop } => write!(
                f,
                "stage {stage:?}: crop {}x{} exceeds input geometry {}x{}",
                crop.0, crop.1, input.0, input.1
            ),
            GraphError::BadConfig { detail } => write!(f, "bad pipeline config: {detail}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Collects stages and edges; [`GraphBuilder::build`] validates.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    nodes: Vec<StageNode>,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a stage with default knobs and returns its handle.
    pub fn add(&mut self, name: &str, spec: StageSpec) -> NodeId {
        self.nodes.push(StageNode {
            name: name.to_string(),
            spec,
            parallelism: None,
            queue_depth: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Sets a stage's worker parallelism (validated non-zero at build).
    pub fn set_parallelism(&mut self, id: NodeId, parallelism: usize) {
        self.nodes[id.0].parallelism = Some(parallelism);
    }

    /// Sets a stage's downstream prefetch-queue depth (validated non-zero
    /// at build).
    pub fn set_queue_depth(&mut self, id: NodeId, depth: usize) {
        self.nodes[id.0].queue_depth = Some(depth);
    }

    /// Connects `from`'s output to `to`'s input. Checked at build time.
    pub fn connect(&mut self, from: NodeId, to: NodeId) {
        self.edges.push((from.0, to.0));
    }

    /// Validates and freezes the graph. See [`GraphError`] for everything
    /// that can be rejected; a returned graph is guaranteed to be one
    /// well-typed chain `Source -> ... -> Sink`.
    pub fn build(self) -> Result<PipelineGraph, GraphError> {
        let GraphBuilder { nodes, edges } = self;
        if nodes.is_empty() {
            return Err(GraphError::Empty);
        }
        // Unique names.
        let mut seen = std::collections::HashSet::new();
        for n in &nodes {
            if !seen.insert(n.name.as_str()) {
                return Err(GraphError::DuplicateStage {
                    name: n.name.clone(),
                });
            }
        }
        // Per-stage knob and parameter sanity.
        for n in &nodes {
            if n.parallelism == Some(0) {
                return Err(GraphError::ZeroParallelism {
                    stage: n.name.clone(),
                });
            }
            if n.queue_depth == Some(0) {
                return Err(GraphError::ZeroQueueDepth {
                    stage: n.name.clone(),
                });
            }
            match &n.spec {
                StageSpec::Resize { width, height } | StageSpec::RandomCrop { width, height }
                    if *width == 0 || *height == 0 =>
                {
                    return Err(GraphError::ZeroDimension {
                        stage: n.name.clone(),
                    });
                }
                StageSpec::RandomFlip { prob } if !(0.0..=1.0).contains(prob) => {
                    return Err(GraphError::BadProbability {
                        stage: n.name.clone(),
                    });
                }
                StageSpec::Normalize { scale, .. }
                    if scale.iter().any(|s| *s == 0.0 || !s.is_finite()) =>
                {
                    return Err(GraphError::ZeroScale {
                        stage: n.name.clone(),
                    });
                }
                _ => {}
            }
        }
        // Edge structure.
        let mut edge_set = std::collections::HashSet::new();
        for &(a, b) in &edges {
            if a >= nodes.len() || b >= nodes.len() {
                return Err(GraphError::UnknownStage { index: a.max(b) });
            }
            if a == b {
                return Err(GraphError::SelfEdge {
                    stage: nodes[a].name.clone(),
                });
            }
            if !edge_set.insert((a, b)) {
                return Err(GraphError::DuplicateEdge {
                    from: nodes[a].name.clone(),
                    to: nodes[b].name.clone(),
                });
            }
        }
        // Exactly one source, one sink.
        let sources: Vec<usize> = (0..nodes.len())
            .filter(|&i| nodes[i].spec.is_source())
            .collect();
        match sources.len() {
            0 => return Err(GraphError::MissingSource),
            1 => {}
            _ => {
                return Err(GraphError::MultipleSources {
                    stages: sources.iter().map(|&i| nodes[i].name.clone()).collect(),
                })
            }
        }
        let sinks: Vec<usize> = (0..nodes.len())
            .filter(|&i| nodes[i].spec.is_sink())
            .collect();
        match sinks.len() {
            0 => return Err(GraphError::MissingSink),
            1 => {}
            _ => {
                return Err(GraphError::MultipleSinks {
                    stages: sinks.iter().map(|&i| nodes[i].name.clone()).collect(),
                })
            }
        }
        let source = sources[0];
        let sink = sinks[0];
        // Fan-in / fan-out.
        let mut out_deg = vec![0usize; nodes.len()];
        let mut in_deg = vec![0usize; nodes.len()];
        let mut succ = vec![None::<usize>; nodes.len()];
        let mut pred = vec![None::<usize>; nodes.len()];
        for &(a, b) in &edges {
            out_deg[a] += 1;
            in_deg[b] += 1;
            succ[a] = Some(b);
            pred[b] = Some(a);
        }
        if let Some(i) = (0..nodes.len()).find(|&i| out_deg[i] > 1) {
            return Err(GraphError::FanOut {
                stage: nodes[i].name.clone(),
            });
        }
        if let Some(i) = (0..nodes.len()).find(|&i| in_deg[i] > 1) {
            return Err(GraphError::FanIn {
                stage: nodes[i].name.clone(),
            });
        }
        // Kinds agree along every edge (checked before connectivity so an
        // ill-typed edge is reported as such even on a cyclic graph).
        for &(a, b) in &edges {
            let produced = nodes[a]
                .spec
                .output()
                .ok_or_else(|| GraphError::TypeMismatch {
                    from: nodes[a].name.clone(),
                    to: nodes[b].name.clone(),
                    produced: DataKind::Tensor, // sink produces nothing; placeholder
                    expected: nodes[b].spec.expected_input(),
                })?;
            if !nodes[b].spec.accepts(produced) {
                return Err(GraphError::TypeMismatch {
                    from: nodes[a].name.clone(),
                    to: nodes[b].name.clone(),
                    produced,
                    expected: nodes[b].spec.expected_input(),
                });
            }
        }
        // Walk the chain from the source. With fan-in/out <= 1 this either
        // reaches the sink or stops; cycles not containing the source are
        // caught below as orphans-with-predecessors.
        let mut chain = vec![source];
        let mut on_chain = vec![false; nodes.len()];
        on_chain[source] = true;
        let mut cur = source;
        while let Some(next) = succ[cur] {
            if on_chain[next] {
                return Err(GraphError::Cycle {
                    stage: nodes[next].name.clone(),
                });
            }
            on_chain[next] = true;
            chain.push(next);
            cur = next;
        }
        if cur != sink {
            // The chain dead-ended before the sink: `cur` has no successor.
            return Err(GraphError::Orphan {
                stage: nodes[sink].name.clone(),
            });
        }
        if let Some(i) = (0..nodes.len()).find(|&i| !on_chain[i]) {
            // Off-chain nodes: either a detached cycle or a dangling stage.
            let mut walk = i;
            let mut hops = 0;
            while let Some(p) = pred[walk] {
                if p == i || hops > nodes.len() {
                    return Err(GraphError::Cycle {
                        stage: nodes[i].name.clone(),
                    });
                }
                walk = p;
                hops += 1;
            }
            return Err(GraphError::Orphan {
                stage: nodes[i].name.clone(),
            });
        }
        Ok(PipelineGraph { nodes, chain })
    }
}

/// A validated pipeline graph: one well-typed `Source -> ... -> Sink`
/// chain. Obtain via [`GraphBuilder::build`]; compile with
/// [`PipelineGraph::compile`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineGraph {
    nodes: Vec<StageNode>,
    /// Node indices in chain order (source first, sink last).
    chain: Vec<usize>,
}

impl PipelineGraph {
    /// Stage nodes in chain order.
    pub fn stages(&self) -> impl Iterator<Item = &StageNode> {
        self.chain.iter().map(|&i| &self.nodes[i])
    }

    /// Stage names in chain order.
    pub fn stage_names(&self) -> Vec<String> {
        self.stages().map(|n| n.name.clone()).collect()
    }

    /// Compiles the graph against `config`. Pure: identical inputs yield
    /// an identical [`CompiledPipeline`] (no clocks, no environment —
    /// `DLB_AUG_SEED` is resolved by the executor at start, not here).
    pub fn compile(&self, config: &GraphConfig) -> Result<CompiledPipeline, GraphError> {
        if config.batch_size == 0 {
            return Err(GraphError::BadConfig {
                detail: "batch_size must be >= 1".into(),
            });
        }
        if config.n_engines == 0 {
            return Err(GraphError::BadConfig {
                detail: "n_engines must be >= 1".into(),
            });
        }
        let stages: Vec<&StageNode> = self.stages().collect();
        let source_node = stages[0];
        let sink_node = stages[stages.len() - 1];
        let StageSpec::Source { kind: source } = source_node.spec else {
            unreachable!("validated graphs start at the source");
        };
        // Decode + fused resize.
        let decode_pos = stages
            .iter()
            .position(|n| matches!(n.spec, StageSpec::Decode { .. }))
            .ok_or(GraphError::BadConfig {
                detail: "no Decode stage on the chain".into(),
            })?;
        let StageSpec::Decode { device } = stages[decode_pos].spec else {
            unreachable!()
        };
        let after_decode = stages.get(decode_pos + 1).ok_or(GraphError::BadConfig {
            detail: "Decode cannot feed the sink directly".into(),
        })?;
        let StageSpec::Resize {
            width: rw,
            height: rh,
        } = after_decode.spec
        else {
            return Err(GraphError::DecodeRequiresResize {
                stage: after_decode.name.clone(),
            });
        };
        // Walk the transforms after the fused resize: accumulate the
        // augmentation plan and track geometry for crop validation.
        let mut ops = Vec::new();
        let mut geom = (rw, rh);
        let mut kind = DataKind::DecodedImage;
        for node in &stages[decode_pos + 2..stages.len() - 1] {
            match &node.spec {
                StageSpec::Resize { width, height } => {
                    ops.push(AugmentOp::Resize {
                        width: *width,
                        height: *height,
                    });
                    geom = (*width, *height);
                }
                StageSpec::RandomCrop { width, height } => {
                    if *width > geom.0 || *height > geom.1 {
                        return Err(GraphError::CropLargerThanInput {
                            stage: node.name.clone(),
                            input: geom,
                            crop: (*width, *height),
                        });
                    }
                    ops.push(AugmentOp::RandomCrop {
                        width: *width,
                        height: *height,
                    });
                    geom = (*width, *height);
                }
                StageSpec::RandomFlip { prob } => {
                    ops.push(AugmentOp::RandomFlip { prob: *prob });
                }
                StageSpec::Normalize { mean, scale } => {
                    ops.push(AugmentOp::Normalize {
                        mean: *mean,
                        scale: *scale,
                    });
                    kind = DataKind::Tensor;
                }
                other => {
                    return Err(GraphError::BadConfig {
                        detail: format!("stage {:?} cannot appear between resize and sink", other),
                    })
                }
            }
        }
        let output = OutputDesc {
            width: geom.0,
            height: geom.1,
            channels: 3,
            kind,
        };
        Ok(CompiledPipeline {
            source,
            decode: device,
            decode_parallelism: stages[decode_pos]
                .parallelism
                .unwrap_or(config.default_decode_parallelism.max(1)),
            ingest_depth: source_node.queue_depth.unwrap_or(64),
            slot_depth: sink_node.queue_depth.unwrap_or(8),
            resize: (rw, rh),
            output,
            plan: AugmentPlan { ops },
            seed: config.seed,
            batch_size: config.batch_size,
            n_engines: config.n_engines,
            stage_names: self.stage_names(),
        })
    }
}

/// Executor-level knobs the graph itself does not carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphConfig {
    /// Images per batch.
    pub batch_size: usize,
    /// Compute engines served (sink slot queues).
    pub n_engines: usize,
    /// Decode workers when the decode stage sets no explicit parallelism.
    pub default_decode_parallelism: usize,
    /// Augmentation run seed (overridable at start via `DLB_AUG_SEED`).
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            batch_size: 4,
            n_engines: 1,
            default_decode_parallelism: 1,
            seed: 0,
        }
    }
}

/// Geometry and kind of the items the pipeline delivers to its sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputDesc {
    /// Item width in pixels.
    pub width: u32,
    /// Item height in pixels.
    pub height: u32,
    /// Channels (always 3 on this substrate).
    pub channels: u8,
    /// Delivered kind ([`DataKind::DecodedImage`] or [`DataKind::Tensor`]).
    pub kind: DataKind,
}

impl OutputDesc {
    /// Bytes one delivered item occupies in a batch unit (tensors store
    /// f32 little-endian, 4 bytes per channel value).
    pub fn bytes_per_item(&self) -> usize {
        let per_value = if self.kind == DataKind::Tensor { 4 } else { 1 };
        self.width as usize * self.height as usize * self.channels as usize * per_value
    }
}

/// The compiled execution plan: everything an executor needs to wire the
/// chain onto the queue/pool/telemetry substrate.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPipeline {
    /// Source medium.
    pub source: SourceKind,
    /// Decode substrate.
    pub decode: DecodeDevice,
    /// Decode worker threads.
    pub decode_parallelism: usize,
    /// Depth of the queue after the source/decode stage (the reader's
    /// `Full_Batch_Queue`).
    pub ingest_depth: usize,
    /// Depth of each per-engine sink slot queue.
    pub slot_depth: usize,
    /// The fused decode-resize geometry.
    pub resize: (u32, u32),
    /// What the sink receives.
    pub output: OutputDesc,
    /// Host transforms applied per sample after the fused resize.
    pub plan: AugmentPlan,
    /// Augmentation run seed from the config (pre-env-resolution).
    pub seed: u64,
    /// Images per batch.
    pub batch_size: usize,
    /// Sink slot queues.
    pub n_engines: usize,
    /// Stage names in chain order (telemetry/diagnostics).
    pub stage_names: Vec<String>,
}

impl CompiledPipeline {
    /// Bytes one *decoded* (pre-augmentation) item occupies.
    pub fn decoded_bytes_per_item(&self) -> usize {
        self.resize.0 as usize * self.resize.1 as usize * 3
    }

    /// Batch-unit capacity: units hold the batch both at the decode stage
    /// (the FPGA writes resized RGB8 in place) and after augmentation
    /// (which may grow items 4x via Normalize), so size for the larger.
    pub fn unit_bytes(&self) -> usize {
        self.batch_size
            * self
                .decoded_bytes_per_item()
                .max(self.output.bytes_per_item())
    }

    /// The per-sample augmentor, honouring the `DLB_AUG_SEED` override.
    /// `None` when the chain has no transforms beyond the fused resize —
    /// executors then skip the augmentation hop entirely.
    pub fn augmentor(&self) -> Option<SampleAugmentor> {
        self.augmentor_with_seed(crate::seed::resolve_run_seed(self.seed))
    }

    /// Like [`CompiledPipeline::augmentor`] with an explicit run seed
    /// (tests; replaying a recorded run).
    pub fn augmentor_with_seed(&self, run_seed: u64) -> Option<SampleAugmentor> {
        if self.plan.ops.is_empty() {
            return None;
        }
        Some(SampleAugmentor::new(self.plan.clone(), run_seed))
    }
}

//! Linear-chain sugar and the canned graphs the legacy constructors
//! compile to.
//!
//! Most pipelines are a straight line; [`Chain`] builds one without
//! explicit node handles. The `fpga_training` / `fpga_streaming` /
//! `cpu_training` constructors reproduce the exact hardwired chains the
//! pre-graph `DlBooster::start` and `CpuBackend::start` wired by hand —
//! the differential suite (`tests/graph_equivalence.rs`) holds them
//! bitwise-equal to the preserved hardwired paths.

use crate::graph::{GraphBuilder, GraphError, NodeId, PipelineGraph};
use crate::stage::{DecodeDevice, SourceKind, StageSpec};

/// Builds a linear pipeline: each pushed stage is connected to the
/// previous one. Finish with [`Chain::build`].
#[derive(Debug, Default, Clone)]
pub struct Chain {
    builder: GraphBuilder,
    tail: Option<NodeId>,
}

impl Chain {
    /// An empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage, connecting it to the previous tail.
    pub fn then(mut self, name: &str, spec: StageSpec) -> Self {
        let id = self.builder.add(name, spec);
        if let Some(prev) = self.tail {
            self.builder.connect(prev, id);
        }
        self.tail = Some(id);
        self
    }

    /// Sets the parallelism of the most recently appended stage.
    pub fn parallelism(mut self, parallelism: usize) -> Self {
        if let Some(id) = self.tail {
            self.builder.set_parallelism(id, parallelism);
        }
        self
    }

    /// Sets the downstream queue depth of the most recently appended stage.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        if let Some(id) = self.tail {
            self.builder.set_queue_depth(id, depth);
        }
        self
    }

    /// Validates and returns the graph.
    pub fn build(self) -> Result<PipelineGraph, GraphError> {
        self.builder.build()
    }
}

/// The canned FPGA training pipeline: the chain `DlBooster::start` has
/// always wired — disk manifest, FPGA decode with on-device resize,
/// per-engine slot queues.
pub fn fpga_training(target_w: u32, target_h: u32) -> PipelineGraph {
    Chain::new()
        .then(
            "manifest",
            StageSpec::Source {
                kind: SourceKind::Disk,
            },
        )
        .then(
            "fpga-decode",
            StageSpec::Decode {
                device: DecodeDevice::Fpga,
            },
        )
        .then(
            "resize",
            StageSpec::Resize {
                width: target_w,
                height: target_h,
            },
        )
        .then("dispatch", StageSpec::Sink)
        .build()
        .expect("canned graph is well-formed by construction")
}

/// The canned FPGA served/streaming pipeline: identical transform chain,
/// NIC-fed source (no epochs; arrival deadlines instead).
pub fn fpga_streaming(target_w: u32, target_h: u32) -> PipelineGraph {
    Chain::new()
        .then(
            "nic-rx",
            StageSpec::Source {
                kind: SourceKind::Net,
            },
        )
        .then(
            "fpga-decode",
            StageSpec::Decode {
                device: DecodeDevice::Fpga,
            },
        )
        .then(
            "resize",
            StageSpec::Resize {
                width: target_w,
                height: target_h,
            },
        )
        .then("dispatch", StageSpec::Sink)
        .build()
        .expect("canned graph is well-formed by construction")
}

/// The canned CPU baseline pipeline: the chain `CpuBackend::start` has
/// always wired — disk manifest, host worker pool decoding and resizing.
pub fn cpu_training(target_w: u32, target_h: u32, workers: usize) -> PipelineGraph {
    Chain::new()
        .then(
            "manifest",
            StageSpec::Source {
                kind: SourceKind::Disk,
            },
        )
        .then(
            "cpu-decode",
            StageSpec::Decode {
                device: DecodeDevice::Cpu,
            },
        )
        .parallelism(workers.max(1))
        .then(
            "resize",
            StageSpec::Resize {
                width: target_w,
                height: target_h,
            },
        )
        .then("dispatch", StageSpec::Sink)
        .build()
        .expect("canned graph is well-formed by construction")
}

/// A canned *augmented* training pipeline: fused decode-resize followed by
/// the classic crop/flip/normalize tail. `decode` picks the substrate.
pub fn augmented_training(
    decode: DecodeDevice,
    resize: (u32, u32),
    crop: (u32, u32),
    flip_prob: f32,
    normalize: Option<([f32; 3], [f32; 3])>,
    workers: usize,
) -> Result<PipelineGraph, GraphError> {
    let mut c = Chain::new()
        .then(
            "manifest",
            StageSpec::Source {
                kind: SourceKind::Disk,
            },
        )
        .then("decode", StageSpec::Decode { device: decode })
        .parallelism(workers.max(1))
        .then(
            "resize",
            StageSpec::Resize {
                width: resize.0,
                height: resize.1,
            },
        )
        .then(
            "random-crop",
            StageSpec::RandomCrop {
                width: crop.0,
                height: crop.1,
            },
        )
        .then("random-flip", StageSpec::RandomFlip { prob: flip_prob });
    if let Some((mean, scale)) = normalize {
        c = c.then("normalize", StageSpec::Normalize { mean, scale });
    }
    c.then("dispatch", StageSpec::Sink).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphConfig;
    use crate::stage::DataKind;

    #[test]
    fn canned_graphs_validate_and_compile() {
        for g in [
            fpga_training(40, 40),
            fpga_streaming(32, 32),
            cpu_training(40, 40, 4),
        ] {
            let c = g.compile(&GraphConfig::default()).unwrap();
            assert!(c.plan.ops.is_empty(), "legacy chains have no augmentation");
            assert_eq!(c.output.kind, DataKind::DecodedImage);
        }
    }

    #[test]
    fn cpu_parallelism_flows_through() {
        let c = cpu_training(40, 40, 6)
            .compile(&GraphConfig::default())
            .unwrap();
        assert_eq!(c.decode_parallelism, 6);
    }

    #[test]
    fn augmented_chain_compiles_with_tensor_output() {
        let g = augmented_training(
            DecodeDevice::Cpu,
            (48, 48),
            (32, 32),
            0.5,
            Some(([127.5; 3], [127.5; 3])),
            2,
        )
        .unwrap();
        let c = g.compile(&GraphConfig::default()).unwrap();
        assert_eq!(c.output.kind, DataKind::Tensor);
        assert_eq!(c.output.bytes_per_item(), 32 * 32 * 3 * 4);
        assert_eq!(c.plan.ops.len(), 3);
        // Unit must hold the larger of decoded (48*48*3) and output bytes.
        assert_eq!(c.unit_bytes(), c.batch_size * 32 * 32 * 3 * 4);
    }

    #[test]
    fn oversized_crop_rejected_at_compile() {
        let g = augmented_training(DecodeDevice::Cpu, (32, 32), (64, 64), 0.0, None, 1).unwrap();
        match g.compile(&GraphConfig::default()) {
            Err(GraphError::CropLargerThanInput { input, crop, .. }) => {
                assert_eq!(input, (32, 32));
                assert_eq!(crop, (64, 64));
            }
            other => panic!("expected CropLargerThanInput, got {other:?}"),
        }
    }
}

//! Stage and data-kind vocabulary of the pipeline graph.

use std::fmt;

/// The kind of datum flowing along an edge. Every stage declares what it
/// consumes and what it produces; [`crate::GraphBuilder::build`] rejects
/// edges whose kinds disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataKind {
    /// Compressed JPEG bytes (plus source metadata).
    EncodedJpeg,
    /// Decoded interleaved RGB8 pixels.
    DecodedImage,
    /// Planar CHW f32 tensor (stored little-endian in batch units).
    Tensor,
}

impl fmt::Display for DataKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataKind::EncodedJpeg => write!(f, "EncodedJpeg"),
            DataKind::DecodedImage => write!(f, "DecodedImage"),
            DataKind::Tensor => write!(f, "Tensor"),
        }
    }
}

/// Where the source stage draws compressed images from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Dataset manifest on the NVMe disk (training mode; epochs wrap).
    Disk,
    /// NIC RX descriptors / serving-layer stream (online mode).
    Net,
}

/// Which substrate executes the decode stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeDevice {
    /// Host worker threads running the from-scratch JPEG decoder.
    Cpu,
    /// The FPGA decoder mirror (the paper's offload path).
    Fpga,
}

/// What a stage does. The decode substrate fuses the first resize (the
/// FPGA decoder resizes on-device, §3.1, and the CPU path mirrors it for
/// bit-exactness), so a `Decode` node must be followed immediately by a
/// `Resize` node; everything after that resize down to the sink runs as
/// per-sample host transforms.
#[derive(Debug, Clone, PartialEq)]
pub enum StageSpec {
    /// Produces [`DataKind::EncodedJpeg`] items.
    Source {
        /// Backing medium.
        kind: SourceKind,
    },
    /// JPEG entropy decode + iDCT + colour conversion.
    Decode {
        /// Executing substrate.
        device: DecodeDevice,
    },
    /// Bilinear resize to a fixed geometry.
    Resize {
        /// Output width in pixels.
        width: u32,
        /// Output height in pixels.
        height: u32,
    },
    /// Seeded random crop (training augmentation).
    RandomCrop {
        /// Crop width in pixels.
        width: u32,
        /// Crop height in pixels.
        height: u32,
    },
    /// Seeded random horizontal flip (training augmentation).
    RandomFlip {
        /// Flip probability in `[0, 1]`.
        prob: f32,
    },
    /// Per-channel `(px - mean) / scale` into a planar CHW f32 tensor.
    Normalize {
        /// Per-channel mean.
        mean: [f32; 3],
        /// Per-channel scale (must be non-zero).
        scale: [f32; 3],
    },
    /// Consumes finished items (the per-engine slot queues).
    Sink,
}

impl StageSpec {
    /// What this stage emits, or `None` for the sink.
    pub fn output(&self) -> Option<DataKind> {
        match self {
            StageSpec::Source { .. } => Some(DataKind::EncodedJpeg),
            StageSpec::Decode { .. }
            | StageSpec::Resize { .. }
            | StageSpec::RandomCrop { .. }
            | StageSpec::RandomFlip { .. } => Some(DataKind::DecodedImage),
            StageSpec::Normalize { .. } => Some(DataKind::Tensor),
            StageSpec::Sink => None,
        }
    }

    /// Whether this stage can consume `upstream`. Sources consume nothing.
    pub fn accepts(&self, upstream: DataKind) -> bool {
        match self {
            StageSpec::Source { .. } => false,
            StageSpec::Decode { .. } => upstream == DataKind::EncodedJpeg,
            StageSpec::Resize { .. }
            | StageSpec::RandomCrop { .. }
            | StageSpec::RandomFlip { .. }
            | StageSpec::Normalize { .. } => upstream == DataKind::DecodedImage,
            StageSpec::Sink => matches!(upstream, DataKind::DecodedImage | DataKind::Tensor),
        }
    }

    /// Human-readable description of what this stage consumes, for
    /// [`crate::GraphError::TypeMismatch`] messages.
    pub fn expected_input(&self) -> &'static str {
        match self {
            StageSpec::Source { .. } => "nothing (sources have no input)",
            StageSpec::Decode { .. } => "EncodedJpeg",
            StageSpec::Resize { .. }
            | StageSpec::RandomCrop { .. }
            | StageSpec::RandomFlip { .. }
            | StageSpec::Normalize { .. } => "DecodedImage",
            StageSpec::Sink => "DecodedImage or Tensor",
        }
    }

    /// True for the two structural endpoints.
    pub fn is_source(&self) -> bool {
        matches!(self, StageSpec::Source { .. })
    }

    /// True for the sink.
    pub fn is_sink(&self) -> bool {
        matches!(self, StageSpec::Sink)
    }
}

/// A named stage plus its execution knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct StageNode {
    /// Unique stage name (diagnostics, telemetry labels).
    pub name: String,
    /// What the stage does.
    pub spec: StageSpec,
    /// Worker threads for this stage (`None` = substrate default). Only
    /// meaningful on `Decode` today; validated non-zero everywhere.
    pub parallelism: Option<usize>,
    /// Prefetch-queue depth *downstream* of this stage (`None` = substrate
    /// default: 64 after the source, 8 per sink slot queue).
    pub queue_depth: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_line_up_along_the_legacy_chain() {
        let src = StageSpec::Source {
            kind: SourceKind::Disk,
        };
        let dec = StageSpec::Decode {
            device: DecodeDevice::Fpga,
        };
        let rsz = StageSpec::Resize {
            width: 32,
            height: 32,
        };
        let sink = StageSpec::Sink;
        assert!(dec.accepts(src.output().unwrap()));
        assert!(rsz.accepts(dec.output().unwrap()));
        assert!(sink.accepts(rsz.output().unwrap()));
        assert!(
            !sink.accepts(src.output().unwrap()),
            "undecoded bytes cannot be served"
        );
    }

    #[test]
    fn normalize_produces_tensor() {
        let n = StageSpec::Normalize {
            mean: [0.0; 3],
            scale: [1.0; 3],
        };
        assert_eq!(n.output(), Some(DataKind::Tensor));
        let sink = StageSpec::Sink;
        assert!(sink.accepts(DataKind::Tensor));
    }
}

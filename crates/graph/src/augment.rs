//! Seeded per-sample augmentation: the executable form of the transform
//! stages between the fused decode-resize and the sink.
//!
//! [`PipelineGraph::compile`](crate::PipelineGraph::compile) lowers
//! `RandomCrop`/`RandomFlip`/`Normalize`/extra-`Resize` stages into an
//! [`AugmentPlan`]; executors wrap it in a [`SampleAugmentor`] and apply it
//! wherever decoded pixels meet per-item metadata (the FPGA reader's
//! completion path, the CPU workers, the cache-bypass path). Randomness
//! follows [`crate::seed`]: each `(epoch, sample-identity)` pair owns an
//! independent draw stream, and every op consumes a *fixed* number of
//! draws, so stream positions — and therefore every draw — are invariant
//! to worker count, batch composition, and chaos-injected retries.

use crate::seed::{derive_sample_seed, SeedStream};
use dlb_codec::augment::{crop, hflip, to_tensor_chw, CropRect};
use dlb_codec::pixel::{ColorSpace, Image};
use dlb_codec::resize::{resize, ResizeFilter};

/// One host-side transform, in application order.
#[derive(Debug, Clone, PartialEq)]
pub enum AugmentOp {
    /// Extra bilinear resize (beyond the fused decode-resize).
    Resize {
        /// Output width.
        width: u32,
        /// Output height.
        height: u32,
    },
    /// Random crop; consumes two draws (x then y) per sample.
    RandomCrop {
        /// Crop width.
        width: u32,
        /// Crop height.
        height: u32,
    },
    /// Random horizontal flip; consumes one draw per sample.
    RandomFlip {
        /// Flip probability in `[0, 1]`.
        prob: f32,
    },
    /// `(px - mean) / scale` into planar CHW f32 (stored little-endian).
    Normalize {
        /// Per-channel mean.
        mean: [f32; 3],
        /// Per-channel scale.
        scale: [f32; 3],
    },
}

/// An ordered list of transforms shared by every sample of a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AugmentPlan {
    /// Transforms in application order.
    pub ops: Vec<AugmentOp>,
}

/// One augmented sample: raw bytes plus the geometry they describe.
/// `data` is interleaved RGB8 for images, little-endian f32 CHW for
/// tensors — exactly the layout batch units store.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentedSample {
    /// Output bytes.
    pub data: Vec<u8>,
    /// Width after all transforms.
    pub width: u32,
    /// Height after all transforms.
    pub height: u32,
    /// Channel count (3 on this substrate).
    pub channels: u8,
    /// True when `data` is a little-endian f32 CHW tensor.
    pub is_tensor: bool,
}

/// Applies an [`AugmentPlan`] to decoded samples with replayable
/// randomness. Cheap to clone; safe to share across worker threads (each
/// `apply` call derives its own stream, no interior state).
#[derive(Debug, Clone)]
pub struct SampleAugmentor {
    plan: AugmentPlan,
    run_seed: u64,
}

impl SampleAugmentor {
    /// An augmentor over `plan` with the already-resolved run seed.
    pub fn new(plan: AugmentPlan, run_seed: u64) -> Self {
        Self { plan, run_seed }
    }

    /// The resolved run seed (diagnostics / replay).
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// The plan being applied.
    pub fn plan(&self) -> &AugmentPlan {
        &self.plan
    }

    /// Output geometry this plan produces for a `width`x`height` decoded
    /// input (geometry is draw-independent: crops move, they don't resize).
    pub fn output_dims(&self, mut w: u32, mut h: u32) -> (u32, u32) {
        for op in &self.plan.ops {
            if let AugmentOp::Resize { width, height } | AugmentOp::RandomCrop { width, height } =
                op
            {
                w = *width;
                h = *height;
            }
        }
        (w, h)
    }

    /// Bytes per item this plan produces for a `width`x`height` decoded
    /// input (used by executors to size batch units).
    pub fn output_bytes(&self, w: u32, h: u32) -> usize {
        let tensor = self
            .plan
            .ops
            .iter()
            .any(|op| matches!(op, AugmentOp::Normalize { .. }));
        let (w, h) = self.output_dims(w, h);
        w as usize * h as usize * 3 * if tensor { 4 } else { 1 }
    }

    /// Augments one decoded sample. `epoch` and `identity` key the draw
    /// stream (see [`crate::seed::derive_sample_seed`]); `data` is
    /// interleaved RGB8 of `width`x`height`. Non-RGB inputs (channels
    /// != 3) pass through untouched — the substrate only decodes RGB.
    pub fn apply(
        &self,
        epoch: u64,
        identity: u64,
        data: &[u8],
        width: u32,
        height: u32,
        channels: u8,
    ) -> AugmentedSample {
        if channels != 3 || data.len() != width as usize * height as usize * 3 {
            return AugmentedSample {
                data: data.to_vec(),
                width,
                height,
                channels,
                is_tensor: false,
            };
        }
        let mut stream = SeedStream::new(derive_sample_seed(self.run_seed, epoch, identity));
        let mut img = Image::from_vec(width, height, ColorSpace::Rgb, data.to_vec())
            .expect("length checked above");
        let mut tensor: Option<Vec<f32>> = None;
        for op in &self.plan.ops {
            match op {
                AugmentOp::Resize { width, height } => {
                    img = resize(&img, *width, *height, ResizeFilter::Bilinear)
                        .expect("validated dims");
                }
                AugmentOp::RandomCrop { width, height } => {
                    // Two draws, x then y, consumed even when the crop is
                    // degenerate so stream positions stay aligned.
                    let max_x = u64::from(img.width().saturating_sub(*width));
                    let max_y = u64::from(img.height().saturating_sub(*height));
                    let x = stream.next_upto(max_x) as u32;
                    let y = stream.next_upto(max_y) as u32;
                    img = crop(
                        &img,
                        CropRect {
                            x,
                            y,
                            width: (*width).min(img.width()),
                            height: (*height).min(img.height()),
                        },
                    )
                    .expect("crop validated at graph build");
                }
                AugmentOp::RandomFlip { prob } => {
                    if stream.next_unit() < f64::from(*prob) {
                        img = hflip(&img);
                    }
                }
                AugmentOp::Normalize { mean, scale } => {
                    tensor = Some(
                        to_tensor_chw(&img, mean, scale).expect("scale validated at graph build"),
                    );
                }
            }
        }
        let (w, h) = (img.width(), img.height());
        match tensor {
            Some(t) => {
                let mut bytes = Vec::with_capacity(t.len() * 4);
                for v in &t {
                    bytes.extend_from_slice(&v.to_le_bytes());
                }
                AugmentedSample {
                    data: bytes,
                    width: w,
                    height: h,
                    channels: 3,
                    is_tensor: true,
                }
            }
            None => AugmentedSample {
                data: img.into_vec(),
                width: w,
                height: h,
                channels: 3,
                is_tensor: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient(w: u32, h: u32) -> Vec<u8> {
        let mut v = Vec::with_capacity((w * h * 3) as usize);
        for y in 0..h {
            for x in 0..w {
                v.extend_from_slice(&[x as u8, y as u8, (x * y) as u8]);
            }
        }
        v
    }

    fn crop_flip_plan() -> AugmentPlan {
        AugmentPlan {
            ops: vec![
                AugmentOp::RandomCrop {
                    width: 8,
                    height: 8,
                },
                AugmentOp::RandomFlip { prob: 0.5 },
            ],
        }
    }

    #[test]
    fn same_key_replays_bitwise() {
        let aug = SampleAugmentor::new(crop_flip_plan(), 42);
        let px = gradient(16, 16);
        let a = aug.apply(3, 77, &px, 16, 16, 3);
        let b = aug.apply(3, 77, &px, 16, 16, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn epoch_changes_draws() {
        let aug = SampleAugmentor::new(crop_flip_plan(), 42);
        let px = gradient(64, 64);
        let plan = AugmentPlan {
            ops: vec![AugmentOp::RandomCrop {
                width: 8,
                height: 8,
            }],
        };
        let aug_crop = SampleAugmentor::new(plan, 42);
        // Over many identities at least one sample must crop differently
        // between epochs (all-equal would mean the epoch isn't folded in).
        let differs = (0..32u64).any(|id| {
            aug_crop.apply(1, id, &px, 64, 64, 3).data != aug_crop.apply(2, id, &px, 64, 64, 3).data
        });
        assert!(differs, "epoch must affect augmentation draws");
        let _ = aug;
    }

    #[test]
    fn normalize_yields_le_f32_tensor() {
        let plan = AugmentPlan {
            ops: vec![AugmentOp::Normalize {
                mean: [0.0; 3],
                scale: [1.0; 3],
            }],
        };
        let aug = SampleAugmentor::new(plan, 0);
        let px = vec![10u8, 20, 30, 40, 50, 60]; // 2x1 RGB
        let out = aug.apply(0, 0, &px, 2, 1, 3);
        assert!(out.is_tensor);
        assert_eq!(out.data.len(), 6 * 4);
        // CHW: R plane first.
        assert_eq!(f32::from_le_bytes(out.data[0..4].try_into().unwrap()), 10.0);
        assert_eq!(f32::from_le_bytes(out.data[4..8].try_into().unwrap()), 40.0);
    }

    #[test]
    fn output_bytes_tracks_geometry_and_kind() {
        let aug = SampleAugmentor::new(crop_flip_plan(), 0);
        assert_eq!(aug.output_bytes(16, 16), 8 * 8 * 3);
        let plan = AugmentPlan {
            ops: vec![AugmentOp::Normalize {
                mean: [0.0; 3],
                scale: [1.0; 3],
            }],
        };
        assert_eq!(
            SampleAugmentor::new(plan, 0).output_bytes(4, 4),
            4 * 4 * 3 * 4
        );
    }

    #[test]
    fn passthrough_for_non_rgb() {
        let aug = SampleAugmentor::new(crop_flip_plan(), 0);
        let bytes = vec![1u8, 2, 3, 4];
        let out = aug.apply(0, 0, &bytes, 2, 2, 1);
        assert_eq!(out.data, bytes);
        assert_eq!(out.channels, 1);
    }
}

//! Seed derivation for replayable augmentation.
//!
//! The scheme follows the chaos plane's determinism rules: every random
//! decision is a pure function of a run seed and a *stable operation
//! identity*, never of scheduling. For augmentation the identity is the
//! pair `(epoch, sample identity)`, where the sample identity hashes the
//! source location (disk offset + length). Consequences:
//!
//! * the same run seed replays every epoch's augmentations bitwise;
//! * worker count, batch composition and delivery order are irrelevant —
//!   a sample draws the same crop/flip no matter which thread decodes it;
//! * a chaos-injected retry (FPGA cmd resubmission, failover re-decode)
//!   re-derives the same seed and therefore the same augmentation;
//! * different epochs fold a different epoch ordinal in, so draws differ.

/// The splitmix64 increment (golden-ratio constant).
pub const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer — the same diffusion function the chaos plane and
/// the collector's epoch shuffle use.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(GOLDEN);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-sample augmentation seed: a chained splitmix64 hash of
/// `(run_seed, epoch, identity)`, each component fully diffused before the
/// next is folded in so that nearby epochs / offsets decorrelate.
pub fn derive_sample_seed(run_seed: u64, epoch: u64, identity: u64) -> u64 {
    let a = splitmix64(run_seed ^ 0xD1B5_4A32_D192_ED03);
    let b = splitmix64(a ^ epoch);
    splitmix64(b ^ identity)
}

/// Stable identity of a decode source. `tag` separates source spaces
/// (0 = disk, 1 = host memory); `a`/`b` are the location coordinates
/// (offset + length, or physical address + length).
pub fn source_identity(tag: u64, a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(tag ^ 0xA076_1D64_78BD_642F) ^ a.rotate_left(17) ^ b)
}

/// Environment override for the augmentation run seed. When `DLB_AUG_SEED`
/// parses as a u64 it replaces `config_seed`; resolution happens at
/// pipeline *start*, never inside `compile` (compilation stays a pure
/// function of its inputs).
pub fn resolve_run_seed(config_seed: u64) -> u64 {
    std::env::var("DLB_AUG_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(config_seed)
}

/// A deterministic draw stream: splitmix64 over an advancing counter. Each
/// sample gets its own stream seeded by [`derive_sample_seed`]; ops consume
/// a fixed number of draws so the stream position after op *k* is the same
/// for every sample.
#[derive(Debug, Clone)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// A stream over `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        splitmix64(self.state)
    }

    /// Uniform draw in `[0, bound]` (inclusive); `bound == 0` always
    /// returns 0 but still consumes one draw, keeping stream positions
    /// aligned across images of different sizes.
    pub fn next_upto(&mut self, bound: u64) -> u64 {
        let draw = self.next_u64();
        if bound == 0 {
            0
        } else {
            draw % (bound + 1)
        }
    }

    /// Uniform draw in `[0, 1)` with 53 significant bits.
    pub fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_seed_is_stable_and_sensitive() {
        let s = derive_sample_seed(7, 1, 42);
        assert_eq!(s, derive_sample_seed(7, 1, 42));
        assert_ne!(s, derive_sample_seed(8, 1, 42), "run seed must matter");
        assert_ne!(s, derive_sample_seed(7, 2, 42), "epoch must matter");
        assert_ne!(s, derive_sample_seed(7, 1, 43), "identity must matter");
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = SeedStream::new(99);
        let mut b = SeedStream::new(99);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_draw_in_range_and_position_preserving() {
        let mut a = SeedStream::new(5);
        let mut b = SeedStream::new(5);
        for bound in [0u64, 1, 7, 1000] {
            assert!(a.next_upto(bound) <= bound);
            b.next_u64(); // zero-bound still consumed a draw
        }
        assert_eq!(a.next_u64(), b.next_u64(), "stream positions aligned");
    }

    #[test]
    fn identity_separates_source_spaces() {
        assert_ne!(source_identity(0, 4096, 100), source_identity(1, 4096, 100));
        assert_ne!(source_identity(0, 4096, 100), source_identity(0, 4096, 101));
    }

    #[test]
    fn env_override_resolves() {
        // Serialised with any other env-touching test by running in its own
        // process when it matters; here the var is set and removed locally.
        std::env::set_var("DLB_AUG_SEED", "314159");
        assert_eq!(resolve_run_seed(1), 314159);
        std::env::set_var("DLB_AUG_SEED", "not-a-number");
        assert_eq!(resolve_run_seed(1), 1);
        std::env::remove_var("DLB_AUG_SEED");
        assert_eq!(resolve_run_seed(1), 1);
    }
}

//! Property suite for the pipeline-graph plane.
//!
//! Four families over arbitrary stage chains:
//! * **Soundness** — every well-typed chain builds and compiles, and the
//!   compiled geometry/knobs are exactly the fold of the stage list.
//! * **Structural rejection** — every structural mutation (dropped or
//!   duplicated endpoints, fan-in/out, cycles, orphans, ill-typed edges,
//!   self/duplicate edges, foreign node handles) is rejected with its
//!   *specific* [`GraphError`] variant, never a catch-all.
//! * **Parameter rejection** — zero dimensions/parallelism/queue depth,
//!   out-of-range probabilities, zero scales and oversized crops name the
//!   offending stage in their error.
//! * **Purity** — `compile` is a pure function of `(graph, config)`: the
//!   same chain built twice and compiled twice yields identical
//!   [`CompiledPipeline`]s, and differing seeds differ only in the seed.
//!
//! Case count is pinned in CI; override with `PROPTEST_CASES`.

use dlb_graph::{
    AugmentOp, DataKind, DecodeDevice, GraphBuilder, GraphConfig, GraphError, NodeId,
    PipelineGraph, SourceKind, StageSpec,
};
use proptest::collection::vec;
use proptest::prelude::*;

/// One raw generated transform between the fused resize and the sink.
/// `kind % 3` selects resize / crop / flip; normalize is appended
/// separately (it must sit last — only the sink accepts tensors).
type RawOp = (u8, u32, u32, f32);

/// A raw generated chain: decode device flag, fused resize geometry,
/// decode parallelism, source/sink queue depths, mid-chain transforms,
/// and whether a trailing normalize is appended.
type RawChain = (bool, u32, u32, usize, usize, usize, Vec<RawOp>, bool);

fn chains() -> impl Strategy<Value = RawChain> {
    (
        any::<bool>(),
        8u32..64,
        8u32..64,
        1usize..8,
        1usize..128,
        1usize..32,
        vec((0u8..3, 1u32..64, 1u32..64, 0f32..=1.0f32), 0..5),
        any::<bool>(),
    )
}

/// The fully-typed form of a generated chain, with the geometry fold the
/// compiled pipeline must reproduce.
struct TypedChain {
    stages: Vec<StageSpec>,
    expect_geom: (u32, u32),
    expect_tensor: bool,
}

/// Lowers a raw chain to stage specs, clamping crops to the running
/// geometry so the result is well-formed by construction.
fn typed(raw: &RawChain) -> TypedChain {
    let (fpga, rw, rh, _, _, _, ops, normalize) = raw;
    let mut stages = vec![
        StageSpec::Source {
            kind: SourceKind::Disk,
        },
        StageSpec::Decode {
            device: if *fpga {
                DecodeDevice::Fpga
            } else {
                DecodeDevice::Cpu
            },
        },
        StageSpec::Resize {
            width: *rw,
            height: *rh,
        },
    ];
    let mut geom = (*rw, *rh);
    for (kind, w, h, prob) in ops {
        match kind % 3 {
            0 => {
                stages.push(StageSpec::Resize {
                    width: *w,
                    height: *h,
                });
                geom = (*w, *h);
            }
            1 => {
                let (cw, ch) = ((*w).min(geom.0), (*h).min(geom.1));
                stages.push(StageSpec::RandomCrop {
                    width: cw,
                    height: ch,
                });
                geom = (cw, ch);
            }
            _ => stages.push(StageSpec::RandomFlip { prob: *prob }),
        }
    }
    if *normalize {
        stages.push(StageSpec::Normalize {
            mean: [127.5; 3],
            scale: [127.5; 3],
        });
    }
    stages.push(StageSpec::Sink);
    TypedChain {
        stages,
        expect_geom: geom,
        expect_tensor: *normalize,
    }
}

/// Builds the typed chain through [`GraphBuilder`], returning the builder
/// (pre-`build`, for mutation) and the issued node handles in chain order.
fn builder_for(raw: &RawChain, chain: &TypedChain) -> (GraphBuilder, Vec<NodeId>) {
    let (_, _, _, par, src_depth, sink_depth, _, _) = raw;
    let mut b = GraphBuilder::new();
    let mut ids = Vec::new();
    for (i, spec) in chain.stages.iter().enumerate() {
        let id = b.add(&format!("stage-{i}"), spec.clone());
        if let Some(&prev) = ids.last() {
            b.connect(prev, id);
        }
        ids.push(id);
    }
    b.set_parallelism(ids[1], *par);
    b.set_queue_depth(ids[0], *src_depth);
    b.set_queue_depth(*ids.last().unwrap(), *sink_depth);
    (b, ids)
}

fn build(raw: &RawChain) -> (PipelineGraph, TypedChain) {
    let chain = typed(raw);
    let (b, _) = builder_for(raw, &chain);
    let graph = b.build().expect("well-typed chain must build");
    (graph, chain)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn well_typed_chains_always_build_and_compile(
        raw in chains(),
        batch in 1usize..8,
        engines in 1usize..4,
    ) {
        let (graph, chain) = build(&raw);
        let (_, _, _, par, src_depth, sink_depth, _, _) = &raw;
        let config = GraphConfig {
            batch_size: batch,
            n_engines: engines,
            default_decode_parallelism: 1,
            seed: 0,
        };
        let c = graph.compile(&config).expect("well-typed chain must compile");
        // The compiled plan is exactly the fold of the stage list.
        prop_assert_eq!((c.output.width, c.output.height), chain.expect_geom);
        prop_assert_eq!(
            c.output.kind,
            if chain.expect_tensor { DataKind::Tensor } else { DataKind::DecodedImage }
        );
        prop_assert_eq!(c.decode_parallelism, *par);
        prop_assert_eq!(c.ingest_depth, *src_depth);
        prop_assert_eq!(c.slot_depth, *sink_depth);
        prop_assert_eq!(c.batch_size, batch);
        prop_assert_eq!(c.n_engines, engines);
        prop_assert_eq!(c.stage_names.len(), chain.stages.len());
        // Unit sizing covers both the decoded and the augmented form.
        let decoded = c.resize.0 as usize * c.resize.1 as usize * 3;
        prop_assert_eq!(
            c.unit_bytes(),
            batch * decoded.max(c.output.bytes_per_item())
        );
        // The plan holds exactly the post-resize transforms.
        prop_assert_eq!(c.plan.ops.len(), chain.stages.len() - 4);
        prop_assert_eq!(
            c.plan.ops.iter().any(|op| matches!(op, AugmentOp::Normalize { .. })),
            chain.expect_tensor
        );
    }

    #[test]
    fn compile_is_a_pure_function_of_graph_and_config(
        raw in chains(),
        batch in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let (g1, _) = build(&raw);
        let (g2, _) = build(&raw);
        prop_assert_eq!(&g1, &g2);
        let config = GraphConfig {
            batch_size: batch,
            n_engines: 2,
            default_decode_parallelism: 3,
            seed,
        };
        let a = g1.compile(&config).unwrap();
        let b = g1.compile(&config).unwrap();
        let c = g2.compile(&config).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        // The seed flows through verbatim and is the *only* seed input.
        prop_assert_eq!(a.seed, seed);
        let other = g1
            .compile(&GraphConfig { seed: seed ^ 1, ..config })
            .unwrap();
        prop_assert_eq!(other.seed, seed ^ 1);
        prop_assert_eq!(&other.plan, &a.plan);
    }

    #[test]
    fn structural_mutations_rejected_with_exact_variant(raw in chains()) {
        let chain = typed(&raw);
        let fresh = || builder_for(&raw, &chain);
        let last = chain.stages.len() - 1;
        let src_spec = StageSpec::Source { kind: SourceKind::Net };
        let flip = StageSpec::RandomFlip { prob: 0.5 };

        // Baseline: untouched builder is valid.
        prop_assert!(fresh().0.build().is_ok());

        // Second source (off-chain; endpoint counting fires before the
        // orphan walk).
        let (mut b, _) = fresh();
        b.add("rogue-source", src_spec.clone());
        prop_assert!(
            matches!(b.build(), Err(GraphError::MultipleSources { ref stages }) if stages.len() == 2)
        , "unexpected build/compile result");

        // Second sink.
        let (mut b, _) = fresh();
        b.add("rogue-sink", StageSpec::Sink);
        prop_assert!(
            matches!(b.build(), Err(GraphError::MultipleSinks { ref stages }) if stages.len() == 2)
        , "unexpected build/compile result");

        // Fan-out: the source also feeds the sink directly.
        let (mut b, ids) = fresh();
        b.connect(ids[0], ids[last]);
        prop_assert!(matches!(b.build(), Err(GraphError::FanOut { .. })), "unexpected build/compile result");

        // Fan-in: an extra producer feeding the resize stage.
        let (mut b, ids) = fresh();
        let extra = b.add("extra-producer", flip.clone());
        b.connect(extra, ids[2]);
        prop_assert!(
            matches!(b.build(), Err(GraphError::FanIn { ref stage }) if stage == "stage-2")
        , "unexpected build/compile result");

        // Detached two-cycle off the main chain.
        let (mut b, _) = fresh();
        let x = b.add("loop-a", flip.clone());
        let y = b.add("loop-b", flip.clone());
        b.connect(x, y);
        b.connect(y, x);
        prop_assert!(matches!(b.build(), Err(GraphError::Cycle { .. })), "unexpected build/compile result");

        // Dangling stage with no edges.
        let (mut b, _) = fresh();
        b.add("dangling", flip.clone());
        prop_assert!(
            matches!(b.build(), Err(GraphError::Orphan { ref stage }) if stage == "dangling")
        , "unexpected build/compile result");

        // Ill-typed edge: encoded bytes cannot feed a transform.
        let mut b = GraphBuilder::new();
        let s = b.add("src", src_spec);
        let r = b.add("resize", StageSpec::Resize { width: 8, height: 8 });
        let k = b.add("sink", StageSpec::Sink);
        b.connect(s, r);
        b.connect(r, k);
        match b.build() {
            Err(GraphError::TypeMismatch { from, to, produced, expected }) => {
                prop_assert_eq!(from, "src");
                prop_assert_eq!(to, "resize");
                prop_assert_eq!(produced, DataKind::EncodedJpeg);
                prop_assert_eq!(expected, "DecodedImage");
            }
            other => prop_assert!(false, "expected TypeMismatch, got {:?}", other),
        }

        // The sink as a producer is also a type error (it emits nothing).
        let (mut b, ids) = fresh();
        let tail = b.add("after-sink", flip.clone());
        b.connect(ids[last], tail);
        prop_assert!(matches!(b.build(), Err(GraphError::TypeMismatch { .. })), "unexpected build/compile result");

        // Self edge.
        let (mut b, ids) = fresh();
        b.connect(ids[2], ids[2]);
        prop_assert!(
            matches!(b.build(), Err(GraphError::SelfEdge { ref stage }) if stage == "stage-2")
        , "unexpected build/compile result");

        // Duplicate edge.
        let (mut b, ids) = fresh();
        b.connect(ids[0], ids[1]);
        prop_assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { .. })), "unexpected build/compile result");

        // Duplicate stage name.
        let (mut b, _) = fresh();
        b.add("stage-0", flip.clone());
        prop_assert!(
            matches!(b.build(), Err(GraphError::DuplicateStage { ref name }) if name == "stage-0")
        , "unexpected build/compile result");

        // A handle issued by a different builder.
        let mut foreign = GraphBuilder::new();
        for i in 0..chain.stages.len() + 4 {
            foreign.add(&format!("f{i}"), flip.clone());
        }
        let alien = foreign.add("far", flip.clone());
        let (mut b, ids) = fresh();
        b.connect(ids[0], alien);
        prop_assert!(matches!(b.build(), Err(GraphError::UnknownStage { .. })), "unexpected build/compile result");

        // The empty graph.
        prop_assert!(matches!(GraphBuilder::new().build(), Err(GraphError::Empty)), "unexpected build/compile result");
    }

    #[test]
    fn parameter_mutations_name_the_offending_stage(
        raw in chains(),
        bad_prob in 1.0f32..16.0,
    ) {
        let chain = typed(&raw);
        let fresh = || builder_for(&raw, &chain);

        // Zero parallelism.
        let (mut b, ids) = fresh();
        b.set_parallelism(ids[1], 0);
        prop_assert!(
            matches!(b.build(), Err(GraphError::ZeroParallelism { ref stage }) if stage == "stage-1")
        , "unexpected build/compile result");

        // Zero queue depth.
        let (mut b, ids) = fresh();
        b.set_queue_depth(ids[0], 0);
        prop_assert!(
            matches!(b.build(), Err(GraphError::ZeroQueueDepth { ref stage }) if stage == "stage-0")
        , "unexpected build/compile result");

        // Zero dimension.
        let (mut b, _) = fresh();
        let z = b.add("zero-resize", StageSpec::Resize { width: 0, height: 8 });
        let _ = z;
        prop_assert!(
            matches!(b.build(), Err(GraphError::ZeroDimension { ref stage }) if stage == "zero-resize")
        , "unexpected build/compile result");

        // Probability above one (and NaN).
        for prob in [bad_prob + f32::EPSILON, f32::NAN] {
            let (mut b, _) = fresh();
            b.add("bad-flip", StageSpec::RandomFlip { prob });
            prop_assert!(
                matches!(b.build(), Err(GraphError::BadProbability { ref stage }) if stage == "bad-flip")
            , "unexpected build/compile result");
        }

        // Zero normalize scale.
        let (mut b, _) = fresh();
        b.add(
            "bad-norm",
            StageSpec::Normalize { mean: [0.0; 3], scale: [1.0, 0.0, 1.0] },
        );
        prop_assert!(
            matches!(b.build(), Err(GraphError::ZeroScale { ref stage }) if stage == "bad-norm")
        , "unexpected build/compile result");
    }

    #[test]
    fn compile_rejects_bad_geometry_and_config(
        raw in chains(),
        oversize in 1u32..64,
    ) {
        let (graph, chain) = build(&raw);

        // Zero batch / zero engines.
        prop_assert!(matches!(
            graph.compile(&GraphConfig { batch_size: 0, ..Default::default() }),
            Err(GraphError::BadConfig { .. })
        ), "unexpected build/compile result");
        prop_assert!(matches!(
            graph.compile(&GraphConfig { n_engines: 0, ..Default::default() }),
            Err(GraphError::BadConfig { .. })
        ), "unexpected build/compile result");

        // A crop wider than the running geometry at its position.
        let (fpga, rw, rh, ..) = raw;
        let mut b = GraphBuilder::new();
        let s = b.add("src", StageSpec::Source { kind: SourceKind::Disk });
        let d = b.add(
            "decode",
            StageSpec::Decode {
                device: if fpga { DecodeDevice::Fpga } else { DecodeDevice::Cpu },
            },
        );
        let r = b.add("resize", StageSpec::Resize { width: rw, height: rh });
        let c = b.add(
            "big-crop",
            StageSpec::RandomCrop { width: rw + oversize, height: rh },
        );
        let k = b.add("sink", StageSpec::Sink);
        b.connect(s, d);
        b.connect(d, r);
        b.connect(r, c);
        b.connect(c, k);
        let g = b.build().expect("structurally valid");
        match g.compile(&GraphConfig::default()) {
            Err(GraphError::CropLargerThanInput { stage, input, crop }) => {
                prop_assert_eq!(stage, "big-crop");
                prop_assert_eq!(input, (rw, rh));
                prop_assert_eq!(crop, (rw + oversize, rh));
            }
            other => prop_assert!(false, "expected CropLargerThanInput, got {:?}", other),
        }

        // Decode must feed a resize (the substrate fuses them).
        let mut b = GraphBuilder::new();
        let s = b.add("src", StageSpec::Source { kind: SourceKind::Disk });
        let d = b.add("decode", StageSpec::Decode { device: DecodeDevice::Cpu });
        let f = b.add("flip", StageSpec::RandomFlip { prob: 0.5 });
        let k = b.add("sink", StageSpec::Sink);
        b.connect(s, d);
        b.connect(d, f);
        b.connect(f, k);
        let g = b.build().expect("structurally valid");
        prop_assert!(matches!(
            g.compile(&GraphConfig::default()),
            Err(GraphError::DecodeRequiresResize { ref stage }) if stage == "flip"
        ), "unexpected build/compile result");

        let _ = chain;
    }
}

//! Property tests: cmd wire-format integrity and timing-model monotonicity.

use dlb_fpga::cmd::CMD_WIRE_BYTES;
use dlb_fpga::{
    DataRef, DecodeCmd, DecoderMirror, DeviceSpec, FpgaTimingModel, ImageWorkload, OutputFormat,
};
use proptest::prelude::*;

fn arb_cmd() -> impl Strategy<Value = DecodeCmd> {
    (
        any::<u64>(),
        any::<bool>(),
        any::<u64>(),
        1u32..=u32::MAX,
        any::<u64>(),
        1u32..=u32::MAX,
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
    )
        .prop_map(
            |(cmd_id, disk, addr, len, dst_phys, dst_capacity, w, h, rgb)| DecodeCmd {
                cmd_id,
                src: if disk {
                    DataRef::Disk { offset: addr, len }
                } else {
                    DataRef::HostMem {
                        phys_addr: addr,
                        len,
                    }
                },
                dst_phys,
                dst_capacity,
                target_w: w,
                target_h: h,
                format: if rgb {
                    OutputFormat::Rgb8
                } else {
                    OutputFormat::Gray8
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cmd_wire_roundtrips(cmd in arb_cmd()) {
        let wire = cmd.pack();
        prop_assert_eq!(DecodeCmd::unpack(&wire).unwrap(), cmd);
    }

    #[test]
    fn single_byte_corruption_is_always_detected(
        cmd in arb_cmd(),
        pos in 0usize..CMD_WIRE_BYTES,
        flip in 1u8..=255,
    ) {
        let mut wire = cmd.pack();
        wire[pos] ^= flip;
        // Either the CRC catches it, or (if the corrupted field happens to
        // decode to a different but valid cmd) the result must differ from
        // the original — silent identity corruption is the only failure.
        match DecodeCmd::unpack(&wire) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, cmd),
        }
        // CRC-16 must catch ALL single-byte payload corruptions.
        if pos < 62 {
            prop_assert!(DecodeCmd::unpack(&wire).is_err());
        }
    }

    #[test]
    fn throughput_monotone_in_compressed_size(
        small_kb in 10u64..100,
        extra_kb in 1u64..100,
    ) {
        let model = FpgaTimingModel::paper_config();
        let mut a = ImageWorkload::ilsvrc_like();
        a.compressed_bytes = small_kb * 1000;
        let mut b = a;
        b.compressed_bytes = (small_kb + extra_kb) * 1000;
        // More entropy bits can never decode faster.
        prop_assert!(
            model.throughput_images_per_sec(&a) >= model.throughput_images_per_sec(&b)
        );
        prop_assert!(model.image_latency(&a) <= model.image_latency(&b));
    }

    #[test]
    fn batch_service_superadditive(
        n in 1usize..64,
        m in 1usize..64,
    ) {
        // Serving n+m images takes at least as long as serving n, and at
        // most the sum of serving n and m separately (pipelining can only
        // help).
        let model = FpgaTimingModel::paper_config();
        let w = ImageWorkload::ilsvrc_like();
        let t_n = model.batch_service_time(&vec![w; n]);
        let t_m = model.batch_service_time(&vec![w; m]);
        let t_nm = model.batch_service_time(&vec![w; n + m]);
        prop_assert!(t_nm >= t_n);
        prop_assert!(t_nm <= t_n + t_m, "{t_nm} > {t_n} + {t_m}");
    }

    #[test]
    fn wider_mirrors_never_slower(h in 1u32..8, r in 1u32..8) {
        let spec = DeviceSpec::arria10_ax();
        let w = ImageWorkload::ilsvrc_like();
        let base = FpgaTimingModel::from_mirror(&DecoderMirror::jpeg_with_ways(h, r), &spec);
        let wider = FpgaTimingModel::from_mirror(&DecoderMirror::jpeg_with_ways(h + 1, r + 1), &spec);
        prop_assert!(
            wider.throughput_images_per_sec(&w) >= base.throughput_images_per_sec(&w)
        );
    }
}

//! Pluggable decoder mirrors.
//!
//! The paper packs "the decoder running logic as a mirror, which can be
//! downloaded to the FPGA devices according to different workflows" (§4.1)
//! and stresses that users can redesign decoders for "language models, video
//! models and speech models" (§3.1). A [`DecoderMirror`] is that artifact:
//! a named configuration with per-unit parallelism and a resource footprint.

use crate::device::ResourceBudget;

/// What workload the mirror's kernel processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MirrorKind {
    /// Baseline JPEG image decode + resize (the paper's prototype).
    JpegImage,
    /// Audio spectrogram extraction (future-work kernel; timing-model only).
    AudioSpectrogram,
    /// Text quantization (future-work kernel; timing-model only).
    TextQuantize,
}

/// A decoder bitstream descriptor: parallelism configuration plus the
/// resources it consumes when loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecoderMirror {
    /// Human-readable name.
    pub name: String,
    /// Kernel type.
    pub kind: MirrorKind,
    /// Parallel Huffman decoding lanes (the paper uses 4).
    pub huffman_ways: u32,
    /// Parallel resizer lanes (the paper uses 2).
    pub resize_ways: u32,
    /// Depth of the on-device cmd FIFO.
    pub cmd_fifo_depth: usize,
    /// Resource footprint.
    pub resources: ResourceBudget,
}

impl DecoderMirror {
    /// The paper's prototype: 4-way Huffman, 2-way resize JPEG decoder.
    ///
    /// The resource footprint is sized so the mirror comfortably fits an
    /// Arria-10 AX (≈427 k ALMs, 1518 DSPs, ≈55 Mb BRAM) but a naive "offload
    /// everything" configuration would not — the trade-off §3.3 discusses.
    pub fn jpeg_paper_config() -> Self {
        Self::jpeg_with_ways(4, 2)
    }

    /// A JPEG mirror with custom lane counts (for the ablation benches).
    pub fn jpeg_with_ways(huffman_ways: u32, resize_ways: u32) -> Self {
        assert!(huffman_ways >= 1 && resize_ways >= 1, "lane counts >= 1");
        Self {
            name: format!("jpeg-h{huffman_ways}-r{resize_ways}"),
            kind: MirrorKind::JpegImage,
            huffman_ways,
            resize_ways,
            cmd_fifo_depth: 1024,
            resources: ResourceBudget {
                // Per-lane costs estimated from Intel's OpenCL JPEG decoder
                // example design (the paper's reference [9]): each Huffman
                // lane is logic-heavy; each resizer lane is DSP-heavy.
                alms: 30_000 + 45_000 * huffman_ways as u64 + 25_000 * resize_ways as u64,
                dsps: 40 + 60 * huffman_ways as u64 + 180 * resize_ways as u64,
                bram_kbits: 2_000 + 3_000 * huffman_ways as u64 + 1_500 * resize_ways as u64,
            },
        }
    }

    /// An audio-spectrogram mirror (exercises the pluggability API; the
    /// functional engine rejects it, the timing model can price it).
    pub fn audio_spectrogram() -> Self {
        Self {
            name: "audio-dct-spectrogram".into(),
            kind: MirrorKind::AudioSpectrogram,
            huffman_ways: 1,
            resize_ways: 1,
            cmd_fifo_depth: 512,
            resources: ResourceBudget {
                alms: 120_000,
                dsps: 700,
                bram_kbits: 9_000,
            },
        }
    }

    /// A text-quantization mirror (pluggability demo).
    pub fn text_quantize() -> Self {
        Self {
            name: "text-quantize".into(),
            kind: MirrorKind::TextQuantize,
            huffman_ways: 1,
            resize_ways: 1,
            cmd_fifo_depth: 512,
            resources: ResourceBudget {
                alms: 60_000,
                dsps: 100,
                bram_kbits: 4_000,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_has_4way_huffman_2way_resize() {
        let m = DecoderMirror::jpeg_paper_config();
        assert_eq!(m.huffman_ways, 4);
        assert_eq!(m.resize_ways, 2);
        assert_eq!(m.kind, MirrorKind::JpegImage);
    }

    #[test]
    fn resources_scale_with_ways() {
        let small = DecoderMirror::jpeg_with_ways(1, 1);
        let big = DecoderMirror::jpeg_with_ways(8, 4);
        assert!(big.resources.alms > small.resources.alms);
        assert!(big.resources.dsps > small.resources.dsps);
        assert!(big.resources.bram_kbits > small.resources.bram_kbits);
    }

    #[test]
    #[should_panic(expected = "lane counts")]
    fn zero_ways_rejected() {
        let _ = DecoderMirror::jpeg_with_ways(0, 1);
    }

    #[test]
    fn alternative_kernels_exist() {
        assert_eq!(
            DecoderMirror::audio_spectrogram().kind,
            MirrorKind::AudioSpectrogram
        );
        assert_eq!(
            DecoderMirror::text_quantize().kind,
            MirrorKind::TextQuantize
        );
    }
}

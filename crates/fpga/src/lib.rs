//! # dlb-fpga
//!
//! The FPGA substrate DLBooster offloads its preprocessing to (paper §3.3,
//! Fig. 4). The paper deploys an OpenCL JPEG decoder on an Intel Arria-10:
//! a cmd parser, DataReaders, an MMU, a **4-way Huffman decoding unit**, an
//! iDCT & RGB unit, a **2-way resizer**, and a DMA writeback engine with a
//! FINISH arbiter.
//!
//! ## Substitution note (no FPGA hardware here)
//!
//! This crate rebuilds that device as two complementary layers:
//!
//! * **Functional layer** ([`engine`]): a real, running decoder. A device
//!   orchestrator drains a cmd FIFO; `huffman_ways` lane workers perform the
//!   actual Huffman+iDCT+resize work (using `dlb-codec`, the same arithmetic
//!   the RTL performs); a serial DMA stage writes decoded pixels back into
//!   the host batch buffer at the physical offsets carried by each cmd. The
//!   concurrency topology (N-way entropy lanes, serial writeback, FIFO cmds,
//!   completion signals) is the paper's, executed on CPU threads.
//! * **Timing layer** ([`timing`]): a cycle-calibrated pipeline model used by
//!   the discrete-event experiments. Per-stage service rates reproduce the
//!   load-balance and saturation behaviour the paper reports (the Fig. 7a
//!   plateau at large batch sizes is this model hitting its bottleneck
//!   stage).
//!
//! Decoder *mirrors* ([`mirror`]) — the paper's pluggable bitstreams — carry
//! resource requirements that are checked against the device's ALM/DSP/BRAM
//! budget at load time, reproducing the "balance between workload and
//! resource constraint" design discussion (§1 challenge 2).

pub mod cmd;
pub mod device;
pub mod engine;
pub mod error;
pub mod mirror;
pub mod timing;

pub use cmd::{DataRef, DecodeCmd, FinishSignal, ItemStatus, OutputFormat};
pub use device::{DeviceSpec, FpgaDevice, ResourceBudget};
pub use engine::{CompletedBatch, DataSourceResolver, DecoderEngine, MapResolver, Submission};
pub use error::FpgaError;
pub use mirror::{DecoderMirror, MirrorKind};
pub use timing::{FpgaTimingModel, ImageWorkload, StageTimes};

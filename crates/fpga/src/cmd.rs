//! Decode cmds and FINISH signals.
//!
//! The host bridger "pushes cmds to the FPGA decoder" through a FIFO queue
//! and the decoder's parser "decodes these cmds to extract metadata" (paper
//! §3.3/§3.4.1). Cmds therefore have a *wire format*: a fixed 64-byte packed
//! layout that [`DecodeCmd::pack`]/[`DecodeCmd::unpack`] round-trip. The
//! functional engine actually parses the packed form, exactly like the RTL
//! parser would.

use crate::error::FpgaError;

/// Where the DataReader fetches the compressed bytes from (paper Fig. 4:
/// "DMA from Disk" / "DMA from DRAM").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataRef {
    /// NVMe blocks: a byte range on the disk.
    Disk {
        /// Byte offset of the object on disk.
        offset: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Host memory (where the NIC deposited a request payload).
    HostMem {
        /// Simulated physical address.
        phys_addr: u64,
        /// Length in bytes.
        len: u32,
    },
}

impl DataRef {
    /// Payload length in bytes.
    pub fn len(&self) -> u32 {
        match *self {
            DataRef::Disk { len, .. } | DataRef::HostMem { len, .. } => len,
        }
    }

    /// True when the referenced payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Pixel layout the decoder writes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Interleaved 8-bit RGB (the DL-framework input of the paper).
    #[default]
    Rgb8,
    /// Single-plane 8-bit grayscale (MNIST-like workloads).
    Gray8,
}

impl OutputFormat {
    /// Bytes per pixel.
    pub fn bytes_per_pixel(self) -> u32 {
        match self {
            OutputFormat::Rgb8 => 3,
            OutputFormat::Gray8 => 1,
        }
    }
}

/// One decode command: fetch `src`, decode, resize to `target_w`×`target_h`,
/// write to physical address `dst_phys`, raise FINISH with `cmd_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeCmd {
    /// Host-assigned identifier echoed in the FINISH signal.
    pub cmd_id: u64,
    /// Compressed data location.
    pub src: DataRef,
    /// Destination physical address for the decoded pixels.
    pub dst_phys: u64,
    /// Capacity of the destination region in bytes.
    pub dst_capacity: u32,
    /// Output width after the resizer (0 = keep source width).
    pub target_w: u16,
    /// Output height after the resizer (0 = keep source height).
    pub target_h: u16,
    /// Output pixel format.
    pub format: OutputFormat,
}

/// Wire size of a packed cmd.
pub const CMD_WIRE_BYTES: usize = 64;

impl DecodeCmd {
    /// Validates kernel-agnostic consistency (source and destination).
    /// Kernel-specific target semantics are checked by the kernel itself —
    /// image mirrors call [`DecodeCmd::validate_image_output`]; audio/text
    /// mirrors reinterpret `target_w`/`target_h` as kernel parameters.
    pub fn validate(&self) -> Result<(), FpgaError> {
        if self.src.is_empty() {
            return Err(FpgaError::BadCmd {
                detail: "empty source".into(),
            });
        }
        if self.dst_capacity == 0 {
            return Err(FpgaError::BadCmd {
                detail: "zero destination capacity".into(),
            });
        }
        Ok(())
    }

    /// Image-kernel output check: both target dims zero (passthrough) or
    /// both set and fitting the destination window.
    pub fn validate_image_output(&self) -> Result<(), FpgaError> {
        if (self.target_w == 0) != (self.target_h == 0) {
            return Err(FpgaError::BadCmd {
                detail: "target dimensions must both be zero or both be set".into(),
            });
        }
        if self.target_w != 0 {
            let need =
                self.target_w as u64 * self.target_h as u64 * self.format.bytes_per_pixel() as u64;
            if need > self.dst_capacity as u64 {
                return Err(FpgaError::BadCmd {
                    detail: format!(
                        "output {}x{} needs {need} bytes, capacity {}",
                        self.target_w, self.target_h, self.dst_capacity
                    ),
                });
            }
        }
        Ok(())
    }

    /// Serialises into the fixed 64-byte wire layout.
    pub fn pack(&self) -> [u8; CMD_WIRE_BYTES] {
        let mut w = [0u8; CMD_WIRE_BYTES];
        w[0..8].copy_from_slice(&self.cmd_id.to_le_bytes());
        let (src_kind, src_addr, src_len) = match self.src {
            DataRef::Disk { offset, len } => (0u8, offset, len),
            DataRef::HostMem { phys_addr, len } => (1u8, phys_addr, len),
        };
        w[8] = src_kind;
        w[9] = match self.format {
            OutputFormat::Rgb8 => 0,
            OutputFormat::Gray8 => 1,
        };
        w[10..18].copy_from_slice(&src_addr.to_le_bytes());
        w[18..22].copy_from_slice(&src_len.to_le_bytes());
        w[22..30].copy_from_slice(&self.dst_phys.to_le_bytes());
        w[30..34].copy_from_slice(&self.dst_capacity.to_le_bytes());
        w[34..36].copy_from_slice(&self.target_w.to_le_bytes());
        w[36..38].copy_from_slice(&self.target_h.to_le_bytes());
        // Bytes 38..62 reserved; 62..64 = checksum over the payload.
        let sum = checksum(&w[..62]);
        w[62..64].copy_from_slice(&sum.to_le_bytes());
        w
    }

    /// Parses the wire layout (what the device-side parser does).
    pub fn unpack(w: &[u8; CMD_WIRE_BYTES]) -> Result<Self, FpgaError> {
        let sum = u16::from_le_bytes([w[62], w[63]]);
        if sum != checksum(&w[..62]) {
            return Err(FpgaError::BadCmd {
                detail: "cmd checksum mismatch".into(),
            });
        }
        let cmd_id = u64::from_le_bytes(w[0..8].try_into().unwrap());
        let src_addr = u64::from_le_bytes(w[10..18].try_into().unwrap());
        let src_len = u32::from_le_bytes(w[18..22].try_into().unwrap());
        let src = match w[8] {
            0 => DataRef::Disk {
                offset: src_addr,
                len: src_len,
            },
            1 => DataRef::HostMem {
                phys_addr: src_addr,
                len: src_len,
            },
            k => {
                return Err(FpgaError::BadCmd {
                    detail: format!("unknown source kind {k}"),
                })
            }
        };
        let format = match w[9] {
            0 => OutputFormat::Rgb8,
            1 => OutputFormat::Gray8,
            k => {
                return Err(FpgaError::BadCmd {
                    detail: format!("unknown output format {k}"),
                })
            }
        };
        let cmd = DecodeCmd {
            cmd_id,
            src,
            dst_phys: u64::from_le_bytes(w[22..30].try_into().unwrap()),
            dst_capacity: u32::from_le_bytes(w[30..34].try_into().unwrap()),
            target_w: u16::from_le_bytes(w[34..36].try_into().unwrap()),
            target_h: u16::from_le_bytes(w[36..38].try_into().unwrap()),
            format,
        };
        cmd.validate()?;
        Ok(cmd)
    }
}

fn checksum(bytes: &[u8]) -> u16 {
    // CRC-16/CCITT-FALSE: detects any single-byte corruption, which the
    // weaker additive checksums (Fletcher mod 255) miss for 0x00↔0xFF flips.
    let mut crc: u16 = 0xFFFF;
    for &x in bytes {
        crc ^= (x as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Per-item completion status carried by a FINISH signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemStatus {
    /// Decoded and written back.
    Ok {
        /// Bytes written at `dst_phys`.
        bytes_written: u32,
        /// Output width.
        width: u16,
        /// Output height.
        height: u16,
    },
    /// The compressed payload was invalid.
    DecodeError {
        /// Human-readable cause.
        detail: String,
    },
    /// The source could not be fetched.
    FetchError {
        /// Human-readable cause.
        detail: String,
    },
}

impl ItemStatus {
    /// True on success.
    pub fn is_ok(&self) -> bool {
        matches!(self, ItemStatus::Ok { .. })
    }
}

/// The FINISH signal raised by the device's arbiter for one cmd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishSignal {
    /// Echoes [`DecodeCmd::cmd_id`].
    pub cmd_id: u64,
    /// Outcome.
    pub status: ItemStatus,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cmd() -> DecodeCmd {
        DecodeCmd {
            cmd_id: 0xDEAD_BEEF_1234,
            src: DataRef::Disk {
                offset: 1 << 30,
                len: 100_000,
            },
            dst_phys: 0x4_0000_1000,
            dst_capacity: 224 * 224 * 3,
            target_w: 224,
            target_h: 224,
            format: OutputFormat::Rgb8,
        }
    }

    #[test]
    fn pack_unpack_roundtrip_disk() {
        let cmd = sample_cmd();
        let wire = cmd.pack();
        assert_eq!(DecodeCmd::unpack(&wire).unwrap(), cmd);
    }

    #[test]
    fn pack_unpack_roundtrip_hostmem_gray() {
        let cmd = DecodeCmd {
            cmd_id: 7,
            src: DataRef::HostMem {
                phys_addr: 0x8000_0000,
                len: 784,
            },
            dst_phys: 0x4_0000_0000,
            dst_capacity: 28 * 28,
            target_w: 28,
            target_h: 28,
            format: OutputFormat::Gray8,
        };
        let wire = cmd.pack();
        assert_eq!(DecodeCmd::unpack(&wire).unwrap(), cmd);
    }

    #[test]
    fn corrupted_wire_rejected() {
        let mut wire = sample_cmd().pack();
        wire[15] ^= 0xFF;
        assert!(matches!(
            DecodeCmd::unpack(&wire),
            Err(FpgaError::BadCmd { .. })
        ));
    }

    #[test]
    fn validation_rules() {
        let mut cmd = sample_cmd();
        cmd.dst_capacity = 10; // too small for 224x224x3
        assert!(cmd.validate().is_ok(), "kernel-agnostic check passes");
        assert!(cmd.validate_image_output().is_err(), "image check fails");

        let mut cmd = sample_cmd();
        cmd.target_h = 0; // mismatched zeroing — image kernels reject it,
                          // audio kernels reinterpret it.
        assert!(cmd.validate_image_output().is_err());
        assert!(cmd.validate().is_ok());

        let mut cmd = sample_cmd();
        cmd.src = DataRef::Disk { offset: 0, len: 0 };
        assert!(cmd.validate().is_err());

        // Keep-source-size cmd is fine for image kernels.
        let mut cmd = sample_cmd();
        cmd.target_w = 0;
        cmd.target_h = 0;
        assert!(cmd.validate().is_ok());
        assert!(cmd.validate_image_output().is_ok());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut wire = sample_cmd().pack();
        wire[8] = 9;
        // Fix the checksum so only the kind is bad.
        let sum = super::checksum(&wire[..62]);
        wire[62..64].copy_from_slice(&sum.to_le_bytes());
        let err = DecodeCmd::unpack(&wire).unwrap_err();
        assert!(matches!(err, FpgaError::BadCmd { .. }));
    }

    #[test]
    fn item_status_predicates() {
        assert!(ItemStatus::Ok {
            bytes_written: 1,
            width: 1,
            height: 1
        }
        .is_ok());
        assert!(!ItemStatus::DecodeError { detail: "x".into() }.is_ok());
    }

    #[test]
    fn dataref_len() {
        assert_eq!(DataRef::Disk { offset: 0, len: 9 }.len(), 9);
        assert!(!DataRef::HostMem {
            phys_addr: 0,
            len: 1
        }
        .is_empty());
    }
}

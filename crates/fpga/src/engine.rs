//! The functional decoder engine: the paper's Fig. 4 pipeline executed on
//! CPU threads.
//!
//! Topology (mirroring the RTL):
//!
//! ```text
//!  Submission ─► cmd FIFO ─► parser ─► N Huffman/iDCT/resize lanes ─► serial
//!  (unit+cmds)              (unpack)   (real dlb-codec decode)        DMA
//!                                                                     writeback
//!                                                  FINISH arbiter ◄───┘
//! ```
//!
//! A [`Submission`] carries the *batch buffer itself* (`BatchUnit`) next to
//! its packed cmds; the engine decodes every item in lane-parallel, writes
//! pixels back into the unit at the cmd's physical offset (bounds-checked
//! against the unit's simulated physical range, as the MMU would), and
//! returns the unit with per-cmd [`FinishSignal`]s through the completion
//! queue. Ownership transfer in/out of the engine is the Rust-safe analogue
//! of the paper's DMA-into-pinned-HugePage protocol.

use crate::cmd::{DataRef, DecodeCmd, FinishSignal, ItemStatus, OutputFormat, CMD_WIRE_BYTES};
use crate::device::FpgaDevice;
use crate::error::FpgaError;
use crate::mirror::MirrorKind;
use dlb_chaos::{FaultKind, StageInjector};
use dlb_codec::pixel::ColorSpace;
use dlb_codec::resize::{resize, ResizeFilter};
use dlb_codec::JpegDecoder;
use dlb_membridge::{BatchUnit, BlockingQueue};
use dlb_telemetry::{names, Counter, Histogram, Telemetry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Resolves a cmd's [`DataRef`] to the raw compressed bytes — the functional
/// stand-in for the DataReader's "DMA from Disk" / "DMA from DRAM" ports.
/// `dlb-storage` implements this over its NVMe store and `dlb-net` over its
/// RX buffers.
pub trait DataSourceResolver: Send + Sync + 'static {
    /// Fetches the bytes behind `src`.
    fn fetch(&self, src: &DataRef) -> Result<Vec<u8>, String>;
}

/// A simple in-memory resolver for tests and examples.
#[derive(Default)]
pub struct MapResolver {
    disk: Mutex<HashMap<u64, Vec<u8>>>,
    mem: Mutex<HashMap<u64, Vec<u8>>>,
}

impl MapResolver {
    /// Empty resolver.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a disk object at `offset`; returns the matching [`DataRef`].
    pub fn put_disk(&self, offset: u64, bytes: Vec<u8>) -> DataRef {
        let len = bytes.len() as u32;
        self.disk.lock().insert(offset, bytes);
        DataRef::Disk { offset, len }
    }

    /// Registers a host-memory object at `phys_addr`.
    pub fn put_mem(&self, phys_addr: u64, bytes: Vec<u8>) -> DataRef {
        let len = bytes.len() as u32;
        self.mem.lock().insert(phys_addr, bytes);
        DataRef::HostMem { phys_addr, len }
    }
}

impl DataSourceResolver for MapResolver {
    fn fetch(&self, src: &DataRef) -> Result<Vec<u8>, String> {
        match *src {
            DataRef::Disk { offset, len } => self
                .disk
                .lock()
                .get(&offset)
                .filter(|b| b.len() == len as usize)
                .cloned()
                .ok_or_else(|| format!("no disk object at {offset}")),
            DataRef::HostMem { phys_addr, len } => self
                .mem
                .lock()
                .get(&phys_addr)
                .filter(|b| b.len() == len as usize)
                .cloned()
                .ok_or_else(|| format!("no host object at {phys_addr:#x}")),
        }
    }
}

/// A batch handed to the engine: the destination buffer plus packed cmds.
pub struct Submission {
    /// The batch buffer every cmd in this submission writes into.
    pub unit: BatchUnit,
    /// Packed decode cmds (`DecodeCmd::pack`), parsed device-side.
    pub cmds: Vec<[u8; CMD_WIRE_BYTES]>,
}

/// A finished batch returned through the completion queue.
pub struct CompletedBatch {
    /// The buffer, now holding decoded pixels.
    pub unit: BatchUnit,
    /// One FINISH signal per cmd, in cmd order.
    pub finishes: Vec<FinishSignal>,
}

impl CompletedBatch {
    /// Count of successfully decoded items.
    pub fn ok_count(&self) -> usize {
        self.finishes.iter().filter(|f| f.status.is_ok()).count()
    }
}

/// Lifetime counters exposed by the engine — `decoder.*` telemetry
/// handles, registered on the pipeline registry when the engine is built
/// with [`DecoderEngine::start_with_telemetry`].
#[derive(Debug)]
pub struct EngineStats {
    /// Batches completed.
    pub batches: Arc<Counter>,
    /// Items entering the lanes (cmds parsed, ok or not).
    pub items_in: Arc<Counter>,
    /// Items decoded successfully.
    pub items_ok: Arc<Counter>,
    /// Items failed (fetch or decode).
    pub items_err: Arc<Counter>,
    /// Total pixel bytes written back.
    pub bytes_written: Arc<Counter>,
    /// Per-item lane service time (ns).
    pub lane_service: Arc<Histogram>,
}

impl EngineStats {
    fn register(telemetry: &Telemetry) -> Self {
        Self {
            batches: telemetry.registry.counter(names::DECODER_BATCHES),
            items_in: telemetry.registry.counter(names::DECODER_ITEMS_IN),
            items_ok: telemetry.registry.counter(names::DECODER_ITEMS_OK),
            items_err: telemetry.registry.counter(names::DECODER_ITEMS_ERR),
            bytes_written: telemetry.registry.counter(names::DECODER_BYTES_WRITTEN),
            lane_service: telemetry.registry.histogram(names::DECODER_LANE_SERVICE),
        }
    }
}

enum LaneJob {
    Decode { idx: usize, cmd: DecodeCmd },
    Stop,
}

struct LaneResult {
    idx: usize,
    outcome: Result<(Vec<u8>, u16, u16), ItemStatus>,
}

/// The running decoder engine (device + lane threads + queues).
///
/// `Debug` prints queue depths only; the device is owned by the orchestrator
/// thread while running.
pub struct DecoderEngine {
    submit_q: BlockingQueue<Submission>,
    done_q: BlockingQueue<CompletedBatch>,
    orchestrator: Option<JoinHandle<FpgaDevice>>,
    stats: Arc<EngineStats>,
    chaos: Arc<OnceLock<Arc<StageInjector>>>,
}

impl DecoderEngine {
    /// Starts the engine on `device` (which must have a mirror loaded —
    /// the kernel dispatched per cmd follows the mirror's
    /// [`MirrorKind`]) using `resolver` for data fetches. Metrics land in
    /// a private registry; use [`DecoderEngine::start_with_telemetry`] to
    /// share the pipeline's.
    pub fn start(
        device: FpgaDevice,
        resolver: Arc<dyn DataSourceResolver>,
    ) -> Result<Self, FpgaError> {
        Self::start_with_telemetry(device, resolver, &Telemetry::with_defaults())
    }

    /// Like [`DecoderEngine::start`], but recording `decoder.*` metrics
    /// into the shared pipeline `telemetry`.
    pub fn start_with_telemetry(
        device: FpgaDevice,
        resolver: Arc<dyn DataSourceResolver>,
        telemetry: &Telemetry,
    ) -> Result<Self, FpgaError> {
        let mirror = device.mirror().ok_or(FpgaError::NoMirrorLoaded)?;
        let kind = mirror.kind;
        let ways = mirror.huffman_ways as usize;
        let fifo_depth = mirror.cmd_fifo_depth;

        let submit_q: BlockingQueue<Submission> = BlockingQueue::bounded(fifo_depth.max(1));
        let done_q: BlockingQueue<CompletedBatch> = BlockingQueue::unbounded();
        let stats = Arc::new(EngineStats::register(telemetry));
        let chaos: Arc<OnceLock<Arc<StageInjector>>> = Arc::new(OnceLock::new());

        let sq = submit_q.clone();
        let dq = done_q.clone();
        let st = Arc::clone(&stats);
        let ch = Arc::clone(&chaos);
        let orchestrator = std::thread::Builder::new()
            .name("fpga-orchestrator".into())
            .spawn(move || run_orchestrator(device, sq, dq, st, resolver, ways, kind, ch))
            .expect("spawn orchestrator");

        Ok(Self {
            submit_q,
            done_q,
            orchestrator: Some(orchestrator),
            stats,
            chaos,
        })
    }

    /// Attaches a chaos injector for the FPGA plane: lane stalls
    /// (cancellable — a wedged lane releases when the plan's cancel token
    /// fires) and poisoned segments (the cmd fails with a decode error).
    /// Faults are keyed by `cmd_id`, so replays with the same seed poison
    /// the same items. One-shot; later calls are ignored.
    pub fn attach_chaos(&self, injector: Arc<StageInjector>) {
        let _ = self.chaos.set(injector);
    }

    /// Submits a batch; blocks if the cmd FIFO is full (device back-pressure).
    pub fn submit(&self, submission: Submission) -> Result<(), FpgaError> {
        self.submit_q
            .push(submission)
            .map_err(|_| FpgaError::EngineStopped)
    }

    /// The completion queue (`drain_out` target of Algorithm 1).
    pub fn completions(&self) -> &BlockingQueue<CompletedBatch> {
        &self.done_q
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Stops accepting submissions, drains in-flight batches, joins threads,
    /// and returns the device for reconfiguration.
    pub fn shutdown(mut self) -> FpgaDevice {
        self.submit_q.close();

        self.orchestrator
            .take()
            .expect("shutdown called once")
            .join()
            .expect("orchestrator panicked")
    }
}

impl std::fmt::Debug for DecoderEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecoderEngine")
            .field("pending_submissions", &self.submit_q.len())
            .field("pending_completions", &self.done_q.len())
            .finish()
    }
}

impl Drop for DecoderEngine {
    fn drop(&mut self) {
        self.submit_q.close();
        if let Some(handle) = self.orchestrator.take() {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_orchestrator(
    device: FpgaDevice,
    submit_q: BlockingQueue<Submission>,
    done_q: BlockingQueue<CompletedBatch>,
    stats: Arc<EngineStats>,
    resolver: Arc<dyn DataSourceResolver>,
    ways: usize,
    kind: MirrorKind,
    chaos: Arc<OnceLock<Arc<StageInjector>>>,
) -> FpgaDevice {
    // Lane workers: the N-way Huffman/iDCT/resize unit.
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<LaneJob>();
    let (res_tx, res_rx) = crossbeam::channel::unbounded::<LaneResult>();
    let mut lanes = Vec::with_capacity(ways);
    for lane in 0..ways {
        let rx = job_rx.clone();
        let tx = res_tx.clone();
        let resolver = Arc::clone(&resolver);
        let service = Arc::clone(&stats.lane_service);
        let chaos = Arc::clone(&chaos);
        lanes.push(
            std::thread::Builder::new()
                .name(format!("fpga-lane-{lane}"))
                .spawn(move || lane_worker(rx, tx, resolver, kind, service, chaos))
                .expect("spawn lane"),
        );
    }
    drop(res_tx);

    while let Ok(mut submission) = submit_q.pop() {
        let n = submission.cmds.len();
        stats.items_in.add(n as u64);
        // Parser stage: unpack and validate every cmd up front.
        let mut parsed: Vec<Result<DecodeCmd, ItemStatus>> = Vec::with_capacity(n);
        for wire in &submission.cmds {
            parsed.push(
                DecodeCmd::unpack(wire).map_err(|e| ItemStatus::DecodeError {
                    detail: format!("cmd parse: {e}"),
                }),
            );
        }
        // Dispatch decodable cmds to the lanes.
        let mut results: Vec<Option<LaneResult>> = (0..n).map(|_| None).collect();
        let mut outstanding = 0usize;
        for (idx, p) in parsed.iter().enumerate() {
            match p {
                Ok(cmd) => {
                    job_tx
                        .send(LaneJob::Decode { idx, cmd: *cmd })
                        .expect("lanes alive");
                    outstanding += 1;
                }
                Err(status) => {
                    results[idx] = Some(LaneResult {
                        idx,
                        outcome: Err(status.clone()),
                    });
                }
            }
        }
        for _ in 0..outstanding {
            let r = res_rx.recv().expect("lanes alive");
            let idx = r.idx;
            results[idx] = Some(r);
        }

        // Serial DMA writeback + FINISH arbiter.
        let unit_phys = submission.unit.phys_addr();
        let unit_cap = submission.unit.capacity() as u64;
        let mut finishes = Vec::with_capacity(n);
        for (idx, slot) in results.into_iter().enumerate() {
            let r = slot.expect("every cmd produced a result");
            let cmd_id = match &parsed[idx] {
                Ok(cmd) => cmd.cmd_id,
                Err(_) => idx as u64,
            };
            let status = match r.outcome {
                Ok((pixels, w, h)) => {
                    let cmd = parsed[idx].as_ref().expect("ok cmds only reach lanes");
                    // MMU bounds check: the cmd's physical window must lie
                    // inside this unit.
                    let rel = cmd.dst_phys.checked_sub(unit_phys);
                    match rel {
                        Some(off)
                            if off + pixels.len() as u64 <= unit_cap
                                && pixels.len() as u64 <= cmd.dst_capacity as u64 =>
                        {
                            let off = off as usize;
                            submission.unit.storage_mut()[off..off + pixels.len()]
                                .copy_from_slice(&pixels);
                            stats.items_ok.inc();
                            stats.bytes_written.add(pixels.len() as u64);
                            ItemStatus::Ok {
                                bytes_written: pixels.len() as u32,
                                width: w,
                                height: h,
                            }
                        }
                        _ => {
                            stats.items_err.inc();
                            ItemStatus::DecodeError {
                                detail: format!(
                                    "dst_phys {:#x} (+{}) outside unit [{:#x}, +{}]",
                                    cmd.dst_phys,
                                    pixels.len(),
                                    unit_phys,
                                    unit_cap
                                ),
                            }
                        }
                    }
                }
                Err(status) => {
                    stats.items_err.inc();
                    status
                }
            };
            finishes.push(FinishSignal { cmd_id, status });
        }
        stats.batches.inc();
        if done_q
            .push(CompletedBatch {
                unit: submission.unit,
                finishes,
            })
            .is_err()
        {
            break; // downstream gone; stop decoding
        }
    }

    // Shut lanes down and wait.
    for _ in 0..lanes.len() {
        let _ = job_tx.send(LaneJob::Stop);
    }
    for lane in lanes {
        let _ = lane.join();
    }
    done_q.close();
    device
}

fn lane_worker(
    rx: crossbeam::channel::Receiver<LaneJob>,
    tx: crossbeam::channel::Sender<LaneResult>,
    resolver: Arc<dyn DataSourceResolver>,
    kind: MirrorKind,
    service: Arc<Histogram>,
    chaos: Arc<OnceLock<Arc<StageInjector>>>,
) {
    let decoder = JpegDecoder::new();
    while let Ok(job) = rx.recv() {
        let LaneJob::Decode { idx, cmd } = job else {
            break;
        };
        let started = Instant::now();
        // Chaos: a Delay stalls the lane (cancellable — sliced sleep);
        // anything else poisons the segment with a decode error.
        if let Some(inj) = chaos.get() {
            match inj.decide(cmd.cmd_id) {
                Some(FaultKind::Delay(d)) => {
                    inj.sleep(d);
                }
                Some(_) => {
                    service.record_duration(started.elapsed());
                    let outcome = Err(ItemStatus::DecodeError {
                        detail: format!("chaos: poisoned segment (cmd {})", cmd.cmd_id),
                    });
                    if tx.send(LaneResult { idx, outcome }).is_err() {
                        break;
                    }
                    continue;
                }
                None => {}
            }
        }
        let outcome = match kind {
            MirrorKind::JpegImage => decode_one(&decoder, &resolver, &cmd),
            MirrorKind::AudioSpectrogram => spectrogram_one(&resolver, &cmd),
            MirrorKind::TextQuantize => quantize_one(&resolver, &cmd),
        };
        service.record_duration(started.elapsed());
        if tx.send(LaneResult { idx, outcome }).is_err() {
            break;
        }
    }
}

/// Audio kernel (paper §2.1 speech workflows): PCM in, log-DCT spectrogram
/// out. `cmd.target_w` = coefficients per frame (0 → 40); frame geometry is
/// the 16 kHz speech default.
fn spectrogram_one(
    resolver: &Arc<dyn DataSourceResolver>,
    cmd: &DecodeCmd,
) -> Result<(Vec<u8>, u16, u16), ItemStatus> {
    use dlb_codec::audio::{pcm_from_le_bytes, spectrogram, SpectrogramConfig};
    let bytes = resolver
        .fetch(&cmd.src)
        .map_err(|detail| ItemStatus::FetchError { detail })?;
    let pcm = pcm_from_le_bytes(&bytes).map_err(|e| ItemStatus::DecodeError {
        detail: e.to_string(),
    })?;
    let mut config = SpectrogramConfig::speech_16k();
    if cmd.target_w != 0 {
        config.coefficients = cmd.target_w as usize;
    }
    let spec = spectrogram(&pcm, &config).map_err(|e| ItemStatus::DecodeError {
        detail: e.to_string(),
    })?;
    let frames = (spec.len() / config.coefficients) as u16;
    let mut out = Vec::with_capacity(spec.len() * 4);
    for v in &spec {
        out.extend_from_slice(&v.to_le_bytes());
    }
    Ok((out, config.coefficients as u16, frames))
}

/// Text kernel (paper §2.1 language workflows): UTF-8 in, `u32` token ids
/// out. `cmd.target_w` = sequence length (0 → 128).
fn quantize_one(
    resolver: &Arc<dyn DataSourceResolver>,
    cmd: &DecodeCmd,
) -> Result<(Vec<u8>, u16, u16), ItemStatus> {
    use dlb_codec::text::{ids_to_le_bytes, quantize, QuantizeConfig};
    let bytes = resolver
        .fetch(&cmd.src)
        .map_err(|detail| ItemStatus::FetchError { detail })?;
    let text = std::str::from_utf8(&bytes).map_err(|e| ItemStatus::DecodeError {
        detail: format!("invalid UTF-8: {e}"),
    })?;
    let mut config = QuantizeConfig::default_nlp();
    if cmd.target_w != 0 {
        config.seq_len = cmd.target_w as usize;
    }
    let ids = quantize(text, &config).map_err(|e| ItemStatus::DecodeError {
        detail: e.to_string(),
    })?;
    Ok((ids_to_le_bytes(&ids), config.seq_len as u16, 1))
}

fn decode_one(
    decoder: &JpegDecoder,
    resolver: &Arc<dyn DataSourceResolver>,
    cmd: &DecodeCmd,
) -> Result<(Vec<u8>, u16, u16), ItemStatus> {
    cmd.validate_image_output()
        .map_err(|e| ItemStatus::DecodeError {
            detail: e.to_string(),
        })?;
    let bytes = resolver
        .fetch(&cmd.src)
        .map_err(|detail| ItemStatus::FetchError { detail })?;
    let image = decoder
        .decode(&bytes)
        .map_err(|e| ItemStatus::DecodeError {
            detail: e.to_string(),
        })?;
    // Resizer stage.
    let image = if cmd.target_w != 0 {
        resize(
            &image,
            cmd.target_w as u32,
            cmd.target_h as u32,
            ResizeFilter::Bilinear,
        )
        .map_err(|e| ItemStatus::DecodeError {
            detail: format!("resize: {e}"),
        })?
    } else {
        image
    };
    // Output-format conversion (RGB unit of Fig. 4).
    let image = match cmd.format {
        OutputFormat::Rgb8 => image.to_rgb(),
        OutputFormat::Gray8 => image.to_gray(),
    };
    debug_assert_eq!(
        image.color(),
        match cmd.format {
            OutputFormat::Rgb8 => ColorSpace::Rgb,
            OutputFormat::Gray8 => ColorSpace::Gray,
        }
    );
    let w = image.width() as u16;
    let h = image.height() as u16;
    Ok((image.into_vec(), w, h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::mirror::DecoderMirror;
    use dlb_codec::synth::{generate, SynthStyle};
    use dlb_codec::JpegEncoder;
    use dlb_membridge::{MemManager, PoolConfig};

    fn engine_with_resolver() -> (DecoderEngine, Arc<MapResolver>, MemManager) {
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device
            .load_mirror(DecoderMirror::jpeg_paper_config())
            .unwrap();
        let resolver = Arc::new(MapResolver::new());
        let engine = DecoderEngine::start(device, resolver.clone()).unwrap();
        let pool = MemManager::new(PoolConfig {
            unit_size: 4 << 20,
            unit_count: 4,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        (engine, resolver, pool)
    }

    fn jpeg_bytes(seed: u64, w: u32, h: u32) -> Vec<u8> {
        let img = generate(w, h, SynthStyle::Photo, seed);
        JpegEncoder::new(85).unwrap().encode(&img).unwrap()
    }

    #[test]
    fn decodes_a_batch_of_images() {
        let (engine, resolver, pool) = engine_with_resolver();
        let mut unit = pool.get_item().unwrap();
        let n = 8;
        let mut cmds = Vec::new();
        for i in 0..n {
            let src = resolver.put_disk(i as u64 * 1_000_000, jpeg_bytes(i as u64, 100, 75));
            let out_len = 64 * 64 * 3;
            let off = unit.reserve(out_len, i as u64, 64, 64, 3).unwrap();
            cmds.push(
                DecodeCmd {
                    cmd_id: 100 + i as u64,
                    src,
                    dst_phys: unit.phys_addr() + off as u64,
                    dst_capacity: out_len as u32,
                    target_w: 64,
                    target_h: 64,
                    format: OutputFormat::Rgb8,
                }
                .pack(),
            );
        }
        engine.submit(Submission { unit, cmds }).unwrap();
        let done = engine.completions().pop().unwrap();
        assert_eq!(done.finishes.len(), n);
        assert_eq!(done.ok_count(), n);
        for (i, f) in done.finishes.iter().enumerate() {
            assert_eq!(f.cmd_id, 100 + i as u64);
            match &f.status {
                ItemStatus::Ok {
                    bytes_written,
                    width,
                    height,
                } => {
                    assert_eq!(*bytes_written, 64 * 64 * 3);
                    assert_eq!((*width, *height), (64, 64));
                }
                other => panic!("item {i}: {other:?}"),
            }
        }
        // Decoded pixels actually landed in the unit (not all zeros).
        let nz = done.unit.payload().iter().filter(|&&b| b != 0).count();
        assert!(nz > 1000, "only {nz} nonzero bytes written");
        assert_eq!(engine.stats().items_ok.get(), n as u64);
        pool.recycle_item(done.unit).unwrap();
        let device = engine.shutdown();
        assert_eq!(device.mirror().unwrap().huffman_ways, 4);
    }

    #[test]
    fn decoded_pixels_match_host_decode() {
        let (engine, resolver, pool) = engine_with_resolver();
        let bytes = jpeg_bytes(7, 80, 60);
        // Reference: host-side decode + resize with the same codec.
        let reference = {
            let img = JpegDecoder::new().decode(&bytes).unwrap();
            resize(&img, 32, 32, ResizeFilter::Bilinear).unwrap()
        };
        let src = resolver.put_mem(0x9000_0000, bytes);
        let mut unit = pool.get_item().unwrap();
        let off = unit.reserve(32 * 32 * 3, 0, 32, 32, 3).unwrap();
        let cmd = DecodeCmd {
            cmd_id: 1,
            src,
            dst_phys: unit.phys_addr() + off as u64,
            dst_capacity: 32 * 32 * 3,
            target_w: 32,
            target_h: 32,
            format: OutputFormat::Rgb8,
        };
        engine
            .submit(Submission {
                unit,
                cmds: vec![cmd.pack()],
            })
            .unwrap();
        let done = engine.completions().pop().unwrap();
        assert_eq!(done.ok_count(), 1);
        assert_eq!(done.unit.item_bytes(0), reference.data());
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn bad_jpeg_reports_decode_error_without_killing_batch() {
        let (engine, resolver, pool) = engine_with_resolver();
        let mut unit = pool.get_item().unwrap();
        let good_src = resolver.put_disk(0, jpeg_bytes(1, 50, 50));
        let bad_src = resolver.put_disk(1_000_000, vec![0xAB; 500]);
        let mut cmds = Vec::new();
        for (i, src) in [good_src, bad_src].into_iter().enumerate() {
            let off = unit.reserve(28 * 28 * 3, i as u64, 28, 28, 3).unwrap();
            cmds.push(
                DecodeCmd {
                    cmd_id: i as u64,
                    src,
                    dst_phys: unit.phys_addr() + off as u64,
                    dst_capacity: 28 * 28 * 3,
                    target_w: 28,
                    target_h: 28,
                    format: OutputFormat::Rgb8,
                }
                .pack(),
            );
        }
        engine.submit(Submission { unit, cmds }).unwrap();
        let done = engine.completions().pop().unwrap();
        assert_eq!(done.ok_count(), 1);
        assert!(done.finishes[0].status.is_ok());
        assert!(matches!(
            done.finishes[1].status,
            ItemStatus::DecodeError { .. }
        ));
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn missing_source_reports_fetch_error() {
        let (engine, _resolver, pool) = engine_with_resolver();
        let mut unit = pool.get_item().unwrap();
        let off = unit.reserve(100, 0, 1, 1, 3).unwrap();
        let cmd = DecodeCmd {
            cmd_id: 5,
            src: DataRef::Disk {
                offset: 0xDEAD,
                len: 123,
            },
            dst_phys: unit.phys_addr() + off as u64,
            dst_capacity: 100,
            target_w: 0,
            target_h: 0,
            format: OutputFormat::Rgb8,
        };
        engine
            .submit(Submission {
                unit,
                cmds: vec![cmd.pack()],
            })
            .unwrap();
        let done = engine.completions().pop().unwrap();
        assert!(matches!(
            done.finishes[0].status,
            ItemStatus::FetchError { .. }
        ));
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn out_of_unit_dma_is_rejected_by_mmu_check() {
        let (engine, resolver, pool) = engine_with_resolver();
        let unit = pool.get_item().unwrap();
        let src = resolver.put_disk(0, jpeg_bytes(2, 40, 40));
        let cmd = DecodeCmd {
            cmd_id: 9,
            src,
            // A physical address *outside* the unit.
            dst_phys: unit.phys_addr() + unit.capacity() as u64 + 4096,
            dst_capacity: 40 * 40 * 3,
            target_w: 40,
            target_h: 40,
            format: OutputFormat::Rgb8,
        };
        engine
            .submit(Submission {
                unit,
                cmds: vec![cmd.pack()],
            })
            .unwrap();
        let done = engine.completions().pop().unwrap();
        assert!(matches!(
            done.finishes[0].status,
            ItemStatus::DecodeError { .. }
        ));
        assert_eq!(done.ok_count(), 0);
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn gray_output_format() {
        let (engine, resolver, pool) = engine_with_resolver();
        let mut unit = pool.get_item().unwrap();
        let src = resolver.put_disk(0, jpeg_bytes(3, 56, 56));
        let off = unit.reserve(28 * 28, 0, 28, 28, 1).unwrap();
        let cmd = DecodeCmd {
            cmd_id: 2,
            src,
            dst_phys: unit.phys_addr() + off as u64,
            dst_capacity: 28 * 28,
            target_w: 28,
            target_h: 28,
            format: OutputFormat::Gray8,
        };
        engine
            .submit(Submission {
                unit,
                cmds: vec![cmd.pack()],
            })
            .unwrap();
        let done = engine.completions().pop().unwrap();
        match done.finishes[0].status {
            ItemStatus::Ok { bytes_written, .. } => assert_eq!(bytes_written, 28 * 28),
            ref other => panic!("{other:?}"),
        }
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn engine_requires_a_mirror() {
        let device = FpgaDevice::new(DeviceSpec::arria10_ax());
        let err = DecoderEngine::start(device, Arc::new(MapResolver::new())).unwrap_err();
        assert_eq!(err, FpgaError::NoMirrorLoaded);
    }

    #[test]
    fn audio_mirror_extracts_spectrograms() {
        use dlb_codec::audio::{pcm_to_le_bytes, spectrogram, synth_pcm, SpectrogramConfig};
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device
            .load_mirror(DecoderMirror::audio_spectrogram())
            .unwrap();
        let resolver = Arc::new(MapResolver::new());
        let pcm = synth_pcm(4_000, 77);
        let src = resolver.put_disk(0, pcm_to_le_bytes(&pcm));
        let engine = DecoderEngine::start(device, resolver.clone()).unwrap();
        let pool = MemManager::new(PoolConfig {
            unit_size: 1 << 20,
            unit_count: 2,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        let coeffs = 40u16;
        let config = SpectrogramConfig::speech_16k();
        let frames = config.frames(4_000);
        let out_len = frames * coeffs as usize * 4;
        let mut unit = pool.get_item().unwrap();
        let off = unit
            .reserve(out_len, 0, coeffs as u32, frames as u32, 1)
            .unwrap();
        let cmd = DecodeCmd {
            cmd_id: 1,
            src,
            dst_phys: unit.phys_addr() + off as u64,
            dst_capacity: out_len as u32,
            target_w: coeffs,
            target_h: 0,
            format: OutputFormat::Gray8,
        };
        engine
            .submit(Submission {
                unit,
                cmds: vec![cmd.pack()],
            })
            .unwrap();
        let done = engine.completions().pop().unwrap();
        match done.finishes[0].status {
            ItemStatus::Ok {
                bytes_written,
                width,
                height,
            } => {
                assert_eq!(bytes_written as usize, out_len);
                assert_eq!(width, coeffs);
                assert_eq!(height as usize, frames);
            }
            ref other => panic!("{other:?}"),
        }
        // Device output equals the host-side kernel bit for bit.
        let reference = spectrogram(&pcm, &config).unwrap();
        let got: Vec<f32> = done
            .unit
            .item_bytes(0)
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        assert_eq!(got, reference);
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn text_mirror_quantizes_tokens() {
        use dlb_codec::text::{quantize, synth_text, QuantizeConfig};
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device.load_mirror(DecoderMirror::text_quantize()).unwrap();
        let resolver = Arc::new(MapResolver::new());
        let text = synth_text(20, 3);
        let src = resolver.put_disk(0, text.clone().into_bytes());
        let engine = DecoderEngine::start(device, resolver.clone()).unwrap();
        let pool = MemManager::new(PoolConfig {
            unit_size: 64 << 10,
            unit_count: 2,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        let seq_len = 32u16;
        let out_len = seq_len as usize * 4;
        let mut unit = pool.get_item().unwrap();
        let off = unit.reserve(out_len, 0, seq_len as u32, 1, 1).unwrap();
        let cmd = DecodeCmd {
            cmd_id: 2,
            src,
            dst_phys: unit.phys_addr() + off as u64,
            dst_capacity: out_len as u32,
            target_w: seq_len,
            target_h: 0,
            format: OutputFormat::Gray8,
        };
        engine
            .submit(Submission {
                unit,
                cmds: vec![cmd.pack()],
            })
            .unwrap();
        let done = engine.completions().pop().unwrap();
        assert!(
            done.finishes[0].status.is_ok(),
            "{:?}",
            done.finishes[0].status
        );
        let got: Vec<u32> = done
            .unit
            .item_bytes(0)
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let expected = quantize(
            &text,
            &QuantizeConfig {
                seq_len: 32,
                ..QuantizeConfig::default_nlp()
            },
        )
        .unwrap();
        assert_eq!(got, expected);
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn many_batches_pipeline_through() {
        let (engine, resolver, pool) = engine_with_resolver();
        let n_batches = 6;
        let per_batch = 4;
        for b in 0..n_batches {
            let mut unit = pool.get_item().unwrap();
            let mut cmds = Vec::new();
            for i in 0..per_batch {
                let key = (b * per_batch + i) as u64;
                let src = resolver.put_disk(key * 1_000_000, jpeg_bytes(key, 64, 48));
                let off = unit.reserve(32 * 32 * 3, key, 32, 32, 3).unwrap();
                cmds.push(
                    DecodeCmd {
                        cmd_id: key,
                        src,
                        dst_phys: unit.phys_addr() + off as u64,
                        dst_capacity: 32 * 32 * 3,
                        target_w: 32,
                        target_h: 32,
                        format: OutputFormat::Rgb8,
                    }
                    .pack(),
                );
            }
            engine.submit(Submission { unit, cmds }).unwrap();
            // Recycle asynchronously to keep the pool from starving.
            if b >= 2 {
                let done = engine.completions().pop().unwrap();
                assert_eq!(done.ok_count(), per_batch);
                pool.recycle_item(done.unit).unwrap();
            }
        }
        for _ in 0..2 {
            let done = engine.completions().pop().unwrap();
            assert_eq!(done.ok_count(), per_batch);
            pool.recycle_item(done.unit).unwrap();
        }
        assert_eq!(engine.stats().batches.get(), n_batches as u64);
        assert_eq!(
            engine.stats().items_ok.get(),
            (n_batches * per_batch) as u64
        );
        // Lane service time was recorded for every item.
        assert_eq!(
            engine.stats().lane_service.count(),
            (n_batches * per_batch) as u64
        );
        assert_eq!(
            engine.stats().items_in.get(),
            (n_batches * per_batch) as u64
        );
    }

    #[test]
    fn chaos_poisons_segments_without_losing_the_batch() {
        use dlb_chaos::{FaultPlan, Stage, StageSpec};
        let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
        device
            .load_mirror(DecoderMirror::jpeg_paper_config())
            .unwrap();
        let resolver = Arc::new(MapResolver::new());
        let t = dlb_telemetry::Telemetry::with_defaults();
        let engine = DecoderEngine::start_with_telemetry(device, resolver.clone(), &t).unwrap();
        let mut plan = FaultPlan::disabled();
        plan.seed = 3;
        plan.fpga = StageSpec::rate(0.5).with_delay(std::time::Duration::from_millis(1));
        engine.attach_chaos(plan.injector(Stage::Fpga, &t).unwrap());
        let pool = MemManager::new(PoolConfig {
            unit_size: 4 << 20,
            unit_count: 2,
            phys_base: 0x4_0000_0000,
        })
        .unwrap();
        let n = 24;
        let mut unit = pool.get_item().unwrap();
        let mut cmds = Vec::new();
        for i in 0..n {
            let src = resolver.put_disk(i as u64 * 1_000_000, jpeg_bytes(i as u64, 48, 48));
            let off = unit.reserve(16 * 16 * 3, i as u64, 16, 16, 3).unwrap();
            cmds.push(
                DecodeCmd {
                    cmd_id: i as u64,
                    src,
                    dst_phys: unit.phys_addr() + off as u64,
                    dst_capacity: 16 * 16 * 3,
                    target_w: 16,
                    target_h: 16,
                    format: OutputFormat::Rgb8,
                }
                .pack(),
            );
        }
        engine.submit(Submission { unit, cmds }).unwrap();
        let done = engine.completions().pop().unwrap();
        // The batch always completes: every cmd gets a FINISH signal.
        assert_eq!(done.finishes.len(), n);
        let poisoned = done
            .finishes
            .iter()
            .filter(|f| matches!(&f.status, ItemStatus::DecodeError { detail } if detail.contains("chaos")))
            .count();
        assert!(poisoned > 0, "a 50% rate must poison some segments");
        assert!(done.ok_count() > 0, "a 50% rate must pass some segments");
        assert_eq!(done.ok_count() + poisoned, n);
        let snap = t.registry.snapshot();
        assert!(snap.counter("chaos.injected.fpga") > 0);
        pool.recycle_item(done.unit).unwrap();
    }

    #[test]
    fn shutdown_closes_completion_queue() {
        let (engine, _resolver, _pool) = engine_with_resolver();
        let completions = engine.completions().clone();
        let _device = engine.shutdown();
        assert!(completions.pop().is_err());
    }
}

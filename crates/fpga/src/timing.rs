//! Cycle-calibrated pipeline timing model for the decoder.
//!
//! The discrete-event experiments need FPGA service times without running
//! the functional decoder; this model prices the Fig. 4 pipeline per stage:
//!
//! * **Huffman** — entropy bits through `huffman_ways` lanes. Hardware
//!   entropy decoders sustain a few bits per fabric cycle; at the Arria-10's
//!   ≈300 MHz that is ≈1.1 Gbit/s per lane, which puts a 4-lane unit at
//!   ≈5.5 k images/s on the paper's ≈100 KB ILSVRC JPEGs — exactly the
//!   plateau Fig. 7(a) shows DLBooster hitting ("the bottleneck ... can be
//!   overcome by plugging more FPGA devices").
//! * **iDCT & RGB** — 8×8 blocks at a fixed block rate (fully pipelined DSP
//!   datapath, one block every ~10 cycles).
//! * **Resizer** — output-dominated pixel rate through `resize_ways` lanes;
//!   the 4-way/2-way split keeps the two units load-balanced (§3.3: none of
//!   them "become the straggler").
//! * **DMA** — decoded bytes over the PCIe link.
//!
//! Pipelining: stages overlap across images, so batch completion time is the
//! bottleneck stage's aggregate work plus one image's fill latency through
//! the other stages (§3.3 optimisation 1).

use crate::device::DeviceSpec;
use crate::mirror::DecoderMirror;
use dlb_simcore::SimTime;

/// Geometry of one decode job, from which all stage costs derive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageWorkload {
    /// Compressed JPEG size in bytes.
    pub compressed_bytes: u64,
    /// Source width in pixels.
    pub src_width: u32,
    /// Source height in pixels.
    pub src_height: u32,
    /// Resizer output width (0 = passthrough).
    pub dst_width: u32,
    /// Resizer output height (0 = passthrough).
    pub dst_height: u32,
    /// Output channels (3 for RGB, 1 for grayscale).
    pub channels: u32,
}

impl ImageWorkload {
    /// The paper's inference workload: 500×375 JPEG (≈100 KB average,
    /// §5.1/§5.3) resized to the 224×224 network input.
    pub fn ilsvrc_like() -> Self {
        Self {
            compressed_bytes: 100_000,
            src_width: 500,
            src_height: 375,
            dst_width: 224,
            dst_height: 224,
            channels: 3,
        }
    }

    /// MNIST-like: 28×28 grayscale, tiny payload.
    pub fn mnist_like() -> Self {
        Self {
            compressed_bytes: 700,
            src_width: 28,
            src_height: 28,
            dst_width: 28,
            dst_height: 28,
            channels: 1,
        }
    }

    /// Entropy bits to decode (the whole compressed stream is entropy-coded
    /// except a ≈600-byte header).
    pub fn entropy_bits(&self) -> u64 {
        self.compressed_bytes.saturating_sub(600).max(1) * 8
    }

    /// 8×8 blocks in the scan, assuming 4:2:0 for colour (6 blocks per
    /// 16×16 MCU) and 1 block per 8×8 MCU for grayscale.
    pub fn blocks(&self) -> u64 {
        if self.channels == 1 {
            (self.src_width.div_ceil(8) as u64) * (self.src_height.div_ceil(8) as u64)
        } else {
            let mcus = (self.src_width.div_ceil(16) as u64) * (self.src_height.div_ceil(16) as u64);
            mcus * 6
        }
    }

    /// Pixels the resizer touches (max of input and output planes).
    pub fn resize_pixels(&self) -> u64 {
        let src = self.src_width as u64 * self.src_height as u64;
        let (dw, dh) = self.output_dims();
        let dst = dw as u64 * dh as u64;
        src.max(dst)
    }

    /// Final output dimensions.
    pub fn output_dims(&self) -> (u32, u32) {
        if self.dst_width == 0 {
            (self.src_width, self.src_height)
        } else {
            (self.dst_width, self.dst_height)
        }
    }

    /// Decoded output bytes (DMA payload).
    pub fn output_bytes(&self) -> u64 {
        let (w, h) = self.output_dims();
        w as u64 * h as u64 * self.channels as u64
    }
}

/// Per-stage single-lane service times for one image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTimes {
    /// Cmd parse + fetch issue overhead.
    pub parse: SimTime,
    /// One Huffman lane decoding this image's entropy stream.
    pub huffman: SimTime,
    /// iDCT + colour conversion.
    pub idct: SimTime,
    /// One resizer lane.
    pub resize: SimTime,
    /// DMA writeback over PCIe.
    pub dma: SimTime,
}

impl StageTimes {
    /// Fill latency: one image flowing through every stage back-to-back.
    pub fn total(&self) -> SimTime {
        self.parse + self.huffman + self.idct + self.resize + self.dma
    }
}

/// The calibrated pipeline model.
#[derive(Debug, Clone)]
pub struct FpgaTimingModel {
    /// Parallel Huffman lanes.
    pub huffman_ways: u32,
    /// Parallel resizer lanes.
    pub resize_ways: u32,
    /// Entropy throughput per Huffman lane, bits/second.
    pub huffman_bits_per_sec_per_way: f64,
    /// iDCT unit block rate, 8×8 blocks/second (single shared unit).
    pub idct_blocks_per_sec: f64,
    /// Resizer pixel rate per lane, pixels/second.
    pub resize_pixels_per_sec_per_way: f64,
    /// Writeback bandwidth, bytes/second.
    pub dma_bytes_per_sec: f64,
    /// Fixed per-cmd overhead (FIFO pop, parse, fetch issue).
    pub cmd_overhead: SimTime,
}

impl FpgaTimingModel {
    /// Calibrates from a mirror configuration and a device spec. Rates scale
    /// with the fabric clock relative to the Arria-10 baseline of 300 MHz.
    pub fn from_mirror(mirror: &DecoderMirror, spec: &DeviceSpec) -> Self {
        let clock_scale = spec.fabric_mhz as f64 / 300.0;
        Self {
            huffman_ways: mirror.huffman_ways,
            resize_ways: mirror.resize_ways,
            // ≈3.7 bits per cycle per lane at 300 MHz.
            huffman_bits_per_sec_per_way: 1.1e9 * clock_scale,
            // One 8×8 block every ~10 cycles.
            idct_blocks_per_sec: 30.0e6 * clock_scale,
            // ≈1.7 pixels per cycle per lane.
            resize_pixels_per_sec_per_way: 520.0e6 * clock_scale,
            dma_bytes_per_sec: spec.pcie_bytes_per_sec,
            cmd_overhead: SimTime::from_micros(2),
        }
    }

    /// The paper's 4/2-way configuration on the Arria-10.
    pub fn paper_config() -> Self {
        Self::from_mirror(
            &DecoderMirror::jpeg_paper_config(),
            &DeviceSpec::arria10_ax(),
        )
    }

    /// Per-stage single-lane times for one image.
    pub fn stage_times(&self, w: &ImageWorkload) -> StageTimes {
        StageTimes {
            parse: self.cmd_overhead,
            huffman: SimTime::from_secs_f64(
                w.entropy_bits() as f64 / self.huffman_bits_per_sec_per_way,
            ),
            idct: SimTime::from_secs_f64(w.blocks() as f64 / self.idct_blocks_per_sec),
            resize: SimTime::from_secs_f64(
                w.resize_pixels() as f64 / self.resize_pixels_per_sec_per_way,
            ),
            dma: SimTime::from_secs_f64(w.output_bytes() as f64 / self.dma_bytes_per_sec),
        }
    }

    /// Latency of a single image through an otherwise idle pipeline.
    ///
    /// The dataset encoder emits restart markers (DRI), so one image's
    /// entropy stream splits across all Huffman lanes and its rows across
    /// all resizer lanes — intra-image parallelism that matters exactly in
    /// the latency-sensitive bs=1 online-inference case (Fig. 8).
    pub fn image_latency(&self, w: &ImageWorkload) -> SimTime {
        let t = self.stage_times(w);
        t.parse
            + SimTime::from_secs_f64(t.huffman.as_secs_f64() / self.huffman_ways as f64)
            + t.idct
            + SimTime::from_secs_f64(t.resize.as_secs_f64() / self.resize_ways as f64)
            + t.dma
    }

    /// Steady-state throughput on a homogeneous stream of `w` images.
    pub fn throughput_images_per_sec(&self, w: &ImageWorkload) -> f64 {
        let t = self.stage_times(w);
        // Per-stage capacity in images/second.
        let capacities = [
            self.huffman_ways as f64 / t.huffman.as_secs_f64().max(1e-12),
            1.0 / t.idct.as_secs_f64().max(1e-12),
            self.resize_ways as f64 / t.resize.as_secs_f64().max(1e-12),
            1.0 / t.dma.as_secs_f64().max(1e-12),
        ];
        capacities.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Identifies the bottleneck stage name on workload `w`.
    pub fn bottleneck(&self, w: &ImageWorkload) -> &'static str {
        let t = self.stage_times(w);
        let loads = [
            (
                "huffman",
                t.huffman.as_secs_f64() / self.huffman_ways as f64,
            ),
            ("idct", t.idct.as_secs_f64()),
            ("resize", t.resize.as_secs_f64() / self.resize_ways as f64),
            ("dma", t.dma.as_secs_f64()),
        ];
        loads
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty")
            .0
    }

    /// Completion time for a batch of images entering an idle pipeline
    /// together: bottleneck-stage aggregate work plus the fill latency of
    /// one image through the remaining stages.
    pub fn batch_service_time(&self, images: &[ImageWorkload]) -> SimTime {
        if images.is_empty() {
            return SimTime::ZERO;
        }
        let mut huff = 0f64;
        let mut idct = 0f64;
        let mut resz = 0f64;
        let mut dma = 0f64;
        let mut max_single = SimTime::ZERO;
        for w in images {
            let t = self.stage_times(w);
            huff += t.huffman.as_secs_f64() / self.huffman_ways as f64;
            idct += t.idct.as_secs_f64();
            resz += t.resize.as_secs_f64() / self.resize_ways as f64;
            dma += t.dma.as_secs_f64();
            max_single = max_single.max(self.image_latency(w));
        }
        let bottleneck = huff.max(idct).max(resz).max(dma);
        let fill = max_single.as_secs_f64() - bottleneck / images.len() as f64;
        SimTime::from_secs_f64(bottleneck + fill.max(0.0))
            + SimTime::from_nanos(self.cmd_overhead.as_nanos() * images.len() as u64)
    }
}

/// Pricing for the non-image kernels (paper §7 future work (3): "extending
/// more preprocessing kernels for more DL applications"). Both kernels are
/// DSP-dominated streaming pipelines, so one rate per kernel suffices.
impl FpgaTimingModel {
    /// Audio spectrogram service time: DCT-II over windowed frames. A
    /// 300 MHz fabric with a few dozen DSP MACs per cycle sustains ≈2 G
    /// MAC/s per lane-group; a frame of `frame_size`×`coefficients` MACs.
    pub fn audio_batch_service(
        &self,
        clips: u32,
        samples_per_clip: u32,
        coefficients: u32,
    ) -> SimTime {
        let frame_size = 400u64;
        let hop = 160u64;
        let frames = (samples_per_clip as u64).saturating_sub(frame_size) / hop + 1;
        let macs = clips as u64 * frames * frame_size * coefficients as u64;
        let mac_rate = 2.0e9 * (self.huffman_ways as f64); // lanes repurposed
        SimTime::from_secs_f64(macs as f64 / mac_rate)
            + SimTime::from_nanos(self.cmd_overhead.as_nanos() * clips as u64)
    }

    /// Text quantisation service time: hash + table write per token —
    /// bandwidth-trivial; the FIFO/cmd overhead dominates.
    pub fn text_batch_service(&self, docs: u32, tokens_per_doc: u32) -> SimTime {
        let tokens = docs as u64 * tokens_per_doc as u64;
        let token_rate = 100.0e6 * self.huffman_ways as f64;
        SimTime::from_secs_f64(tokens as f64 / token_rate)
            + SimTime::from_nanos(self.cmd_overhead.as_nanos() * docs as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_peaks_near_fig7a_plateau() {
        let model = FpgaTimingModel::paper_config();
        let tp = model.throughput_images_per_sec(&ImageWorkload::ilsvrc_like());
        // Fig. 7(a): DLBooster plateaus around 5.5–6 k images/s.
        assert!(
            (5_000.0..7_000.0).contains(&tp),
            "throughput {tp:.0} img/s outside the paper's plateau band"
        );
    }

    #[test]
    fn paper_config_is_load_balanced() {
        // §3.3: 4-way Huffman + 2-way resize were chosen so neither unit
        // straggles. Check the two stage loads are within 25 %.
        let model = FpgaTimingModel::paper_config();
        let t = model.stage_times(&ImageWorkload::ilsvrc_like());
        let huff = t.huffman.as_secs_f64() / 4.0;
        let resz = t.resize.as_secs_f64() / 2.0;
        let ratio = huff.max(resz) / huff.min(resz);
        assert!(ratio < 1.25, "stage imbalance ratio {ratio:.2}");
    }

    #[test]
    fn single_image_latency_sub_millisecond() {
        let model = FpgaTimingModel::paper_config();
        let lat = model.image_latency(&ImageWorkload::ilsvrc_like());
        // The Fig. 8 bs=1 total of 1.2 ms includes inference; decode alone
        // must be well under a millisecond.
        assert!(
            lat < SimTime::from_millis(1),
            "decode latency {lat} too high"
        );
        assert!(lat > SimTime::from_micros(100), "implausibly fast: {lat}");
    }

    #[test]
    fn more_huffman_ways_raise_throughput_until_next_bottleneck() {
        let spec = DeviceSpec::arria10_ax();
        let w = ImageWorkload::ilsvrc_like();
        let tp4 = FpgaTimingModel::from_mirror(&DecoderMirror::jpeg_with_ways(4, 2), &spec)
            .throughput_images_per_sec(&w);
        let tp8 = FpgaTimingModel::from_mirror(&DecoderMirror::jpeg_with_ways(8, 2), &spec)
            .throughput_images_per_sec(&w);
        let tp8r4 = FpgaTimingModel::from_mirror(&DecoderMirror::jpeg_with_ways(8, 4), &spec)
            .throughput_images_per_sec(&w);
        assert!(tp8 > tp4, "8-way {tp8:.0} should beat 4-way {tp4:.0}");
        assert!(
            tp8r4 > tp8,
            "wider resize should relieve the next bottleneck"
        );
    }

    #[test]
    fn bottleneck_identification() {
        let model = FpgaTimingModel::paper_config();
        let w = ImageWorkload::ilsvrc_like();
        let b = model.bottleneck(&w);
        assert!(b == "huffman" || b == "resize", "unexpected bottleneck {b}");
        // With 32 huffman ways, huffman can't be the bottleneck.
        let wide = FpgaTimingModel {
            huffman_ways: 32,
            ..model
        };
        assert_ne!(wide.bottleneck(&w), "huffman");
    }

    #[test]
    fn batch_amortises_fill_latency() {
        let model = FpgaTimingModel::paper_config();
        let w = ImageWorkload::ilsvrc_like();
        let one = model.batch_service_time(&[w]);
        let batch: Vec<ImageWorkload> = vec![w; 64];
        let sixty_four = model.batch_service_time(&batch);
        let per_image_batched = sixty_four.as_secs_f64() / 64.0;
        let per_image_single = one.as_secs_f64();
        assert!(
            per_image_batched < per_image_single / 2.0,
            "batching should amortise: {per_image_batched:.6}s vs {per_image_single:.6}s"
        );
        // Batched steady-state matches the throughput model within 25 %.
        let tp = model.throughput_images_per_sec(&w);
        let batched_tp = 1.0 / per_image_batched;
        assert!(
            (batched_tp / tp - 1.0).abs() < 0.25,
            "batched {batched_tp:.0} vs steady {tp:.0}"
        );
    }

    #[test]
    fn empty_batch_is_free() {
        assert_eq!(
            FpgaTimingModel::paper_config().batch_service_time(&[]),
            SimTime::ZERO
        );
    }

    #[test]
    fn mnist_images_are_cheap() {
        let model = FpgaTimingModel::paper_config();
        let tp = model.throughput_images_per_sec(&ImageWorkload::mnist_like());
        // Tiny grayscale frames decode at least an order of magnitude faster.
        assert!(tp > 50_000.0, "MNIST throughput {tp:.0}");
    }

    #[test]
    fn faster_fabric_scales_rates() {
        let mirror = DecoderMirror::jpeg_paper_config();
        let mut fast = DeviceSpec::arria10_ax();
        fast.fabric_mhz = 600;
        let base = FpgaTimingModel::from_mirror(&mirror, &DeviceSpec::arria10_ax());
        let boosted = FpgaTimingModel::from_mirror(&mirror, &fast);
        let w = ImageWorkload::ilsvrc_like();
        let r = boosted.throughput_images_per_sec(&w) / base.throughput_images_per_sec(&w);
        assert!((r - 2.0).abs() < 0.2, "clock scaling ratio {r:.2}");
    }

    #[test]
    fn audio_and_text_kernels_price_sanely() {
        let model = FpgaTimingModel::paper_config();
        // 1 s of 16 kHz audio, 40 coefficients: ≈98 frames × 400 × 40 MACs.
        let t = model.audio_batch_service(1, 16_000, 40);
        let clips_per_sec = 1.0 / t.as_secs_f64();
        // Must be comfortably real-time (hundreds of clips/s) but finite.
        assert!(
            (100.0..1_000_000.0).contains(&clips_per_sec),
            "audio rate {clips_per_sec:.0} clips/s"
        );
        // Bigger batches take proportionally longer.
        let t8 = model.audio_batch_service(8, 16_000, 40);
        let ratio = t8.as_secs_f64() / t.as_secs_f64();
        assert!(
            (7.0..9.0).contains(&ratio),
            "audio batch scaling {ratio:.2}"
        );

        let tq = model.text_batch_service(64, 128);
        assert!(tq < SimTime::from_millis(1), "text quantise {tq}");
        assert!(tq > SimTime::ZERO);
    }

    #[test]
    fn workload_geometry() {
        let w = ImageWorkload::ilsvrc_like();
        // 500×375 at 4:2:0: 32×24 MCUs × 6 blocks.
        assert_eq!(w.blocks(), 32 * 24 * 6);
        assert_eq!(w.output_bytes(), 224 * 224 * 3);
        assert_eq!(w.resize_pixels(), 500 * 375);
        let m = ImageWorkload::mnist_like();
        assert_eq!(m.blocks(), 4 * 4);
        assert_eq!(m.output_bytes(), 28 * 28);
        // Passthrough dims.
        let mut p = w;
        p.dst_width = 0;
        p.dst_height = 0;
        assert_eq!(p.output_dims(), (500, 375));
    }
}

//! Error types for the FPGA substrate.

use std::fmt;

/// Errors raised by device management, cmd handling, or the decoder engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FpgaError {
    /// The mirror's resource requirements exceed the device budget.
    InsufficientResources {
        /// Which resource ran out (e.g. "ALM").
        resource: &'static str,
        /// Requested amount.
        requested: u64,
        /// Available amount.
        available: u64,
    },
    /// No mirror is loaded; the device cannot decode.
    NoMirrorLoaded,
    /// A mirror is already loaded and the device is running.
    DeviceBusy,
    /// A cmd failed structural validation.
    BadCmd {
        /// Why the cmd is invalid.
        detail: String,
    },
    /// The engine has been shut down.
    EngineStopped,
    /// A data fetch failed (disk block / host memory region unavailable).
    FetchFailed {
        /// Description from the resolver.
        detail: String,
    },
}

impl fmt::Display for FpgaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FpgaError::InsufficientResources {
                resource,
                requested,
                available,
            } => write!(
                f,
                "insufficient {resource}: mirror needs {requested}, device has {available}"
            ),
            FpgaError::NoMirrorLoaded => write!(f, "no decoder mirror loaded"),
            FpgaError::DeviceBusy => write!(f, "device busy (mirror loaded and running)"),
            FpgaError::BadCmd { detail } => write!(f, "bad decode cmd: {detail}"),
            FpgaError::EngineStopped => write!(f, "decoder engine stopped"),
            FpgaError::FetchFailed { detail } => write!(f, "data fetch failed: {detail}"),
        }
    }
}

impl std::error::Error for FpgaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FpgaError::InsufficientResources {
            resource: "ALM",
            requested: 500_000,
            available: 427_200,
        };
        let s = e.to_string();
        assert!(s.contains("ALM") && s.contains("500000") && s.contains("427200"));
        assert!(FpgaError::NoMirrorLoaded.to_string().contains("mirror"));
    }
}

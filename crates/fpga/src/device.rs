//! The FPGA device: a resource budget plus mirror load/unload management.

use crate::error::FpgaError;
use crate::mirror::DecoderMirror;

/// Programmable-logic resources (the currencies a mirror spends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceBudget {
    /// Adaptive logic modules.
    pub alms: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// Block RAM in kilobits.
    pub bram_kbits: u64,
}

impl ResourceBudget {
    /// True if `self` can host `need`.
    pub fn fits(&self, need: &ResourceBudget) -> Result<(), FpgaError> {
        if need.alms > self.alms {
            return Err(FpgaError::InsufficientResources {
                resource: "ALM",
                requested: need.alms,
                available: self.alms,
            });
        }
        if need.dsps > self.dsps {
            return Err(FpgaError::InsufficientResources {
                resource: "DSP",
                requested: need.dsps,
                available: self.dsps,
            });
        }
        if need.bram_kbits > self.bram_kbits {
            return Err(FpgaError::InsufficientResources {
                resource: "BRAM",
                requested: need.bram_kbits,
                available: self.bram_kbits,
            });
        }
        Ok(())
    }

    /// Utilisation fractions (alm, dsp, bram) of `need` against `self`.
    pub fn utilisation(&self, need: &ResourceBudget) -> (f64, f64, f64) {
        let frac = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        (
            frac(need.alms, self.alms),
            frac(need.dsps, self.dsps),
            frac(need.bram_kbits, self.bram_kbits),
        )
    }
}

/// Static description of an FPGA part.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name.
    pub name: String,
    /// Total resources.
    pub budget: ResourceBudget,
    /// Nominal fabric clock in MHz (drives the timing model).
    pub fabric_mhz: u32,
    /// PCIe link bandwidth to the host, bytes/second.
    pub pcie_bytes_per_sec: f64,
    /// Board power draw in watts (economics model; paper cites ≈25 W).
    pub power_watts: f64,
}

impl DeviceSpec {
    /// The paper's testbed part: Intel Arria-10 AX.
    pub fn arria10_ax() -> Self {
        Self {
            name: "Intel Arria 10 AX".into(),
            budget: ResourceBudget {
                alms: 427_200,
                dsps: 1_518,
                bram_kbits: 55_562,
            },
            fabric_mhz: 300,
            // Gen3 x8 effective ≈ 7.0 GB/s.
            pcie_bytes_per_sec: 7.0e9,
            power_watts: 25.0,
        }
    }

    /// A deliberately small part, for resource-rejection tests.
    pub fn tiny() -> Self {
        Self {
            name: "tiny-test-fpga".into(),
            budget: ResourceBudget {
                alms: 50_000,
                dsps: 100,
                bram_kbits: 4_000,
            },
            fabric_mhz: 200,
            pcie_bytes_per_sec: 2.0e9,
            power_watts: 10.0,
        }
    }
}

/// A device with at most one loaded mirror.
#[derive(Debug)]
pub struct FpgaDevice {
    spec: DeviceSpec,
    loaded: Option<DecoderMirror>,
}

impl FpgaDevice {
    /// A fresh device with nothing loaded.
    pub fn new(spec: DeviceSpec) -> Self {
        Self { spec, loaded: None }
    }

    /// Device description.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Currently loaded mirror, if any.
    pub fn mirror(&self) -> Option<&DecoderMirror> {
        self.loaded.as_ref()
    }

    /// Loads (downloads) a mirror, checking the resource budget — the
    /// pluggable-decoder flow of paper §3.1/§4.1.
    pub fn load_mirror(&mut self, mirror: DecoderMirror) -> Result<(), FpgaError> {
        if self.loaded.is_some() {
            return Err(FpgaError::DeviceBusy);
        }
        self.spec.budget.fits(&mirror.resources)?;
        self.loaded = Some(mirror);
        Ok(())
    }

    /// Unloads the current mirror (reconfiguration between workflows).
    pub fn unload_mirror(&mut self) -> Option<DecoderMirror> {
        self.loaded.take()
    }

    /// Fabric utilisation of the loaded mirror.
    pub fn utilisation(&self) -> Option<(f64, f64, f64)> {
        self.loaded
            .as_ref()
            .map(|m| self.spec.budget.utilisation(&m.resources))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mirror_fits_arria10() {
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        let (alm, dsp, bram) = dev.utilisation().unwrap();
        assert!(alm > 0.1 && alm < 1.0, "ALM utilisation {alm}");
        assert!(dsp > 0.1 && dsp < 1.0, "DSP utilisation {dsp}");
        assert!(bram > 0.0 && bram < 1.0, "BRAM utilisation {bram}");
    }

    #[test]
    fn oversized_mirror_rejected() {
        // A 16-way everything decoder cannot fit: this is exactly why the
        // paper offloads *selectively* (§3.3).
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        let err = dev
            .load_mirror(DecoderMirror::jpeg_with_ways(16, 16))
            .unwrap_err();
        assert!(
            matches!(err, FpgaError::InsufficientResources { .. }),
            "{err}"
        );
        assert!(dev.mirror().is_none());
    }

    #[test]
    fn tiny_device_rejects_paper_mirror() {
        let mut dev = FpgaDevice::new(DeviceSpec::tiny());
        assert!(dev.load_mirror(DecoderMirror::jpeg_paper_config()).is_err());
        // But a 1-way mirror fits nowhere near — even 1-way exceeds tiny ALMs.
        let one_way = DecoderMirror::jpeg_with_ways(1, 1);
        assert!(dev.load_mirror(one_way).is_err());
    }

    #[test]
    fn reload_requires_unload() {
        let mut dev = FpgaDevice::new(DeviceSpec::arria10_ax());
        dev.load_mirror(DecoderMirror::jpeg_paper_config()).unwrap();
        assert!(matches!(
            dev.load_mirror(DecoderMirror::audio_spectrogram()),
            Err(FpgaError::DeviceBusy)
        ));
        let old = dev.unload_mirror().unwrap();
        assert_eq!(old.huffman_ways, 4);
        dev.load_mirror(DecoderMirror::audio_spectrogram()).unwrap();
        assert_eq!(dev.mirror().unwrap().name, "audio-dct-spectrogram");
    }

    #[test]
    fn utilisation_fractions() {
        let budget = ResourceBudget {
            alms: 100,
            dsps: 10,
            bram_kbits: 1000,
        };
        let need = ResourceBudget {
            alms: 50,
            dsps: 5,
            bram_kbits: 100,
        };
        assert_eq!(budget.utilisation(&need), (0.5, 0.5, 0.1));
        assert!(budget.fits(&need).is_ok());
        assert!(budget.fits(&ResourceBudget { alms: 101, ..need }).is_err());
    }
}

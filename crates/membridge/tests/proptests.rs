//! Property tests: the pool never double-leases, always conserves units,
//! and address translation is a bijection over the pool's range.

use dlb_membridge::{MemManager, PoolConfig};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn leased_units_are_distinct(
        unit_size in 64usize..4096,
        unit_count in 1usize..32,
    ) {
        let pool = MemManager::new(PoolConfig {
            unit_size,
            unit_count,
            phys_base: 0x1_0000_0000,
        }).unwrap();
        let mut ids = HashSet::new();
        let mut phys = HashSet::new();
        let mut units = Vec::new();
        while let Some(u) = pool.try_get_item() {
            prop_assert!(ids.insert(u.id()), "duplicate unit id {}", u.id());
            prop_assert!(phys.insert(u.phys_addr()), "duplicate phys addr");
            prop_assert_eq!(u.capacity(), unit_size);
            units.push(u);
        }
        prop_assert_eq!(units.len(), unit_count);
        for u in units {
            pool.recycle_item(u).unwrap();
        }
        prop_assert_eq!(pool.free_count(), unit_count);
    }

    #[test]
    fn translation_is_bijective_over_pool_range(
        unit_size in 64usize..2048,
        unit_count in 1usize..16,
        probes in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let base = 0x2_0000_0000u64;
        let pool = MemManager::new(PoolConfig {
            unit_size,
            unit_count,
            phys_base: base,
        }).unwrap();
        let span = (unit_size * unit_count) as u64;
        for p in probes {
            let phys = base + p % span;
            let virt = pool.phy2virt(phys).unwrap();
            prop_assert_eq!(pool.virt2phy(virt).unwrap(), phys);
        }
        // Out-of-range probes must fail.
        prop_assert!(pool.phy2virt(base - 1).is_err());
        prop_assert!(pool.phy2virt(base + span).is_err());
    }

    #[test]
    fn append_never_overflows_capacity(
        unit_size in 16usize..512,
        chunks in prop::collection::vec(1usize..128, 1..64),
    ) {
        let pool = MemManager::new(PoolConfig {
            unit_size,
            unit_count: 1,
            phys_base: 0,
        }).unwrap();
        let mut unit = pool.get_item().unwrap();
        let mut expected_used = 0usize;
        for (i, len) in chunks.iter().enumerate() {
            let bytes = vec![i as u8; *len];
            match unit.append(&bytes, i as u64, 1, 1, 1) {
                Some(idx) => {
                    expected_used += len;
                    prop_assert_eq!(unit.item_bytes(idx), &bytes[..]);
                }
                None => {
                    // Rejected append must not mutate the unit.
                    prop_assert!(expected_used + len > unit_size);
                }
            }
            prop_assert_eq!(unit.used(), expected_used);
            prop_assert!(unit.used() <= unit.capacity());
        }
        pool.recycle_item(unit).unwrap();
    }
}

//! Property tests: the pool never double-leases, always conserves units,
//! address translation is a bijection over the pool's range, and every
//! misuse path (recycle-after-close, bad restore input) fails with a
//! typed error instead of a panic.

use dlb_membridge::{ItemDesc, MemManager, PoolConfig, PoolError};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn leased_units_are_distinct(
        unit_size in 64usize..4096,
        unit_count in 1usize..32,
    ) {
        let pool = MemManager::new(PoolConfig {
            unit_size,
            unit_count,
            phys_base: 0x1_0000_0000,
        }).unwrap();
        let mut ids = HashSet::new();
        let mut phys = HashSet::new();
        let mut units = Vec::new();
        while let Some(u) = pool.try_get_item() {
            prop_assert!(ids.insert(u.id()), "duplicate unit id {}", u.id());
            prop_assert!(phys.insert(u.phys_addr()), "duplicate phys addr");
            prop_assert_eq!(u.capacity(), unit_size);
            units.push(u);
        }
        prop_assert_eq!(units.len(), unit_count);
        for u in units {
            pool.recycle_item(u).unwrap();
        }
        prop_assert_eq!(pool.free_count(), unit_count);
    }

    #[test]
    fn translation_is_bijective_over_pool_range(
        unit_size in 64usize..2048,
        unit_count in 1usize..16,
        probes in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let base = 0x2_0000_0000u64;
        let pool = MemManager::new(PoolConfig {
            unit_size,
            unit_count,
            phys_base: base,
        }).unwrap();
        let span = (unit_size * unit_count) as u64;
        for p in probes {
            let phys = base + p % span;
            let virt = pool.phy2virt(phys).unwrap();
            prop_assert_eq!(pool.virt2phy(virt).unwrap(), phys);
        }
        // Out-of-range probes must fail.
        prop_assert!(pool.phy2virt(base - 1).is_err());
        prop_assert!(pool.phy2virt(base + span).is_err());
    }

    #[test]
    fn append_never_overflows_capacity(
        unit_size in 16usize..512,
        chunks in prop::collection::vec(1usize..128, 1..64),
    ) {
        let pool = MemManager::new(PoolConfig {
            unit_size,
            unit_count: 1,
            phys_base: 0,
        }).unwrap();
        let mut unit = pool.get_item().unwrap();
        let mut expected_used = 0usize;
        for (i, len) in chunks.iter().enumerate() {
            let bytes = vec![i as u8; *len];
            match unit.append(&bytes, i as u64, 1, 1, 1) {
                Some(idx) => {
                    expected_used += len;
                    prop_assert_eq!(unit.item_bytes(idx), &bytes[..]);
                }
                None => {
                    // Rejected append must not mutate the unit.
                    prop_assert!(expected_used + len > unit_size);
                }
            }
            prop_assert_eq!(unit.used(), expected_used);
            prop_assert!(unit.used() <= unit.capacity());
        }
        pool.recycle_item(unit).unwrap();
    }

    /// Random get/recycle/close interleavings conserve units: at every
    /// step `free + held + destroyed == unit_count`, leases round-trip
    /// through the phys↔virt tables, and operations after close fail
    /// with typed errors instead of panicking.
    #[test]
    fn random_interleavings_conserve_free_count(
        unit_count in 1usize..12,
        ops in prop::collection::vec((any::<u8>(), any::<prop::sample::Index>()), 1..200),
        close_at in any::<prop::sample::Index>(),
    ) {
        let pool = MemManager::new(PoolConfig {
            unit_size: 128,
            unit_count,
            phys_base: 0x3_0000_0000,
        }).unwrap();
        let close_step = close_at.index(ops.len());
        let mut held: Vec<_> = Vec::new();
        let mut destroyed = 0usize;
        let mut closed = false;
        for (step, (sel, idx)) in ops.into_iter().enumerate() {
            if step == close_step {
                pool.close();
                closed = true;
            }
            if sel % 2 == 0 {
                match pool.try_get_item() {
                    Some(u) => {
                        // Leases stay translation-consistent.
                        let virt = pool.phy2virt(u.phys_addr()).unwrap();
                        prop_assert_eq!(virt, u.virt_addr());
                        prop_assert_eq!(pool.virt2phy(virt).unwrap(), u.phys_addr());
                        held.push(u);
                    }
                    None => prop_assert!(closed || held.len() + destroyed == unit_count),
                }
            } else if !held.is_empty() {
                let u = held.remove(idx.index(held.len()));
                match pool.recycle_item(u) {
                    Ok(()) => prop_assert!(!closed, "recycle cannot succeed after close"),
                    Err(e) => {
                        prop_assert_eq!(e, PoolError::Closed);
                        prop_assert!(closed);
                        destroyed += 1; // failed recycle drops the unit
                    }
                }
            }
            prop_assert!(
                pool.free_count() + held.len() + destroyed == unit_count,
                "conservation broke at step {}",
                step
            );
        }
    }

    /// The same conservation law holds under genuinely concurrent
    /// lease/recycle traffic from multiple threads.
    #[test]
    fn concurrent_interleavings_conserve_free_count(
        unit_count in 2usize..8,
        rounds in 10usize..80,
    ) {
        let pool = MemManager::new(PoolConfig {
            unit_size: 64,
            unit_count,
            phys_base: 0x5_0000_0000,
        }).unwrap();
        let threads: Vec<_> = (0..3)
            .map(|t| {
                let pool = pool.clone();
                std::thread::spawn(move || {
                    for i in 0..rounds {
                        if let Some(mut u) = pool.try_get_item() {
                            u.append(&[t as u8, i as u8], i as u64, 1, 1, 1);
                            pool.recycle_item(u).unwrap();
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        prop_assert_eq!(pool.free_count(), unit_count);
        prop_assert_eq!(pool.stats().leased, 0);
        prop_assert_eq!(pool.stats().lease_ops, pool.stats().recycle_ops);
    }

    /// `restore` never panics: any payload/descriptor input either
    /// succeeds consistently or fails with a typed restore error.
    #[test]
    fn restore_is_total_over_arbitrary_inputs(
        payload in prop::collection::vec(any::<u8>(), 0..300),
        descs in prop::collection::vec(
            (any::<usize>(), any::<usize>()),
            0..8
        ),
    ) {
        let pool = MemManager::new(PoolConfig {
            unit_size: 256,
            unit_count: 1,
            phys_base: 0,
        }).unwrap();
        let mut unit = pool.get_item().unwrap();
        let items: Vec<ItemDesc> = descs
            .into_iter()
            .map(|(offset, len)| ItemDesc {
                offset,
                len,
                label: 0,
                width: 1,
                height: 1,
                channels: 1,
            })
            .collect();
        match unit.restore(&payload, &items) {
            Ok(()) => {
                prop_assert!(payload.len() <= unit.capacity());
                prop_assert_eq!(unit.used(), payload.len());
                for it in unit.items() {
                    prop_assert!(it.offset + it.len <= payload.len());
                }
            }
            Err(PoolError::RestoreOverflow { payload: p, capacity }) => {
                prop_assert_eq!(p, payload.len());
                prop_assert!(p > capacity);
            }
            Err(PoolError::RestoreLayout { offset, len, payload: p }) => {
                prop_assert_eq!(p, payload.len());
                prop_assert!(offset.checked_add(len).map_or(true, |end| end > p));
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
        pool.recycle_item(unit).unwrap();
    }
}

//! Blocking MPMC queues with close semantics.
//!
//! These implement the `Free_Batch_Queue` / `Full_Batch_Queue` behaviour of
//! Algorithms 1–3: producers block when a bounded queue is full ("FPGAReader
//! ... will be blocked until a new memory unit is available"), consumers
//! block when it is empty ("full_batch_queue.blocking_wait()"), and a close
//! signal lets every pipeline daemon drain and exit cleanly at shutdown.

use dlb_telemetry::{names, Counter, Gauge, Heartbeat, Telemetry};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Error returned when an operation cannot complete because the queue was
/// closed (pipeline shutdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueClosed;

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "queue closed")
    }
}

impl std::error::Error for QueueClosed {}

/// Telemetry handles attached to one queue by [`BlockingQueue::instrument`]:
/// `queue.<name>.{depth,pushed,popped,blocked_push_nanos,blocked_pop_nanos}`
/// plus a watchdog heartbeat tied to the depth gauge.
#[derive(Debug, Clone)]
pub struct QueueHooks {
    depth: Arc<Gauge>,
    pushed: Arc<Counter>,
    popped: Arc<Counter>,
    blocked_push_nanos: Arc<Counter>,
    blocked_pop_nanos: Arc<Counter>,
    heartbeat: Arc<Heartbeat>,
}

impl QueueHooks {
    /// Registers the per-queue metric set under `queue.<name>.*` and a
    /// watchdog entry keyed by the queue name.
    pub fn register(telemetry: &Telemetry, name: &str) -> Self {
        let key = |field: &str| format!("{}{name}.{field}", names::QUEUE_PREFIX);
        let depth = telemetry.registry.gauge(&key("depth"));
        Self {
            pushed: telemetry.registry.counter(&key("pushed")),
            popped: telemetry.registry.counter(&key("popped")),
            blocked_push_nanos: telemetry.registry.counter(&key("blocked_push_nanos")),
            blocked_pop_nanos: telemetry.registry.counter(&key("blocked_pop_nanos")),
            heartbeat: telemetry.watchdog.watch_queue(name, Arc::clone(&depth)),
            depth,
        }
    }
}

struct Inner<T> {
    queue: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    hooks: OnceLock<QueueHooks>,
}

impl<T> Inner<T> {
    /// Records one push while the state lock is held.
    fn note_push(&self, st: &State<T>) {
        if let Some(h) = self.hooks.get() {
            h.pushed.inc();
            h.depth.set(st.items.len() as i64);
            h.heartbeat.beat();
        }
    }

    /// Records `n` pops while the state lock is held.
    fn note_pop(&self, st: &State<T>, n: u64) {
        if let Some(h) = self.hooks.get() {
            h.popped.add(n);
            h.depth.set(st.items.len() as i64);
            h.heartbeat.beat();
        }
    }
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Total items ever pushed — conservation checks in tests.
    pushed: u64,
    /// Total items ever popped.
    popped: u64,
}

/// A blocking bounded (or unbounded) MPMC FIFO queue, cheaply cloneable.
pub struct BlockingQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> std::fmt::Debug for BlockingQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.queue.lock();
        f.debug_struct("BlockingQueue")
            .field("len", &st.items.len())
            .field("closed", &st.closed)
            .finish()
    }
}

impl<T> Clone for BlockingQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> BlockingQueue<T> {
    /// A queue bounded at `capacity` items (`usize::MAX` ≈ unbounded).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Self {
            inner: Arc::new(Inner {
                queue: Mutex::new(State {
                    items: VecDeque::new(),
                    closed: false,
                    pushed: 0,
                    popped: 0,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity,
                hooks: OnceLock::new(),
            }),
        }
    }

    /// An unbounded queue.
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// Attaches telemetry: registers `queue.<name>.*` metrics on
    /// `telemetry` and starts watching this queue for stalls. The first
    /// call wins; later calls are ignored. Items already queued are
    /// credited to the pushed counter so conservation holds.
    pub fn instrument(&self, telemetry: &Telemetry, name: &str) {
        let hooks = QueueHooks::register(telemetry, name);
        let st = self.inner.queue.lock();
        if self.inner.hooks.set(hooks).is_ok() {
            let h = self.inner.hooks.get().expect("just set");
            h.pushed.add(st.items.len() as u64);
            h.depth.set(st.items.len() as i64);
        }
    }

    /// Pushes, blocking while the queue is full. Errors if closed.
    pub fn push(&self, item: T) -> Result<(), QueueClosed> {
        let mut st = self.inner.queue.lock();
        if st.items.len() >= self.inner.capacity && !st.closed {
            let blocked = Instant::now();
            while st.items.len() >= self.inner.capacity && !st.closed {
                self.inner.not_full.wait(&mut st);
            }
            if let Some(h) = self.inner.hooks.get() {
                h.blocked_push_nanos
                    .add(blocked.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
        }
        if st.closed {
            return Err(QueueClosed);
        }
        st.items.push_back(item);
        st.pushed += 1;
        self.inner.note_push(&st);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Like [`BlockingQueue::push`], but hands the item back instead of
    /// dropping it when the queue is closed. Callers that own scarce
    /// resources inside the item (pool units) can recycle them rather
    /// than leak them at shutdown.
    pub fn push_or_return(&self, item: T) -> Result<(), T> {
        let mut st = self.inner.queue.lock();
        if st.items.len() >= self.inner.capacity && !st.closed {
            let blocked = Instant::now();
            while st.items.len() >= self.inner.capacity && !st.closed {
                self.inner.not_full.wait(&mut st);
            }
            if let Some(h) = self.inner.hooks.get() {
                h.blocked_push_nanos
                    .add(blocked.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
            }
        }
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        st.pushed += 1;
        self.inner.note_push(&st);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking push; `Ok(false)` when full.
    pub fn try_push(&self, item: T) -> Result<bool, QueueClosed> {
        let mut st = self.inner.queue.lock();
        if st.closed {
            return Err(QueueClosed);
        }
        if st.items.len() >= self.inner.capacity {
            return Ok(false);
        }
        st.items.push_back(item);
        st.pushed += 1;
        self.inner.note_push(&st);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(true)
    }

    /// Pops, blocking while empty. Errors once the queue is closed *and*
    /// drained (items pushed before close are still delivered).
    pub fn pop(&self) -> Result<T, QueueClosed> {
        let mut st = self.inner.queue.lock();
        let mut blocked: Option<Instant> = None;
        loop {
            if let Some(item) = st.items.pop_front() {
                st.popped += 1;
                self.inner.note_pop(&st, 1);
                if let (Some(start), Some(h)) = (blocked, self.inner.hooks.get()) {
                    h.blocked_pop_nanos
                        .add(start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(item);
            }
            if st.closed {
                return Err(QueueClosed);
            }
            blocked.get_or_insert_with(Instant::now);
            self.inner.not_empty.wait(&mut st);
        }
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.inner.queue.lock();
        let item = st.items.pop_front();
        if item.is_some() {
            st.popped += 1;
            self.inner.note_pop(&st, 1);
            drop(st);
            self.inner.not_full.notify_one();
        }
        item
    }

    /// Pops with a timeout; `Ok(None)` on timeout.
    pub fn pop_timeout(&self, timeout: Duration) -> Result<Option<T>, QueueClosed> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.queue.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                st.popped += 1;
                self.inner.note_pop(&st, 1);
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(Some(item));
            }
            if st.closed {
                return Err(QueueClosed);
            }
            if self
                .inner
                .not_empty
                .wait_until(&mut st, deadline)
                .timed_out()
            {
                return Ok(match st.items.pop_front() {
                    Some(item) => {
                        st.popped += 1;
                        self.inner.note_pop(&st, 1);
                        Some(item)
                    }
                    None => None,
                });
            }
        }
    }

    /// Drains everything currently queued (the `drain_out` of Algorithm 1).
    pub fn drain(&self) -> Vec<T> {
        let mut st = self.inner.queue.lock();
        let n = st.items.len();
        st.popped += n as u64;
        let items: Vec<T> = st.items.drain(..).collect();
        if n > 0 {
            self.inner.note_pop(&st, n as u64);
        }
        drop(st);
        for _ in 0..n {
            self.inner.not_full.notify_one();
        }
        items
    }

    /// `peak()` from Algorithm 1: is an item available right now?
    pub fn peek_available(&self) -> bool {
        !self.inner.queue.lock().items.is_empty()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: pending and future pushes fail, pops drain whatever
    /// remains and then fail. Idempotent.
    pub fn close(&self) {
        let mut st = self.inner.queue.lock();
        st.closed = true;
        drop(st);
        self.inner.not_empty.notify_all();
        self.inner.not_full.notify_all();
    }

    /// True once closed.
    pub fn is_closed(&self) -> bool {
        self.inner.queue.lock().closed
    }

    /// (pushed, popped) lifetime counters — used by conservation tests.
    pub fn counters(&self) -> (u64, u64) {
        let st = self.inner.queue.lock();
        (st.pushed, st.popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order() {
        let q = BlockingQueue::unbounded();
        for i in 0..10 {
            q.push(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap(), i);
        }
    }

    #[test]
    fn bounded_blocks_producer_until_consumed() {
        let q = BlockingQueue::bounded(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(!q.try_push(3).unwrap());
        let q2 = q.clone();
        let producer = thread::spawn(move || q2.push(3));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.len(), 2, "producer must be blocked");
        assert_eq!(q.pop().unwrap(), 1);
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop().unwrap(), 2);
        assert_eq!(q.pop().unwrap(), 3);
    }

    #[test]
    fn consumer_blocks_until_produced() {
        let q: BlockingQueue<u32> = BlockingQueue::unbounded();
        let q2 = q.clone();
        let consumer = thread::spawn(move || q2.pop().unwrap());
        thread::sleep(Duration::from_millis(20));
        q.push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), 42);
    }

    #[test]
    fn close_drains_then_errors() {
        let q = BlockingQueue::unbounded();
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).is_err());
        assert_eq!(q.pop().unwrap(), 1);
        assert_eq!(q.pop().unwrap(), 2);
        assert_eq!(q.pop(), Err(QueueClosed));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: BlockingQueue<u32> = BlockingQueue::unbounded();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || q.pop())
            })
            .collect();
        thread::sleep(Duration::from_millis(20));
        q.close();
        for h in handles {
            assert_eq!(h.join().unwrap(), Err(QueueClosed));
        }
    }

    #[test]
    fn close_wakes_blocked_producers() {
        let q = BlockingQueue::bounded(1);
        q.push(0u32).unwrap();
        let q2 = q.clone();
        let producer = thread::spawn(move || q2.push(1));
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(QueueClosed));
    }

    #[test]
    fn pop_timeout_returns_none_then_value() {
        let q: BlockingQueue<u32> = BlockingQueue::unbounded();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), None);
        q.push(5).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(10)).unwrap(), Some(5));
    }

    #[test]
    fn drain_empties_queue() {
        let q = BlockingQueue::unbounded();
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        assert!(!q.peek_available());
        let (pushed, popped) = q.counters();
        assert_eq!(pushed, 5);
        assert_eq!(popped, 5);
    }

    #[test]
    fn mpmc_conservation_under_contention() {
        let q = BlockingQueue::bounded(8);
        let n_producers = 4;
        let per_producer = 500u64;
        let mut handles = Vec::new();
        for p in 0..n_producers {
            let q = q.clone();
            handles.push(thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p * per_producer + i).unwrap();
                }
            }));
        }
        let total = n_producers * per_producer;
        let consumed = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            let consumed = consumed.clone();
            consumers.push(thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = q.pop() {
                    sum = sum.wrapping_add(v);
                    consumed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                sum
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Wait for drain, then close to release consumers.
        while consumed.load(std::sync::atomic::Ordering::Relaxed) < total {
            thread::yield_now();
        }
        q.close();
        let mut grand = 0u64;
        for c in consumers {
            grand = grand.wrapping_add(c.join().unwrap());
        }
        let expect: u64 = (0..total).sum();
        assert_eq!(grand, expect);
        let (pushed, popped) = q.counters();
        assert_eq!(pushed, total);
        assert_eq!(popped, total);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = BlockingQueue::<u8>::bounded(0);
    }

    #[test]
    fn instrumented_queue_reports_depth_and_conservation() {
        let t = dlb_telemetry::Telemetry::with_defaults();
        let q = BlockingQueue::bounded(4);
        // One item queued before instrumentation: must be credited so the
        // pushed == popped + depth invariant holds from the start.
        q.push(1u32).unwrap();
        q.instrument(&t, "unit");
        q.push(2).unwrap();
        assert_eq!(q.pop().unwrap(), 1);
        let snap = t.pipeline_snapshot();
        let qm = snap.queues.iter().find(|m| m.name == "unit").unwrap();
        assert_eq!(qm.pushed, 2);
        assert_eq!(qm.popped, 1);
        assert_eq!(qm.depth, 1);
        assert_eq!(qm.high_water, 2);
        assert!(snap.invariant_violations().is_empty());
    }

    #[test]
    fn instrumented_queue_accounts_blocked_time() {
        let t = dlb_telemetry::Telemetry::with_defaults();
        let q: BlockingQueue<u32> = BlockingQueue::bounded(1);
        q.instrument(&t, "blocked");
        let q2 = q.clone();
        let consumer = thread::spawn(move || q2.pop().unwrap());
        thread::sleep(Duration::from_millis(20));
        q.push(9).unwrap();
        assert_eq!(consumer.join().unwrap(), 9);
        let snap = t.pipeline_snapshot();
        let qm = snap.queues.iter().find(|m| m.name == "blocked").unwrap();
        assert!(
            qm.blocked_pop_nanos >= 10_000_000,
            "blocked {} ns",
            qm.blocked_pop_nanos
        );
    }
}

//! # dlb-membridge
//!
//! The memory-management substrate of DLBooster's host bridger (paper §3.4.2,
//! Algorithm 2): a HugePage-style pool of large, physically-addressable batch
//! buffers, recycled through a pair of blocking queues
//! (`Free_Batch_Queue` / `Full_Batch_Queue`).
//!
//! The paper's motivation is reproduced verbatim here: data are preprocessed
//! *in batches*, a batch needs more contiguous memory than `mmap` page games
//! give you, and copying many small pieces costs ≈20 % of training throughput
//! (§5.2). So the pool allocates every buffer up front, slices it into
//! fixed-size units, and the pipeline only ever moves *unit ownership*, never
//! bytes.
//!
//! ## Substitution note (no real HugePages / FPGA DMA here)
//!
//! On the paper's testbed a unit's *physical* address is what the FPGA DMA
//! engine writes to. In this reproduction, physical addresses are simulated:
//! each unit carries a stable `phys_addr` drawn from a contiguous fake
//! physical range, and [`MemManager::phy2virt`]/[`MemManager::virt2phy`]
//! implement the translation the paper's Table 1 lists. The byte storage
//! backing a unit is an ordinary owned allocation — ownership transfer
//! through the queues provides exactly the aliasing guarantees the real
//! system gets from its recycle protocol.

pub mod pool;
pub mod queue;

pub use pool::{BatchUnit, ItemDesc, MemManager, PoolConfig, PoolError, PoolStats};
pub use queue::{BlockingQueue, QueueClosed};

//! The HugePage batch memory pool (paper Algorithm 2) and the `MemManager`
//! API from Table 1 (`get_item`, `recycle_item`, `phy2virt`, `virt2phy`).

use crate::queue::{BlockingQueue, QueueClosed};
use dlb_chaos::{FaultKind, StageInjector};
use dlb_telemetry::{names, Counter, Gauge, Telemetry};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Errors from pool operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// The pool's free queue was closed (shutdown).
    Closed,
    /// A translation was requested for an address the pool does not own.
    UnknownAddress {
        /// The offending address.
        addr: u64,
    },
    /// Configuration rejected.
    BadConfig {
        /// Why.
        detail: String,
    },
    /// A unit from a different pool was recycled here.
    ForeignUnit,
    /// A unit that is already back in the free queue was recycled again.
    DoubleRecycle {
        /// The offending unit id.
        id: u32,
    },
    /// A cached payload larger than the unit's capacity was restored.
    RestoreOverflow {
        /// Cached payload length in bytes.
        payload: usize,
        /// Unit capacity in bytes.
        capacity: usize,
    },
    /// A restore item descriptor points outside the cached payload.
    RestoreLayout {
        /// The descriptor's byte offset.
        offset: usize,
        /// The descriptor's length.
        len: usize,
        /// The cached payload length it must fit inside.
        payload: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::Closed => write!(f, "memory pool closed"),
            PoolError::UnknownAddress { addr } => {
                write!(f, "address {addr:#x} not owned by this pool")
            }
            PoolError::BadConfig { detail } => write!(f, "bad pool config: {detail}"),
            PoolError::ForeignUnit => write!(f, "batch unit belongs to a different pool"),
            PoolError::DoubleRecycle { id } => {
                write!(f, "unit {id} is already in the free queue")
            }
            PoolError::RestoreOverflow { payload, capacity } => {
                write!(
                    f,
                    "cached payload {payload} exceeds unit capacity {capacity}"
                )
            }
            PoolError::RestoreLayout {
                offset,
                len,
                payload,
            } => write!(
                f,
                "item descriptor {offset}+{len} outside cached payload of {payload} bytes"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

impl From<QueueClosed> for PoolError {
    fn from(_: QueueClosed) -> Self {
        PoolError::Closed
    }
}

/// Pool construction parameters (Algorithm 2's `size`, `counts`).
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Bytes per batch unit — sized for one *batch* of decoded images
    /// (e.g. 256 × 224×224×3 ≈ 38 MB), not one image. This is the paper's
    /// key trick against small-piece copy overhead.
    pub unit_size: usize,
    /// Number of units pre-allocated.
    pub unit_count: usize,
    /// Base of the simulated physical address range.
    pub phys_base: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            unit_size: 8 << 20,
            unit_count: 16,
            // An arbitrary high "physical" base, making accidental pointer
            // confusion with virtual addresses obvious in logs.
            phys_base: 0x4_0000_0000,
        }
    }
}

/// Description of one datum placed inside a batch unit — the `offset` of
/// Algorithm 1 plus the metadata the compute engine needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemDesc {
    /// Byte offset of this datum inside the unit.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
    /// Dataset label (classification target or request id).
    pub label: u64,
    /// Width of the decoded image in pixels.
    pub width: u32,
    /// Height of the decoded image in pixels.
    pub height: u32,
    /// Interleaved channel count (1 or 3).
    pub channels: u8,
}

/// An owned lease on one pool unit: a batch buffer with a stable simulated
/// physical address. Dropping a `BatchUnit` without recycling it removes the
/// unit from circulation (leak detection in [`PoolStats`] catches this).
#[derive(Debug)]
pub struct BatchUnit {
    /// Unit index within its pool.
    id: u32,
    /// Pool identity tag (guards against cross-pool recycling).
    pool_tag: u64,
    /// Simulated physical base address of this unit.
    phys_addr: u64,
    /// The actual storage.
    data: Box<[u8]>,
    /// Bytes of `data` holding valid payload.
    used: usize,
    /// Items packed into this unit.
    items: Vec<ItemDesc>,
    /// Monotone sequence number assigned when the unit was filled.
    sequence: u64,
}

impl BatchUnit {
    /// Unit index within the pool.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Simulated physical address of the unit base (what goes into FPGA
    /// decode cmds).
    pub fn phys_addr(&self) -> u64 {
        self.phys_addr
    }

    /// Simulated virtual address (what the dispatcher hands to CUDA-style
    /// async copies). Equal to the stable address of the backing storage.
    pub fn virt_addr(&self) -> u64 {
        self.data.as_ptr() as u64
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.data.len()
    }

    /// Valid payload length.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.data[..self.used]
    }

    /// Full mutable storage (the "DMA target").
    pub fn storage_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Items packed in this unit.
    pub fn items(&self) -> &[ItemDesc] {
        &self.items
    }

    /// Batch sequence number (set by the producer via [`BatchUnit::seal`]).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Appends one datum's bytes, returning its [`ItemDesc`] slot, or `None`
    /// if the unit cannot hold `len` more bytes.
    pub fn append(
        &mut self,
        bytes: &[u8],
        label: u64,
        width: u32,
        height: u32,
        channels: u8,
    ) -> Option<usize> {
        let offset = self.used;
        if offset + bytes.len() > self.data.len() {
            return None;
        }
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        self.used += bytes.len();
        self.items.push(ItemDesc {
            offset,
            len: bytes.len(),
            label,
            width,
            height,
            channels,
        });
        Some(self.items.len() - 1)
    }

    /// Reserves `len` bytes for device-side writes (the FPGA DMA path writes
    /// directly into the unit; the host only records the metadata). Returns
    /// the reserved offset, or `None` if the unit is full.
    pub fn reserve(
        &mut self,
        len: usize,
        label: u64,
        width: u32,
        height: u32,
        channels: u8,
    ) -> Option<usize> {
        let offset = self.used;
        if offset + len > self.data.len() {
            return None;
        }
        self.used += len;
        self.items.push(ItemDesc {
            offset,
            len,
            label,
            width,
            height,
            channels,
        });
        Some(offset)
    }

    /// Bytes of item `idx`.
    pub fn item_bytes(&self, idx: usize) -> &[u8] {
        let it = &self.items[idx];
        &self.data[it.offset..it.offset + it.len]
    }

    /// Mutable bytes of item `idx` (device writeback target).
    pub fn item_bytes_mut(&mut self, idx: usize) -> &mut [u8] {
        let it = self.items[idx].clone();
        &mut self.data[it.offset..it.offset + it.len]
    }

    /// Number of packed items.
    pub fn item_count(&self) -> usize {
        self.items.len()
    }

    /// Marks the unit ready with a batch sequence number.
    pub fn seal(&mut self, sequence: u64) {
        self.sequence = sequence;
    }

    /// Repopulates the unit from a previously captured payload + item
    /// layout (the epoch-cache replay path). Fails with a typed
    /// [`PoolError`] if the payload exceeds capacity or the items don't
    /// describe it; the unit is left untouched on failure.
    pub fn restore(&mut self, payload: &[u8], items: &[ItemDesc]) -> Result<(), PoolError> {
        if payload.len() > self.data.len() {
            return Err(PoolError::RestoreOverflow {
                payload: payload.len(),
                capacity: self.data.len(),
            });
        }
        if let Some(bad) = items.iter().find(|it| {
            it.offset
                .checked_add(it.len)
                .is_none_or(|end| end > payload.len())
        }) {
            return Err(PoolError::RestoreLayout {
                offset: bad.offset,
                len: bad.len,
                payload: payload.len(),
            });
        }
        self.reset();
        self.data[..payload.len()].copy_from_slice(payload);
        self.used = payload.len();
        self.items = items.to_vec();
        Ok(())
    }

    /// Clears payload/items for reuse (done automatically on recycle).
    pub fn reset(&mut self) {
        self.used = 0;
        self.items.clear();
        self.sequence = 0;
    }
}

/// Occupancy statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Units currently leased out (not in the free queue).
    pub leased: usize,
    /// Total units.
    pub total: usize,
    /// Lifetime lease operations.
    pub lease_ops: u64,
    /// Lifetime recycle operations.
    pub recycle_ops: u64,
}

/// Telemetry handles for the pool stage (`pool.*` metrics).
struct PoolHandles {
    leases: Arc<Counter>,
    recycles: Arc<Counter>,
    starvations: Arc<Counter>,
    blocked_nanos: Arc<Counter>,
    free_units: Arc<Gauge>,
}

impl PoolHandles {
    fn register(telemetry: &Telemetry) -> Self {
        Self {
            leases: telemetry.registry.counter(names::POOL_LEASES),
            recycles: telemetry.registry.counter(names::POOL_RECYCLES),
            starvations: telemetry.registry.counter(names::POOL_STARVATIONS),
            blocked_nanos: telemetry.registry.counter(names::POOL_BLOCKED_NANOS),
            free_units: telemetry.registry.gauge(names::POOL_FREE_UNITS),
        }
    }
}

struct PoolInner {
    free: BlockingQueue<BatchUnit>,
    unit_size: usize,
    unit_count: usize,
    phys_base: u64,
    pool_tag: u64,
    leased: AtomicUsize,
    lease_ops: AtomicU64,
    recycle_ops: AtomicU64,
    handles: Option<PoolHandles>,
    /// `virt_addr` of each unit by id — the translation table.
    virt_table: Vec<u64>,
    /// Per-unit "currently in the free queue" flags — detects
    /// double-recycles as typed errors instead of silent corruption.
    in_free: Vec<AtomicBool>,
    /// Optional chaos injector (pool exhaustion / delayed recycling).
    chaos: OnceLock<Arc<StageInjector>>,
    /// Ordinal for chaos fault decisions.
    chaos_ticket: AtomicU64,
}

/// The pool: pre-allocates all units up front and recycles them through an
/// internal free queue. Clone handles share the pool.
///
/// Named `MemManager` after the paper's Table 1 module.
#[derive(Clone)]
pub struct MemManager {
    inner: Arc<PoolInner>,
}

static POOL_TAG: AtomicU64 = AtomicU64::new(1);

impl MemManager {
    /// Pre-allocates `config.unit_count` units of `config.unit_size` bytes
    /// (Algorithm 2 lines 1–5).
    pub fn new(config: PoolConfig) -> Result<Self, PoolError> {
        Self::build(config, None)
    }

    /// Like [`MemManager::new`], but reporting lease/recycle/starvation
    /// counts and free-unit occupancy through `telemetry`.
    pub fn with_telemetry(config: PoolConfig, telemetry: &Telemetry) -> Result<Self, PoolError> {
        Self::build(config, Some(PoolHandles::register(telemetry)))
    }

    fn build(config: PoolConfig, handles: Option<PoolHandles>) -> Result<Self, PoolError> {
        if config.unit_size == 0 || config.unit_count == 0 {
            return Err(PoolError::BadConfig {
                detail: format!(
                    "unit_size={} unit_count={} must be positive",
                    config.unit_size, config.unit_count
                ),
            });
        }
        let pool_tag = POOL_TAG.fetch_add(1, Ordering::Relaxed);
        let free = BlockingQueue::unbounded();
        let mut virt_table = Vec::with_capacity(config.unit_count);
        let mut in_free = Vec::with_capacity(config.unit_count);
        for id in 0..config.unit_count {
            let data = vec![0u8; config.unit_size].into_boxed_slice();
            let unit = BatchUnit {
                id: id as u32,
                pool_tag,
                phys_addr: config.phys_base + (id * config.unit_size) as u64,
                data,
                used: 0,
                items: Vec::new(),
                sequence: 0,
            };
            virt_table.push(unit.virt_addr());
            in_free.push(AtomicBool::new(true));
            free.push(unit).expect("fresh queue is open");
        }
        if let Some(h) = &handles {
            h.free_units.set(config.unit_count as i64);
        }
        Ok(Self {
            inner: Arc::new(PoolInner {
                free,
                unit_size: config.unit_size,
                unit_count: config.unit_count,
                phys_base: config.phys_base,
                pool_tag,
                leased: AtomicUsize::new(0),
                lease_ops: AtomicU64::new(0),
                recycle_ops: AtomicU64::new(0),
                handles,
                virt_table,
                in_free,
                chaos: OnceLock::new(),
                chaos_ticket: AtomicU64::new(0),
            }),
        })
    }

    /// Attaches a chaos injector for the pool plane (exhaustion = forced
    /// starvation waits, delayed recycling). One branch on the hot path
    /// when absent; attach is one-shot (later calls are ignored).
    pub fn attach_chaos(&self, injector: Arc<StageInjector>) {
        let _ = self.inner.chaos.set(injector);
    }

    /// If a chaos fault fires for this pool operation, returns it.
    fn chaos_fault(&self) -> Option<(Arc<StageInjector>, FaultKind)> {
        let inj = self.inner.chaos.get()?;
        let ticket = self.inner.chaos_ticket.fetch_add(1, Ordering::Relaxed);
        inj.decide(ticket).map(|f| (Arc::clone(inj), f))
    }

    fn note_lease(&self, unit: &BatchUnit) {
        self.inner.in_free[unit.id as usize].store(false, Ordering::Release);
        self.inner.leased.fetch_add(1, Ordering::Relaxed);
        self.inner.lease_ops.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.inner.handles {
            h.leases.inc();
            h.free_units.dec();
        }
    }

    /// Table 1 `get_item`: leases a free unit, blocking while none is
    /// available (the back-pressure of Algorithm 1 lines 5–9).
    pub fn get_item(&self) -> Result<BatchUnit, PoolError> {
        if let Some((inj, fault)) = self.chaos_fault() {
            // Simulated exhaustion: the lease waits as if the pool were
            // briefly empty. `Overflow` additionally surfaces as a
            // starvation event.
            if fault == FaultKind::Overflow {
                if let Some(h) = &self.inner.handles {
                    h.starvations.inc();
                }
            }
            inj.sleep(inj.delay());
        }
        let unit = match self.inner.free.try_pop() {
            Some(unit) => unit,
            None => {
                // Starvation: the reader outran recycling and must wait.
                if let Some(h) = &self.inner.handles {
                    h.starvations.inc();
                }
                let blocked = Instant::now();
                let unit = self.inner.free.pop()?;
                if let Some(h) = &self.inner.handles {
                    h.blocked_nanos
                        .add(blocked.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                }
                unit
            }
        };
        self.note_lease(&unit);
        Ok(unit)
    }

    /// Non-blocking variant of [`MemManager::get_item`].
    pub fn try_get_item(&self) -> Option<BatchUnit> {
        if self.chaos_fault().is_some() {
            // Simulated exhaustion: report "nothing free right now" and
            // let the caller take its fallback path.
            return None;
        }
        let unit = self.inner.free.try_pop()?;
        self.note_lease(&unit);
        Some(unit)
    }

    /// True when `unit` was leased from this pool. A failover layer uses
    /// this to route recycles between a retired primary pool and its
    /// fallback without consuming the unit on a
    /// [`PoolError::ForeignUnit`].
    pub fn owns(&self, unit: &BatchUnit) -> bool {
        unit.pool_tag == self.inner.pool_tag
    }

    /// Table 1 `recycle_item`: clears the unit and returns it to the free
    /// queue for the next batch.
    ///
    /// Typed failure modes: [`PoolError::ForeignUnit`] for a unit from
    /// another pool, [`PoolError::DoubleRecycle`] for a unit already in
    /// the free queue, [`PoolError::Closed`] after shutdown. Stats are
    /// only updated on success (a failed recycle drops the unit, which
    /// leak detection in [`PoolStats::leased`] then reports).
    pub fn recycle_item(&self, mut unit: BatchUnit) -> Result<(), PoolError> {
        if unit.pool_tag != self.inner.pool_tag {
            return Err(PoolError::ForeignUnit);
        }
        let id = unit.id;
        if self.inner.in_free[id as usize].swap(true, Ordering::AcqRel) {
            return Err(PoolError::DoubleRecycle { id });
        }
        if let Some((inj, _)) = self.chaos_fault() {
            // Delayed recycling: the unit lingers before re-entering the
            // free queue, starving downstream leases.
            inj.sleep(inj.delay());
        }
        unit.reset();
        if let Err(closed) = self.inner.free.push(unit) {
            self.inner.in_free[id as usize].store(false, Ordering::Release);
            return Err(closed.into());
        }
        self.inner.leased.fetch_sub(1, Ordering::Relaxed);
        self.inner.recycle_ops.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = &self.inner.handles {
            h.recycles.inc();
            h.free_units.inc();
        }
        Ok(())
    }

    /// Table 1 `phy2virt`: translates a simulated physical address inside
    /// the pool's range to the corresponding virtual address.
    pub fn phy2virt(&self, phys: u64) -> Result<u64, PoolError> {
        let span = (self.inner.unit_size * self.inner.unit_count) as u64;
        if phys < self.inner.phys_base || phys >= self.inner.phys_base + span {
            return Err(PoolError::UnknownAddress { addr: phys });
        }
        let off = phys - self.inner.phys_base;
        let id = (off / self.inner.unit_size as u64) as usize;
        let within = off % self.inner.unit_size as u64;
        Ok(self.inner.virt_table[id] + within)
    }

    /// Table 1 `virt2phy`: inverse translation.
    pub fn virt2phy(&self, virt: u64) -> Result<u64, PoolError> {
        for (id, &base) in self.inner.virt_table.iter().enumerate() {
            let end = base + self.inner.unit_size as u64;
            if virt >= base && virt < end {
                return Ok(self.inner.phys_base
                    + (id * self.inner.unit_size) as u64
                    + (virt - base));
            }
        }
        Err(PoolError::UnknownAddress { addr: virt })
    }

    /// Bytes per unit.
    pub fn unit_size(&self) -> usize {
        self.inner.unit_size
    }

    /// Units in the pool.
    pub fn unit_count(&self) -> usize {
        self.inner.unit_count
    }

    /// Units currently free.
    pub fn free_count(&self) -> usize {
        self.inner.free.len()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            leased: self.inner.leased.load(Ordering::Relaxed),
            total: self.inner.unit_count,
            lease_ops: self.inner.lease_ops.load(Ordering::Relaxed),
            recycle_ops: self.inner.recycle_ops.load(Ordering::Relaxed),
        }
    }

    /// Shuts the pool down: blocked and future `get_item` calls fail.
    pub fn close(&self) {
        self.inner.free.close();
    }
}

impl std::fmt::Debug for MemManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemManager")
            .field("unit_size", &self.inner.unit_size)
            .field("unit_count", &self.inner.unit_count)
            .field("free", &self.inner.free.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn small_pool() -> MemManager {
        MemManager::new(PoolConfig {
            unit_size: 1024,
            unit_count: 4,
            phys_base: 0x1000_0000,
        })
        .unwrap()
    }

    #[test]
    fn lease_and_recycle_roundtrip() {
        let pool = small_pool();
        assert_eq!(pool.free_count(), 4);
        let unit = pool.get_item().unwrap();
        assert_eq!(pool.free_count(), 3);
        assert_eq!(pool.stats().leased, 1);
        pool.recycle_item(unit).unwrap();
        assert_eq!(pool.free_count(), 4);
        assert_eq!(pool.stats().leased, 0);
        assert_eq!(pool.stats().lease_ops, 1);
        assert_eq!(pool.stats().recycle_ops, 1);
    }

    #[test]
    fn units_have_distinct_contiguous_phys_addrs() {
        let pool = small_pool();
        let units: Vec<BatchUnit> = (0..4).map(|_| pool.get_item().unwrap()).collect();
        let mut addrs: Vec<u64> = units.iter().map(|u| u.phys_addr()).collect();
        addrs.sort_unstable();
        assert_eq!(
            addrs,
            vec![0x1000_0000, 0x1000_0400, 0x1000_0800, 0x1000_0C00]
        );
        for u in units {
            pool.recycle_item(u).unwrap();
        }
    }

    #[test]
    fn get_item_blocks_until_recycle() {
        let pool = MemManager::new(PoolConfig {
            unit_size: 64,
            unit_count: 1,
            phys_base: 0,
        })
        .unwrap();
        let unit = pool.get_item().unwrap();
        let pool2 = pool.clone();
        let waiter = thread::spawn(move || pool2.get_item().map(|u| u.id()));
        thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "get_item must block when pool empty");
        pool.recycle_item(unit).unwrap();
        assert_eq!(waiter.join().unwrap().unwrap(), 0);
    }

    #[test]
    fn append_and_reserve_pack_items() {
        let pool = small_pool();
        let mut unit = pool.get_item().unwrap();
        let idx = unit.append(&[1, 2, 3, 4], 7, 2, 2, 1).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(unit.item_bytes(0), &[1, 2, 3, 4]);
        let off = unit.reserve(8, 8, 2, 2, 2).unwrap();
        assert_eq!(off, 4);
        assert_eq!(unit.used(), 12);
        assert_eq!(unit.item_count(), 2);
        assert_eq!(unit.items()[1].label, 8);
        // Fill to capacity boundary.
        assert!(unit.reserve(2000, 0, 1, 1, 1).is_none());
        pool.recycle_item(unit).unwrap();
        // After recycle, the unit comes back cleared.
        let unit = pool.get_item().unwrap();
        assert_eq!(unit.used(), 0);
        assert_eq!(unit.item_count(), 0);
    }

    #[test]
    fn restore_replays_cached_batches() {
        let pool = small_pool();
        // Capture a filled unit's state.
        let mut unit = pool.get_item().unwrap();
        unit.append(&[1, 2, 3, 4], 7, 2, 2, 1).unwrap();
        unit.append(&[5, 6], 8, 1, 2, 1).unwrap();
        let payload = unit.payload().to_vec();
        let items = unit.items().to_vec();
        pool.recycle_item(unit).unwrap();
        // Replay into a fresh lease.
        let mut unit = pool.get_item().unwrap();
        unit.restore(&payload, &items).unwrap();
        assert_eq!(unit.used(), 6);
        assert_eq!(unit.item_count(), 2);
        assert_eq!(unit.item_bytes(0), &[1, 2, 3, 4]);
        assert_eq!(unit.item_bytes(1), &[5, 6]);
        assert_eq!(unit.items()[1].label, 8);
        pool.recycle_item(unit).unwrap();
    }

    #[test]
    fn restore_rejects_oversized_or_inconsistent() {
        let pool = small_pool();
        let mut unit = pool.get_item().unwrap();
        // Payload larger than capacity → typed overflow error, unit intact.
        unit.append(&[9, 9], 1, 1, 1, 1).unwrap();
        assert_eq!(
            unit.restore(&vec![0u8; 4096], &[]),
            Err(PoolError::RestoreOverflow {
                payload: 4096,
                capacity: 1024
            })
        );
        assert_eq!(unit.used(), 2, "failed restore must not clobber the unit");
        // Item descriptor outside the payload → typed layout error.
        let bad_item = ItemDesc {
            offset: 8,
            len: 8,
            label: 0,
            width: 1,
            height: 1,
            channels: 1,
        };
        assert_eq!(
            unit.restore(&[0u8; 10], &[bad_item]),
            Err(PoolError::RestoreLayout {
                offset: 8,
                len: 8,
                payload: 10
            })
        );
        // Offset+len overflowing usize must error, not panic.
        let huge_item = ItemDesc {
            offset: usize::MAX,
            len: 2,
            label: 0,
            width: 1,
            height: 1,
            channels: 1,
        };
        assert!(matches!(
            unit.restore(&[0u8; 10], &[huge_item]),
            Err(PoolError::RestoreLayout { .. })
        ));
        pool.recycle_item(unit).unwrap();
    }

    #[test]
    fn double_recycle_rejected_with_typed_error() {
        let pool = small_pool();
        let unit = pool.get_item().unwrap();
        let id = unit.id();
        // Forge a duplicate lease of the same unit (same-module access to
        // private fields stands in for a hypothetical ownership bug).
        let forged = BatchUnit {
            id,
            pool_tag: unit.pool_tag,
            phys_addr: unit.phys_addr,
            data: vec![0u8; 16].into_boxed_slice(),
            used: 0,
            items: Vec::new(),
            sequence: 0,
        };
        pool.recycle_item(unit).unwrap();
        assert_eq!(
            pool.recycle_item(forged),
            Err(PoolError::DoubleRecycle { id })
        );
        // The real unit is still leasable afterwards.
        let unit = pool.get_item().unwrap();
        pool.recycle_item(unit).unwrap();
    }

    #[test]
    fn recycle_after_close_rejected_with_typed_error() {
        let pool = small_pool();
        let unit = pool.get_item().unwrap();
        let leased_before = pool.stats().leased;
        pool.close();
        assert_eq!(pool.recycle_item(unit), Err(PoolError::Closed));
        // The unit is gone (dropped), which leak detection reports.
        assert_eq!(pool.stats().leased, leased_before);
        assert_eq!(pool.stats().recycle_ops, 0, "failed recycle not counted");
    }

    #[test]
    fn chaos_faults_delay_but_conserve_units() {
        let t = dlb_telemetry::Telemetry::with_defaults();
        let pool = MemManager::with_telemetry(
            PoolConfig {
                unit_size: 64,
                unit_count: 2,
                phys_base: 0,
            },
            &t,
        )
        .unwrap();
        let mut plan = dlb_chaos::FaultPlan::disabled();
        plan.pool = dlb_chaos::StageSpec::rate(1.0).with_delay(std::time::Duration::from_millis(1));
        pool.attach_chaos(plan.injector(dlb_chaos::Stage::Pool, &t).unwrap());
        for _ in 0..10 {
            let unit = pool.get_item().unwrap();
            pool.recycle_item(unit).unwrap();
        }
        // try_get_item under a firing injector reports exhaustion.
        assert!(pool.try_get_item().is_none());
        assert_eq!(pool.free_count(), 2, "latency faults never lose units");
        let snap = t.pipeline_snapshot();
        assert!(snap.chaos.injected_pool >= 20);
        assert_eq!(snap.chaos.injected_pool, snap.chaos.faults_total);
    }

    #[test]
    fn seal_sets_sequence_and_reset_clears_it() {
        let pool = small_pool();
        let mut unit = pool.get_item().unwrap();
        unit.seal(99);
        assert_eq!(unit.sequence(), 99);
        unit.reset();
        assert_eq!(unit.sequence(), 0);
        pool.recycle_item(unit).unwrap();
    }

    #[test]
    fn address_translation_roundtrips() {
        let pool = small_pool();
        let unit = pool.get_item().unwrap();
        let phys = unit.phys_addr() + 100;
        let virt = pool.phy2virt(phys).unwrap();
        assert_eq!(virt, unit.virt_addr() + 100);
        assert_eq!(pool.virt2phy(virt).unwrap(), phys);
        pool.recycle_item(unit).unwrap();
    }

    #[test]
    fn translation_rejects_foreign_addresses() {
        let pool = small_pool();
        assert!(matches!(
            pool.phy2virt(0xDEAD_0000),
            Err(PoolError::UnknownAddress { .. })
        ));
        assert!(matches!(
            pool.virt2phy(7),
            Err(PoolError::UnknownAddress { .. })
        ));
    }

    #[test]
    fn foreign_unit_rejected() {
        let pool_a = small_pool();
        let pool_b = small_pool();
        let unit = pool_a.get_item().unwrap();
        assert_eq!(pool_b.recycle_item(unit), Err(PoolError::ForeignUnit));
    }

    #[test]
    fn close_unblocks_getters() {
        let pool = MemManager::new(PoolConfig {
            unit_size: 64,
            unit_count: 1,
            phys_base: 0,
        })
        .unwrap();
        let _held = pool.get_item().unwrap();
        let pool2 = pool.clone();
        let waiter = thread::spawn(move || pool2.get_item().err());
        thread::sleep(Duration::from_millis(10));
        pool.close();
        assert_eq!(waiter.join().unwrap(), Some(PoolError::Closed));
    }

    #[test]
    fn bad_config_rejected() {
        assert!(MemManager::new(PoolConfig {
            unit_size: 0,
            unit_count: 1,
            phys_base: 0
        })
        .is_err());
        assert!(MemManager::new(PoolConfig {
            unit_size: 1,
            unit_count: 0,
            phys_base: 0
        })
        .is_err());
    }

    #[test]
    fn telemetry_pool_reports_occupancy_and_starvation() {
        let t = dlb_telemetry::Telemetry::with_defaults();
        let pool = MemManager::with_telemetry(
            PoolConfig {
                unit_size: 64,
                unit_count: 1,
                phys_base: 0,
            },
            &t,
        )
        .unwrap();
        let unit = pool.get_item().unwrap();
        assert_eq!(t.pipeline_snapshot().pool.free_units, 0);
        let pool2 = pool.clone();
        let waiter = thread::spawn(move || {
            let u = pool2.get_item().unwrap();
            pool2.recycle_item(u).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        pool.recycle_item(unit).unwrap();
        waiter.join().unwrap();
        let snap = t.pipeline_snapshot().pool;
        assert_eq!(snap.leases, 2);
        assert_eq!(snap.recycles, 2);
        assert_eq!(snap.free_units, 1);
        assert!(snap.starvations >= 1, "starvations {}", snap.starvations);
        assert!(snap.blocked_nanos > 0);
    }

    #[test]
    fn concurrent_lease_recycle_conserves_units() {
        let pool = MemManager::new(PoolConfig {
            unit_size: 256,
            unit_count: 8,
            phys_base: 0x2000_0000,
        })
        .unwrap();
        let mut handles = Vec::new();
        for t in 0..4 {
            let pool = pool.clone();
            handles.push(thread::spawn(move || {
                for i in 0..200 {
                    let mut unit = pool.get_item().unwrap();
                    let payload = [t as u8, i as u8];
                    unit.append(&payload, i, 1, 1, 1).unwrap();
                    assert_eq!(unit.item_bytes(0), &payload);
                    pool.recycle_item(unit).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(pool.free_count(), 8);
        let stats = pool.stats();
        assert_eq!(stats.leased, 0);
        assert_eq!(stats.lease_ops, 800);
        assert_eq!(stats.recycle_ops, 800);
    }
}

//! DL model zoo: layer-level FLOP/parameter accounting for every network the
//! paper evaluates (training: LeNet-5, AlexNet, ResNet-18; inference:
//! GoogLeNet, VGG-16, ResNet-50).
//!
//! Models are described layer by layer from their published architectures;
//! totals are *computed*, and unit tests pin them to the literature values
//! (e.g. VGG-16 ≈ 15.5 GMACs, ResNet-50 ≈ 4.1 GMACs). The timing model in
//! [`crate::timing`] prices kernels from these totals.

/// One computational layer, reduced to what the timing model needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Descriptive name ("conv1", "inception4a.3x3", …).
    pub name: String,
    /// Multiply-accumulate operations per image.
    pub macs: u64,
    /// Learnable parameters.
    pub params: u64,
    /// Output activation elements per image (memory-traffic estimate).
    pub activations: u64,
}

/// Convolution layer cost: `k×k` kernel, grouped, with explicit output
/// spatial size (taken from the architecture tables, avoiding stride/pad
/// inference errors).
fn conv(name: &str, in_ch: u64, out_ch: u64, k: u64, out_h: u64, out_w: u64, groups: u64) -> Layer {
    assert!(groups >= 1 && in_ch.is_multiple_of(groups) && out_ch.is_multiple_of(groups));
    let macs = k * k * (in_ch / groups) * out_ch * out_h * out_w;
    let params = k * k * (in_ch / groups) * out_ch + out_ch; // + bias
    Layer {
        name: name.into(),
        macs,
        params,
        activations: out_ch * out_h * out_w,
    }
}

/// Fully-connected layer cost.
fn fc(name: &str, in_features: u64, out_features: u64) -> Layer {
    Layer {
        name: name.into(),
        macs: in_features * out_features,
        params: in_features * out_features + out_features,
        activations: out_features,
    }
}

/// Parameter-free layer (pool / relu / lrn / concat): only activations.
fn act(name: &str, elements: u64) -> Layer {
    Layer {
        name: name.into(),
        macs: 0,
        params: 0,
        activations: elements,
    }
}

/// A complete network description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlModel {
    /// Network name as the paper uses it.
    pub name: String,
    /// Input (channels, height, width).
    pub input: (u32, u32, u32),
    /// Layers in execution order.
    pub layers: Vec<Layer>,
}

impl DlModel {
    /// Forward-pass FLOPs per image (2 FLOPs per MAC).
    pub fn forward_flops(&self) -> u64 {
        2 * self.layers.iter().map(|l| l.macs).sum::<u64>()
    }

    /// Total learnable parameters.
    pub fn params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total activation elements per image.
    pub fn activations(&self) -> u64 {
        self.layers.iter().map(|l| l.activations).sum()
    }

    /// Input tensor bytes per image (u8 pixels are converted to the compute
    /// precision before the first layer; this counts the decoded u8 form).
    pub fn input_bytes(&self) -> u64 {
        let (c, h, w) = self.input;
        c as u64 * h as u64 * w as u64
    }
}

/// The six benchmark networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelZoo {
    /// LeNet-5 on 28×28 grayscale (trained on MNIST; paper Fig. 5a).
    LeNet5,
    /// AlexNet on 227×227 RGB (paper Figs. 2, 5b).
    AlexNet,
    /// ResNet-18 on 224×224 RGB (paper Fig. 5c).
    ResNet18,
    /// GoogLeNet on 224×224 RGB (paper Figs. 7a/8a/9a).
    GoogLeNet,
    /// VGG-16 on 224×224 RGB (paper Figs. 7b/8b/9b).
    Vgg16,
    /// ResNet-50 on 224×224 RGB (paper Figs. 7c/8c/9c).
    ResNet50,
}

impl ModelZoo {
    /// All models in paper order.
    pub fn all() -> [ModelZoo; 6] {
        [
            ModelZoo::LeNet5,
            ModelZoo::AlexNet,
            ModelZoo::ResNet18,
            ModelZoo::GoogLeNet,
            ModelZoo::Vgg16,
            ModelZoo::ResNet50,
        ]
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            ModelZoo::LeNet5 => "LeNet-5",
            ModelZoo::AlexNet => "AlexNet",
            ModelZoo::ResNet18 => "ResNet-18",
            ModelZoo::GoogLeNet => "GoogLeNet",
            ModelZoo::Vgg16 => "VGG-16",
            ModelZoo::ResNet50 => "ResNet-50",
        }
    }

    /// Builds the full layer description.
    pub fn model(self) -> DlModel {
        match self {
            ModelZoo::LeNet5 => lenet5(),
            ModelZoo::AlexNet => alexnet(),
            ModelZoo::ResNet18 => resnet18(),
            ModelZoo::GoogLeNet => googlenet(),
            ModelZoo::Vgg16 => vgg16(),
            ModelZoo::ResNet50 => resnet50(),
        }
    }

    /// Network input size (channels, height, width).
    pub fn input_dims(self) -> (u32, u32, u32) {
        match self {
            ModelZoo::LeNet5 => (1, 28, 28),
            ModelZoo::AlexNet => (3, 227, 227),
            _ => (3, 224, 224),
        }
    }

    /// Per-GPU batch size the paper uses for this model's experiment.
    pub fn paper_batch_size(self) -> u32 {
        match self {
            ModelZoo::LeNet5 => 512,
            ModelZoo::AlexNet => 256,
            ModelZoo::ResNet18 => 128,
            // Inference sweeps go up to 32 (64 for ResNet-50); this is the
            // largest point of Figs. 7–9.
            ModelZoo::GoogLeNet | ModelZoo::Vgg16 => 32,
            ModelZoo::ResNet50 => 64,
        }
    }
}

fn lenet5() -> DlModel {
    // Caffe's LeNet variant (the one NVCaffe trains on MNIST).
    DlModel {
        name: "LeNet-5".into(),
        input: (1, 28, 28),
        layers: vec![
            conv("conv1", 1, 20, 5, 24, 24, 1),
            act("pool1", 20 * 12 * 12),
            conv("conv2", 20, 50, 5, 8, 8, 1),
            act("pool2", 50 * 4 * 4),
            fc("ip1", 800, 500),
            act("relu1", 500),
            fc("ip2", 500, 10),
        ],
    }
}

fn alexnet() -> DlModel {
    // Krizhevsky et al. 2012 (Caffe single-GPU variant, grouped convs).
    DlModel {
        name: "AlexNet".into(),
        input: (3, 227, 227),
        layers: vec![
            conv("conv1", 3, 96, 11, 55, 55, 1),
            act("pool1", 96 * 27 * 27),
            conv("conv2", 96, 256, 5, 27, 27, 2),
            act("pool2", 256 * 13 * 13),
            conv("conv3", 256, 384, 3, 13, 13, 1),
            conv("conv4", 384, 384, 3, 13, 13, 2),
            conv("conv5", 384, 256, 3, 13, 13, 2),
            act("pool5", 256 * 6 * 6),
            fc("fc6", 9216, 4096),
            fc("fc7", 4096, 4096),
            fc("fc8", 4096, 1000),
        ],
    }
}

fn vgg16() -> DlModel {
    let mut layers = Vec::new();
    // (blocks of (convs, channels, spatial))
    let cfg: [(u64, u64, u64); 5] = [
        (2, 64, 224),
        (2, 128, 112),
        (3, 256, 56),
        (3, 512, 28),
        (3, 512, 14),
    ];
    let mut in_ch = 3u64;
    for (b, &(convs, ch, sp)) in cfg.iter().enumerate() {
        for c in 0..convs {
            layers.push(conv(
                &format!("conv{}_{}", b + 1, c + 1),
                in_ch,
                ch,
                3,
                sp,
                sp,
                1,
            ));
            in_ch = ch;
        }
        layers.push(act(&format!("pool{}", b + 1), ch * (sp / 2) * (sp / 2)));
    }
    layers.push(fc("fc6", 512 * 7 * 7, 4096));
    layers.push(fc("fc7", 4096, 4096));
    layers.push(fc("fc8", 4096, 1000));
    DlModel {
        name: "VGG-16".into(),
        input: (3, 224, 224),
        layers,
    }
}

/// ResNet basic block: two 3×3 convs (+ a 1×1 projection on downsampling).
fn basic_block(
    layers: &mut Vec<Layer>,
    name: &str,
    in_ch: u64,
    ch: u64,
    sp: u64,
    downsample: bool,
) {
    layers.push(conv(&format!("{name}.conv1"), in_ch, ch, 3, sp, sp, 1));
    layers.push(conv(&format!("{name}.conv2"), ch, ch, 3, sp, sp, 1));
    if downsample {
        layers.push(conv(&format!("{name}.proj"), in_ch, ch, 1, sp, sp, 1));
    }
}

fn resnet18() -> DlModel {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 112, 112, 1),
        act("pool1", 64 * 56 * 56),
    ];
    // (channels, spatial, blocks); first block of stages 2–4 downsamples.
    let stages: [(u64, u64, u64); 4] = [(64, 56, 2), (128, 28, 2), (256, 14, 2), (512, 7, 2)];
    let mut in_ch = 64u64;
    for (s, &(ch, sp, blocks)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let downsample = s > 0 && b == 0;
            basic_block(
                &mut layers,
                &format!("layer{}.{}", s + 1, b),
                in_ch,
                ch,
                sp,
                downsample,
            );
            in_ch = ch;
        }
    }
    layers.push(act("avgpool", 512));
    layers.push(fc("fc", 512, 1000));
    DlModel {
        name: "ResNet-18".into(),
        input: (3, 224, 224),
        layers,
    }
}

/// ResNet bottleneck block: 1×1 reduce, 3×3, 1×1 expand (+ projection).
fn bottleneck(
    layers: &mut Vec<Layer>,
    name: &str,
    in_ch: u64,
    mid: u64,
    out_ch: u64,
    sp: u64,
    project: bool,
) {
    layers.push(conv(&format!("{name}.conv1"), in_ch, mid, 1, sp, sp, 1));
    layers.push(conv(&format!("{name}.conv2"), mid, mid, 3, sp, sp, 1));
    layers.push(conv(&format!("{name}.conv3"), mid, out_ch, 1, sp, sp, 1));
    if project {
        layers.push(conv(&format!("{name}.proj"), in_ch, out_ch, 1, sp, sp, 1));
    }
}

fn resnet50() -> DlModel {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 112, 112, 1),
        act("pool1", 64 * 56 * 56),
    ];
    // (mid, out, spatial, blocks)
    let stages: [(u64, u64, u64, u64); 4] = [
        (64, 256, 56, 3),
        (128, 512, 28, 4),
        (256, 1024, 14, 6),
        (512, 2048, 7, 3),
    ];
    let mut in_ch = 64u64;
    for (s, &(mid, out, sp, blocks)) in stages.iter().enumerate() {
        for b in 0..blocks {
            bottleneck(
                &mut layers,
                &format!("layer{}.{}", s + 1, b),
                in_ch,
                mid,
                out,
                sp,
                b == 0,
            );
            in_ch = out;
        }
    }
    layers.push(act("avgpool", 2048));
    layers.push(fc("fc", 2048, 1000));
    DlModel {
        name: "ResNet-50".into(),
        input: (3, 224, 224),
        layers,
    }
}

/// One GoogLeNet inception module (Szegedy et al. 2015, Table 1).
#[allow(clippy::too_many_arguments)]
fn inception(
    layers: &mut Vec<Layer>,
    name: &str,
    in_ch: u64,
    c1: u64,
    c3r: u64,
    c3: u64,
    c5r: u64,
    c5: u64,
    pp: u64,
    sp: u64,
) {
    layers.push(conv(&format!("{name}.1x1"), in_ch, c1, 1, sp, sp, 1));
    layers.push(conv(&format!("{name}.3x3r"), in_ch, c3r, 1, sp, sp, 1));
    layers.push(conv(&format!("{name}.3x3"), c3r, c3, 3, sp, sp, 1));
    layers.push(conv(&format!("{name}.5x5r"), in_ch, c5r, 1, sp, sp, 1));
    layers.push(conv(&format!("{name}.5x5"), c5r, c5, 5, sp, sp, 1));
    layers.push(conv(&format!("{name}.pool_proj"), in_ch, pp, 1, sp, sp, 1));
}

fn googlenet() -> DlModel {
    let mut layers = vec![
        conv("conv1", 3, 64, 7, 112, 112, 1),
        act("pool1", 64 * 56 * 56),
        conv("conv2.reduce", 64, 64, 1, 56, 56, 1),
        conv("conv2", 64, 192, 3, 56, 56, 1),
        act("pool2", 192 * 28 * 28),
    ];
    // (in, 1x1, 3x3r, 3x3, 5x5r, 5x5, pool_proj, spatial)
    let modules: [(&str, [u64; 7], u64); 9] = [
        ("3a", [192, 64, 96, 128, 16, 32, 32], 28),
        ("3b", [256, 128, 128, 192, 32, 96, 64], 28),
        ("4a", [480, 192, 96, 208, 16, 48, 64], 14),
        ("4b", [512, 160, 112, 224, 24, 64, 64], 14),
        ("4c", [512, 128, 128, 256, 24, 64, 64], 14),
        ("4d", [512, 112, 144, 288, 32, 64, 64], 14),
        ("4e", [528, 256, 160, 320, 32, 128, 128], 14),
        ("5a", [832, 256, 160, 320, 32, 128, 128], 7),
        ("5b", [832, 384, 192, 384, 48, 128, 128], 7),
    ];
    for (name, m, sp) in modules {
        inception(
            &mut layers,
            &format!("inception{name}"),
            m[0],
            m[1],
            m[2],
            m[3],
            m[4],
            m[5],
            m[6],
            sp,
        );
    }
    layers.push(act("avgpool", 1024));
    layers.push(fc("fc", 1024, 1000));
    DlModel {
        name: "GoogLeNet".into(),
        input: (3, 224, 224),
        layers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Literature MAC counts (per image, forward). Tolerances are generous
    /// enough to cover framework-variant differences (bias terms, LRN,
    /// projection variants) but tight enough to catch structural mistakes.
    fn assert_close(actual: u64, expected: f64, tol: f64, what: &str) {
        let ratio = actual as f64 / expected;
        assert!(
            (1.0 - tol..=1.0 + tol).contains(&ratio),
            "{what}: got {actual}, expected ≈{expected:.3e} (ratio {ratio:.3})"
        );
    }

    #[test]
    fn lenet5_macs_and_params() {
        let m = ModelZoo::LeNet5.model();
        assert_close(m.forward_flops() / 2, 2.29e6, 0.10, "LeNet-5 MACs");
        assert_close(m.params(), 4.31e5, 0.05, "LeNet-5 params");
    }

    #[test]
    fn alexnet_macs_and_params() {
        let m = ModelZoo::AlexNet.model();
        assert_close(m.forward_flops() / 2, 7.24e8, 0.10, "AlexNet MACs");
        assert_close(m.params(), 6.1e7, 0.05, "AlexNet params");
    }

    #[test]
    fn vgg16_macs_and_params() {
        let m = ModelZoo::Vgg16.model();
        assert_close(m.forward_flops() / 2, 1.55e10, 0.05, "VGG-16 MACs");
        assert_close(m.params(), 1.38e8, 0.03, "VGG-16 params");
    }

    #[test]
    fn resnet18_macs_and_params() {
        let m = ModelZoo::ResNet18.model();
        assert_close(m.forward_flops() / 2, 1.82e9, 0.10, "ResNet-18 MACs");
        assert_close(m.params(), 1.17e7, 0.10, "ResNet-18 params");
    }

    #[test]
    fn resnet50_macs_and_params() {
        let m = ModelZoo::ResNet50.model();
        assert_close(m.forward_flops() / 2, 4.1e9, 0.10, "ResNet-50 MACs");
        assert_close(m.params(), 2.56e7, 0.10, "ResNet-50 params");
    }

    #[test]
    fn googlenet_macs_and_params() {
        let m = ModelZoo::GoogLeNet.model();
        assert_close(m.forward_flops() / 2, 1.5e9, 0.10, "GoogLeNet MACs");
        assert_close(m.params(), 7.0e6, 0.15, "GoogLeNet params");
    }

    #[test]
    fn input_bytes_match_dims() {
        assert_eq!(ModelZoo::LeNet5.model().input_bytes(), 28 * 28);
        assert_eq!(ModelZoo::Vgg16.model().input_bytes(), 3 * 224 * 224);
        assert_eq!(ModelZoo::AlexNet.model().input_bytes(), 3 * 227 * 227);
    }

    #[test]
    fn relative_ordering_matches_folklore() {
        // VGG-16 is the heaviest; LeNet-5 the lightest; ResNet-50 > ResNet-18.
        let flops: Vec<u64> = ModelZoo::all()
            .iter()
            .map(|m| m.model().forward_flops())
            .collect();
        let [lenet, alex, r18, goog, vgg, r50] = flops[..] else {
            panic!()
        };
        assert!(vgg > r50 && r50 > r18 && r18 > alex && alex > lenet);
        assert!(goog < r18, "GoogLeNet is famously lean");
    }

    #[test]
    fn paper_batch_sizes() {
        assert_eq!(ModelZoo::LeNet5.paper_batch_size(), 512);
        assert_eq!(ModelZoo::AlexNet.paper_batch_size(), 256);
        assert_eq!(ModelZoo::ResNet18.paper_batch_size(), 128);
        assert_eq!(ModelZoo::ResNet50.paper_batch_size(), 64);
    }

    #[test]
    fn all_layers_have_positive_activations() {
        for zoo in ModelZoo::all() {
            let m = zoo.model();
            assert!(!m.layers.is_empty());
            for l in &m.layers {
                assert!(l.activations > 0, "{}: {}", m.name, l.name);
            }
        }
    }
}

//! GPU part specifications, device-memory accounting and buffers.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Static description of a GPU part.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: String,
    /// Peak fp32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak fp16 (tensor-core where present) throughput in TFLOP/s.
    pub fp16_tflops: f64,
    /// Device memory in bytes.
    pub memory_bytes: u64,
    /// Device memory bandwidth, bytes/second.
    pub mem_bytes_per_sec: f64,
    /// Streaming multiprocessors.
    pub sms: u32,
    /// PCIe host link bandwidth, bytes/second.
    pub pcie_bytes_per_sec: f64,
    /// Inter-GPU (NVLink/PCIe P2P) bandwidth for allreduce, bytes/second.
    pub p2p_bytes_per_sec: f64,
    /// Board power in watts (economics model; paper cites ≈250 W).
    pub power_watts: f64,
}

impl GpuSpec {
    /// Tesla P100 (the paper's training/inference testbed part).
    pub fn tesla_p100() -> Self {
        Self {
            name: "NVIDIA Tesla P100".into(),
            fp32_tflops: 10.6,
            // P100 has no tensor cores; fp16 is 2× fp32 vector rate.
            fp16_tflops: 21.2,
            memory_bytes: 16 << 30,
            mem_bytes_per_sec: 732.0e9,
            sms: 56,
            pcie_bytes_per_sec: 12.0e9,
            p2p_bytes_per_sec: 18.0e9,
            power_watts: 250.0,
        }
    }

    /// Tesla V100 (§2.2: "can process 5,000 images per second when
    /// inferring the ResNet-50 model").
    pub fn tesla_v100() -> Self {
        Self {
            name: "NVIDIA Tesla V100".into(),
            fp32_tflops: 15.7,
            fp16_tflops: 112.0, // tensor cores
            memory_bytes: 32 << 30,
            mem_bytes_per_sec: 900.0e9,
            sms: 80,
            pcie_bytes_per_sec: 12.0e9,
            p2p_bytes_per_sec: 25.0e9,
            power_watts: 250.0,
        }
    }
}

/// A device-memory allocation. Bytes live host-side (this is a simulation),
/// but allocation accounting is enforced against the device capacity.
#[derive(Debug)]
pub struct DeviceBuffer {
    id: u64,
    data: Vec<u8>,
    device: Arc<DeviceMemInner>,
}

impl DeviceBuffer {
    /// Buffer identifier (unique per device).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when zero-sized (never; allocations are non-empty).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read access to the simulated device memory.
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Write access (the H2D copy target).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Drop for DeviceBuffer {
    fn drop(&mut self) {
        self.device
            .allocated
            .fetch_sub(self.data.len() as u64, Ordering::Relaxed);
    }
}

#[derive(Debug)]
struct DeviceMemInner {
    capacity: u64,
    allocated: AtomicU64,
    next_id: AtomicU64,
}

/// A GPU device instance: spec + memory allocator.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    spec: GpuSpec,
    /// Ordinal in the node (0-based, as in `cudaSetDevice`).
    ordinal: u32,
    mem: Arc<DeviceMemInner>,
    /// Lock held by exclusive-mode users (e.g. a training solver binding).
    binding: Arc<Mutex<Option<String>>>,
}

impl GpuDevice {
    /// Creates device `ordinal` with the given spec.
    pub fn new(spec: GpuSpec, ordinal: u32) -> Self {
        let capacity = spec.memory_bytes;
        Self {
            spec,
            ordinal,
            mem: Arc::new(DeviceMemInner {
                capacity,
                allocated: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
            }),
            binding: Arc::new(Mutex::new(None)),
        }
    }

    /// Device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Device ordinal.
    pub fn ordinal(&self) -> u32 {
        self.ordinal
    }

    /// Allocates `len` bytes of device memory.
    pub fn alloc(&self, len: usize) -> Result<DeviceBuffer, String> {
        if len == 0 {
            return Err("zero-length device allocation".into());
        }
        let prev = self.mem.allocated.fetch_add(len as u64, Ordering::Relaxed);
        if prev + len as u64 > self.mem.capacity {
            self.mem.allocated.fetch_sub(len as u64, Ordering::Relaxed);
            return Err(format!(
                "out of device memory: {} + {} > {}",
                prev, len, self.mem.capacity
            ));
        }
        Ok(DeviceBuffer {
            id: self.mem.next_id.fetch_add(1, Ordering::Relaxed),
            data: vec![0u8; len],
            device: Arc::clone(&self.mem),
        })
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.mem.allocated.load(Ordering::Relaxed)
    }

    /// Claims the device for an exclusive user (training solvers do this;
    /// §3.4.3: "every GPU device is isolated from the others").
    pub fn bind(&self, owner: &str) -> Result<(), String> {
        let mut b = self.binding.lock();
        if let Some(existing) = b.as_ref() {
            return Err(format!(
                "device {} already bound to {existing}",
                self.ordinal
            ));
        }
        *b = Some(owner.to_string());
        Ok(())
    }

    /// Releases an exclusive claim.
    pub fn unbind(&self) {
        *self.binding.lock() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_plausible() {
        let p100 = GpuSpec::tesla_p100();
        let v100 = GpuSpec::tesla_v100();
        assert!(v100.fp16_tflops > p100.fp16_tflops);
        assert!(p100.fp16_tflops > p100.fp32_tflops);
        assert_eq!(p100.power_watts, 250.0);
    }

    #[test]
    fn alloc_and_free_account_memory() {
        let dev = GpuDevice::new(GpuSpec::tesla_p100(), 0);
        assert_eq!(dev.allocated(), 0);
        let buf = dev.alloc(1024).unwrap();
        assert_eq!(buf.len(), 1024);
        assert_eq!(dev.allocated(), 1024);
        drop(buf);
        assert_eq!(dev.allocated(), 0);
    }

    #[test]
    fn oom_is_reported() {
        let mut spec = GpuSpec::tesla_p100();
        spec.memory_bytes = 4096;
        let dev = GpuDevice::new(spec, 0);
        let _a = dev.alloc(3000).unwrap();
        assert!(dev.alloc(2000).is_err());
        // Failed alloc must not leak accounting.
        assert_eq!(dev.allocated(), 3000);
        let _b = dev.alloc(1000).unwrap();
        assert!(dev.alloc(0).is_err());
    }

    #[test]
    fn buffers_have_unique_ids_and_writable_bytes() {
        let dev = GpuDevice::new(GpuSpec::tesla_p100(), 1);
        let mut a = dev.alloc(16).unwrap();
        let b = dev.alloc(16).unwrap();
        assert_ne!(a.id(), b.id());
        a.bytes_mut()[0] = 42;
        assert_eq!(a.bytes()[0], 42);
        assert_eq!(b.bytes()[0], 0);
    }

    #[test]
    fn exclusive_binding() {
        let dev = GpuDevice::new(GpuSpec::tesla_p100(), 0);
        dev.bind("solver-0").unwrap();
        assert!(dev.bind("solver-1").is_err());
        dev.unbind();
        dev.bind("solver-1").unwrap();
    }
}

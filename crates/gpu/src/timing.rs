//! Kernel-time model: forward/backward/update/allreduce durations, launch
//! CPU costs, and the nvJPEG decode-kernel contention model.

use crate::device::GpuSpec;
use crate::models::DlModel;
use dlb_simcore::queueing::SharedCapacity;
use dlb_simcore::SimTime;

/// Compute precision of the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 32-bit floats (the training experiments).
    Fp32,
    /// 16-bit floats ("The default type is float16 to enable Tensor Core",
    /// Figs. 7–8 captions).
    #[default]
    Fp16,
}

/// Prices kernels for one (device, model, precision) combination.
#[derive(Debug, Clone)]
pub struct GpuTimingModel {
    spec: GpuSpec,
    precision: Precision,
    /// FLOPs the model's forward pass needs per image.
    forward_flops: u64,
    /// Learnable parameters (update/allreduce cost driver).
    params: u64,
    /// Activation elements per image (memory-bound overhead driver).
    activations: u64,
    /// Contention from background device work (nvJPEG).
    contention: SharedCapacity,
}

impl GpuTimingModel {
    /// Builds the model for `model` running on `spec` at `precision`.
    pub fn new(spec: &GpuSpec, model: &DlModel, precision: Precision) -> Self {
        Self {
            spec: spec.clone(),
            precision,
            forward_flops: model.forward_flops(),
            params: model.params(),
            activations: model.activations(),
            contention: SharedCapacity::new(),
        }
    }

    /// Sets the fraction of the device stolen by background kernels
    /// (nvJPEG decode). Paper §5.3: decoding "needs to consume ∼30 % of GPU
    /// resources", degrading inference by 30–40 %.
    pub fn set_background_share(&mut self, share: f64) {
        self.contention.set_background_share(share);
    }

    /// Current background share.
    pub fn background_share(&self) -> f64 {
        self.contention.background_share()
    }

    /// Peak FLOP/s at the configured precision.
    fn peak_flops(&self) -> f64 {
        match self.precision {
            Precision::Fp32 => self.spec.fp32_tflops * 1e12,
            Precision::Fp16 => self.spec.fp16_tflops * 1e12,
        }
    }

    /// Achieved-efficiency curve vs batch size: small batches underfill the
    /// SMs. Saturating form `b / (b + b_half)` with a model-size-dependent
    /// half-point — large networks saturate at smaller batches.
    fn efficiency(&self, batch: u32) -> f64 {
        let b = batch.max(1) as f64;
        // Heavier per-image work ⇒ fewer images needed to fill the device.
        let b_half = (2.0e9 / self.forward_flops as f64).clamp(0.08, 16.0);
        let util = b / (b + b_half);
        // Peak-to-achieved ceiling: dense fp32 conv nets reach ~55 % of
        // peak; tensor-core fp16 pipelines are harder to keep fed and land
        // near 25 % on real TensorRT deployments.
        let ceiling = match self.precision {
            Precision::Fp32 => 0.55,
            Precision::Fp16 => 0.25,
        };
        ceiling * util
    }

    /// cuDNN picks Winograd/FFT algorithms for 3×3 convolutions, cutting
    /// direct-convolution arithmetic by ≈1.5× on these nets.
    const ALGO_SPEEDUP: f64 = 1.5;

    /// Memory-bound floor per image: activations + weights traffic.
    fn memory_time_per_image(&self) -> f64 {
        let elem = match self.precision {
            Precision::Fp32 => 4.0,
            Precision::Fp16 => 2.0,
        };
        // Each activation is written and read about twice.
        self.activations as f64 * elem * 3.0 / self.spec.mem_bytes_per_sec
    }

    /// Forward-pass time for a batch.
    pub fn forward_time(&self, batch: u32) -> SimTime {
        let compute = self.forward_flops as f64 / Self::ALGO_SPEEDUP * batch as f64
            / (self.peak_flops() * self.efficiency(batch));
        let memory = self.memory_time_per_image() * batch as f64;
        // Fixed per-launch device-side overhead (~40 kernel launches of
        // ~5 µs each for a mid-size net).
        let fixed = 2.0e-4;
        self.contention
            .stretch(SimTime::from_secs_f64(compute.max(memory) + fixed))
    }

    /// Backward-pass time (≈2× forward: gradients w.r.t. weights and inputs).
    pub fn backward_time(&self, batch: u32) -> SimTime {
        SimTime::from_secs_f64(self.forward_time(batch).as_secs_f64() * 2.0)
    }

    /// Weight-update (SGD step) time: parameter-bandwidth bound.
    pub fn update_time(&self) -> SimTime {
        let elem = 4.0; // master weights stay fp32
                        // Read weight + read grad + write weight.
        let t = self.params as f64 * elem * 3.0 / self.spec.mem_bytes_per_sec + 3.0e-5;
        self.contention.stretch(SimTime::from_secs_f64(t))
    }

    /// Ring-allreduce time for the gradient across `n` devices.
    pub fn allreduce_time(&self, n_devices: u32) -> SimTime {
        if n_devices <= 1 {
            return SimTime::ZERO;
        }
        let bytes = self.params as f64 * 4.0;
        let n = n_devices as f64;
        // Ring allreduce moves 2(n−1)/n of the payload over the slowest link.
        let t = 2.0 * (n - 1.0) / n * bytes / self.spec.p2p_bytes_per_sec + 5.0e-5;
        SimTime::from_secs_f64(t)
    }

    /// Host CPU time spent *launching and driving* the kernels of one pass —
    /// the "0.95 core on launching kernels" of paper Fig. 6(d). Caffe's
    /// solver thread stays busy dispatching cuDNN ops for most of the time
    /// the GPU computes, so the cost is a fraction of kernel wall time:
    /// ≈0.80 for the chatty NVCaffe training loop, ≈0.10 for TensorRT's
    /// pre-built engine.
    pub fn launch_cpu_time(&self, kernel_time: SimTime, training: bool) -> SimTime {
        let fraction = if training { 0.80 } else { 0.10 };
        SimTime::from_secs_f64(kernel_time.as_secs_f64() * fraction)
    }

    /// Host CPU time to transform a decoded batch into the framework's
    /// input tensor (datum unpack, layout shuffle, mean subtraction — the
    /// "0.15 core on transforming" of Fig. 6(d)). Caffe's transformer is a
    /// scalar per-pixel loop: ≈0.8 GB/s on one core.
    pub fn transform_cpu_time(&self, batch: u32, bytes_per_image: u64) -> SimTime {
        let t = batch as f64 * bytes_per_image as f64 / 0.8e9;
        SimTime::from_secs_f64(t)
    }

    /// Host CPU time driving the optimiser step — the "0.12 core on
    /// updating model" of Fig. 6(d). Scales with parameter count (per-blob
    /// learning-rate/regularisation bookkeeping), capped at a quarter of
    /// the batch compute time so tiny or FC-heavy nets don't produce
    /// nonsense.
    pub fn update_cpu_time(&self, batch: u32) -> SimTime {
        let raw = self.params as f64 * 1.6e-9;
        let cap = (self.forward_time(batch) + self.backward_time(batch)).as_secs_f64() * 0.25;
        SimTime::from_secs_f64(raw.min(cap))
    }

    /// Steady-state inference throughput (images/s) at `batch`.
    pub fn inference_throughput(&self, batch: u32) -> f64 {
        batch as f64 / self.forward_time(batch).as_secs_f64()
    }

    /// Steady-state training throughput (images/s) for `n_devices`
    /// data-parallel GPUs, assuming input never starves (the "performance
    /// upper boundary" of Fig. 2a).
    pub fn training_throughput_bound(&self, batch: u32, n_devices: u32) -> f64 {
        let step = self.forward_time(batch)
            + self.backward_time(batch)
            + self.allreduce_time(n_devices)
            + self.update_time();
        n_devices as f64 * batch as f64 / step.as_secs_f64()
    }
}

/// The nvJPEG GPU decode backend model (paper §5.3 and [16]).
#[derive(Debug, Clone)]
pub struct NvJpegModel {
    /// Fraction of the device the decode kernels occupy while active.
    pub sm_share: f64,
    /// Decode throughput in megapixels/second when holding `sm_share` of a
    /// V100-class device.
    pub megapixels_per_sec: f64,
    /// Host CPU cost per batch for launching decode kernels (1–2 cores'
    /// worth under load; §5.3 finding 2).
    pub launch_cpu_per_image: SimTime,
}

impl NvJpegModel {
    /// Paper-calibrated defaults: ≈30 % SM share under load and a decode
    /// rate in the V100 nvJPEG ballpark. nvJPEG loses end-to-end both ways:
    /// its decode station saturates first at large batches *and* its kernels
    /// steal SMs from the model (§5.3: "∼30 % of GPU resources" and "∼40 %
    /// performance degradation as the batch size increases").
    pub fn paper_config() -> Self {
        Self {
            sm_share: 0.30,
            megapixels_per_sec: 600.0,
            launch_cpu_per_image: SimTime::from_micros(250),
        }
    }

    /// SM share as a function of batch size: larger decode batches keep
    /// more decode blocks resident (grows towards ≈40 %).
    pub fn sm_share_at(&self, batch: u32) -> f64 {
        (0.10 + 0.01 * batch as f64).clamp(0.10, 0.42)
    }

    /// Decode time for a batch of `batch` images of `w`×`h` source pixels.
    pub fn decode_time(&self, batch: u32, w: u32, h: u32) -> SimTime {
        let px = batch as u64 * w as u64 * h as u64;
        // Fixed launch/setup latency per batch plus pixel-rate term.
        SimTime::from_secs_f64(px as f64 / (self.megapixels_per_sec * 1e6) + 3.0e-4)
    }

    /// Host CPU busy time per batch.
    pub fn launch_cpu_time(&self, batch: u32) -> SimTime {
        SimTime::from_nanos(self.launch_cpu_per_image.as_nanos() * batch as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ModelZoo;

    fn v100(model: ModelZoo, prec: Precision) -> GpuTimingModel {
        GpuTimingModel::new(&GpuSpec::tesla_v100(), &model.model(), prec)
    }

    fn p100(model: ModelZoo, prec: Precision) -> GpuTimingModel {
        GpuTimingModel::new(&GpuSpec::tesla_p100(), &model.model(), prec)
    }

    #[test]
    fn v100_resnet50_inference_near_5000_imgs() {
        // §2.2: "NVIDIA Tesla V100 can process 5,000 images per second when
        // inferring the ResNet-50 model."
        let m = v100(ModelZoo::ResNet50, Precision::Fp16);
        let tp = m.inference_throughput(64);
        assert!(
            (3_500.0..7_000.0).contains(&tp),
            "V100 ResNet-50 fp16 throughput {tp:.0} img/s"
        );
    }

    #[test]
    fn p100_alexnet_training_bound_near_fig2() {
        // Fig. 2(b) "Ideal": 2496 img/s on 1 GPU, 4652 on 2 GPUs.
        let m = p100(ModelZoo::AlexNet, Precision::Fp32);
        let one = m.training_throughput_bound(256, 1);
        let two = m.training_throughput_bound(256, 2);
        assert!(
            (1_700.0..3_500.0).contains(&one),
            "1-GPU AlexNet bound {one:.0}"
        );
        assert!(two > one * 1.6, "2-GPU bound {two:.0} should scale");
        assert!(two < one * 2.0, "allreduce must cost something");
    }

    #[test]
    fn throughput_rises_with_batch_then_saturates() {
        let m = v100(ModelZoo::GoogLeNet, Precision::Fp16);
        let t1 = m.inference_throughput(1);
        let t8 = m.inference_throughput(8);
        let t32 = m.inference_throughput(32);
        assert!(t8 > t1 * 1.5, "batching should help: {t1:.0} → {t8:.0}");
        assert!(t32 >= t8, "{t8:.0} → {t32:.0}");
        // Saturation: going 8→32 gains less than 1→8 proportionally.
        assert!(t32 / t8 < t8 / t1);
    }

    #[test]
    fn contention_stretches_kernels() {
        let mut m = v100(ModelZoo::ResNet50, Precision::Fp16);
        let base = m.forward_time(32);
        m.set_background_share(0.30);
        let stretched = m.forward_time(32);
        let ratio = stretched.as_secs_f64() / base.as_secs_f64();
        assert!(
            (1.35..1.55).contains(&ratio),
            "30% steal should cost ≈1.43×, got {ratio:.2}"
        );
        assert!((m.background_share() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn fp16_beats_fp32_on_v100() {
        let f16 = v100(ModelZoo::Vgg16, Precision::Fp16).inference_throughput(32);
        let f32 = v100(ModelZoo::Vgg16, Precision::Fp32).inference_throughput(32);
        assert!(f16 > 2.0 * f32, "tensor cores: {f16:.0} vs {f32:.0}");
    }

    #[test]
    fn backward_is_twice_forward() {
        let m = p100(ModelZoo::ResNet18, Precision::Fp32);
        let f = m.forward_time(128).as_secs_f64();
        let b = m.backward_time(128).as_secs_f64();
        assert!((b / f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_scales_with_params_and_devices() {
        let alex = p100(ModelZoo::AlexNet, Precision::Fp32); // 61M params
        let goog = p100(ModelZoo::GoogLeNet, Precision::Fp32); // 7M params
        assert_eq!(alex.allreduce_time(1), SimTime::ZERO);
        assert!(alex.allreduce_time(2) > goog.allreduce_time(2));
        // More devices move more total data over the ring.
        assert!(alex.allreduce_time(4) > alex.allreduce_time(2));
    }

    #[test]
    fn cpu_cost_components_match_fig6d_scale() {
        // Fig. 6(d): training ResNet-18 with DLBooster spends ~0.95 core
        // launching kernels, ~0.15 transforming, ~0.12 updating. Translate:
        // per-iteration CPU time over per-iteration wall time lands near
        // those fractions.
        let m = p100(ModelZoo::ResNet18, Precision::Fp32);
        let batch = 128;
        let kernels = m.forward_time(batch) + m.backward_time(batch);
        let iter_wall = kernels + m.update_time();
        let launch_frac = m.launch_cpu_time(kernels, true).as_secs_f64() / iter_wall.as_secs_f64();
        let transform_frac =
            m.transform_cpu_time(batch, 224 * 224 * 3).as_secs_f64() / iter_wall.as_secs_f64();
        let update_frac = m.update_cpu_time(batch).as_secs_f64() / iter_wall.as_secs_f64();
        assert!(
            (0.6..1.0).contains(&launch_frac),
            "launch fraction {launch_frac:.3} (paper ~0.95 core)"
        );
        assert!(
            (0.08..0.25).contains(&transform_frac),
            "transform fraction {transform_frac:.3} (paper ~0.15 core)"
        );
        assert!(
            (0.05..0.20).contains(&update_frac),
            "update fraction {update_frac:.3} (paper ~0.12 core)"
        );
        // Inference engines are far less chatty.
        let infer = m.launch_cpu_time(m.forward_time(batch), false);
        assert!(infer < m.launch_cpu_time(kernels, true));
    }

    #[test]
    fn nvjpeg_decode_scales_with_pixels() {
        let nv = NvJpegModel::paper_config();
        let small = nv.decode_time(8, 500, 375);
        let large = nv.decode_time(32, 500, 375);
        assert!(large > small);
        // 32 × 500×375 = 6 Mpx at 600 Mpx/s ⇒ ≈10 ms + fixed.
        let t = large.as_secs_f64();
        assert!((0.008..0.013).contains(&t), "decode time {t:.4}s");
        assert!(nv.launch_cpu_time(32) > nv.launch_cpu_time(1));
    }
}

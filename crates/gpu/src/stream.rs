//! Functional CUDA-stream analogue.
//!
//! Algorithm 3 needs exactly three stream semantics: `CudaMemcpyAsync` on a
//! per-solver copy stream, kernel launches, and `CudaStreamSync`. A
//! [`GpuStream`] provides them: a worker thread executes enqueued ops in
//! order; async memcpys *really move the bytes* from the host batch unit
//! into the device buffer (so downstream consumers can verify pixels), and
//! op durations follow the timing model scaled by a configurable factor so
//! examples and tests run fast while preserving relative costs.

use crate::device::DeviceBuffer;
use dlb_chaos::{FaultKind, StageInjector};
use dlb_membridge::BatchUnit;
use parking_lot::{Condvar, Mutex};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// An operation enqueued on a stream.
pub enum GpuOp {
    /// Asynchronous host→device copy: moves `host.payload()` into `dev`.
    /// Both resources travel with the op and come back on completion —
    /// Algorithm 3's `working_queue[HST]` / `working_queue[DEV]` pattern.
    MemcpyH2D {
        /// Source batch unit.
        host: BatchUnit,
        /// Destination device buffer.
        dev: DeviceBuffer,
        /// Modelled transfer duration (already time-scaled by the caller or
        /// scaled by the stream's factor).
        duration: Duration,
    },
    /// A compute kernel of a modelled duration.
    Kernel {
        /// Kernel label (diagnostics).
        name: String,
        /// Modelled execution time.
        duration: Duration,
    },
}

/// A completed operation, as returned by [`GpuStream::synchronize`].
pub enum CompletedOp {
    /// The copy finished; resources returned for recycling.
    MemcpyH2D {
        /// The source unit (recycle to the pool).
        host: BatchUnit,
        /// The destination buffer, now holding the batch.
        dev: DeviceBuffer,
        /// Set if the copy failed (e.g. buffer too small).
        error: Option<String>,
    },
    /// The kernel retired.
    Kernel {
        /// Kernel label.
        name: String,
    },
}

struct StreamShared {
    completed: Mutex<CompletedState>,
    cv: Condvar,
}

struct CompletedState {
    done: Vec<CompletedOp>,
    enqueued: u64,
    retired: u64,
    closed: bool,
}

/// One in-order execution stream bound to a worker thread.
pub struct GpuStream {
    tx: Option<crossbeam::channel::Sender<GpuOp>>,
    shared: Arc<StreamShared>,
    worker: Option<JoinHandle<()>>,
    /// Multiplier applied to op durations before sleeping (1.0 = real
    /// modelled time; 0.0 = skip sleeps entirely).
    time_scale: f64,
    name: String,
    chaos: Arc<OnceLock<Arc<StageInjector>>>,
}

impl GpuStream {
    /// Creates a stream whose op durations are multiplied by `time_scale`
    /// before being slept.
    pub fn new(name: &str, time_scale: f64) -> Self {
        assert!(time_scale >= 0.0 && time_scale.is_finite());
        let (tx, rx) = crossbeam::channel::unbounded::<GpuOp>();
        let shared = Arc::new(StreamShared {
            completed: Mutex::new(CompletedState {
                done: Vec::new(),
                enqueued: 0,
                retired: 0,
                closed: false,
            }),
            cv: Condvar::new(),
        });
        let sh = Arc::clone(&shared);
        let scale = time_scale;
        let chaos: Arc<OnceLock<Arc<StageInjector>>> = Arc::new(OnceLock::new());
        let ch = Arc::clone(&chaos);
        let worker = std::thread::Builder::new()
            .name(format!("gpu-stream-{name}"))
            .spawn(move || {
                let mut ordinal = 0u64;
                while let Ok(op) = rx.recv() {
                    let completed = execute(op, scale, ch.get(), ordinal);
                    ordinal += 1;
                    let mut st = sh.completed.lock();
                    st.done.push(completed);
                    st.retired += 1;
                    sh.cv.notify_all();
                }
                let mut st = sh.completed.lock();
                st.closed = true;
                sh.cv.notify_all();
            })
            .expect("spawn stream worker");
        Self {
            tx: Some(tx),
            shared,
            worker: Some(worker),
            time_scale,
            name: name.to_string(),
            chaos,
        }
    }

    /// Attaches a chaos injector for the GPU plane: copy-slot delays and
    /// failed host→device copies (the op completes with an error and both
    /// resources still return — no unit is ever lost). Faults are keyed by
    /// the op's position in this stream's submission order. One-shot.
    pub fn attach_chaos(&self, injector: Arc<StageInjector>) {
        let _ = self.chaos.set(injector);
    }

    /// Stream label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured time scale.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Enqueues an op (returns immediately — the async of
    /// `CudaMemcpyAsync`).
    pub fn enqueue(&self, op: GpuOp) {
        let mut st = self.shared.completed.lock();
        st.enqueued += 1;
        drop(st);
        self.tx
            .as_ref()
            .expect("stream alive")
            .send(op)
            .expect("worker alive");
    }

    /// Blocks until every enqueued op has retired (`CudaStreamSync`),
    /// returning the completed ops in retirement order.
    pub fn synchronize(&self) -> Vec<CompletedOp> {
        let mut st = self.shared.completed.lock();
        while st.retired < st.enqueued {
            self.shared.cv.wait(&mut st);
        }
        std::mem::take(&mut st.done)
    }

    /// Ops enqueued minus retired.
    pub fn pending(&self) -> u64 {
        let st = self.shared.completed.lock();
        st.enqueued - st.retired
    }
}

impl Drop for GpuStream {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for GpuStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuStream")
            .field("name", &self.name)
            .field("pending", &self.pending())
            .finish()
    }
}

fn execute(op: GpuOp, scale: f64, chaos: Option<&Arc<StageInjector>>, ordinal: u64) -> CompletedOp {
    // Chaos: copy slots can be delayed (slot contention) or fail outright.
    // Kernels are left alone — the fault model targets the copy engine.
    let mut fail_copy = false;
    if let Some(inj) = chaos {
        if matches!(op, GpuOp::MemcpyH2D { .. }) {
            match inj.decide(ordinal) {
                Some(FaultKind::Delay(d)) => {
                    inj.sleep(d);
                }
                Some(_) => fail_copy = true,
                None => {}
            }
        }
    }
    match op {
        GpuOp::MemcpyH2D {
            host,
            mut dev,
            duration,
        } => {
            sleep_scaled(duration, scale);
            let n = host.used();
            let error = if fail_copy {
                Some("chaos: injected H2D copy failure".to_string())
            } else if n > dev.len() {
                Some(format!("device buffer {} < payload {}", dev.len(), n))
            } else {
                dev.bytes_mut()[..n].copy_from_slice(host.payload());
                None
            };
            CompletedOp::MemcpyH2D { host, dev, error }
        }
        GpuOp::Kernel { name, duration } => {
            sleep_scaled(duration, scale);
            CompletedOp::Kernel { name }
        }
    }
}

fn sleep_scaled(d: Duration, scale: f64) {
    if scale <= 0.0 {
        return;
    }
    let scaled = d.mul_f64(scale);
    if scaled > Duration::ZERO {
        std::thread::sleep(scaled);
    }
}

/// A set of streams, one per GPU engine (each solver gets an isolated copy
/// stream, §3.4.3).
#[derive(Debug)]
pub struct StreamSet {
    streams: Vec<GpuStream>,
}

impl StreamSet {
    /// `n` streams named `prefix-<i>`.
    pub fn new(prefix: &str, n: usize, time_scale: f64) -> Self {
        Self {
            streams: (0..n)
                .map(|i| GpuStream::new(&format!("{prefix}-{i}"), time_scale))
                .collect(),
        }
    }

    /// Stream for engine `i`.
    pub fn stream(&self, i: usize) -> &GpuStream {
        &self.streams[i]
    }

    /// Number of streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Synchronizes every stream (global barrier, Algorithm 3 lines 13–18).
    pub fn synchronize_all(&self) -> Vec<Vec<CompletedOp>> {
        self.streams.iter().map(|s| s.synchronize()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{GpuDevice, GpuSpec};
    use dlb_membridge::{MemManager, PoolConfig};

    fn pool_and_device() -> (MemManager, GpuDevice) {
        (
            MemManager::new(PoolConfig {
                unit_size: 4096,
                unit_count: 4,
                phys_base: 0x4_0000_0000,
            })
            .unwrap(),
            GpuDevice::new(GpuSpec::tesla_p100(), 0),
        )
    }

    #[test]
    fn memcpy_moves_bytes_and_returns_resources() {
        let (pool, dev) = pool_and_device();
        let stream = GpuStream::new("t0", 0.0);
        let mut unit = pool.get_item().unwrap();
        unit.append(&[9, 8, 7, 6, 5], 1, 1, 5, 1).unwrap();
        let buf = dev.alloc(4096).unwrap();
        stream.enqueue(GpuOp::MemcpyH2D {
            host: unit,
            dev: buf,
            duration: Duration::from_micros(100),
        });
        let done = stream.synchronize();
        assert_eq!(done.len(), 1);
        match &done[0] {
            CompletedOp::MemcpyH2D { host, dev, error } => {
                assert!(error.is_none());
                assert_eq!(&dev.bytes()[..5], &[9, 8, 7, 6, 5]);
                assert_eq!(host.used(), 5);
            }
            _ => panic!("wrong op kind"),
        }
    }

    #[test]
    fn ops_retire_in_order() {
        let stream = GpuStream::new("order", 0.0);
        for i in 0..10 {
            stream.enqueue(GpuOp::Kernel {
                name: format!("k{i}"),
                duration: Duration::from_micros(10),
            });
        }
        let done = stream.synchronize();
        let names: Vec<String> = done
            .iter()
            .map(|op| match op {
                CompletedOp::Kernel { name } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, (0..10).map(|i| format!("k{i}")).collect::<Vec<_>>());
        assert_eq!(stream.pending(), 0);
    }

    #[test]
    fn oversized_copy_reports_error() {
        let (pool, dev) = pool_and_device();
        let stream = GpuStream::new("err", 0.0);
        let mut unit = pool.get_item().unwrap();
        unit.append(&[1u8; 100], 0, 10, 10, 1).unwrap();
        let buf = dev.alloc(10).unwrap();
        stream.enqueue(GpuOp::MemcpyH2D {
            host: unit,
            dev: buf,
            duration: Duration::ZERO,
        });
        let done = stream.synchronize();
        match &done[0] {
            CompletedOp::MemcpyH2D { error, .. } => assert!(error.is_some()),
            _ => panic!(),
        }
    }

    #[test]
    fn time_scale_slows_execution() {
        let fast = GpuStream::new("fast", 0.0);
        let slow = GpuStream::new("slow", 1.0);
        let t0 = std::time::Instant::now();
        fast.enqueue(GpuOp::Kernel {
            name: "k".into(),
            duration: Duration::from_millis(50),
        });
        fast.synchronize();
        let fast_elapsed = t0.elapsed();
        let t1 = std::time::Instant::now();
        slow.enqueue(GpuOp::Kernel {
            name: "k".into(),
            duration: Duration::from_millis(50),
        });
        slow.synchronize();
        let slow_elapsed = t1.elapsed();
        assert!(fast_elapsed < Duration::from_millis(20));
        assert!(slow_elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn stream_set_barrier() {
        let set = StreamSet::new("gpu", 2, 0.0);
        assert_eq!(set.len(), 2);
        for i in 0..2 {
            set.stream(i).enqueue(GpuOp::Kernel {
                name: format!("k-{i}"),
                duration: Duration::from_micros(50),
            });
        }
        let all = set.synchronize_all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].len() + all[1].len(), 2);
    }

    #[test]
    fn chaos_fails_copies_without_losing_resources() {
        use dlb_chaos::{FaultPlan, Stage, StageSpec};
        let (pool, dev) = pool_and_device();
        let t = dlb_telemetry::Telemetry::with_defaults();
        let mut plan = FaultPlan::disabled();
        plan.seed = 5;
        plan.gpu = StageSpec::rate(0.5).with_delay(Duration::from_micros(200));
        let stream = GpuStream::new("chaos", 0.0);
        stream.attach_chaos(plan.injector(Stage::Gpu, &t).unwrap());
        let n = 30;
        for i in 0..n {
            let mut unit = pool.get_item().unwrap();
            unit.append(&[i as u8; 16], i as u64, 4, 4, 1).unwrap();
            let buf = dev.alloc(4096).unwrap();
            stream.enqueue(GpuOp::MemcpyH2D {
                host: unit,
                dev: buf,
                duration: Duration::ZERO,
            });
            // Keep the pool from starving: drain and recycle as we go.
            for op in stream.synchronize() {
                match op {
                    CompletedOp::MemcpyH2D { host, error, .. } => {
                        if let Some(e) = &error {
                            assert!(e.contains("chaos"), "{e}");
                        }
                        pool.recycle_item(host).unwrap();
                    }
                    _ => panic!("wrong op kind"),
                }
            }
        }
        // Every unit came back regardless of copy outcome.
        assert_eq!(pool.free_count(), 4);
        let snap = t.registry.snapshot();
        assert!(
            snap.counter("chaos.injected.gpu") > 0,
            "a 50% rate must inject"
        );
        assert!(
            snap.counter("chaos.injected.gpu") < n,
            "a 50% rate must pass some copies"
        );
    }

    #[test]
    fn synchronize_with_nothing_pending_is_instant() {
        let stream = GpuStream::new("idle", 1.0);
        assert!(stream.synchronize().is_empty());
    }
}

//! # dlb-gpu
//!
//! The GPU substrate the compute engines run on (paper testbed: 2× NVIDIA
//! Tesla P100; §2.2 also cites V100 and DGX-2 numbers).
//!
//! ## Substitution note (no CUDA hardware here)
//!
//! Figures 2 and 5–9 depend on the GPU only through (a) per-model forward /
//! backward times as a function of batch size, (b) PCIe copy behaviour,
//! (c) CUDA-core contention when nvJPEG decodes on-device, and (d) the CPU
//! cost of launching kernels. This crate rebuilds exactly those surfaces:
//!
//! * [`device`] — part specs (P100, V100), device-memory accounting and
//!   buffer objects.
//! * [`models`] — a layer-level DSL that *computes* FLOPs/params for
//!   LeNet-5, AlexNet, ResNet-18, GoogLeNet, VGG-16 and ResNet-50 from their
//!   published architectures (not hard-coded totals — unit tests check the
//!   totals land on the literature values).
//! * [`timing`] — kernel-time model: FLOPs over effective throughput with a
//!   batch-dependent efficiency curve, fp16 tensor-core scaling, NCCL-style
//!   allreduce, kernel-launch CPU overhead, and the nvJPEG decode-kernel
//!   model with its SM-share contention (the −30..40 % effect of §5.3).
//! * [`stream`] — functional CUDA-stream analogue: per-stream worker threads
//!   executing async copies and kernels with modelled durations (scaled by a
//!   configurable factor so tests run fast), plus events and stream sync —
//!   the semantics Algorithm 3's dispatcher needs.

pub mod device;
pub mod models;
pub mod stream;
pub mod timing;

pub use device::{DeviceBuffer, GpuDevice, GpuSpec};
pub use models::{DlModel, ModelZoo};
pub use stream::{GpuOp, GpuStream, StreamSet};
pub use timing::{GpuTimingModel, NvJpegModel, Precision};

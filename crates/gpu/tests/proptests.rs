//! Property tests: timing-model monotonicity and model-zoo invariants.

use dlb_gpu::{GpuDevice, GpuSpec, GpuTimingModel, ModelZoo, Precision};
use proptest::prelude::*;

fn zoo() -> Vec<ModelZoo> {
    ModelZoo::all().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_time_monotone_in_batch(model_idx in 0usize..6, b in 1u32..256) {
        let model = zoo()[model_idx];
        let m = GpuTimingModel::new(&GpuSpec::tesla_v100(), &model.model(), Precision::Fp16);
        prop_assert!(m.forward_time(b + 1) >= m.forward_time(b));
        // Throughput never decreases with batch size in this model.
        prop_assert!(
            m.inference_throughput(b + 1) >= m.inference_throughput(b) * 0.999
        );
    }

    #[test]
    fn contention_strictly_slows(model_idx in 0usize..6, share_pct in 1u32..90) {
        let model = zoo()[model_idx];
        let mut m = GpuTimingModel::new(&GpuSpec::tesla_p100(), &model.model(), Precision::Fp32);
        let clean = m.forward_time(32);
        m.set_background_share(share_pct as f64 / 100.0);
        let contended = m.forward_time(32);
        prop_assert!(contended > clean);
        let ratio = contended.as_secs_f64() / clean.as_secs_f64();
        let expect = 1.0 / (1.0 - (share_pct as f64 / 100.0).min(0.95));
        // Nanosecond quantisation of SimTime allows a small relative error.
        prop_assert!((ratio / expect - 1.0).abs() < 1e-4, "{ratio} vs {expect}");
    }

    #[test]
    fn device_memory_accounting_balances(
        sizes in prop::collection::vec(1usize..(1 << 20), 1..32)
    ) {
        let dev = GpuDevice::new(GpuSpec::tesla_v100(), 0);
        let mut held = Vec::new();
        let mut total = 0u64;
        for s in &sizes {
            held.push(dev.alloc(*s).unwrap());
            total += *s as u64;
            prop_assert_eq!(dev.allocated(), total);
        }
        while let Some(buf) = held.pop() {
            total -= buf.len() as u64;
            drop(buf);
            prop_assert_eq!(dev.allocated(), total);
        }
        prop_assert_eq!(dev.allocated(), 0);
    }

    #[test]
    fn allreduce_monotone_in_devices(model_idx in 0usize..6, n in 2u32..16) {
        let model = zoo()[model_idx];
        let m = GpuTimingModel::new(&GpuSpec::tesla_p100(), &model.model(), Precision::Fp32);
        prop_assert!(m.allreduce_time(n + 1) >= m.allreduce_time(n));
        prop_assert!(m.allreduce_time(1).as_nanos() == 0);
    }
}

//! Cluster degradation sweep: the 8-node shard router under 3× overload,
//! healthy and with nodes chaos-killed mid-run.
//!
//! Two quantities matter here:
//!
//! * **Simulation throughput** — wall-clock per full `ClusterSim` run
//!   (6 000 requests through ring + quotas + hedging + failover), i.e.
//!   what a sweep costs to regenerate.
//! * **Goodput retention** — the model-level result: in-SLO goodput with
//!   1..3 of 8 nodes killed, as a fraction of the same-seed no-kill run.
//!   The acceptance bar (≥ 85 % with one node down) is archived in
//!   `BENCH_cluster.json` and enforced by `tests/cluster_soak.rs`.
//!
//! A ring microbench rides along: routing cost is per-request overhead
//! at the cluster door, so it must stay in the tens of nanoseconds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlb_cluster::HashRing;
use dlb_workflows::cluster::{ClusterParams, ClusterSim};

const NODES: u32 = 8;
const OVERLOAD: f64 = 3.0;
const SEED: u64 = 11;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sweep");
    group.sample_size(10);
    let requests = ClusterParams::baseline(NODES, OVERLOAD, SEED).requests;
    group.throughput(Throughput::Elements(requests));
    for kills in 0..=3u32 {
        group.bench_function(format!("kills_{kills}"), |b| {
            b.iter(|| {
                let params =
                    ClusterParams::baseline(NODES, OVERLOAD, SEED).with_spread_kills(kills);
                ClusterSim::run(params).goodput
            })
        });
    }
    group.finish();

    let mut ring_group = c.benchmark_group("cluster_ring");
    let ring = HashRing::with_nodes(0xD1B0_0057, 256, 0..NODES);
    ring_group.throughput(Throughput::Elements(1024));
    ring_group.bench_function("route_1k_keys", |b| {
        b.iter(|| {
            let mut owned = 0u64;
            for k in 0..1024u64 {
                if ring.route(k).is_some() {
                    owned += 1;
                }
            }
            owned
        })
    });
    ring_group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

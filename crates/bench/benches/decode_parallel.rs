//! The parallel decode plane: sequential vs restart-segment-parallel
//! JPEG decode, with and without the fast AAN iDCT, across restart
//! intervals and pool thread counts.
//!
//! This is the software mirror of the paper's Fig. 4 decoder: the
//! restart segments play the role of the 4-way parallel Huffman unit's
//! independent input streams. Reports land in
//! `target/figure-reports/decode_parallel.json` (the source for
//! `BENCH_decode.json` at the repo root).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_codec::simd::{force_scalar, simd_active};
use dlb_codec::synth::{generate, SynthStyle};
use dlb_codec::{JpegDecoder, JpegEncoder};
use dlb_workflows::report::{FigureReport, Row};
use std::hint::black_box;
use std::time::Instant;

/// Restart interval (in MCUs) the parallel corpus is framed with; 8 MCUs
/// per segment keeps per-segment work large enough to amortise scatter.
const CORPUS_RESTART_INTERVAL: u16 = 8;

fn corpus(interval: u16) -> Vec<Vec<u8>> {
    let enc = JpegEncoder::new(92)
        .unwrap()
        .with_restart_interval(interval);
    (0..8u64)
        .map(|seed| {
            let img = generate(500, 375, SynthStyle::Photo, seed);
            enc.clone().encode(&img).unwrap()
        })
        .collect()
}

/// Decodes the whole corpus `rounds` times, returning images/second.
fn rate(dec: &JpegDecoder, corpus: &[Vec<u8>], parallel: bool, rounds: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..rounds {
        for bytes in corpus {
            let img = if parallel {
                dec.decode_parallel(black_box(bytes)).unwrap()
            } else {
                dec.decode(black_box(bytes)).unwrap()
            };
            black_box(img);
        }
    }
    (rounds * corpus.len()) as f64 / t0.elapsed().as_secs_f64()
}

fn report_thread_sweep() -> FigureReport {
    let mut rep = FigureReport::new(
        "Decode plane",
        "Restart-segment-parallel decode, 500x375 photo corpus",
        &["variant", "threads", "images/s", "speedup vs seq"],
    );
    let corpus8 = corpus(CORPUS_RESTART_INTERVAL);
    let fast = JpegDecoder::new();
    let reference = JpegDecoder::new().with_reference_idct(true);
    let rounds = 4;

    // Baselines: the pre-SIMD decoder (sequential + reference iDCT +
    // bit-at-a-time entropy + scalar kernels), the fast path pinned to
    // the scalar kernels, and the full fast path (reservoir Huffman +
    // SIMD where the host supports it). The three are measured in
    // interleaved passes so clock/thermal drift on shared CI runners
    // hits every variant equally instead of penalising whichever one
    // happens to run last.
    let variants: [(&JpegDecoder, bool); 3] = [(&reference, true), (&fast, true), (&fast, false)];
    let mut elapsed = [0f64; 3];
    for _ in 0..rounds {
        for (slot, (dec, scalar_only)) in variants.iter().enumerate() {
            force_scalar(*scalar_only);
            let t0 = Instant::now();
            for bytes in &corpus8 {
                black_box(dec.decode(black_box(bytes)).unwrap());
            }
            elapsed[slot] += t0.elapsed().as_secs_f64();
        }
    }
    force_scalar(false);
    let imgs = (rounds * corpus8.len()) as f64;
    let [seq_ref, seq_scalar, seq_fast] = elapsed.map(|secs| imgs / secs);
    rep.push_row(Row::new(&[
        "sequential, reference scalar decoder (old)".to_string(),
        "1".to_string(),
        format!("{seq_ref:.1}"),
        "1.00x".to_string(),
    ]));
    rep.push_row(Row::new(&[
        "sequential, fast path, forced scalar".to_string(),
        "1".to_string(),
        format!("{seq_scalar:.1}"),
        format!("{:.2}x", seq_scalar / seq_ref),
    ]));
    rep.push_row(Row::new(&[
        if simd_active() {
            "sequential, fast path, SIMD".to_string()
        } else {
            "sequential, fast path (no SIMD on host)".to_string()
        },
        "1".to_string(),
        format!("{seq_fast:.1}"),
        format!("{:.2}x", seq_fast / seq_ref),
    ]));

    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut par4_fast = None;
    for threads in [1usize, 2, 4, 8] {
        rayon::set_num_threads(Some(threads));
        let par_ref = rate(&reference, &corpus8, true, rounds);
        let par_fast = rate(&fast, &corpus8, true, rounds);
        if threads == 4 {
            par4_fast = Some(par_fast);
        }
        rep.push_row(Row::new(&[
            "parallel, reference iDCT".to_string(),
            threads.to_string(),
            format!("{par_ref:.1}"),
            format!("{:.2}x", par_ref / seq_ref),
        ]));
        rep.push_row(Row::new(&[
            "parallel, fast iDCT".to_string(),
            threads.to_string(),
            format!("{par_fast:.1}"),
            format!("{:.2}x", par_fast / seq_ref),
        ]));
    }
    rayon::set_num_threads(None);
    rep.note(format!(
        "host cores: {host_cores}; restart interval {CORPUS_RESTART_INTERVAL} MCUs; \
         speedups relative to the old sequential reference scalar decoder"
    ));

    // Neither fast-path flavour may regress single-thread decode versus
    // the old all-scalar reference decoder. On AVX2 hosts the SIMD path
    // should win by >2x; the forced-scalar path wins modestly (reservoir
    // Huffman + AAN iDCT) so it gets a noise-tolerant margin — shared CI
    // runners show double-digit swings even between interleaved passes.
    assert!(
        seq_fast >= seq_ref * 0.95,
        "sequential fast-path decode regressed: {seq_fast:.1} vs {seq_ref:.1} img/s"
    );
    assert!(
        seq_scalar >= seq_ref * 0.85,
        "forced-scalar fast path regressed: {seq_scalar:.1} vs {seq_ref:.1} img/s"
    );
    // The >=2x parallel win needs real cores to show up; a 1-core CI
    // container can only run the sweep for the record.
    if host_cores >= 4 {
        let par4 = par4_fast.unwrap();
        assert!(
            par4 >= seq_ref * 2.0,
            "parallel decode at 4 threads must be >=2x sequential: {par4:.1} vs {seq_ref:.1} img/s"
        );
    } else {
        rep.note(format!(
            "SKIPPED >=2x assertion: host has {host_cores} core(s), need >=4"
        ));
    }
    rep
}

fn report_restart_intervals() -> FigureReport {
    let mut rep = FigureReport::new(
        "Decode plane RI",
        "Parallelism vs restart interval (4 threads, fast iDCT)",
        &["restart interval (MCUs)", "segments/image", "images/s"],
    );
    let dec = JpegDecoder::new();
    rayon::set_num_threads(Some(4));
    for interval in [0u16, 1, 8, 64] {
        let corpus = corpus(interval);
        let (_, stats) = dec.decode_parallel_with_stats(&corpus[0]).unwrap();
        let r = rate(&dec, &corpus, true, 2);
        rep.push_row(Row::new(&[
            interval.to_string(),
            stats.restart_segments.to_string(),
            format!("{r:.1}"),
        ]));
    }
    rayon::set_num_threads(None);
    rep.note("interval 0 = no restart markers: parallel decode falls back to sequential");
    rep
}

fn report_stage_timers() -> FigureReport {
    let mut rep = FigureReport::new(
        "Decode stages",
        "Per-stage decode cost (sequential, one 500x375 image)",
        &[
            "variant",
            "huffman ns/image",
            "idct ns/image",
            "color ns/image",
        ],
    );
    let corpus = corpus(CORPUS_RESTART_INTERVAL);
    for (label, scalar_only, dec) in [
        (
            "fast entropy + SIMD kernels",
            false,
            JpegDecoder::new().with_stage_timing(true),
        ),
        (
            "fast entropy, forced scalar",
            true,
            JpegDecoder::new().with_stage_timing(true),
        ),
        (
            "reference entropy + fast AAN",
            false,
            JpegDecoder::new()
                .with_stage_timing(true)
                .with_reference_entropy(true),
        ),
        (
            "reference entropy + reference iDCT",
            false,
            JpegDecoder::new()
                .with_stage_timing(true)
                .with_reference_idct(true),
        ),
    ] {
        force_scalar(scalar_only);
        let mut huff = 0u64;
        let mut idct = 0u64;
        let mut color = 0u64;
        for bytes in &corpus {
            let (_, stats) = dec.decode_with_stats(bytes).unwrap();
            huff += stats.huffman_ns;
            idct += stats.idct_ns;
            color += stats.color_ns;
        }
        force_scalar(false);
        rep.push_row(Row::new(&[
            label.to_string(),
            (huff / corpus.len() as u64).to_string(),
            (idct / corpus.len() as u64).to_string(),
            (color / corpus.len() as u64).to_string(),
        ]));
    }
    rep
}

fn bench(c: &mut Criterion) {
    let reports = vec![
        report_thread_sweep(),
        report_restart_intervals(),
        report_stage_timers(),
    ];
    for r in &reports {
        print_report(r);
    }
    match save_reports("decode_parallel", &reports) {
        Ok(path) => println!("reports -> {}", path.display()),
        Err(e) => eprintln!("could not save reports: {e}"),
    }

    // Criterion regression tracking on one representative image.
    let bytes = corpus(CORPUS_RESTART_INTERVAL).swap_remove(0);
    let mut group = c.benchmark_group("decode_parallel");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("sequential", "500x375"),
        &bytes,
        |b, bytes| {
            let dec = JpegDecoder::new();
            b.iter(|| dec.decode(black_box(bytes)).unwrap())
        },
    );
    group.bench_with_input(
        BenchmarkId::new("parallel", "500x375"),
        &bytes,
        |b, bytes| {
            let dec = JpegDecoder::new();
            b.iter(|| dec.decode_parallel(black_box(bytes)).unwrap())
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batch_of_8", "500x375"),
        &corpus(CORPUS_RESTART_INTERVAL),
        |b, corpus| {
            let dec = JpegDecoder::new();
            let refs: Vec<&[u8]> = corpus.iter().map(|v| v.as_slice()).collect();
            b.iter(|| {
                for r in dec.decode_batch(black_box(&refs)) {
                    r.unwrap();
                }
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Regenerates the §5.4 economic analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_workflows::economics::{analyze, EconomicsInputs};
use dlb_workflows::figures::sec54_economics;

fn bench(c: &mut Criterion) {
    let report = sec54_economics();
    print_report(&report);
    let _ = save_reports("sec54", &[report]);
    let mut group = c.benchmark_group("sec54");
    group.bench_function("ledger", |b| b.iter(|| analyze(&EconomicsInputs::paper())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

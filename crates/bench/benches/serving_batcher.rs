//! Serving-layer microbench: the dynamic batch former's close behaviour as
//! a function of arrival rate, plus the hot-path costs of the WFQ and the
//! batch former themselves.
//!
//! The sweep drives Poisson arrivals through a [`BatchFormer`] (batch 32,
//! 2 ms linger — the `five_clients` overload config) at rates from deep
//! starvation to saturation and records, per rate, the mean formed batch
//! size, the fraction of batches closed by linger expiry, and the mean
//! close latency (first push → close). Under light load every batch should
//! close by linger at ~`max_linger`; under heavy load batches should fill
//! to `max_batch` with close latency `~ max_batch / rate`. The table is
//! printed and archived to `target/figure-reports/serving_batcher.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlb_bench::{print_report, save_reports};
use dlb_serving::{BatchFormer, ServeRequest, WeightedFairQueue};
use dlb_simcore::{SimRng, SimTime};
use dlb_workflows::report::{FigureReport, Row};
use std::hint::black_box;

const MAX_BATCH: u32 = 32;
const MAX_LINGER: SimTime = SimTime::from_millis(2);

fn req(id: u64, now: SimTime) -> ServeRequest {
    ServeRequest {
        id,
        tenant: (id % 5) as u32,
        arrival: now,
        deadline: now + SimTime::from_millis(50),
    }
}

/// Drives `n_requests` Poisson arrivals at `rate` through a fresh former
/// and returns (mean batch size, linger-closed fraction, mean close
/// latency in ms).
fn former_sweep_point(rate: f64, n_requests: u64, seed: u64) -> (f64, f64, f64) {
    let mut former = BatchFormer::new(MAX_BATCH, MAX_LINGER);
    let mut rng = SimRng::new(seed);
    let mut now = SimTime::ZERO;
    let mut opened_at = SimTime::ZERO;
    let mut batches = 0u64;
    let mut items = 0u64;
    let mut lingered = 0u64;
    let mut close_latency = SimTime::ZERO;
    let mut close = |batch: dlb_serving::FormedBatch, closed_at: SimTime, opened: SimTime| {
        batches += 1;
        items += batch.len() as u64;
        if batch.closed_by_linger {
            lingered += 1;
        }
        close_latency += closed_at - opened;
    };
    for id in 0..n_requests {
        let step = SimTime::from_secs_f64(rng.exponential(1.0 / rate));
        let arrival = now + step;
        // Fire any due linger timer before the next arrival lands.
        if let Some(due) = former.linger_deadline() {
            if due <= arrival {
                let generation = former.generation();
                if let Some(b) = former.close_if_due(due, generation) {
                    close(b, due, opened_at);
                }
            }
        }
        now = arrival;
        if former.pending() == 0 {
            opened_at = now;
        }
        if let Some(b) = former.push(req(id, now), now) {
            close(b, now, opened_at);
        }
    }
    if let Some(b) = former.force_close() {
        let closed_at = now;
        close(b, closed_at, opened_at);
    }
    let mean_size = items as f64 / batches as f64;
    let linger_frac = lingered as f64 / batches as f64;
    let mean_close_ms = close_latency.as_secs_f64() * 1e3 / batches as f64;
    (mean_size, linger_frac, mean_close_ms)
}

fn batcher_close_report() -> FigureReport {
    let mut report = FigureReport::new(
        "Serving batcher: close behaviour vs arrival rate",
        "batch 32, 2 ms linger, Poisson arrivals (50k requests per point, seed 17)",
        &["rate req/s", "mean batch", "linger closes", "mean close ms"],
    );
    for rate in [500.0, 2_000.0, 8_000.0, 16_000.0, 32_000.0, 64_000.0] {
        let (mean_size, linger_frac, close_ms) = former_sweep_point(rate, 50_000, 17);
        report.push_row(Row::new(&[
            format!("{rate:.0}"),
            format!("{mean_size:.1}"),
            format!("{:.0}%", linger_frac * 100.0),
            format!("{close_ms:.3}"),
        ]));
    }
    report.note("light load: batches close by linger at ~2 ms; heavy load: full batches of 32");
    report
}

fn bench(c: &mut Criterion) {
    let report = batcher_close_report();
    print_report(&report);
    match save_reports("serving_batcher", &[report]) {
        Ok(path) => println!("  archived to {}", path.display()),
        Err(err) => println!("  (archive skipped: {err})"),
    }

    let mut group = c.benchmark_group("serving");

    // Hot path: one push into a forming batch plus the close when full.
    group.throughput(Throughput::Elements(MAX_BATCH as u64));
    group.bench_function("batch_former_fill32_close", |b| {
        let mut former = BatchFormer::new(MAX_BATCH, MAX_LINGER);
        let now = SimTime::from_millis(1);
        b.iter(|| {
            let mut out = None;
            for id in 0..MAX_BATCH as u64 {
                out = former.push(black_box(req(id, now)), now);
            }
            out.expect("batch closed full")
        })
    });

    // WFQ push+pop cycle across 5 backlogged tenant classes.
    group.throughput(Throughput::Elements(1));
    group.bench_function("wfq_5tenant_push_pop", |b| {
        let mut q = WeightedFairQueue::new((0..5).map(|t| (t, 1)));
        for id in 0..64u64 {
            q.push((id % 5) as u32, req(id, SimTime::ZERO));
        }
        let mut id = 64u64;
        b.iter(|| {
            q.push((id % 5) as u32, req(id, SimTime::ZERO));
            id += 1;
            black_box(q.pop().expect("backlogged"))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

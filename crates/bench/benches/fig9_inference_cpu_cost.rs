//! Regenerates Figure 9: inference CPU cost.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_gpu::ModelZoo;
use dlb_workflows::calibration::{BackendKind, Calibration};
use dlb_workflows::figures::fig9_inference_cpu_cost;
use dlb_workflows::inference::{InferenceParams, InferenceSim};

fn bench(c: &mut Criterion) {
    let cal = Calibration::paper();
    let report = fig9_inference_cpu_cost(&cal);
    print_report(&report);
    let _ = save_reports("fig9", &[report]);
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("resnet50_cpu_based_cores", |b| {
        b.iter(|| {
            InferenceSim::run(
                cal.clone(),
                InferenceParams::paper(ModelZoo::ResNet50, BackendKind::CpuBased, 64),
            )
            .cpu_cores
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Regenerates Figure 2: the AlexNet/Caffe motivation experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_workflows::calibration::Calibration;
use dlb_workflows::figures::fig2_motivation;

fn bench(c: &mut Criterion) {
    let cal = Calibration::paper();
    let report = fig2_motivation(&cal);
    print_report(&report);
    let _ = save_reports("fig2", &[report]);
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("motivation_sweep", |b| b.iter(|| fig2_motivation(&cal)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

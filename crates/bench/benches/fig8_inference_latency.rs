//! Regenerates Figure 8: inference latency vs batch size.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_gpu::ModelZoo;
use dlb_workflows::calibration::{BackendKind, Calibration};
use dlb_workflows::figures::fig8_inference_latency;
use dlb_workflows::inference::InferenceSim;

fn bench(c: &mut Criterion) {
    let cal = Calibration::paper();
    let report = fig8_inference_latency(&cal);
    print_report(&report);
    let _ = save_reports("fig8", &[report]);
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("googlenet_dlbooster_bs1_latency", |b| {
        b.iter(|| {
            InferenceSim::loaded_latency(&cal, ModelZoo::GoogLeNet, BackendKind::DlBooster, 1, 0.6)
                .p50_latency
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Design-choice ablations the paper calls out.
//!
//! * **batch memory vs per-datum copies** — §5.2: small-piece copies cost
//!   ≈20 % of LeNet-5 throughput.
//! * **pipeline width** — §3.3: 4-way Huffman / 2-way resize were chosen
//!   for load balance; sweep the widths and watch the bottleneck move.
//! * **pipelining vs fused decoder** — §3.3 optimisation 1: decoupled
//!   stages overlap across images.
//! * **async vs sync FPGAReader** — §3.4.1: asynchronous submission keeps
//!   the decoder fed. Modelled as prefetch depth 2 vs 0 in the training DES
//!   (a synchronous reader leaves the FPGA idle during every GPU iteration).

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_fpga::{DecoderMirror, DeviceSpec, FpgaTimingModel, ImageWorkload};
use dlb_gpu::ModelZoo;
use dlb_workflows::calibration::{BackendKind, Calibration};
use dlb_workflows::report::{FigureReport, Row};
use dlb_workflows::training::{TrainBackend, TrainingParams, TrainingSim};

fn ablation_batch_memory(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Ablation A1",
        "Batched pool memory vs per-datum copies (LeNet-5, batch 512)",
        &["variant", "throughput (img/s)"],
    );
    // DLBooster path = batched block copy; baselines pay per-datum. The
    // training sim encodes exactly that difference, so compare DLBooster
    // against CPU-based on the cached MNIST workload.
    let batched = TrainingSim::run(
        cal.clone(),
        TrainingParams::paper(
            ModelZoo::LeNet5,
            TrainBackend::Kind(BackendKind::DlBooster),
            1,
        ),
    );
    let per_datum = TrainingSim::run(
        cal.clone(),
        TrainingParams::paper(
            ModelZoo::LeNet5,
            TrainBackend::Kind(BackendKind::CpuBased),
            1,
        ),
    );
    rep.push_row(Row::new(&[
        "batched unit (DLBooster)".to_string(),
        format!("{:.0}", batched.throughput),
    ]));
    rep.push_row(Row::new(&[
        "per-datum copies (baseline)".to_string(),
        format!("{:.0}", per_datum.throughput),
    ]));
    let loss = 1.0 - per_datum.throughput / batched.throughput;
    rep.note(format!(
        "measured small-copy loss: {:.0}% (paper: ~20%)",
        loss * 100.0
    ));
    assert!(
        loss > 0.05,
        "per-datum copies must cost something: {loss:.3}"
    );
    rep
}

fn ablation_pipeline_width() -> FigureReport {
    let mut rep = FigureReport::new(
        "Ablation A2",
        "FPGA decoder width sweep (ILSVRC-like images)",
        &[
            "huffman ways",
            "resize ways",
            "throughput (img/s)",
            "bottleneck",
            "fits Arria-10",
        ],
    );
    let spec = DeviceSpec::arria10_ax();
    let w = ImageWorkload::ilsvrc_like();
    for (hw, rw) in [(1, 1), (2, 1), (2, 2), (4, 2), (8, 2), (8, 4), (16, 8)] {
        let mirror = DecoderMirror::jpeg_with_ways(hw, rw);
        let fits = spec.budget.fits(&mirror.resources).is_ok();
        let model = FpgaTimingModel::from_mirror(&mirror, &spec);
        rep.push_row(Row::new(&[
            hw.to_string(),
            rw.to_string(),
            format!("{:.0}", model.throughput_images_per_sec(&w)),
            model.bottleneck(&w).to_string(),
            fits.to_string(),
        ]));
    }
    rep.note("paper §3.3: 4/2 chosen so neither unit straggles within the resource budget");
    rep
}

fn ablation_pipelining() -> FigureReport {
    let mut rep = FigureReport::new(
        "Ablation A3",
        "Decoupled pipelined stages vs a fused decoder (batch 64)",
        &["variant", "batch service (ms)", "images/s"],
    );
    let model = FpgaTimingModel::paper_config();
    let images = vec![ImageWorkload::ilsvrc_like(); 64];
    // Pipelined: the shipped model.
    let pipelined = model.batch_service_time(&images);
    // Fused: every image pays the full stage sum serially (per-lane-group),
    // i.e. no cross-stage overlap.
    let fused_secs: f64 = images
        .iter()
        .map(|w| {
            let t = model.stage_times(w);
            // Huffman lanes still run in parallel across images, but no
            // stage overlap within a lane-group.
            t.total().as_secs_f64() / model.huffman_ways as f64
        })
        .sum();
    rep.push_row(Row::new(&[
        "pipelined (paper)".to_string(),
        format!("{:.2}", pipelined.as_millis_f64()),
        format!("{:.0}", 64.0 / pipelined.as_secs_f64()),
    ]));
    rep.push_row(Row::new(&[
        "fused".to_string(),
        format!("{:.2}", fused_secs * 1e3),
        format!("{:.0}", 64.0 / fused_secs),
    ]));
    assert!(
        pipelined.as_secs_f64() < fused_secs,
        "pipelining must win: {pipelined} vs {fused_secs}s"
    );
    rep.note("paper §3.3(1): decoupled units work in pipelining and increase parallelism");
    rep
}

fn ablation_async_reader(cal: &Calibration) -> FigureReport {
    let mut rep = FigureReport::new(
        "Ablation A4",
        "Asynchronous FPGAReader (prefetch) vs synchronous submission (AlexNet, 1 GPU)",
        &["variant", "throughput (img/s)"],
    );
    // Async = the shipped DES (prefetch keeps the FPGA busy during GPU
    // iterations). Synchronous = decode and compute serialise; model by
    // adding the batch decode time to every iteration (no overlap): the
    // ideal-backend iteration time plus the FPGA batch service.
    let asynchronous = TrainingSim::run(
        cal.clone(),
        TrainingParams::paper(
            ModelZoo::AlexNet,
            TrainBackend::Kind(BackendKind::DlBooster),
            1,
        ),
    );
    let ideal = TrainingSim::run(
        cal.clone(),
        TrainingParams::paper(ModelZoo::AlexNet, TrainBackend::Ideal, 1),
    );
    let images = vec![ImageWorkload::ilsvrc_like(); 256];
    let decode = cal.fpga.batch_service_time(&images).as_secs_f64();
    let iter_ideal = 256.0 / ideal.throughput;
    let sync_throughput = 256.0 / (iter_ideal + decode);
    rep.push_row(Row::new(&[
        "async (Algorithm 1)".to_string(),
        format!("{:.0}", asynchronous.throughput),
    ]));
    rep.push_row(Row::new(&[
        "sync (no prefetch)".to_string(),
        format!("{sync_throughput:.0}"),
    ]));
    assert!(asynchronous.throughput > sync_throughput * 1.1);
    rep.note("paper §3.4.1: async submission achieves high throughput and low latency");
    rep
}

fn ablation_direct_gpu_dma(cal: &Calibration) -> FigureReport {
    use dlb_workflows::inference::{DriveMode, InferenceParams, InferenceSim};
    let mut rep = FigureReport::new(
        "Ablation A5",
        "Host-bounce copy vs direct FPGA-to-GPU DMA (paper §7 future work 2)",
        &["variant", "median latency (ms)", "throughput (img/s)"],
    );
    let mut base = InferenceParams::paper(ModelZoo::ResNet50, BackendKind::DlBooster, 16);
    base.mode = DriveMode::Load { rate: 2_000.0 };
    base.batches = 150;
    base.warmup = 25;
    let mut direct = base.clone();
    direct.direct_gpu_dma = true;
    let host = InferenceSim::run(cal.clone(), base);
    let peer = InferenceSim::run(cal.clone(), direct);
    rep.push_row(Row::new(&[
        "host bounce (shipped)".to_string(),
        format!("{:.2}", host.p50_latency.as_millis_f64()),
        format!("{:.0}", host.throughput),
    ]));
    rep.push_row(Row::new(&[
        "direct GPU DMA".to_string(),
        format!("{:.2}", peer.p50_latency.as_millis_f64()),
        format!("{:.0}", peer.throughput),
    ]));
    assert!(peer.p50_latency < host.p50_latency);
    rep.note("paper §7: direct device writes promise lower latency; the saved hop is one PCIe batch copy");
    rep
}

fn bench(c: &mut Criterion) {
    let cal = Calibration::paper();
    let reports = vec![
        ablation_batch_memory(&cal),
        ablation_pipeline_width(),
        ablation_pipelining(),
        ablation_async_reader(&cal),
        ablation_direct_gpu_dma(&cal),
    ];
    for r in &reports {
        print_report(r);
    }
    let _ = save_reports("ablations", &reports);
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("width_sweep", |b| b.iter(ablation_pipeline_width));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

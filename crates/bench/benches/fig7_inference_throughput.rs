//! Regenerates Figure 7: inference throughput vs batch size.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_gpu::ModelZoo;
use dlb_workflows::calibration::{BackendKind, Calibration};
use dlb_workflows::figures::fig7_inference_throughput;
use dlb_workflows::inference::InferenceSim;

fn bench(c: &mut Criterion) {
    let cal = Calibration::paper();
    let report = fig7_inference_throughput(&cal);
    print_report(&report);
    let _ = save_reports("fig7", &[report]);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("googlenet_dlbooster_bs32", |b| {
        b.iter(|| {
            InferenceSim::saturated_throughput(
                &cal,
                ModelZoo::GoogLeNet,
                BackendKind::DlBooster,
                32,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

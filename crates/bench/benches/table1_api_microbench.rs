//! Table 1 API microbenchmarks: the cost of each DLBooster module verb on
//! the functional (real-thread) implementation.
//!
//! | API | Owner |
//! |---|---|
//! | submit_cmd / drain_out | FPGAChannel |
//! | get_item / recycle_item / phy2virt / virt2phy | MemManager |
//! | load_from_disk / load_from_net | DataCollector |

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_fpga::cmd::CMD_WIRE_BYTES;
use dlb_fpga::{DataRef, DecodeCmd, OutputFormat};
use dlb_membridge::{MemManager, PoolConfig};
use dlb_net::RxDescriptor;
use dlb_storage::Record;
use dlbooster_core::{DataCollector, FileMeta};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_api");

    // MemManager verbs.
    let pool = MemManager::new(PoolConfig {
        unit_size: 1 << 20,
        unit_count: 8,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();
    group.bench_function("get_item+recycle_item", |b| {
        b.iter(|| {
            let unit = pool.get_item().unwrap();
            pool.recycle_item(black_box(unit)).unwrap();
        })
    });
    group.bench_function("phy2virt", |b| {
        b.iter(|| pool.phy2virt(black_box(0x4_0000_1234)).unwrap())
    });
    group.bench_function("virt2phy", |b| {
        let virt = pool.phy2virt(0x4_0000_1234).unwrap();
        b.iter(|| pool.virt2phy(black_box(virt)).unwrap())
    });

    // FPGAChannel cmd path: pack + parse (the FIFO wire format).
    let cmd = DecodeCmd {
        cmd_id: 1,
        src: DataRef::Disk {
            offset: 4096,
            len: 100_000,
        },
        dst_phys: 0x4_0000_0000,
        dst_capacity: 224 * 224 * 3,
        target_w: 224,
        target_h: 224,
        format: OutputFormat::Rgb8,
    };
    group.bench_function("cmd_pack", |b| b.iter(|| black_box(cmd).pack()));
    let wire: [u8; CMD_WIRE_BYTES] = cmd.pack();
    group.bench_function("cmd_unpack", |b| {
        b.iter(|| DecodeCmd::unpack(black_box(&wire)).unwrap())
    });

    // DataCollector verbs.
    let records: Vec<Record> = (0..4096u64)
        .map(|id| Record {
            id,
            label: id % 1000,
            disk_offset: id * 131072,
            len: 100_000,
            width: 500,
            height: 375,
            channels: 3,
        })
        .collect();
    group.bench_function("load_from_disk+next_metas", |b| {
        let collector = DataCollector::load_from_disk(&records, 5);
        b.iter(|| collector.next_metas(black_box(256)).unwrap())
    });
    group.bench_function("load_from_net_push_pop", |b| {
        let collector = DataCollector::load_from_net();
        let desc = RxDescriptor {
            request_id: 1,
            client_id: 0,
            phys_addr: 0x8000_0000,
            len: 99_000,
            arrival_nanos: 12,
        };
        b.iter(|| {
            collector.push_from_net(black_box(&desc));
            collector.next_metas(1).unwrap()
        })
    });
    group.bench_function("file_meta_from_record", |b| {
        b.iter(|| FileMeta::from_record(black_box(&records[7])))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

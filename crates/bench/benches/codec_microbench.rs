//! Functional-layer codec rates: what the real from-scratch JPEG pipeline
//! sustains on this host. (These are the numbers behind the "CPU-based
//! backend burns cores" story, measured rather than modelled.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlb_codec::augment::{center_crop, hflip, to_tensor_chw};
use dlb_codec::resize::{resize, ResizeFilter};
use dlb_codec::synth::{generate, SynthStyle};
use dlb_codec::{JpegDecoder, JpegEncoder};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for (label, w, h) in [("100x75", 100u32, 75u32), ("500x375", 500, 375)] {
        let img = generate(w, h, SynthStyle::Photo, 42);
        let bytes = JpegEncoder::new(92).unwrap().encode(&img).unwrap();
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("decode", label), &bytes, |b, bytes| {
            let dec = JpegDecoder::new();
            b.iter(|| dec.decode(black_box(bytes)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("encode", label), &img, |b, img| {
            let enc = JpegEncoder::new(92).unwrap();
            b.iter(|| enc.encode(black_box(img)).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("resize_bilinear_224", label),
            &img,
            |b, img| b.iter(|| resize(black_box(img), 224, 224, ResizeFilter::Bilinear).unwrap()),
        );
    }
    let img224 = generate(256, 256, SynthStyle::Photo, 7);
    group.bench_function("augment_crop+flip+tensor", |b| {
        b.iter(|| {
            let crop = center_crop(black_box(&img224), 224, 224).unwrap();
            let flipped = hflip(&crop);
            to_tensor_chw(&flipped, &[104.0, 117.0, 123.0], &[58.0, 57.0, 57.0]).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

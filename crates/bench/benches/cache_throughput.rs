//! Decoded-sample cache: epoch-over-epoch training speedup.
//!
//! The cache's reason to exist is that epoch 2 of a training run repeats
//! epoch 1's decode work byte for byte. Two variants of the same
//! one-epoch pipeline quantify the win:
//!
//! * **epoch1_cold** — a fresh (empty) cache every iteration: every
//!   image misses and decodes on the device, plus the admission cost of
//!   inserting each decoded sample.
//! * **epoch2_warm** — a cache pre-warmed with the whole corpus, shared
//!   across iterations: every batch is fully resident and bypasses the
//!   device entirely, which is exactly what epoch 2 of a real run sees
//!   when the cache is at least corpus-sized.
//!
//! Results are archived in `BENCH_cache.json`; the target is a ≥ 2×
//! warm-over-cold speedup.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlb_cache::SampleCache;
use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
use dlb_telemetry::Telemetry;
use dlbooster_core::{
    CombinedResolver, DataCollector, DlBooster, DlBoosterConfig, FpgaChannel, PreprocessBackend,
};
use std::sync::Arc;

const BATCHES: u64 = 8;
const BATCH: usize = 4;

/// Runs one epoch through a live `DlBooster` with `cache` attached and
/// returns the batches delivered.
fn run_epoch(
    records: &[dlb_storage::Record],
    disk: &Arc<NvmeDisk>,
    cache: Arc<SampleCache>,
) -> u64 {
    let telemetry = Telemetry::with_defaults();
    let collector = Arc::new(DataCollector::load_from_disk(records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(disk))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(1, BATCH, (32, 32), records.len(), Some(BATCHES));
    config.cache_bytes = 0; // isolate the sample cache from the batch cache
    let booster = DlBooster::start_with_telemetry(collector, channel, config, telemetry).unwrap();
    booster.attach_sample_cache(cache);
    let mut n = 0;
    while let Ok(batch) = booster.next_batch(0) {
        n += 1;
        booster.recycle(batch.unit);
    }
    n
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_throughput");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCHES * BATCH as u64));

    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let dataset = Dataset::build(
        DatasetSpec::ilsvrc_small(BATCHES as usize * BATCH, 7),
        &disk,
    )
    .unwrap();

    // Cold: a fresh, empty cache per iteration — decode-bound epoch 1.
    group.bench_function("epoch1_cold", |b| {
        b.iter(|| run_epoch(&dataset.records, &disk, SampleCache::new(256 << 20)))
    });

    // Warm: one corpus-sized cache filled by a throwaway epoch, then
    // shared — every batch bypasses the device, as in epoch 2+.
    let warm = SampleCache::new(256 << 20);
    run_epoch(&dataset.records, &disk, Arc::clone(&warm));
    assert_eq!(
        warm.len(),
        BATCHES as usize * BATCH,
        "warm-up must make the whole corpus resident"
    );
    group.bench_function("epoch2_warm", |b| {
        b.iter(|| run_epoch(&dataset.records, &disk, Arc::clone(&warm)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

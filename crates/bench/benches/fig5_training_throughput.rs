//! Regenerates Figure 5: training throughput per model/backend/GPU count.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_gpu::ModelZoo;
use dlb_workflows::calibration::{BackendKind, Calibration};
use dlb_workflows::figures::fig5_training_throughput;
use dlb_workflows::training::{TrainBackend, TrainingParams, TrainingSim};

fn bench(c: &mut Criterion) {
    let cal = Calibration::paper();
    let report = fig5_training_throughput(&cal);
    print_report(&report);
    let _ = save_reports("fig5", &[report]);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    // Time one representative cell (AlexNet / DLBooster / 2 GPUs).
    group.bench_function("alexnet_dlbooster_2gpu", |b| {
        b.iter(|| {
            TrainingSim::run(
                cal.clone(),
                TrainingParams::paper(
                    ModelZoo::AlexNet,
                    TrainBackend::Kind(BackendKind::DlBooster),
                    2,
                ),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

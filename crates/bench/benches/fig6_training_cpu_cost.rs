//! Regenerates Figure 6: training CPU cost and the Fig. 6(d) breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_bench::{print_report, save_reports};
use dlb_gpu::ModelZoo;
use dlb_workflows::calibration::{BackendKind, Calibration};
use dlb_workflows::figures::fig6_training_cpu_cost;
use dlb_workflows::training::{TrainBackend, TrainingParams, TrainingSim};

fn bench(c: &mut Criterion) {
    let cal = Calibration::paper();
    let report = fig6_training_cpu_cost(&cal);
    print_report(&report);
    let _ = save_reports("fig6", &[report]);
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("resnet18_cpu_cost_cell", |b| {
        b.iter(|| {
            TrainingSim::run(
                cal.clone(),
                TrainingParams::paper(
                    ModelZoo::ResNet18,
                    TrainBackend::Kind(BackendKind::CpuBased),
                    2,
                ),
            )
            .cpu_cores
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

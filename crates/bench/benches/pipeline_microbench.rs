//! Primitive costs of the host-bridger machinery: blocking queues, the
//! memory pool, and the end-to-end functional FPGA pipeline on small
//! images.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlb_codec::synth::{generate, SynthStyle};
use dlb_codec::JpegEncoder;
use dlb_fpga::{
    DecodeCmd, DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice, MapResolver, OutputFormat,
    Submission,
};
use dlb_membridge::{BlockingQueue, MemManager, PoolConfig};
use std::hint::black_box;
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");

    group.bench_function("blocking_queue_push_pop", |b| {
        let q = BlockingQueue::bounded(1024);
        b.iter(|| {
            q.push(black_box(1u64)).unwrap();
            q.pop().unwrap()
        })
    });

    group.bench_function("pool_lease_cycle", |b| {
        let pool = MemManager::new(PoolConfig {
            unit_size: 64 << 10,
            unit_count: 4,
            phys_base: 0,
        })
        .unwrap();
        b.iter(|| {
            let mut unit = pool.get_item().unwrap();
            unit.append(black_box(&[1u8; 128]), 0, 8, 8, 3);
            pool.recycle_item(unit).unwrap();
        })
    });

    // Functional FPGA engine: images/s through the 4-lane decoder.
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let resolver = Arc::new(MapResolver::new());
    let n = 16usize;
    let srcs: Vec<_> = (0..n)
        .map(|i| {
            let img = generate(100, 75, SynthStyle::Photo, i as u64);
            let bytes = JpegEncoder::new(85).unwrap().encode(&img).unwrap();
            resolver.put_disk(i as u64 * 1_000_000, bytes)
        })
        .collect();
    let engine = DecoderEngine::start(device, resolver.clone()).unwrap();
    let pool = MemManager::new(PoolConfig {
        unit_size: 4 << 20,
        unit_count: 4,
        phys_base: 0x4_0000_0000,
    })
    .unwrap();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("fpga_engine_batch16_decode", |b| {
        b.iter(|| {
            let mut unit = pool.get_item().unwrap();
            let mut cmds = Vec::with_capacity(n);
            for (i, src) in srcs.iter().enumerate() {
                let off = unit.reserve(64 * 64 * 3, i as u64, 64, 64, 3).unwrap();
                cmds.push(
                    DecodeCmd {
                        cmd_id: i as u64,
                        src: *src,
                        dst_phys: unit.phys_addr() + off as u64,
                        dst_capacity: 64 * 64 * 3,
                        target_w: 64,
                        target_h: 64,
                        format: OutputFormat::Rgb8,
                    }
                    .pack(),
                );
            }
            engine.submit(Submission { unit, cmds }).unwrap();
            let done = engine.completions().pop().unwrap();
            assert_eq!(done.ok_count(), n);
            pool.recycle_item(done.unit).unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

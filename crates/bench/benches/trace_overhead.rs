//! Pay-for-what-you-use overhead of the dlb-trace span plane.
//!
//! Every record site in the pipeline is gated on a single branch (an
//! `OnceLock::get` / `Option` probe). This bench quantifies both sides
//! of that bargain on a live end-to-end `DlBooster` run:
//!
//! * **disabled** — no tracer installed (the production default): each
//!   site costs one relaxed probe returning `None`; no clocks are read.
//! * **enabled** — a `Tracer` installed on the telemetry hub: every
//!   stage pays two `Instant::now()` reads plus a push into the
//!   per-thread ring buffer.
//!
//! The measured quantity is end-to-end pipeline throughput (batches
//! through a live `DlBooster` run), so the overhead is diluted by the
//! real decode work exactly as it is in production. The acceptance bar
//! is ≤2% enabled overhead; results are archived in `BENCH_trace.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
use dlb_telemetry::Telemetry;
use dlb_trace::Tracer;
use dlbooster_core::{
    CombinedResolver, DataCollector, DlBooster, DlBoosterConfig, FpgaChannel, PreprocessBackend,
};
use std::sync::Arc;

const BATCHES: u64 = 8;
const BATCH: usize = 4;

/// Runs one full training-shaped pipeline to completion; `traced`
/// installs a live tracer so every record site takes its slow path.
fn run_pipeline(records: &[dlb_storage::Record], disk: &Arc<NvmeDisk>, traced: bool) -> u64 {
    let telemetry = Telemetry::with_defaults();
    if traced {
        telemetry.install_tracer(Arc::new(Tracer::new()));
    }
    let collector = Arc::new(DataCollector::load_from_disk(records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(disk))),
        &telemetry,
    )
    .unwrap();
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(1, BATCH, (32, 32), records.len(), Some(BATCHES));
    config.cache_bytes = 0;
    let booster = DlBooster::start_with_telemetry(collector, channel, config, telemetry).unwrap();
    let mut n = 0;
    while let Ok(batch) = booster.next_batch(0) {
        n += 1;
        booster.recycle(batch.unit);
    }
    n
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCHES * BATCH as u64));

    let disk = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let ds = Dataset::build(
        DatasetSpec::ilsvrc_small(BATCHES as usize * BATCH, 7),
        &disk,
    )
    .unwrap();

    group.bench_function("pipeline_trace_disabled", |b| {
        b.iter(|| run_pipeline(&ds.records, &disk, false))
    });
    group.bench_function("pipeline_trace_enabled", |b| {
        b.iter(|| run_pipeline(&ds.records, &disk, true))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fault-free overhead of the chaos plane.
//!
//! Every stage carries a chaos hook (an `OnceLock`/`Option` probe on the
//! hot path). This bench quantifies what those hooks cost when no fault
//! ever fires, in the two shipping configurations:
//!
//! * **unarmed** — no injector attached (the production default): the
//!   probe is a relaxed `OnceLock::get` returning `None`.
//! * **armed-quiet** — an injector attached with a fire threshold of
//!   (effectively) zero: every operation pays the splitmix64 hash and
//!   the threshold compare, but no fault ever fires.
//!
//! The measured quantity is end-to-end pipeline throughput (batches
//! through a live `DlBooster` run), i.e. the overhead is diluted by the
//! real decode work exactly as it is in production. Results are archived
//! in `BENCH_chaos.json`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlb_chaos::{FaultPlan, Stage, StageSpec};
use dlb_fpga::{DecoderEngine, DecoderMirror, DeviceSpec, FpgaDevice};
use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
use dlb_telemetry::Telemetry;
use dlbooster_core::{
    CombinedResolver, DataCollector, DlBooster, DlBoosterConfig, FpgaChannel, PreprocessBackend,
};
use std::sync::Arc;

const BATCHES: u64 = 8;
const BATCH: usize = 4;

/// Runs one full training-shaped pipeline to completion; `armed` attaches
/// never-firing injectors on the storage and FPGA planes.
fn run_pipeline(records: &[dlb_storage::Record], disk: &Arc<NvmeDisk>, armed: bool) -> u64 {
    let telemetry = Telemetry::with_defaults();
    let plan = if armed {
        // Rate low enough that no identity hash can clear the threshold:
        // the hooks do all their work, the faults never fire.
        let mut p = FaultPlan::disabled();
        p.seed = 1;
        p.storage = StageSpec::rate(1e-15);
        p.fpga = StageSpec::rate(1e-15);
        Some(p)
    } else {
        None
    };
    if let Some(p) = &plan {
        if let Some(inj) = p.injector(Stage::Storage, &telemetry) {
            disk.attach_chaos(inj);
        }
    }
    let collector = Arc::new(DataCollector::load_from_disk(records, 0));
    let mut device = FpgaDevice::new(DeviceSpec::arria10_ax());
    device
        .load_mirror(DecoderMirror::jpeg_paper_config())
        .unwrap();
    let engine = DecoderEngine::start_with_telemetry(
        device,
        Arc::new(CombinedResolver::disk_only(Arc::clone(disk))),
        &telemetry,
    )
    .unwrap();
    if let Some(p) = &plan {
        if let Some(inj) = p.injector(Stage::Fpga, &telemetry) {
            engine.attach_chaos(inj);
        }
    }
    let channel = FpgaChannel::init_with_telemetry(engine, 0, &telemetry);
    let mut config = DlBoosterConfig::training(1, BATCH, (32, 32), records.len(), Some(BATCHES));
    config.cache_bytes = 0;
    let booster = DlBooster::start_with_telemetry(collector, channel, config, telemetry).unwrap();
    let mut n = 0;
    while let Ok(batch) = booster.next_batch(0) {
        n += 1;
        booster.recycle(batch.unit);
    }
    n
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos_overhead");
    group.sample_size(20);
    group.throughput(Throughput::Elements(BATCHES * BATCH as u64));

    // NOTE: the disk's chaos hook is a OnceLock — once armed it stays
    // armed for that disk, so each variant gets its own disk + dataset.
    let disk_off = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let ds_off = Dataset::build(
        DatasetSpec::ilsvrc_small(BATCHES as usize * BATCH, 7),
        &disk_off,
    )
    .unwrap();
    group.bench_function("pipeline_unarmed", |b| {
        b.iter(|| run_pipeline(&ds_off.records, &disk_off, false))
    });

    let disk_on = Arc::new(NvmeDisk::new(NvmeSpec::optane_900p()));
    let ds_on = Dataset::build(
        DatasetSpec::ilsvrc_small(BATCHES as usize * BATCH, 7),
        &disk_on,
    )
    .unwrap();
    group.bench_function("pipeline_armed_quiet", |b| {
        b.iter(|| run_pipeline(&ds_on.records, &disk_on, true))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Prints every reproduced table/figure of the paper and saves the JSON
//! bundle under `target/figure-reports/`.
//!
//! ```text
//! cargo run -p dlb-bench --bin figures [--json]
//! ```

use dlb_workflows::calibration::Calibration;
use dlb_workflows::figures::all_figures;

fn main() {
    let json_only = std::env::args().any(|a| a == "--json");
    let cal = Calibration::paper();
    eprintln!("regenerating all figures on the paper calibration…");
    let reports = all_figures(&cal);
    if json_only {
        let bundle = dlb_telemetry::Json::Array(reports.iter().map(|r| r.to_json()).collect());
        println!("{}", bundle.to_string_pretty());
    } else {
        for r in &reports {
            println!();
            println!("{}", r.render());
        }
    }
    match dlb_bench::save_reports("all", &reports) {
        Ok(path) => eprintln!("saved JSON bundle to {}", path.display()),
        Err(e) => eprintln!("could not save JSON bundle: {e}"),
    }
}

//! # dlb-bench
//!
//! The benchmark harness. Every table and figure of the paper's evaluation
//! has a Criterion bench target that (a) prints the regenerated
//! rows/series next to the paper-expected values and (b) times the
//! underlying simulation/pipeline so regressions in the models show up in
//! Criterion's reports.
//!
//! | target | reproduces |
//! |---|---|
//! | `fig2_motivation` | Fig. 2(a)+(b) motivation experiment |
//! | `fig5_training_throughput` | Fig. 5(a)-(c) |
//! | `fig6_training_cpu_cost` | Fig. 6(a)-(d) |
//! | `fig7_inference_throughput` | Fig. 7(a)-(c) |
//! | `fig8_inference_latency` | Fig. 8(a)-(c) |
//! | `fig9_inference_cpu_cost` | Fig. 9(a)-(c) |
//! | `table1_api_microbench` | Table 1 API op costs |
//! | `sec54_economics` | §5.4 economics |
//! | `codec_microbench` | raw decode/resize rates (the functional layer) |
//! | `pipeline_microbench` | queue/pool/dispatcher primitive costs |
//! | `ablations` | §3.3/§3.4 design-choice ablations |
//! | `serving_batcher` | serving-layer batch former + WFQ hot paths |
//!
//! Run everything with `cargo bench --workspace`; regenerate just the
//! figure tables with `cargo run -p dlb-bench --bin figures`.

use dlb_workflows::report::FigureReport;

/// Prints a report to stdout with a separating banner (Criterion captures
/// stdout per bench run; the tables land in the bench log).
pub fn print_report(report: &FigureReport) {
    println!();
    println!("{}", report.render());
}

/// Writes a JSON bundle of reports to `target/figure-reports/<name>.json`
/// so EXPERIMENTS.md can be regenerated from artifacts.
pub fn save_reports(name: &str, reports: &[FigureReport]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("figure-reports");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = dlb_telemetry::Json::Array(reports.iter().map(|r| r.to_json()).collect());
    std::fs::write(&path, json.to_string_pretty())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_workflows::report::Row;

    #[test]
    fn save_reports_writes_json() {
        let mut r = FigureReport::new("T", "t", &["a"]);
        r.push_row(Row::new(&["1"]));
        let path = save_reports("unit-test", &[r]).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"id\": \"T\""));
    }
}

//! Quick decode-path throughput probe (not a criterion bench): prints
//! images/s for each decoder variant over the standard 500x375 corpus.

use dlb_codec::simd::{force_scalar, simd_active};
use dlb_codec::synth::{generate, SynthStyle};
use dlb_codec::{JpegDecoder, JpegEncoder};
use std::hint::black_box;
use std::time::Instant;

fn corpus() -> Vec<Vec<u8>> {
    let enc = JpegEncoder::new(92).unwrap().with_restart_interval(8);
    (0..8u64)
        .map(|seed| {
            let img = generate(500, 375, SynthStyle::Photo, seed);
            enc.clone().encode(&img).unwrap()
        })
        .collect()
}

fn rate(dec: &JpegDecoder, corpus: &[Vec<u8>], rounds: usize) -> f64 {
    let t0 = Instant::now();
    for _ in 0..rounds {
        for bytes in corpus {
            black_box(dec.decode(black_box(bytes)).unwrap());
        }
    }
    (rounds * corpus.len()) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let corpus = corpus();
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(12);
    println!("simd_active: {}", simd_active());
    let fast = JpegDecoder::new();
    let ref_entropy = JpegDecoder::new().with_reference_entropy(true);
    let ref_idct = JpegDecoder::new().with_reference_idct(true);
    // Warmup.
    rate(&fast, &corpus, 2);
    for _ in 0..3 {
        force_scalar(true);
        let r_ref_s = rate(&ref_idct, &corpus, rounds);
        let r_re_s = rate(&ref_entropy, &corpus, rounds);
        let r_scalar = rate(&fast, &corpus, rounds);
        force_scalar(false);
        let r_simd = rate(&fast, &corpus, rounds);
        println!(
            "scalar: ref_idct {r_ref_s:7.1}  ref_entropy+aan {r_re_s:7.1}  fast {r_scalar:7.1}  | simd fast {r_simd:7.1}"
        );
    }
    // Stage timers.
    for (label, scalar) in [("simd", false), ("scalar", true)] {
        force_scalar(scalar);
        let dec = JpegDecoder::new().with_stage_timing(true);
        let (mut h, mut i, mut c) = (0u64, 0u64, 0u64);
        for bytes in &corpus {
            let (_, s) = dec.decode_with_stats(bytes).unwrap();
            h += s.huffman_ns;
            i += s.idct_ns;
            c += s.color_ns;
        }
        force_scalar(false);
        let n = corpus.len() as u64;
        println!(
            "{label}: huffman {} idct {} color {} ns/image",
            h / n,
            i / n,
            c / n
        );
    }
}

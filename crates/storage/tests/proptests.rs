//! Property tests: dataset determinism across the parameter space and NVMe
//! store integrity.

use dlb_storage::{Dataset, DatasetSpec, NvmeDisk, NvmeSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn datasets_are_pure_functions_of_their_spec(
        count in 1usize..12,
        seed in any::<u64>(),
        mnist in any::<bool>(),
    ) {
        let spec = if mnist {
            DatasetSpec::mnist_like(count, seed)
        } else {
            DatasetSpec::ilsvrc_small(count, seed)
        };
        let d1 = NvmeDisk::new(NvmeSpec::optane_900p());
        let d2 = NvmeDisk::new(NvmeSpec::optane_900p());
        let a = Dataset::build(spec.clone(), &d1).unwrap();
        let b = Dataset::build(spec, &d2).unwrap();
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(a.total_bytes, b.total_bytes);
        // Bytes on disk are identical too.
        for r in &a.records {
            let x = d1.read(r.disk_offset, r.len).unwrap();
            let y = d2.read(r.disk_offset, r.len).unwrap();
            prop_assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn nvme_objects_never_alias(
        sizes in prop::collection::vec(1usize..10_000, 1..40)
    ) {
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        let mut placed = Vec::new();
        for (i, len) in sizes.iter().enumerate() {
            let (off, l) = disk.append(vec![i as u8; *len]).unwrap();
            placed.push((off, l));
        }
        let mut ranges = placed.clone();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            prop_assert!(w[0].0 + w[0].1 as u64 <= w[1].0, "objects alias: {:?}", w);
        }
        for (i, (off, len)) in placed.iter().enumerate() {
            let got = disk.read(*off, *len).unwrap();
            prop_assert_eq!(got.as_slice(), &vec![i as u8; sizes[i]][..]);
        }
    }
}

//! # dlb-storage
//!
//! Storage substrate: the NVMe disk, the synthetic datasets, and the
//! LMDB-like offline backend store.
//!
//! ## Substitution note
//!
//! * The paper's testbed reads ILSVRC2012 (≈12.8 M JPEGs, avg ≈100 KB at
//!   500×375) and MNIST (60 k 28×28 grayscale) from an Intel Optane 900p.
//!   Neither dataset ships here, so [`dataset`] *synthesises* look-alikes:
//!   every image is generated deterministically (`dlb-codec::synth`) and
//!   encoded with our own JPEG encoder, so the decode path chews on real
//!   entropy-coded bytes with realistic compression ratios. Datasets are
//!   size-scalable: functional tests use hundreds of images at reduced
//!   resolution, the DES experiments use the paper's full-scale statistics.
//! * [`nvme`] models the Optane 900p as a flat object store with a
//!   bandwidth/latency timing model (`SerialPipe`).
//! * [`lmdb`] rebuilds the relevant slice of LMDB: offline conversion
//!   (decode-once, store fixed-size raw records), keyed reads that copy out
//!   per-datum (the small-piece copy overhead of §5.2), and read statistics
//!   the DES contention model consumes.

pub mod dataset;
pub mod lmdb;
pub mod nvme;

pub use dataset::{Dataset, DatasetKind, DatasetSpec, Record};
pub use lmdb::{ConversionReport, LmdbStore};
pub use nvme::{NvmeDisk, NvmeSpec};

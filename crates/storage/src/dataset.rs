//! Synthetic dataset builders and manifests.
//!
//! The manifest (`Vec<Record>`) is exactly the "file_manifest" input of the
//! paper's Algorithm 1 and what the `DataCollector` translates into cmd
//! metadata: block descriptors on disk plus image geometry.

use crate::nvme::NvmeDisk;
use dlb_codec::synth::{generate, SynthRng, SynthStyle};
use dlb_codec::{ChromaMode, JpegEncoder};
use rayon::prelude::*;

/// Which benchmark dataset statistics to mimic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// ILSVRC2012-like: colour JPEGs around 500×375 (paper §5.1: "average
    /// size of 375×500"), photographic content, 1000 classes.
    IlsvrcLike,
    /// MNIST-like: 28×28 grayscale digits, 10 classes.
    MnistLike,
}

/// Dataset generation parameters.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Which statistics to mimic.
    pub kind: DatasetKind,
    /// Number of images.
    pub count: usize,
    /// Deterministic seed.
    pub seed: u64,
    /// Resolution scale in (0, 1]: functional tests shrink images to keep
    /// generation fast; 1.0 reproduces the paper's geometry.
    pub scale: f64,
    /// JPEG quality.
    pub quality: u8,
    /// Restart interval in MCUs (lets the FPGA lanes split single images).
    pub restart_interval: u16,
}

impl DatasetSpec {
    /// Full-geometry ILSVRC-like spec.
    pub fn ilsvrc_like(count: usize, seed: u64) -> Self {
        Self {
            kind: DatasetKind::IlsvrcLike,
            count,
            seed,
            scale: 1.0,
            quality: 92,
            restart_interval: 8,
        }
    }

    /// Reduced-resolution ILSVRC-like spec for fast functional tests.
    pub fn ilsvrc_small(count: usize, seed: u64) -> Self {
        Self {
            scale: 0.2,
            ..Self::ilsvrc_like(count, seed)
        }
    }

    /// MNIST-like spec.
    pub fn mnist_like(count: usize, seed: u64) -> Self {
        Self {
            kind: DatasetKind::MnistLike,
            count,
            seed,
            scale: 1.0,
            quality: 90,
            restart_interval: 0,
        }
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> u64 {
        match self.kind {
            DatasetKind::IlsvrcLike => 1000,
            DatasetKind::MnistLike => 10,
        }
    }
}

/// One dataset entry: the Algorithm-1 metadata for a single file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Image index.
    pub id: u64,
    /// Class label.
    pub label: u64,
    /// Byte offset on the NVMe disk.
    pub disk_offset: u64,
    /// Encoded length in bytes.
    pub len: u32,
    /// Source width in pixels.
    pub width: u32,
    /// Source height in pixels.
    pub height: u32,
    /// 1 (gray) or 3 (colour) source channels.
    pub channels: u8,
}

/// A generated dataset: the manifest plus aggregate statistics. The encoded
/// bytes live on the [`NvmeDisk`] passed to [`Dataset::build`].
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Generation parameters.
    pub spec: DatasetSpec,
    /// Per-image records in id order.
    pub records: Vec<Record>,
    /// Total encoded bytes.
    pub total_bytes: u64,
}

impl Dataset {
    /// Generates `spec.count` images, encodes them, writes them to `disk`,
    /// and returns the manifest. Generation is rayon-parallel and fully
    /// deterministic in `spec.seed` (parallelism never reorders ids).
    pub fn build(spec: DatasetSpec, disk: &NvmeDisk) -> Result<Dataset, String> {
        if spec.count == 0 {
            return Err("empty dataset".into());
        }
        if !(0.01..=1.0).contains(&spec.scale) {
            return Err(format!("scale {} out of (0.01, 1.0]", spec.scale));
        }
        // Encode in parallel (deterministic per-id), then append in id order
        // so disk offsets are reproducible.
        let encoded: Vec<(u64, Vec<u8>, u32, u32, u8, u64)> = (0..spec.count as u64)
            .into_par_iter()
            .map(|id| {
                let (bytes, w, h, ch, label) = encode_one(&spec, id);
                (id, bytes, w, h, ch, label)
            })
            .collect();

        let mut records = Vec::with_capacity(spec.count);
        let mut total_bytes = 0u64;
        for (id, bytes, width, height, channels, label) in encoded {
            let len = bytes.len() as u32;
            total_bytes += len as u64;
            let (disk_offset, stored_len) = disk.append(bytes)?;
            debug_assert_eq!(stored_len, len);
            records.push(Record {
                id,
                label,
                disk_offset,
                len,
                width,
                height,
                channels,
            });
        }
        Ok(Dataset {
            spec,
            records,
            total_bytes,
        })
    }

    /// Mean encoded size in bytes.
    pub fn mean_bytes(&self) -> f64 {
        self.total_bytes as f64 / self.records.len() as f64
    }

    /// Total decoded size at the given target geometry (memory-cache
    /// planning: can the whole epoch fit in RAM? §5.2's LeNet observation).
    pub fn decoded_bytes(&self, target_w: u32, target_h: u32, channels: u32) -> u64 {
        self.records.len() as u64 * target_w as u64 * target_h as u64 * channels as u64
    }
}

fn encode_one(spec: &DatasetSpec, id: u64) -> (Vec<u8>, u32, u32, u8, u64) {
    let mut rng = SynthRng::new(spec.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    match spec.kind {
        DatasetKind::IlsvrcLike => {
            // Landscape/portrait mix around 500×375, ±20 % jitter.
            let (base_w, base_h) = if rng.next_below(100) < 70 {
                (500.0, 375.0)
            } else {
                (375.0, 500.0)
            };
            let jitter = 0.8 + 0.4 * rng.next_f32() as f64;
            let w = ((base_w * spec.scale * jitter) as u32).max(16);
            let h = ((base_h * spec.scale * jitter) as u32).max(16);
            let style = match rng.next_below(10) {
                0 => SynthStyle::Smooth,
                9 => SynthStyle::Noisy,
                _ => SynthStyle::Photo,
            };
            let img = generate(w, h, style, spec.seed ^ (id << 1) | 1);
            let enc = JpegEncoder::new(spec.quality)
                .expect("valid quality")
                .with_mode(ChromaMode::Yuv420)
                .with_restart_interval(spec.restart_interval)
                .encode(&img)
                .expect("encode");
            let label = rng.next_below(spec.num_classes() as u32) as u64;
            (enc, w, h, 3, label)
        }
        DatasetKind::MnistLike => {
            let w = ((28.0 * spec.scale) as u32).max(8);
            let img = generate(w, w, SynthStyle::Digit, spec.seed ^ (id << 1) | 1);
            let enc = JpegEncoder::new(spec.quality)
                .expect("valid quality")
                .encode(&img)
                .expect("encode");
            let label = rng.next_below(10) as u64;
            (enc, w, w, 1, label)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nvme::NvmeSpec;
    use dlb_codec::JpegDecoder;

    fn disk() -> NvmeDisk {
        NvmeDisk::new(NvmeSpec::optane_900p())
    }

    #[test]
    fn build_is_deterministic() {
        let d1 = disk();
        let d2 = disk();
        let a = Dataset::build(DatasetSpec::ilsvrc_small(20, 7), &d1).unwrap();
        let b = Dataset::build(DatasetSpec::ilsvrc_small(20, 7), &d2).unwrap();
        assert_eq!(a.records, b.records);
        assert_eq!(a.total_bytes, b.total_bytes);
        // Different seed differs.
        let c = Dataset::build(DatasetSpec::ilsvrc_small(20, 8), &disk()).unwrap();
        assert_ne!(a.records, c.records);
    }

    #[test]
    fn records_decode_back_to_declared_geometry() {
        let d = disk();
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(8, 3), &d).unwrap();
        let dec = JpegDecoder::new();
        for r in &ds.records {
            let bytes = d.read(r.disk_offset, r.len).unwrap();
            let img = dec.decode(&bytes).unwrap();
            assert_eq!(img.width(), r.width, "record {}", r.id);
            assert_eq!(img.height(), r.height);
            assert_eq!(img.channels() as u8, r.channels);
        }
    }

    #[test]
    fn mnist_records_are_small_grayscale() {
        let d = disk();
        let ds = Dataset::build(DatasetSpec::mnist_like(30, 1), &d).unwrap();
        assert_eq!(ds.records.len(), 30);
        for r in &ds.records {
            assert_eq!((r.width, r.height), (28, 28));
            assert_eq!(r.channels, 1);
            assert!(r.label < 10);
            assert!(r.len < 4_000, "MNIST-like image {} bytes", r.len);
        }
    }

    #[test]
    fn ilsvrc_labels_span_classes() {
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(64, 5), &disk()).unwrap();
        let distinct: std::collections::HashSet<u64> = ds.records.iter().map(|r| r.label).collect();
        assert!(
            distinct.len() > 16,
            "only {} distinct labels",
            distinct.len()
        );
        assert!(ds.records.iter().all(|r| r.label < 1000));
    }

    #[test]
    fn full_scale_sizes_match_paper_statistics() {
        // A handful of full-scale images should average in the tens of KB
        // (the paper's ≈100 KB is for quality ≈ 90 photographic JPEG; our
        // synthetic content lands in the same order of magnitude).
        let ds = Dataset::build(DatasetSpec::ilsvrc_like(6, 11), &disk()).unwrap();
        let mean = ds.mean_bytes();
        assert!(
            (40_000.0..250_000.0).contains(&mean),
            "mean encoded size {mean:.0} B"
        );
        // Geometry centred on 500×375.
        for r in &ds.records {
            assert!(r.width >= 280 && r.width <= 620, "width {}", r.width);
        }
    }

    #[test]
    fn decoded_bytes_math() {
        let ds = Dataset::build(DatasetSpec::mnist_like(100, 2), &disk()).unwrap();
        assert_eq!(ds.decoded_bytes(28, 28, 1), 100 * 28 * 28);
    }

    #[test]
    fn rejects_bad_specs() {
        assert!(Dataset::build(DatasetSpec::mnist_like(0, 1), &disk()).is_err());
        let mut s = DatasetSpec::ilsvrc_small(2, 1);
        s.scale = 0.0;
        assert!(Dataset::build(s, &disk()).is_err());
    }
}

//! NVMe disk model: a flat object store with Optane-class timing.

use dlb_chaos::{FaultKind, StageInjector};
use dlb_simcore::queueing::SerialPipe;
use dlb_simcore::SimTime;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

/// Static device characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct NvmeSpec {
    /// Marketing name.
    pub name: String,
    /// Sequential read bandwidth, bytes/second.
    pub read_bytes_per_sec: f64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bytes_per_sec: f64,
    /// Per-command latency.
    pub cmd_latency: SimTime,
    /// Capacity in bytes.
    pub capacity: u64,
}

impl NvmeSpec {
    /// Intel Optane SSD 900p (the paper's testbed disk): ≈2.5 GB/s reads,
    /// ≈2.0 GB/s writes, ≈10 µs command latency.
    pub fn optane_900p() -> Self {
        Self {
            name: "Intel Optane SSD 900p".into(),
            read_bytes_per_sec: 2.5e9,
            write_bytes_per_sec: 2.0e9,
            cmd_latency: SimTime::from_micros(10),
            capacity: 480 << 30,
        }
    }
}

#[derive(Debug, Default)]
struct Directory {
    /// offset → bytes. Offsets are allocation-ordered and non-overlapping.
    objects: BTreeMap<u64, Arc<Vec<u8>>>,
    next_offset: u64,
    total_bytes: u64,
}

/// A functional NVMe disk: stores objects at byte offsets, serves reads by
/// `(offset, len)` — the exact addressing mode the FPGA's DataReader uses —
/// plus a timing model for the DES layer.
#[derive(Debug)]
pub struct NvmeDisk {
    spec: NvmeSpec,
    dir: RwLock<Directory>,
    /// Optional chaos injector (read errors / slow reads).
    chaos: OnceLock<Arc<StageInjector>>,
    /// Reads observed per offset — gives each retry of the same object a
    /// fresh, still-deterministic fault draw.
    read_attempts: Mutex<HashMap<u64, u64>>,
}

impl NvmeDisk {
    /// An empty disk with the given spec.
    pub fn new(spec: NvmeSpec) -> Self {
        Self {
            spec,
            dir: RwLock::new(Directory::default()),
            chaos: OnceLock::new(),
            read_attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Attaches a chaos injector for the storage plane (read errors and
    /// slow reads). One branch on the read path when absent; attach is
    /// one-shot (later calls are ignored).
    pub fn attach_chaos(&self, injector: Arc<StageInjector>) {
        let _ = self.chaos.set(injector);
    }

    /// Device characteristics.
    pub fn spec(&self) -> &NvmeSpec {
        &self.spec
    }

    /// Appends an object, returning its `(offset, len)` block descriptor.
    pub fn append(&self, bytes: Vec<u8>) -> Result<(u64, u32), String> {
        let len = bytes.len();
        if len == 0 {
            return Err("zero-length object".into());
        }
        let mut dir = self.dir.write();
        if dir.total_bytes + len as u64 > self.spec.capacity {
            return Err(format!(
                "disk full: {} + {} > {}",
                dir.total_bytes, len, self.spec.capacity
            ));
        }
        let offset = dir.next_offset;
        // Align the next object to 4 KiB like a real allocator would.
        dir.next_offset += (len as u64).div_ceil(4096) * 4096;
        dir.total_bytes += len as u64;
        dir.objects.insert(offset, Arc::new(bytes));
        Ok((offset, len as u32))
    }

    /// Reads an exact object by its descriptor. The cheap `Arc` clone
    /// mirrors DMA semantics: no payload copy on the host path.
    pub fn read(&self, offset: u64, len: u32) -> Result<Arc<Vec<u8>>, String> {
        if let Some(inj) = self.chaos.get() {
            let attempt = {
                let mut m = self.read_attempts.lock();
                let c = m.entry(offset).or_insert(0);
                let a = *c;
                *c += 1;
                a
            };
            let identity = offset.wrapping_add(attempt.wrapping_mul(0x00C2_B2AE_3D27_D4EB));
            match inj.decide(identity) {
                Some(FaultKind::Delay(d)) => {
                    // Slow read: the payload arrives late but intact.
                    inj.sleep(d);
                }
                Some(_) => {
                    return Err(format!(
                        "chaos: injected read error at offset {offset} (attempt {attempt})"
                    ));
                }
                None => {}
            }
        }
        let dir = self.dir.read();
        let obj = dir
            .objects
            .get(&offset)
            .ok_or_else(|| format!("no object at offset {offset}"))?;
        if obj.len() != len as usize {
            return Err(format!(
                "length mismatch at {offset}: stored {}, requested {len}",
                obj.len()
            ));
        }
        Ok(Arc::clone(obj))
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.dir.read().objects.len()
    }

    /// Bytes stored.
    pub fn used_bytes(&self) -> u64 {
        self.dir.read().total_bytes
    }

    /// A fresh read-path timing pipe for the DES layer (one per simulated
    /// submission queue).
    pub fn read_pipe(&self) -> SerialPipe {
        SerialPipe::new(self.spec.read_bytes_per_sec, self.spec.cmd_latency)
    }

    /// Modelled duration of a single isolated read.
    pub fn read_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.spec.read_bytes_per_sec) + self.spec.cmd_latency
    }

    /// Modelled duration of a single isolated write.
    pub fn write_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.spec.write_bytes_per_sec) + self.spec.cmd_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_then_read_roundtrips() {
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        let (off_a, len_a) = disk.append(vec![1, 2, 3]).unwrap();
        let (off_b, len_b) = disk.append(vec![9; 5000]).unwrap();
        assert_ne!(off_a, off_b);
        assert_eq!(disk.read(off_a, len_a).unwrap().as_slice(), &[1, 2, 3]);
        assert_eq!(disk.read(off_b, len_b).unwrap().len(), 5000);
        assert_eq!(disk.object_count(), 2);
        assert_eq!(disk.used_bytes(), 5003);
    }

    #[test]
    fn offsets_are_4k_aligned() {
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        let (a, _) = disk.append(vec![0; 100]).unwrap();
        let (b, _) = disk.append(vec![0; 100]).unwrap();
        assert_eq!(a % 4096, 0);
        assert_eq!(b % 4096, 0);
        assert_eq!(b - a, 4096);
    }

    #[test]
    fn bad_reads_fail() {
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        let (off, len) = disk.append(vec![7; 10]).unwrap();
        assert!(disk.read(off + 1, len).is_err());
        assert!(disk.read(off, len + 1).is_err());
        assert!(disk.append(vec![]).is_err());
    }

    #[test]
    fn capacity_enforced() {
        let mut spec = NvmeSpec::optane_900p();
        spec.capacity = 10_000;
        let disk = NvmeDisk::new(spec);
        assert!(disk.append(vec![0; 8_000]).is_ok());
        assert!(disk.append(vec![0; 4_000]).is_err());
    }

    #[test]
    fn chaos_read_faults_are_transient_per_attempt() {
        use dlb_chaos::{FaultPlan, Stage, StageSpec};
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        let (off, len) = disk.append(vec![3; 64]).unwrap();
        let t = dlb_telemetry::Telemetry::with_defaults();
        let mut plan = FaultPlan::disabled();
        plan.seed = 11;
        plan.storage = StageSpec::rate(0.5).with_delay(std::time::Duration::from_millis(1));
        disk.attach_chaos(plan.injector(Stage::Storage, &t).unwrap());
        // With a 50% rate, repeated attempts on the same offset must both
        // fail sometimes and succeed sometimes (fresh draw per attempt).
        let mut ok = 0;
        let mut err = 0;
        for _ in 0..40 {
            match disk.read(off, len) {
                Ok(bytes) => {
                    assert_eq!(bytes.as_slice(), &[3; 64]);
                    ok += 1;
                }
                Err(e) => {
                    assert!(e.contains("chaos"), "{e}");
                    err += 1;
                }
            }
        }
        assert!(ok > 0, "some attempts must succeed");
        assert!(err > 0, "some attempts must fail");
    }

    #[test]
    fn timing_model_scales() {
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        // 2.5 MB at 2.5 GB/s = 1 ms + 10 µs latency.
        let t = disk.read_time(2_500_000);
        assert_eq!(t, SimTime::from_millis(1) + SimTime::from_micros(10));
        assert!(disk.write_time(2_000_000) > disk.read_time(2_000_000));
        let mut pipe = disk.read_pipe();
        let t1 = pipe.transfer(SimTime::ZERO, 2_500_000);
        assert_eq!(t1, t);
    }
}

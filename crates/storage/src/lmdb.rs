//! An LMDB-like offline preprocessing store.
//!
//! Caffe's LMDB backend (paper §2.2) converts the dataset *offline*: every
//! JPEG is decoded once, resized to a fixed geometry, and stored as a raw
//! datum; training then reads raw records. The paper's complaints about this
//! design are all reproduced here:
//!
//! * **conversion is expensive** — "more than 2 hours to prepare the LMDB
//!   backend for ILSVRC12"; [`LmdbStore::convert`] does the real work
//!   (decode + resize per image) and [`ConversionReport`] scales the cost to
//!   full-dataset size;
//! * **reads copy per-datum** — `get` hands out an owned copy of each small
//!   record (the ≈20 % small-piece overhead of §5.2);
//! * **shared-DB contention** — reader statistics feed the DES model that
//!   reproduces the ≈30 % two-GPU degradation of Fig. 2/5(b).

use crate::dataset::{Dataset, Record};
use crate::nvme::NvmeDisk;
use dlb_codec::resize::{resize, ResizeFilter};
use dlb_codec::{Image, JpegDecoder};
use dlb_simcore::SimTime;
use parking_lot::RwLock;
use rayon::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stored raw datum: label + fixed-geometry decoded pixels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawDatum {
    /// Class label.
    pub label: u64,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Channels (1 or 3).
    pub channels: u8,
    /// Interleaved pixels.
    pub pixels: Vec<u8>,
}

impl RawDatum {
    /// Serialized size (what the DB stores per key).
    pub fn byte_len(&self) -> usize {
        self.pixels.len() + 16
    }
}

/// What the offline conversion cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionReport {
    /// Images converted.
    pub images: usize,
    /// Total decode+resize CPU seconds (measured, wall-clock of the real
    /// work divided across workers).
    pub cpu_seconds: f64,
    /// Stored bytes.
    pub stored_bytes: u64,
}

impl ConversionReport {
    /// Extrapolates the conversion time to `n` full-scale images on
    /// `cores` cores — the "2 hours for ILSVRC12" claim check.
    pub fn scaled_wall_time(&self, n: usize, cores: usize, size_ratio: f64) -> SimTime {
        let per_image = self.cpu_seconds / self.images as f64 * size_ratio;
        SimTime::from_secs_f64(per_image * n as f64 / cores.max(1) as f64)
    }
}

/// The store: an ordered key→datum map with copy-out reads, mimicking the
/// LMDB B-tree API surface Caffe uses (`get`, sequential `cursor` scans).
#[derive(Debug)]
pub struct LmdbStore {
    map: RwLock<BTreeMap<u64, RawDatum>>,
    reads: AtomicU64,
    bytes_read: AtomicU64,
}

impl Default for LmdbStore {
    fn default() -> Self {
        Self::new()
    }
}

impl LmdbStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            map: RwLock::new(BTreeMap::new()),
            reads: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        }
    }

    /// Offline conversion: decode every dataset record from `disk`, resize
    /// to `target_w`×`target_h`, and store raw. Runs the *real* decode on
    /// all available cores (rayon), exactly what `convert_imageset` does.
    pub fn convert(
        &self,
        dataset: &Dataset,
        disk: &NvmeDisk,
        target_w: u32,
        target_h: u32,
    ) -> Result<ConversionReport, String> {
        let t0 = std::time::Instant::now();
        let workers = rayon::current_num_threads().max(1);
        let data: Vec<(u64, RawDatum)> = dataset
            .records
            .par_iter()
            .map(|r: &Record| -> Result<(u64, RawDatum), String> {
                let bytes = disk.read(r.disk_offset, r.len)?;
                let decoder = JpegDecoder::new();
                let img = decoder
                    .decode(&bytes)
                    .map_err(|e| format!("record {}: {e}", r.id))?;
                let img: Image = resize(&img, target_w, target_h, ResizeFilter::Area)
                    .map_err(|e| format!("record {}: {e}", r.id))?;
                Ok((
                    r.id,
                    RawDatum {
                        label: r.label,
                        width: target_w,
                        height: target_h,
                        channels: img.channels() as u8,
                        pixels: img.into_vec(),
                    },
                ))
            })
            .collect::<Result<_, _>>()?;
        let stored_bytes: u64 = data.iter().map(|(_, d)| d.byte_len() as u64).sum();
        let images = data.len();
        {
            let mut map = self.map.write();
            for (k, v) in data {
                map.insert(k, v);
            }
        }
        Ok(ConversionReport {
            images,
            cpu_seconds: t0.elapsed().as_secs_f64() * workers as f64,
            stored_bytes,
        })
    }

    /// Reads one datum by key, copying it out (LMDB hands out mmap'd slices
    /// that Caffe immediately copies into its transfer buffers; the copy is
    /// the point).
    pub fn get(&self, key: u64) -> Option<RawDatum> {
        let map = self.map.read();
        let datum = map.get(&key)?.clone();
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(datum.byte_len() as u64, Ordering::Relaxed);
        Some(datum)
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (reads, bytes_read).
    pub fn read_stats(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.bytes_read.load(Ordering::Relaxed),
        )
    }
}

/// DES-layer contention model for a shared LMDB backend.
///
/// Reads go through the OS page cache and the shared B-tree; with `readers`
/// concurrent training processes the per-reader effective bandwidth drops
/// super-linearly (lock handoffs, cache thrash). Calibrated so 1 reader
/// sustains the single-GPU Fig. 5(b) rate and 2 readers lose ≈30 %
/// aggregate on AlexNet-sized records.
#[derive(Debug, Clone, Copy)]
pub struct LmdbContentionModel {
    /// Single-reader record throughput, bytes/second.
    pub single_reader_bytes_per_sec: f64,
    /// Aggregate efficiency with `n` readers: `1/n^alpha` per reader.
    pub contention_alpha: f64,
}

impl LmdbContentionModel {
    /// Paper-calibrated defaults, fixed so that one reader keeps a P100
    /// AlexNet solver fed (Fig. 5b: 1-GPU LMDB ≈ ideal) while two readers
    /// drop below the 2-GPU demand (the ≈30 % aggregate loss).
    pub fn paper_config() -> Self {
        Self {
            // One reader streams ≈380 MB/s of records out of the shared DB.
            single_reader_bytes_per_sec: 3.8e8,
            // 2 readers → per-reader 2^-0.7 ≈ 0.62×.
            contention_alpha: 0.7,
        }
    }

    /// Per-reader effective bandwidth with `n` concurrent readers.
    pub fn per_reader_bandwidth(&self, n: u32) -> f64 {
        let n = n.max(1) as f64;
        self.single_reader_bytes_per_sec / n.powf(self.contention_alpha)
    }

    /// Time for one reader (of `n`) to pull a batch of `bytes`.
    pub fn batch_read_time(&self, bytes: u64, n_readers: u32) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.per_reader_bandwidth(n_readers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetSpec;
    use crate::nvme::NvmeSpec;

    fn small_setup() -> (NvmeDisk, Dataset) {
        let disk = NvmeDisk::new(NvmeSpec::optane_900p());
        let ds = Dataset::build(DatasetSpec::ilsvrc_small(12, 4), &disk).unwrap();
        (disk, ds)
    }

    #[test]
    fn convert_then_get_roundtrips() {
        let (disk, ds) = small_setup();
        let store = LmdbStore::new();
        let report = store.convert(&ds, &disk, 64, 64).unwrap();
        assert_eq!(report.images, 12);
        assert_eq!(store.len(), 12);
        assert!(report.cpu_seconds > 0.0);
        assert_eq!(report.stored_bytes, 12 * (64 * 64 * 3 + 16));
        let d = store.get(0).unwrap();
        assert_eq!((d.width, d.height, d.channels), (64, 64, 3));
        assert_eq!(d.pixels.len(), 64 * 64 * 3);
        assert!(store.get(99).is_none());
        let (reads, bytes) = store.read_stats();
        assert_eq!(reads, 1);
        assert_eq!(bytes, (64 * 64 * 3 + 16) as u64);
    }

    #[test]
    fn converted_labels_match_manifest() {
        let (disk, ds) = small_setup();
        let store = LmdbStore::new();
        store.convert(&ds, &disk, 32, 32).unwrap();
        for r in &ds.records {
            assert_eq!(store.get(r.id).unwrap().label, r.label);
        }
    }

    #[test]
    fn conversion_report_extrapolates() {
        let (disk, ds) = small_setup();
        let store = LmdbStore::new();
        let report = store.convert(&ds, &disk, 32, 32).unwrap();
        // Full ILSVRC on 16 cores at 25× the per-image cost (full-res vs
        // scale 0.2 ⇒ 25× pixels): the estimate must land in the
        // hours-not-seconds regime the paper complains about.
        let t = report.scaled_wall_time(12_800_000, 16, 25.0);
        assert!(
            t > SimTime::from_secs(600),
            "full conversion estimate {t} is implausibly fast"
        );
    }

    #[test]
    fn contention_model_reproduces_fig5b_loss() {
        let m = LmdbContentionModel::paper_config();
        let one = m.per_reader_bandwidth(1);
        let two = m.per_reader_bandwidth(2);
        let per_reader_ratio = two / one;
        // Fig. 5(b): 2-GPU LMDB throughput well below 2× the 1-GPU rate.
        assert!(
            (0.55..0.75).contains(&per_reader_ratio),
            "per-reader ratio {per_reader_ratio:.3}"
        );
        // Reading a batch takes longer under contention.
        assert!(m.batch_read_time(1 << 20, 2) > m.batch_read_time(1 << 20, 1));
    }

    #[test]
    fn empty_store() {
        let s = LmdbStore::new();
        assert!(s.is_empty());
        assert!(s.get(0).is_none());
    }
}

//! Inference-client generators.
//!
//! Paper §5.3: "we set up 5 clients to send color images using a 40Gbps
//! fabric. The average image size is 500×375, and all images are stored in
//! JPEG format." [`ClientPool`] reproduces that offered load
//! deterministically: per-client exponential inter-arrival times and
//! synthetic JPEG payloads.

use crate::framing::Frame;
use dlb_codec::synth::{generate, SynthStyle};
use dlb_codec::{ChromaMode, JpegEncoder};
use dlb_simcore::{SimRng, SimTime};

/// A generated request: wire bytes plus ground-truth metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Unique id.
    pub request_id: u64,
    /// Originating client.
    pub client_id: u32,
    /// Virtual send time.
    pub send_time: SimTime,
    /// Encoded frame (header + JPEG payload).
    pub wire_bytes: Vec<u8>,
    /// Source image width.
    pub width: u32,
    /// Source image height.
    pub height: u32,
}

/// Deterministic pool of request-generating clients.
#[derive(Debug, Clone)]
pub struct ClientPool {
    /// Number of clients (paper: 5).
    pub clients: u32,
    /// Aggregate request rate across all clients, requests/second.
    pub aggregate_rate: f64,
    /// Image scale relative to 500×375 (shrink for fast functional tests).
    pub scale: f64,
    /// JPEG quality.
    pub quality: u8,
    /// Restart interval (intra-image FPGA parallelism).
    pub restart_interval: u16,
    /// Seed.
    pub seed: u64,
}

impl ClientPool {
    /// The paper's 5-client pool at the given aggregate rate.
    pub fn paper_config(aggregate_rate: f64, seed: u64) -> Self {
        Self {
            clients: 5,
            aggregate_rate,
            scale: 1.0,
            quality: 92,
            restart_interval: 8,
            seed,
        }
    }

    /// Small-image variant for functional tests.
    pub fn small(aggregate_rate: f64, seed: u64) -> Self {
        Self {
            scale: 0.15,
            ..Self::paper_config(aggregate_rate, seed)
        }
    }

    /// Generates the first `n` requests across all clients, merged in send
    /// order. Deterministic in the seed.
    pub fn generate_requests(&self, n: usize) -> Vec<Request> {
        assert!(self.clients >= 1 && self.aggregate_rate > 0.0);
        let per_client_rate = self.aggregate_rate / self.clients as f64;
        let mut root = SimRng::new(self.seed);
        // Per-client arrival processes.
        let mut streams: Vec<(u32, SimRng, SimTime)> = (0..self.clients)
            .map(|c| {
                let rng = root.fork(c as u64 + 1);
                (c, rng, SimTime::ZERO)
            })
            .collect();
        let mut requests = Vec::with_capacity(n);
        for rid in 0..n as u64 {
            // Advance the client with the earliest next arrival.
            let (idx, _) = streams
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .expect("clients >= 1");
            let (client_id, rng, t) = &mut streams[idx];
            let send_time = *t;
            let gap = rng.exponential(1.0 / per_client_rate);
            *t += SimTime::from_secs_f64(gap);

            let (wire_bytes, w, h) = self.encode_request(rid, *client_id, send_time);
            requests.push(Request {
                request_id: rid,
                client_id: *client_id,
                send_time,
                wire_bytes,
                width: w,
                height: h,
            });
        }
        requests.sort_by_key(|r| (r.send_time, r.request_id));
        requests
    }

    fn encode_request(&self, rid: u64, client: u32, send_time: SimTime) -> (Vec<u8>, u32, u32) {
        let mut rng = SimRng::new(self.seed ^ rid.wrapping_mul(0x517C_C1B7_2722_0A95));
        let portrait = rng.uniform() < 0.3;
        let (bw, bh) = if portrait {
            (375.0, 500.0)
        } else {
            (500.0, 375.0)
        };
        let jitter = 0.85 + 0.3 * rng.uniform();
        let w = ((bw * self.scale * jitter) as u32).max(16);
        let h = ((bh * self.scale * jitter) as u32).max(16);
        let img = generate(w, h, SynthStyle::Photo, self.seed ^ (rid << 1) | 1);
        let payload = JpegEncoder::new(self.quality)
            .expect("valid quality")
            .with_mode(ChromaMode::Yuv420)
            .with_restart_interval(self.restart_interval)
            .encode(&img)
            .expect("encode");
        let frame = Frame {
            request_id: rid,
            client_id: client,
            send_ts_nanos: send_time.as_nanos(),
            payload,
        };
        (frame.encode(), w, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framing::Frame;

    #[test]
    fn generation_is_deterministic_and_ordered() {
        let pool = ClientPool::small(1000.0, 42);
        let a = pool.generate_requests(30);
        let b = pool.generate_requests(30);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].send_time <= w[1].send_time);
        }
    }

    #[test]
    fn all_clients_participate() {
        let pool = ClientPool::small(2000.0, 7);
        let reqs = pool.generate_requests(100);
        let clients: std::collections::HashSet<u32> = reqs.iter().map(|r| r.client_id).collect();
        assert_eq!(clients.len(), 5, "clients seen: {clients:?}");
    }

    #[test]
    fn aggregate_rate_is_respected() {
        let rate = 5000.0;
        let pool = ClientPool::small(rate, 3);
        let reqs = pool.generate_requests(500);
        let span = reqs.last().unwrap().send_time.as_secs_f64();
        let observed = 500.0 / span;
        assert!(
            (observed / rate - 1.0).abs() < 0.25,
            "observed rate {observed:.0} vs {rate}"
        );
    }

    #[test]
    fn frames_decode_and_carry_jpeg() {
        let pool = ClientPool::small(1000.0, 9);
        let reqs = pool.generate_requests(5);
        for r in &reqs {
            let frame = Frame::decode(&r.wire_bytes).unwrap();
            assert_eq!(frame.request_id, r.request_id);
            // Payload must be decodable JPEG of the declared geometry.
            let img = dlb_codec::JpegDecoder::new()
                .decode(&frame.payload)
                .unwrap();
            assert_eq!(img.width(), r.width);
            assert_eq!(img.height(), r.height);
        }
    }

    #[test]
    #[should_panic]
    fn zero_rate_panics() {
        let mut pool = ClientPool::small(1000.0, 1);
        pool.aggregate_rate = 0.0;
        let _ = pool.generate_requests(1);
    }
}
